//! The constrained-budget optimizer of Appendix C.
//!
//! AdaParse restricts itself to two parsers (PyMuPDF and Nougat). Given a
//! total compute budget `T`, the fraction α of documents that may go to
//! Nougat is bounded by
//!
//! ```text
//! α ≤ (T − n·T_PyMuPDF) / (n·(T_Nougat − T_PyMuPDF))
//! ```
//!
//! and the objective is maximized by sorting documents by the *expected
//! accuracy improvement* of Nougat over PyMuPDF and sending the top ⌊αn⌋ to
//! Nougat. For throughput, AdaParse performs this selection per batch of
//! size k rather than globally; the optimality gap is negligible for large k
//! and is measurable with [`optimality_gap`].

/// Upper bound on α implied by a total budget `total_budget` (seconds) for
/// `n` documents with average per-document costs `cheap_cost` and
/// `expensive_cost` (seconds).
///
/// Returns a value clamped to `[0, 1]`; returns `0.0` when even the cheap
/// parser alone exceeds the budget, and `1.0` when the expensive parser fits
/// for every document.
pub fn max_affordable_alpha(total_budget: f64, n: usize, cheap_cost: f64, expensive_cost: f64) -> f64 {
    if n == 0 {
        return 1.0;
    }
    let n = n as f64;
    if expensive_cost <= cheap_cost {
        return 1.0;
    }
    let alpha = (total_budget - n * cheap_cost) / (n * (expensive_cost - cheap_cost));
    alpha.clamp(0.0, 1.0)
}

/// One kept entry of the bounded top-k heap: ordered so the heap's *maximum*
/// is the worst-ranked kept entry (lowest key, then highest index), making
/// `peek()` the replacement candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Kept {
    key: f64,
    index: usize,
}

impl Eq for Kept {}

impl Ord for Kept {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse of rank order: a *worse*-ranked entry (smaller key, or an
        // equal key at a larger index) compares greater, so it surfaces at
        // the top of the max-heap.
        other.key.total_cmp(&self.key).then_with(|| self.index.cmp(&other.index))
    }
}

impl PartialOrd for Kept {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Indices of the `k` highest entries of `scores`, in descending-score
/// order under a *total* order (`f64::total_cmp`), ties broken by ascending
/// index — exactly the first `k` entries of a full descending sort, without
/// sorting all n: a bounded max-heap keeps the k best seen so far, so the
/// cost is O(n log k) instead of O(n log n). For the windowed selector this
/// is the per-window hot path (k = ⌊α·window⌋ is small while n is the
/// window size).
///
/// `partial_cmp(..).unwrap_or(Equal)` would make NaN or tied improvements
/// order-unstable (dependent on the heap's internal state); a total order
/// with an index tiebreak keeps every routing mask a pure function of the
/// score vector. NaN scores rank below every real score (under raw
/// `total_cmp`, positive NaN would outrank +∞ — a NaN prediction must never
/// win a routing slot).
pub(crate) fn top_k_indices(scores: &[f64], k: usize) -> Vec<usize> {
    fn key(v: f64) -> f64 {
        if v.is_nan() {
            f64::NEG_INFINITY
        } else {
            v
        }
    }
    let k = k.min(scores.len());
    if k == 0 {
        return Vec::new();
    }
    let mut heap: std::collections::BinaryHeap<Kept> = std::collections::BinaryHeap::with_capacity(k);
    for (index, &score) in scores.iter().enumerate() {
        let entry = Kept { key: key(score), index };
        if heap.len() < k {
            heap.push(entry);
        } else if entry < *heap.peek().expect("heap holds k > 0 entries") {
            // Better-ranked than the worst kept entry: replace it.
            heap.pop();
            heap.push(entry);
        }
    }
    let mut kept = heap.into_vec();
    // `Kept`'s order is reverse rank, so ascending sort is best-first.
    kept.sort_unstable();
    kept.into_iter().map(|entry| entry.index).collect()
}

/// Mark the `quota` highest entries of `scores` in a fresh boolean mask,
/// using the deterministic [`top_k_indices`] ranking.
pub(crate) fn top_quota_mask(scores: &[f64], quota: usize) -> Vec<bool> {
    let mut mask = vec![false; scores.len()];
    for index in top_k_indices(scores, quota) {
        mask[index] = true;
    }
    mask
}

/// Per-batch greedy selection: mark the ⌊α·k⌋ documents with the highest
/// predicted improvement within each batch of size `batch_size`.
///
/// Returns a boolean mask (`true` = route to the high-quality parser) of the
/// same length as `improvements`.
pub fn select_batch(improvements: &[f64], alpha: f64, batch_size: usize) -> Vec<bool> {
    let alpha = alpha.clamp(0.0, 1.0);
    let batch_size = batch_size.max(1);
    let mut mask = vec![false; improvements.len()];
    for (batch_index, batch) in improvements.chunks(batch_size).enumerate() {
        let quota = ((batch.len() as f64) * alpha).floor() as usize;
        if quota == 0 {
            continue;
        }
        for local in top_k_indices(batch, quota) {
            mask[batch_index * batch_size + local] = true;
        }
    }
    mask
}

/// Global selection: mark the ⌊α·n⌋ documents with the highest predicted
/// improvement across the whole collection (the optimum of the relaxed
/// problem).
pub fn select_global(improvements: &[f64], alpha: f64) -> Vec<bool> {
    let quota = ((improvements.len() as f64) * alpha.clamp(0.0, 1.0)).floor() as usize;
    top_quota_mask(improvements, quota)
}

/// Result of a k-parser greedy assignment: per document the chosen upgrade
/// (an index into the frontier's upgrade list) or `None` for the base
/// parser, plus the slot budget actually consumed.
#[derive(Debug, Clone, PartialEq)]
pub struct KAssignment {
    /// Per-document choice: `Some(j)` assigns upgrade `j` (frontier order),
    /// `None` keeps the base parser.
    pub choices: Vec<Option<usize>>,
    /// Sum of the weights of all granted upgrades (≤ the slot budget).
    pub slots_consumed: f64,
}

impl KAssignment {
    /// The binary view of the assignment: `true` where any upgrade was
    /// granted. In the k=2 degenerate case this is exactly the legacy
    /// selection mask.
    pub fn mask(&self) -> Vec<bool> {
        self.choices.iter().map(Option::is_some).collect()
    }
}

/// Marginal-gain-per-cost greedy assignment over a k-parser frontier — the
/// k-way generalization of [`select_global`]'s top-⌊αn⌋ selection.
///
/// `gains_per_parser` holds one gain vector per upgrade parser (frontier
/// order), each of length n; `weights` holds the per-upgrade slot costs
/// (`FrontierEntry::upgrade_weight`: in `(0, 1]`, exactly `1.0` for the
/// costliest upgrade); `slots` is the budget in units of the costliest
/// upgrade. Candidates `(document, upgrade)` are ranked by gain/weight
/// under the same total order as [`select_global`] (NaN last, ties by gain,
/// then ascending document, then ascending — i.e. cheapest — upgrade), and
/// granted first-fit while their weight fits the remaining budget; each
/// document takes at most one upgrade.
///
/// **Degenerate-case guarantee (pinned by `cascade_equivalence`):** with a
/// single upgrade of weight exactly `1.0` and `slots = ⌊α·n⌋`, the ranking
/// key `gain / 1.0` is bitwise the gain itself and the slot arithmetic is
/// exact integer f64 counting, so the returned mask equals
/// `select_global(gains, α)` bitwise — ordering, tie-breaks, NaN handling
/// and all.
///
/// # Panics
///
/// Panics when `gains_per_parser` and `weights` disagree in length, the gain
/// vectors have unequal lengths, or a weight is outside `(0, 1]`.
pub fn assign_k(gains_per_parser: &[Vec<f64>], weights: &[f64], slots: f64) -> KAssignment {
    fn key(v: f64) -> f64 {
        if v.is_nan() {
            f64::NEG_INFINITY
        } else {
            v
        }
    }
    assert_eq!(gains_per_parser.len(), weights.len(), "one gain vector per upgrade parser");
    let n = gains_per_parser.first().map(Vec::len).unwrap_or(0);
    for gains in gains_per_parser {
        assert_eq!(gains.len(), n, "gain vectors must have equal length");
    }
    for &w in weights {
        assert!(w > 0.0 && w <= 1.0, "upgrade weights must lie in (0, 1], got {w}");
    }
    struct Candidate {
        ratio_key: f64,
        gain_key: f64,
        doc: usize,
        parser: usize,
    }
    let mut candidates = Vec::with_capacity(n * weights.len());
    for (parser, gains) in gains_per_parser.iter().enumerate() {
        let weight = weights[parser];
        for (doc, &gain) in gains.iter().enumerate() {
            candidates.push(Candidate { ratio_key: key(gain / weight), gain_key: key(gain), doc, parser });
        }
    }
    candidates.sort_unstable_by(|a, b| {
        b.ratio_key
            .total_cmp(&a.ratio_key)
            .then_with(|| b.gain_key.total_cmp(&a.gain_key))
            .then_with(|| a.doc.cmp(&b.doc))
            .then_with(|| a.parser.cmp(&b.parser))
    });
    let mut choices: Vec<Option<usize>> = vec![None; n];
    let mut remaining = slots.max(0.0);
    let mut slots_consumed = 0.0;
    for candidate in candidates {
        if choices[candidate.doc].is_some() {
            continue;
        }
        let weight = weights[candidate.parser];
        if weight <= remaining {
            choices[candidate.doc] = Some(candidate.parser);
            remaining -= weight;
            slots_consumed += weight;
        }
    }
    KAssignment { choices, slots_consumed }
}

/// Global k-parser assignment at fraction `alpha`: slot budget `⌊α·n⌋` in
/// units of the costliest upgrade, over the whole collection — the k-way
/// analogue of [`select_global`].
pub fn assign_k_global(gains_per_parser: &[Vec<f64>], weights: &[f64], alpha: f64) -> KAssignment {
    let n = gains_per_parser.first().map(Vec::len).unwrap_or(0);
    let slots = ((n as f64) * alpha.clamp(0.0, 1.0)).floor();
    assign_k(gains_per_parser, weights, slots)
}

/// Per-batch k-parser assignment — the k-way analogue of [`select_batch`]:
/// each batch of `batch_size` documents gets an independent slot budget of
/// `⌊α·len⌋` costliest-upgrade units.
pub fn assign_k_batched(
    gains_per_parser: &[Vec<f64>],
    weights: &[f64],
    alpha: f64,
    batch_size: usize,
) -> Vec<Option<usize>> {
    let alpha = alpha.clamp(0.0, 1.0);
    let batch_size = batch_size.max(1);
    let n = gains_per_parser.first().map(Vec::len).unwrap_or(0);
    let mut choices = Vec::with_capacity(n);
    let mut start = 0usize;
    while start < n {
        let end = (start + batch_size).min(n);
        let batch: Vec<Vec<f64>> = gains_per_parser.iter().map(|g| g[start..end].to_vec()).collect();
        let slots = (((end - start) as f64) * alpha).floor();
        choices.extend(assign_k(&batch, weights, slots).choices);
        start = end;
    }
    choices
}

/// Total improvement captured by a selection mask.
pub fn captured_improvement(improvements: &[f64], mask: &[bool]) -> f64 {
    improvements.iter().zip(mask).filter(|(_, &m)| m).map(|(v, _)| v).sum()
}

/// Relative optimality gap of the per-batch selection against the global
/// optimum: `(global − batch) / global`, or `0.0` when the global optimum
/// captures nothing.
pub fn optimality_gap(improvements: &[f64], alpha: f64, batch_size: usize) -> f64 {
    gap_against_global(improvements, alpha, &select_batch(improvements, alpha, batch_size))
}

/// Relative optimality gap of the *streaming windowed* selection (size-`window`
/// windows against a running remaining-budget ledger, see
/// [`crate::scaling::WindowedSelector`]) against the global optimum.
///
/// The paper's claim — the gap is negligible for large k — is testable here:
/// with `window == improvements.len()` the gap is exactly zero, and for
/// nonnegative improvements the ledger's quota carryover makes the windowed
/// gap no worse than the independent per-batch gap of [`optimality_gap`] at
/// the same size. With negative scores the carryover can *force* a
/// loss-making pick that a quota-forfeiting batch would have skipped, so
/// that ordering is not guaranteed there (the campaign itself is safe: a
/// selected non-candidate still routes to the default parser).
pub fn windowed_optimality_gap(improvements: &[f64], alpha: f64, window: usize) -> f64 {
    let mask = crate::scaling::WindowedSelector::new(window, alpha).select_all(improvements);
    gap_against_global(improvements, alpha, &mask)
}

/// Shared gap computation: `(global − captured(mask)) / global`, clamped to
/// `[0, ∞)`, or `0.0` when the global optimum captures nothing.
fn gap_against_global(improvements: &[f64], alpha: f64, mask: &[bool]) -> f64 {
    let global = captured_improvement(improvements, &select_global(improvements, alpha));
    if global <= 0.0 {
        return 0.0;
    }
    let captured = captured_improvement(improvements, mask);
    ((global - captured) / global).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn alpha_bound_matches_the_formula() {
        // n = 100 docs, cheap = 1 s, expensive = 11 s, budget = 150 s:
        // alpha <= (150 - 100) / (100 * 10) = 0.05.
        let alpha = max_affordable_alpha(150.0, 100, 1.0, 11.0);
        assert!((alpha - 0.05).abs() < 1e-12);
        assert_eq!(max_affordable_alpha(50.0, 100, 1.0, 11.0), 0.0);
        assert_eq!(max_affordable_alpha(1e9, 100, 1.0, 11.0), 1.0);
        assert_eq!(max_affordable_alpha(1.0, 0, 1.0, 11.0), 1.0);
        assert_eq!(max_affordable_alpha(1.0, 10, 2.0, 2.0), 1.0);
    }

    #[test]
    fn batch_selection_respects_the_quota_per_batch() {
        let improvements: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let mask = select_batch(&improvements, 0.1, 20);
        assert_eq!(mask.len(), 100);
        for chunk in mask.chunks(20) {
            assert_eq!(chunk.iter().filter(|&&m| m).count(), 2);
        }
        // Within each batch the selected entries are the largest.
        for (b, chunk) in improvements.chunks(20).enumerate() {
            let selected_min = chunk
                .iter()
                .zip(&mask[b * 20..(b + 1) * 20])
                .filter(|(_, &m)| m)
                .map(|(v, _)| *v)
                .fold(f64::INFINITY, f64::min);
            let unselected_max = chunk
                .iter()
                .zip(&mask[b * 20..(b + 1) * 20])
                .filter(|(_, &m)| !m)
                .map(|(v, _)| *v)
                .fold(f64::NEG_INFINITY, f64::max);
            assert!(selected_min >= unselected_max);
        }
    }

    #[test]
    fn global_selection_picks_the_overall_top() {
        let improvements = vec![0.1, 0.9, 0.2, 0.8, 0.0, 0.7];
        let mask = select_global(&improvements, 0.5);
        assert_eq!(mask.iter().filter(|&&m| m).count(), 3);
        assert!(mask[1] && mask[3] && mask[5]);
    }

    #[test]
    fn zero_alpha_selects_nothing_and_one_selects_everything() {
        let improvements = vec![0.5; 10];
        assert!(select_batch(&improvements, 0.0, 4).iter().all(|&m| !m));
        assert!(select_global(&improvements, 1.0).iter().all(|&m| m));
        assert!(select_batch(&[], 0.5, 4).is_empty());
    }

    #[test]
    fn per_batch_gap_shrinks_with_batch_size() {
        let mut rng = StdRng::seed_from_u64(5);
        let improvements: Vec<f64> = (0..2048).map(|_| rng.gen_range(0.0..1.0)).collect();
        let small_batch = optimality_gap(&improvements, 0.05, 16);
        let large_batch = optimality_gap(&improvements, 0.05, 256);
        assert!(large_batch <= small_batch + 1e-9, "{large_batch} vs {small_batch}");
        // With the paper's k = 256 the gap is negligible.
        assert!(large_batch < 0.15, "gap = {large_batch}");
        // Global selection has zero gap by definition.
        assert!(optimality_gap(&improvements, 0.05, improvements.len()) < 1e-12);
    }

    #[test]
    fn tied_and_nan_scores_break_ties_by_index() {
        // All-tied scores: the mask must pick the *earliest* entries, and do
        // so identically on every call (a total order with an index tiebreak,
        // not whatever the sort happened to leave in place).
        let tied = vec![0.5; 8];
        let mask = select_batch(&tied, 0.5, 8);
        assert_eq!(mask, vec![true, true, true, true, false, false, false, false]);
        assert_eq!(mask, select_batch(&tied, 0.5, 8));
        assert_eq!(mask, select_global(&tied, 0.5));

        // NaN ranks below every real number under total_cmp, so it is never
        // selected while finite candidates remain.
        let with_nan = vec![f64::NAN, 0.1, f64::NAN, 0.2];
        let mask = select_global(&with_nan, 0.5);
        assert_eq!(mask, vec![false, true, false, true]);
        assert_eq!(select_batch(&with_nan, 0.5, 2), vec![false, true, false, true]);
    }

    #[test]
    fn windowed_gap_is_zero_at_full_window_and_no_worse_than_batch() {
        let mut rng = StdRng::seed_from_u64(17);
        let improvements: Vec<f64> = (0..2048).map(|_| rng.gen_range(0.0..1.0)).collect();
        assert!(windowed_optimality_gap(&improvements, 0.05, improvements.len()) < 1e-12);
        for window in [8usize, 64, 512] {
            let windowed = windowed_optimality_gap(&improvements, 0.05, window);
            let batch = optimality_gap(&improvements, 0.05, window);
            assert!(windowed <= batch + 1e-9, "window={window}: {windowed} vs batch {batch}");
        }
    }

    #[test]
    fn captured_improvement_sums_selected_entries() {
        let improvements = vec![0.2, 0.4, 0.6];
        let mask = vec![true, false, true];
        assert!((captured_improvement(&improvements, &mask) - 0.8).abs() < 1e-12);
    }

    /// The full O(n log n) descending sort that [`top_k_indices`] replaced:
    /// NaN ranks last, ties break by ascending index.
    fn full_sort_order(scores: &[f64]) -> Vec<usize> {
        fn key(v: f64) -> f64 {
            if v.is_nan() {
                f64::NEG_INFINITY
            } else {
                v
            }
        }
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| key(scores[b]).total_cmp(&key(scores[a])).then_with(|| a.cmp(&b)));
        order
    }

    #[test]
    fn assign_k_prefers_high_ratio_candidates() {
        // Two upgrades: cheap (weight 0.25) with modest gains, costly
        // (weight 1.0) with large gains.
        let gains = vec![vec![0.1, 0.05, 0.2, 0.0], vec![0.3, 0.6, 0.25, 0.0]];
        let weights = vec![0.25, 1.0];
        let assignment = assign_k(&gains, &weights, 1.5);
        // Ratios: cheap = gain*4 → [0.4, 0.2, 0.8, 0], costly = [0.3, 0.6, 0.25, 0].
        // Greedy order: doc2@cheap(0.8), doc1@costly(0.6), doc0@cheap(0.4)...
        // Budget 1.5: 0.25 + 1.0 + 0.25 = 1.5 — all three fit.
        assert_eq!(assignment.choices, vec![Some(0), Some(1), Some(0), None]);
        assert!((assignment.slots_consumed - 1.5).abs() < 1e-12);
    }

    #[test]
    fn assign_k_skips_too_costly_and_continues_with_cheaper() {
        let gains = vec![vec![0.1, 0.09], vec![10.0, 9.0]];
        let weights = vec![0.5, 1.0];
        // Budget 0.5: the costly upgrades rank first by ratio but do not
        // fit; the greedy continues and grants one cheap upgrade.
        let assignment = assign_k(&gains, &weights, 0.5);
        assert_eq!(assignment.choices, vec![Some(0), None]);
        assert!((assignment.slots_consumed - 0.5).abs() < 1e-12);
    }

    #[test]
    fn assign_k_gives_each_doc_at_most_one_upgrade() {
        let gains = vec![vec![1.0; 6], vec![2.0; 6]];
        let weights = vec![0.5, 1.0];
        let assignment = assign_k(&gains, &weights, 100.0);
        assert!(assignment.choices.iter().all(Option::is_some));
        assert!(assignment.slots_consumed <= 100.0);
    }

    #[test]
    fn assign_k_empty_inputs() {
        let assignment = assign_k(&[], &[], 5.0);
        assert!(assignment.choices.is_empty());
        assert_eq!(assignment.slots_consumed, 0.0);
        let assignment = assign_k(&[Vec::new()], &[1.0], 5.0);
        assert!(assignment.choices.is_empty());
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        // Order-sensitive equivalence: the bounded heap must return the
        // exact *prefix* of the full descending sort — same indices in the
        // same order — across NaN, ±∞, and heavy ties.
        #[test]
        fn bounded_heap_is_a_prefix_of_the_full_sort(
            raw in prop::collection::vec((0u8..10, 0.0f64..1.0), 0..150),
            k in 0usize..180,
        ) {
            let scores: Vec<f64> = raw
                .into_iter()
                .map(|(tag, v)| match tag {
                    0 => f64::NAN,
                    1 => f64::INFINITY,
                    2 => f64::NEG_INFINITY,
                    3 => 0.5, // force ties so the index tiebreak is exercised
                    _ => v,
                })
                .collect();
            let expected: Vec<usize> =
                full_sort_order(&scores).into_iter().take(k.min(scores.len())).collect();
            prop_assert_eq!(top_k_indices(&scores, k), expected);
        }

        // The pinned degenerate case: one upgrade at weight exactly 1.0
        // makes the k-way greedy bitwise-identical to the binary selectors,
        // across NaN, ±∞, sentinels, and heavy ties.
        #[test]
        fn degenerate_assign_k_equals_binary_selection(
            raw in prop::collection::vec((0u8..12, -1.0f64..1.0), 0..200),
            alpha in 0.0f64..1.0,
            batch in 1usize..64,
        ) {
            let scores: Vec<f64> = raw
                .into_iter()
                .map(|(tag, v)| match tag {
                    0 => f64::NAN,
                    1 => f64::INFINITY,
                    2 => f64::NEG_INFINITY,
                    3 => 0.5,
                    4 => f64::MAX / 4.0,  // CLS I invalid sentinel
                    5 => f64::MIN / 4.0,  // non-candidate sentinel
                    _ => v,
                })
                .collect();
            let gains = vec![scores.clone()];
            let weights = vec![1.0f64];
            prop_assert_eq!(assign_k_global(&gains, &weights, alpha).mask(), select_global(&scores, alpha));
            let batched: Vec<bool> =
                assign_k_batched(&gains, &weights, alpha, batch).iter().map(Option::is_some).collect();
            prop_assert_eq!(batched, select_batch(&scores, alpha, batch));
        }
    }
}
