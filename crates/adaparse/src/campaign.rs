//! The staged, parallel campaign pipeline.
//!
//! This module is the execution spine of the reproduction. A campaign runs
//! in four explicit stages:
//!
//! 1. [`ExtractStage`] — serialize each document to SPDF, decode it, and run
//!    the cheap default parser over the first page to produce the
//!    [`RoutingInput`] the router consumes (no ground truth involved).
//! 2. [`RouteStage`] — score every document's expected improvement under the
//!    high-quality parser (CLS I → II/III) and apply the Appendix C per-batch
//!    budget optimizer to pick the α-fraction that gets it.
//! 3. [`ParseStage`] — parse each document with its assigned parser from the
//!    shared [`ParserPool`].
//! 4. [`ScoreStage`] — score output against ground truth and account
//!    resource costs.
//!
//! Stages 1 and 3–4 are per-document pure functions and run data-parallel
//! over shards of the input on a `rayon` thread pool ([`PipelineConfig`]
//! controls worker count and shard size); stage 2 is a cheap sequential pass
//! because the paper's batch optimizer ranks documents *within consecutive
//! batches* of the input order. Per-document RNG streams are keyed by
//! `seed ^ doc_id`, and the final reduction folds per-document outcomes in
//! input order, so a campaign's [`CampaignResult`] is **bitwise identical for
//! every worker count and shard size**.
//!
//! The streaming mode here is the *wall-clock* half of the closed loop: its
//! waves overlap on real thread fleets and its controller samples real
//! stage times. Its simulated twin is
//! [`crate::scaling::simloop::run_closed_loop`], which runs the same
//! window-by-window circuit wavelessly inside a persistent
//! [`hpcsim::ExecutorSession`] — dependency edges, warm-pool residency, and
//! slot state carried across decision epochs — for deterministic what-if
//! planning of the campaigns this pipeline executes for real.

use docmodel::document::Document;
use docmodel::spdf::{write_document, SpdfFile};
use parsersim::cost::{CostModel, ResourceCost};
use parsersim::registry::ParserPool;
use parsersim::ParserKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use selector::dataset::AccuracySample;
use serde::{Deserialize, Serialize};
use textmetrics::accepted::{AcceptedTokens, DEFAULT_ACCEPTANCE_THRESHOLD};
use textmetrics::QualityReport;

use rayon::prelude::*;
use rayon::{ThreadPool, ThreadPoolBuilder};

use std::time::Instant;

use crate::cascade::{
    cascade_gains, delegated_pages, CascadeConfig, CascadeFeatures, CascadeSelector, ParserChoice,
    RoutingGranularity,
};
use crate::config::AdaParseConfig;
use crate::engine::{AdaParseEngine, CampaignQuality, CampaignResult, RoutedDocument};
use crate::output::{MemorySink, ParsedRecord, RecordSink};
use crate::scaling::simloop::planned_costs;
use crate::scaling::{
    BudgetLedger, ClassLedger, ControllerConfig, ScalingController, StageSample, WaveCosts, WaveStats,
    WindowedSelector,
};

/// How routing decisions are produced and interleaved with parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutingMode {
    /// Classic two-phase execution: extract and score the *whole* corpus,
    /// run the Appendix C per-batch optimizer over it, then parse. Simple,
    /// but no parse work can start until the last document is scored.
    GlobalBatch,
    /// Streaming execution: documents are routed per window of `window`
    /// documents by a [`crate::scaling::WindowedSelector`] holding a running
    /// budget ledger (fed back with *observed* per-document costs when a
    /// [`CampaignBudget`] with feedback is attached), extraction of window
    /// i+1 overlaps with parsing of window i, and a
    /// [`crate::scaling::ScalingController`] reallocates workers between
    /// the two stages wave by wave. Routing differs from
    /// [`RoutingMode::GlobalBatch`] (windowed vs per-batch selection) but is
    /// still bitwise identical across worker counts.
    Streaming {
        /// Selection window size k (also the wave size). The paper's batch
        /// size (k = 256) is a good default; larger windows shrink the
        /// optimality gap, smaller ones start parse work sooner.
        window: usize,
    },
}

/// Seconds-denominated compute budget of a streaming campaign (the
/// observed-cost feedback knobs).
///
/// Attached to a [`PipelineConfig`], it gives the streaming runner's
/// [`WindowedSelector`] a [`crate::scaling::BudgetLedger`] over the planned
/// per-document parser costs. With `observed_feedback` on, each parsed
/// wave's measured per-document costs are fed back into the ledger
/// ([`crate::scaling::WaveCosts`]): reservations are reconciled against
/// actual spend and the affordable α is re-derived from blended
/// [`crate::scaling::ObservedCosts`] estimates — selection tightens when
/// documents run more expensive than planned and loosens when they run
/// cheaper. Ignored by [`RoutingMode::GlobalBatch`], whose whole-corpus
/// optimizer has no stream to meter.
///
/// The cost trace is derived from the deterministic parser cost models, so
/// campaigns stay bitwise identical across worker counts and shard sizes
/// with the ledger enabled.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignBudget {
    /// Total compute budget in seconds (CPU + GPU) for the whole campaign.
    pub total_seconds: f64,
    /// Feed measured per-document costs back into the ledger (`false`
    /// plans with a-priori costs only, the PR 2 behavior).
    pub observed_feedback: bool,
    /// Pseudo-document weight of the planned-cost prior when feedback is
    /// on; see [`crate::scaling::ObservedCosts`].
    pub prior_weight: f64,
}

impl CampaignBudget {
    /// A budget of `total_seconds` with observed-cost feedback on and the
    /// default prior weight.
    pub fn seconds(total_seconds: f64) -> Self {
        CampaignBudget {
            total_seconds,
            observed_feedback: true,
            prior_weight: crate::scaling::DEFAULT_PRIOR_WEIGHT,
        }
    }
}

/// Parallel-execution knobs of a campaign run.
///
/// `workers` and `shard_size` never affect the campaign's *result* — only
/// its wall-clock time. `mode` selects the routing/overlap strategy; each
/// mode is individually bitwise-deterministic across worker counts, but the
/// two modes route (deliberately) slightly differently. `budget` meters
/// streaming campaigns against a compute budget (and, with feedback on,
/// against *observed* costs); it too is deterministic across worker counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Worker threads for the data-parallel stages (`0` = all available
    /// cores).
    pub workers: usize,
    /// Documents per shard handed to a worker at a time.
    pub shard_size: usize,
    /// Routing/overlap strategy.
    pub mode: RoutingMode,
    /// Optional compute budget for streaming campaigns.
    pub budget: Option<CampaignBudget>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig { workers: 0, shard_size: 32, mode: RoutingMode::GlobalBatch, budget: None }
    }
}

impl PipelineConfig {
    /// A streaming-mode configuration with the given worker count and
    /// selection window.
    pub fn streaming(workers: usize, window: usize) -> Self {
        PipelineConfig { workers, mode: RoutingMode::Streaming { window }, ..Default::default() }
    }

    /// Attach a compute budget (streaming mode only; see
    /// [`CampaignBudget`]).
    pub fn with_budget(mut self, budget: CampaignBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Clamp degenerate values (a zero shard size or window would spin
    /// forever; a negative budget is an empty one).
    pub fn normalized(mut self) -> Self {
        if self.shard_size == 0 {
            self.shard_size = 1;
        }
        if let RoutingMode::Streaming { window: 0 } = self.mode {
            self.mode = RoutingMode::Streaming { window: 1 };
        }
        if let Some(budget) = &mut self.budget {
            budget.total_seconds = budget.total_seconds.max(0.0);
            // prior_weight is sanitized at the point of use
            // (ObservedCosts::with_prior_weight) — one policy, one place.
        }
        self
    }
}

/// Per-document failure counts of a campaign (paper §5 failure analysis).
///
/// The simulated parsers can fail outright (malformed container, zero-page
/// document); previously those errors were silently swallowed into empty
/// strings. They still degrade into empty output — a campaign never aborts —
/// but the counts are surfaced here so failure rates are observable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CampaignFailures {
    /// First-page extractions (stage 1) that returned a parser error.
    pub extraction: usize,
    /// Assigned-parser runs (stage 3) that returned a parser error.
    pub parsing: usize,
}

impl CampaignFailures {
    /// Total number of failed parser invocations.
    pub fn total(&self) -> usize {
        self.extraction + self.parsing
    }
}

/// Everything the router needs for one document (no ground truth involved).
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingInput {
    /// Document identifier.
    pub doc_id: u64,
    /// Cheap first-page extraction feeding CLS I–III.
    pub first_page_text: String,
    /// Metadata feature vector.
    pub metadata_features: Vec<f64>,
    /// Document title.
    pub title: String,
    /// Page count.
    pub pages: usize,
}

impl RoutingInput {
    pub(crate) fn as_sample(&self) -> AccuracySample {
        AccuracySample {
            doc_id: self.doc_id,
            first_page_text: self.first_page_text.clone(),
            title: self.title.clone(),
            metadata_features: self.metadata_features.clone(),
            targets: vec![0.0; ParserKind::ALL.len()],
            pages: self.pages,
        }
    }
}

/// Stage 1 output for one document.
///
/// The decoded SPDF container is *not* retained: each stage re-derives it
/// from the document (the stand-in for re-reading the PDF from storage), so
/// campaign memory stays bounded by the input corpus plus one wave of
/// output.
pub struct Extracted {
    /// Router inputs.
    pub input: RoutingInput,
    /// Whether the first-page extraction failed (empty text was substituted).
    pub failed: bool,
}

/// Stage 1: SPDF round-trip plus cheap first-page extraction.
pub struct ExtractStage<'a> {
    config: &'a AdaParseConfig,
    pool: &'a ParserPool,
}

impl<'a> ExtractStage<'a> {
    /// Create the stage over a shared parser pool.
    pub fn new(config: &'a AdaParseConfig, pool: &'a ParserPool) -> Self {
        ExtractStage { config, pool }
    }

    /// Run the stage for one document.
    pub fn run(&self, doc: &Document, seed: u64) -> Extracted {
        let bytes = write_document(doc);
        let file = SpdfFile::parse(&bytes).expect("generated documents serialize cleanly");
        let parser = self.pool.get(self.config.default_parser);
        let mut rng = StdRng::seed_from_u64(seed ^ doc.id.0 ^ 0xEAF1);
        let (first_page_text, failed) = match parser.parse_file(&file, &mut rng) {
            Ok(out) => (out.text.split('\u{c}').next().unwrap_or("").to_string(), false),
            Err(_) => (String::new(), true),
        };
        Extracted {
            input: RoutingInput {
                doc_id: doc.id.0,
                first_page_text,
                metadata_features: doc.metadata.feature_vector(),
                title: doc.metadata.title.clone(),
                pages: doc.page_count(),
            },
            failed,
        }
    }
}

/// Stage 2: hierarchical routing (CLS I → II/III) plus the per-batch budget
/// optimizer.
pub struct RouteStage<'a> {
    engine: &'a AdaParseEngine,
}

impl<'a> RouteStage<'a> {
    /// Create the stage over a trained (or untrained) engine.
    pub fn new(engine: &'a AdaParseEngine) -> Self {
        RouteStage { engine }
    }

    /// Score one document's expected improvement (parallel-safe).
    pub fn improvement(&self, input: &RoutingInput) -> (f64, bool) {
        self.engine.routing_improvement(input)
    }

    /// Apply the batch budget optimizer over all scored documents. Must see
    /// the whole campaign in input order (the optimizer's batches are
    /// consecutive runs of the input), hence sequential.
    pub fn select(&self, inputs: &[RoutingInput], scores: &[(f64, bool)]) -> Vec<RoutedDocument> {
        self.engine.assemble_routes(inputs, scores)
    }
}

/// Stage 3 output for one document.
pub struct Parsed {
    /// The assigned parser's output (empty text on failure).
    pub output: parsersim::ParseOutput,
    /// Whether the assigned parser failed.
    pub failed: bool,
}

/// Stage 3: parse with the assigned parser from the shared pool.
pub struct ParseStage<'a> {
    config: &'a AdaParseConfig,
    pool: &'a ParserPool,
}

impl<'a> ParseStage<'a> {
    /// Create the stage over a shared parser pool.
    pub fn new(config: &'a AdaParseConfig, pool: &'a ParserPool) -> Self {
        ParseStage { config, pool }
    }

    /// Run the stage for one document. The SPDF container is re-derived
    /// from the document (modelling a re-read from storage) rather than
    /// carried over from extraction, keeping campaign memory wave-bounded.
    pub fn run(&self, doc: &Document, decision: &RoutedDocument, seed: u64) -> Parsed {
        self.run_parser(doc, decision.parser, seed)
    }

    /// Run one named parser over the document (the body of [`run`](Self::run),
    /// shared with the cascade's per-page delegation path). The per-document
    /// RNG stream is keyed by the document id alone, so every parser sees the
    /// same stream regardless of how the document was routed.
    fn run_parser(&self, doc: &Document, kind: ParserKind, seed: u64) -> Parsed {
        let bytes = write_document(doc);
        let file = SpdfFile::parse(&bytes).expect("generated documents serialize cleanly");
        let parser = self.pool.get(kind);
        let mut rng = StdRng::seed_from_u64(seed ^ doc.id.0.wrapping_mul(0x2545F491));
        match parser.parse_file(&file, &mut rng) {
            Ok(output) => Parsed { output, failed: false },
            Err(_) => Parsed {
                output: parsersim::ParseOutput {
                    parser: parser.kind(),
                    text: String::new(),
                    pages_parsed: 0,
                    pages_total: doc.page_count(),
                    cost: ResourceCost::default(),
                },
                failed: true,
            },
        }
    }

    /// Run the stage for one cascade-routed document. With an empty
    /// delegation set this is exactly [`run`](Self::run) with the choice's
    /// parser — the pinned whole-document path. With
    /// [`crate::cascade::RoutingGranularity::ByPage`] delegation the upgrade
    /// parser and the frontier's `base` parser both run, and the output is
    /// stitched page by page: delegated pages come from the upgrade, the
    /// rest from the base. The stitched cost is the upgrade's cost scaled by
    /// the delegated page fraction — the base pass models re-reading the
    /// extraction the document already paid for, so only the delegated
    /// fraction is billed on top (the campaign's extraction cost covers the
    /// rest), which is the whole point of per-page delegation.
    pub fn run_choice(&self, doc: &Document, choice: &ParserChoice, base: ParserKind, seed: u64) -> Parsed {
        if choice.upgraded_pages.is_empty() {
            return self.run_parser(doc, choice.parser, seed);
        }
        let upgraded = self.run_parser(doc, choice.parser, seed);
        if upgraded.failed {
            return upgraded;
        }
        let base_parse = self.run_parser(doc, base, seed);
        let total = doc.page_count();
        let upgrade_pages: Vec<&str> = upgraded.output.text.split('\u{c}').collect();
        let base_pages: Vec<&str> = base_parse.output.text.split('\u{c}').collect();
        let mut stitched: Vec<&str> = Vec::with_capacity(total);
        for page in 0..total {
            let text = if choice.upgraded_pages.contains(&page) {
                upgrade_pages.get(page).copied().unwrap_or("")
            } else {
                base_pages.get(page).copied().unwrap_or("")
            };
            stitched.push(text);
        }
        let pages_parsed = stitched.iter().filter(|text| !text.is_empty()).count();
        let fraction = choice.upgraded_pages.len() as f64 / total.max(1) as f64;
        Parsed {
            output: parsersim::ParseOutput {
                parser: choice.parser,
                text: stitched.join("\u{c}"),
                pages_parsed,
                pages_total: total,
                cost: upgraded.output.cost.scaled(fraction),
            },
            failed: false,
        }
    }

    /// The cheap extraction every document pays regardless of routing.
    fn extraction_cost(&self, pages: usize) -> ResourceCost {
        CostModel::for_parser(self.config.default_parser).document_cost(pages, 0.3)
    }
}

/// Per-document outcome produced by stage 4 and folded into the campaign
/// aggregate.
pub struct DocOutcome {
    /// JSONL-ready record.
    pub record: ParsedRecord,
    /// Quality against ground truth.
    pub report: QualityReport,
    /// Word tokens in the output (feeds accepted-token accounting).
    pub tokens: usize,
    /// Resources consumed by this document (extraction + assigned parser).
    pub cost: ResourceCost,
    /// Whether the document went to the high-quality parser.
    pub high_quality: bool,
    /// Whether the assigned parser failed.
    pub parse_failed: bool,
}

/// Stage 4: score parsed output against ground truth and account costs.
pub struct ScoreStage<'a> {
    config: &'a AdaParseConfig,
}

impl<'a> ScoreStage<'a> {
    /// Create the stage.
    pub fn new(config: &'a AdaParseConfig) -> Self {
        ScoreStage { config }
    }

    /// Run the stage for one document.
    pub fn run(
        &self,
        doc: &Document,
        decision: &RoutedDocument,
        parsed: Parsed,
        extraction_cost: ResourceCost,
    ) -> DocOutcome {
        let output = parsed.output;
        // The cheap extraction is always paid (it feeds the router); the
        // assigned parser is paid on top unless it *is* the extraction.
        let mut cost = extraction_cost;
        if decision.parser != self.config.default_parser {
            cost = cost + output.cost;
        }
        let report = QualityReport::compute(&output.text, &doc.ground_truth(), output.coverage());
        let tokens = output.token_count();
        DocOutcome {
            record: ParsedRecord {
                doc_id: doc.id.0,
                parser: decision.parser,
                text: output.text,
                coverage: report.coverage,
                bleu: report.bleu,
            },
            report,
            tokens,
            cost,
            high_quality: decision.parser == self.config.high_quality_parser,
            parse_failed: parsed.failed,
        }
    }
}

/// Result of a k-parser cascade campaign: the ordinary [`CampaignResult`]
/// plus the cascade-specific routing breakdown.
///
/// For the pinned degenerate configuration ([`CascadeConfig::binary`]) the
/// embedded `result` is **bitwise identical** to the binary streaming
/// campaign at the same window — the `cascade_equivalence` suite freezes
/// this.
#[derive(Debug, Clone, PartialEq)]
pub struct CascadeReport {
    /// The campaign result (quality, costs, failures, records), folded in
    /// input order exactly like every other campaign mode.
    pub result: CampaignResult,
    /// Per-document cascade decisions, in input order.
    pub choices: Vec<ParserChoice>,
    /// Documents per resolved parser, in [`ParserKind::index`] order
    /// (parsers that received no documents are omitted).
    pub parser_docs: Vec<(ParserKind, usize)>,
    /// Planned per-page dollar spend per parser class
    /// ([`parsersim::registry::page_dollars`] units), net of per-page
    /// delegation refunds.
    pub dollars: ClassLedger,
    /// Pages delegated to upgrade parsers under
    /// [`RoutingGranularity::ByPage`] (0 under
    /// [`RoutingGranularity::ByDoc`]).
    pub pages_delegated: usize,
    /// Total pages in the corpus.
    pub pages_total: usize,
}

/// The staged campaign executor.
///
/// Owns a [`ParserPool`] (each parser constructed once, shared across all
/// workers), the rayon thread pool (built once per pipeline), and a
/// [`PipelineConfig`]. Results are independent of both knobs; see the module
/// docs for why.
pub struct CampaignPipeline {
    config: PipelineConfig,
    pool: ParserPool,
    threads: rayon::ThreadPool,
}

impl Default for CampaignPipeline {
    fn default() -> Self {
        CampaignPipeline::new(PipelineConfig::default())
    }
}

impl CampaignPipeline {
    /// Create a pipeline with explicit parallelism knobs.
    pub fn new(config: PipelineConfig) -> Self {
        let config = config.normalized();
        let threads = ThreadPoolBuilder::new()
            .num_threads(config.workers)
            .build()
            .expect("thread pool construction cannot fail");
        CampaignPipeline { config, pool: ParserPool::new(), threads }
    }

    /// The pipeline's parallelism configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Run stages 1–2 only: routing decisions for a document collection, in
    /// input order, without parsing or scoring. Honors the pipeline's
    /// [`RoutingMode`]: streaming mode routes per window with the running
    /// budget ledger at *planned* costs. Without observed-cost feedback
    /// this matches the full streaming campaign exactly; with
    /// [`CampaignBudget::observed_feedback`] enabled the full campaign can
    /// route later windows more tightly (or loosely) than this preview,
    /// because only a campaign that actually parses has costs to observe.
    pub fn route(&self, engine: &AdaParseEngine, documents: &[Document], seed: u64) -> Vec<RoutedDocument> {
        let (inputs, _) = self.extract_all(engine, documents, seed);
        let route = RouteStage::new(engine);
        let scores = self.score_improvements(&route, &inputs);
        match self.config.mode {
            RoutingMode::GlobalBatch => route.select(&inputs, &scores),
            RoutingMode::Streaming { window } => {
                let improvements: Vec<f64> = scores.iter().map(|&(s, _)| s).collect();
                let mask = self.streaming_selector(engine, documents, window).select_all(&improvements);
                engine.assemble_routes_with_mask(&inputs, &scores, &mask)
            }
        }
    }

    /// The streaming [`WindowedSelector`] for a corpus: windowed at the
    /// engine's α, with the pipeline's [`CampaignBudget`] ledger attached
    /// when one is configured. Planned per-document costs come from the
    /// parser cost models at the corpus's mean page count — deterministic,
    /// like everything else that feeds routing.
    fn streaming_selector(
        &self,
        engine: &AdaParseEngine,
        documents: &[Document],
        window: usize,
    ) -> WindowedSelector {
        let config = engine.config();
        let mut selector = WindowedSelector::new(window, config.alpha);
        if let Some(budget) = self.config.budget {
            let total_pages: usize = documents.iter().map(Document::page_count).sum();
            let mean_pages = if documents.is_empty() {
                1
            } else {
                ((total_pages as f64 / documents.len() as f64).round() as usize).max(1)
            };
            let (cheap, expensive) = planned_costs(config, mean_pages);
            let mut ledger = BudgetLedger::new(budget.total_seconds, documents.len(), cheap, expensive);
            if budget.observed_feedback {
                ledger = ledger.with_observed_costs(budget.prior_weight);
            }
            selector = selector.with_budget(ledger);
        }
        selector
    }

    /// Run the full campaign, buffering records in memory (the classic
    /// [`CampaignResult::records`] shape).
    pub fn run(&self, engine: &AdaParseEngine, documents: &[Document], seed: u64) -> CampaignResult {
        let mut sink = MemorySink::new();
        let mut result =
            self.run_with_sink(engine, documents, seed, &mut sink).expect("memory sink cannot fail");
        result.records = sink.into_records();
        result
    }

    /// Run the full campaign, streaming each [`ParsedRecord`] to `sink` in
    /// input order instead of buffering (`CampaignResult::records` stays
    /// empty). Stages 3–4 run wave by wave — a wave is `workers × shard_size`
    /// documents — and each wave is folded and sunk before the next starts.
    /// Decoded SPDF containers are per-stage temporaries and routing inputs
    /// are dropped once decisions exist, so resident memory beyond the
    /// caller's own corpus is one wave of parsed output plus the (small)
    /// per-document routing decisions.
    pub fn run_with_sink(
        &self,
        engine: &AdaParseEngine,
        documents: &[Document],
        seed: u64,
        sink: &mut dyn RecordSink,
    ) -> std::io::Result<CampaignResult> {
        if let RoutingMode::Streaming { window } = self.config.mode {
            return self.run_streaming_with_sink(engine, documents, seed, window, sink);
        }
        let config = engine.config();

        // Stages 1–2: extract in parallel, route sequentially.
        let (inputs, extraction_failures) = self.extract_all(engine, documents, seed);
        let route = RouteStage::new(engine);
        let scores = self.score_improvements(&route, &inputs);
        let routed = route.select(&inputs, &scores);
        drop(scores);
        drop(inputs);

        // Stages 3–4: parse and score wave by wave. Within a wave, shards run
        // in parallel and come back in input order; the fold then consumes
        // the wave before the next one is produced, bounding resident output
        // text to one wave.
        let parse = ParseStage::new(config, &self.pool);
        let score = ScoreStage::new(config);
        let wave_size = self.config.shard_size * self.threads.current_num_threads().max(1);

        let mut aggregates = Aggregates::default();
        for (wave_index, wave) in documents.chunks(wave_size).enumerate() {
            let offset = wave_index * wave_size;
            let jobs: Vec<(usize, &Document)> =
                wave.iter().enumerate().map(|(k, doc)| (offset + k, doc)).collect();
            let outcomes: Vec<Vec<DocOutcome>> = self.threads.install(|| {
                jobs.par_chunks(self.config.shard_size)
                    .map(|shard| {
                        shard
                            .iter()
                            .map(|&(i, doc)| {
                                let parsed = parse.run(doc, &routed[i], seed);
                                let extraction_cost = parse.extraction_cost(doc.page_count());
                                score.run(doc, &routed[i], parsed, extraction_cost)
                            })
                            .collect()
                    })
                    .collect()
            });

            // Fold strictly in input order so float accumulation (and the
            // result as a whole) is identical for every worker count, shard
            // size, and wave boundary.
            for outcome in outcomes.into_iter().flatten() {
                aggregates.fold(outcome, sink)?;
            }
        }

        Ok(aggregates.into_result(documents.len(), routed, extraction_failures))
    }

    /// Run stages 1–2 of a k-parser cascade campaign: per-document (and,
    /// under [`RoutingGranularity::ByPage`], per-page) routing decisions
    /// over the cascade's frontier, without parsing or scoring.
    ///
    /// Windows, α, and granularity come from the [`CascadeConfig`] — the
    /// pipeline's own [`RoutingMode`] and [`CampaignBudget`] are not
    /// consulted (the cascade selector meters planned dollars per parser
    /// class instead of seconds). Decisions are bitwise identical for every
    /// worker count and shard size, like every other routing path.
    pub fn route_cascade(
        &self,
        engine: &AdaParseEngine,
        documents: &[Document],
        cascade: &CascadeConfig,
        seed: u64,
    ) -> Vec<ParserChoice> {
        let mut selector = CascadeSelector::new(cascade);
        let workers = self.threads.current_num_threads().max(1);
        let mut choices_all = Vec::with_capacity(documents.len());
        for wave_docs in documents.chunks(selector.window()) {
            let wave = self.extract_and_score_wave(engine, wave_docs, seed, workers);
            let (_, choice_wave) =
                self.resolve_cascade_wave(cascade, &mut selector, wave_docs, &wave.inputs, &wave.scores);
            choices_all.extend(choice_wave);
        }
        choices_all
    }

    /// Run a full k-parser cascade campaign: windowed selection over the
    /// cascade's frontier, whole-document or per-page delegation, parse and
    /// score folded in input order.
    ///
    /// The degenerate [`CascadeConfig::binary`] configuration reproduces the
    /// binary [`RoutingMode::Streaming`] campaign at the same window
    /// **bitwise** — same masks, same records, same aggregate floats — which
    /// the `cascade_equivalence` suite pins. Wider frontiers route over the
    /// transformed gains of [`cascade_gains`]; per-page delegation sends only
    /// a document's above-mean-difficulty pages to the upgrade parser and
    /// bills only that fraction of the upgrade's cost. Like every campaign
    /// mode, the report is bitwise identical across worker counts and shard
    /// sizes.
    pub fn run_cascade(
        &self,
        engine: &AdaParseEngine,
        documents: &[Document],
        cascade: &CascadeConfig,
        seed: u64,
    ) -> CascadeReport {
        let config = engine.config();
        let parse = ParseStage::new(config, &self.pool);
        let score = ScoreStage::new(config);
        let mut selector = CascadeSelector::new(cascade);
        let workers = self.threads.current_num_threads().max(1);

        let mut sink = MemorySink::new();
        let mut aggregates = Aggregates::default();
        let mut routed_all: Vec<RoutedDocument> = Vec::with_capacity(documents.len());
        let mut choices_all: Vec<ParserChoice> = Vec::with_capacity(documents.len());
        let mut extraction_failures = 0usize;

        for wave_docs in documents.chunks(selector.window()) {
            let wave = self.extract_and_score_wave(engine, wave_docs, seed, workers);
            extraction_failures += wave.failures;
            let (routed_wave, choice_wave) =
                self.resolve_cascade_wave(cascade, &mut selector, wave_docs, &wave.inputs, &wave.scores);

            // Stages 3–4, sharded like every other mode, folded in input
            // order. Whole-document choices take the pinned ParseStage::run
            // path; delegated ones stitch per page.
            let base = cascade.frontier.base();
            let jobs: Vec<(&Document, &RoutedDocument, &ParserChoice)> = wave_docs
                .iter()
                .zip(&routed_wave)
                .zip(&choice_wave)
                .map(|((doc, decision), choice)| (doc, decision, choice))
                .collect();
            let shards: Vec<Vec<DocOutcome>> = self.threads.install(|| {
                jobs.par_chunks(self.config.shard_size)
                    .map(|shard| {
                        shard
                            .iter()
                            .map(|&(doc, decision, choice)| {
                                let parsed = if choice.upgraded_pages.is_empty() {
                                    parse.run(doc, decision, seed)
                                } else {
                                    parse.run_choice(doc, choice, base, seed)
                                };
                                let extraction_cost = parse.extraction_cost(doc.page_count());
                                score.run(doc, decision, parsed, extraction_cost)
                            })
                            .collect()
                    })
                    .collect()
            });
            for outcome in shards.into_iter().flatten() {
                aggregates.fold(outcome, &mut sink).expect("memory sink cannot fail");
            }
            routed_all.extend(routed_wave);
            choices_all.extend(choice_wave);
        }

        let mut result = aggregates.into_result(documents.len(), routed_all, extraction_failures);
        result.records = sink.into_records();
        let parser_docs = ParserKind::ALL
            .iter()
            .map(|&kind| (kind, choices_all.iter().filter(|c| c.parser == kind).count()))
            .filter(|&(_, count)| count > 0)
            .collect();
        CascadeReport {
            result,
            parser_docs,
            dollars: selector.dollars().clone(),
            pages_delegated: choices_all.iter().map(|c| c.upgraded_pages.len()).sum(),
            pages_total: documents.iter().map(Document::page_count).sum(),
            choices: choices_all,
        }
    }

    /// Stage 2 of a cascade window: transform scores into per-upgrade gains,
    /// select through the running [`CascadeSelector`], and resolve each
    /// grant into a [`ParserChoice`] (with its delegation set under
    /// [`RoutingGranularity::ByPage`]) plus the [`RoutedDocument`] the
    /// shared parse/score stages consume. For a pair frontier the resolved
    /// decisions match [`AdaParseEngine::assemble_routes_with_mask`] over
    /// the selector's mask bitwise.
    fn resolve_cascade_wave(
        &self,
        cascade: &CascadeConfig,
        selector: &mut CascadeSelector,
        wave_docs: &[Document],
        inputs: &[RoutingInput],
        scores: &[(f64, bool)],
    ) -> (Vec<RoutedDocument>, Vec<ParserChoice>) {
        let features: Vec<CascadeFeatures> = wave_docs.iter().map(CascadeFeatures::of).collect();
        let gains = cascade_gains(&cascade.frontier, scores, &features);
        let granted = selector.select_window(&gains);
        let mut routed_wave = Vec::with_capacity(wave_docs.len());
        let mut choice_wave = Vec::with_capacity(wave_docs.len());
        for (i, doc) in wave_docs.iter().enumerate() {
            let (improvement, invalid) = scores[i];
            let gain = granted[i].map_or(improvement, |j| gains[j][i]);
            let mut choice =
                ParserChoice::resolve(&cascade.frontier, inputs[i].doc_id, granted[i], gain, invalid);
            if cascade.granularity == RoutingGranularity::ByPage && choice.is_upgraded() {
                let pages = delegated_pages(doc);
                if pages.len() < doc.page_count() {
                    let fraction = pages.len() as f64 / doc.page_count().max(1) as f64;
                    selector.refund_delegated(choice.upgrade.expect("upgraded choice"), fraction);
                    choice.upgraded_pages = pages;
                }
            }
            routed_wave.push(RoutedDocument {
                doc_id: choice.doc_id,
                parser: choice.parser,
                predicted_improvement: if improvement > f64::MIN / 8.0 { improvement } else { 0.0 },
                cls1_invalid: invalid,
            });
            choice_wave.push(choice);
        }
        (routed_wave, choice_wave)
    }

    /// The streaming campaign runner behind [`RoutingMode::Streaming`].
    ///
    /// Documents flow in windows of k: window i is extracted and scored,
    /// routed by the [`WindowedSelector`] against the running ledger, then
    /// parsed — while window i+1 is *already extracting* on a separate
    /// worker fleet. The [`ScalingController`] observes each wave's stage
    /// times and moves workers between the extraction and parse fleets
    /// (under the pipeline's total worker cap) for the next wave.
    ///
    /// Determinism: window boundaries are fixed by k, per-document RNG is
    /// keyed by `seed ^ doc_id`, selection masks are pure functions of the
    /// scores, and outcomes fold in input order — so the result is bitwise
    /// identical for every worker count, shard size, and controller
    /// trajectory (allocations only move wall-clock time).
    fn run_streaming_with_sink(
        &self,
        engine: &AdaParseEngine,
        documents: &[Document],
        seed: u64,
        window: usize,
        sink: &mut dyn RecordSink,
    ) -> std::io::Result<CampaignResult> {
        let config = engine.config();
        let window = window.max(1);
        let parse = ParseStage::new(config, &self.pool);
        let score = ScoreStage::new(config);

        let total_workers = self.threads.current_num_threads().max(1);
        // Overlapping the fleets needs at least one thread each; with a
        // single configured worker the stages run back to back instead, so
        // the worker cap genuinely holds.
        let overlap = total_workers >= 2;
        let mut controller = ScalingController::new(ControllerConfig::for_workers(total_workers));
        let mut selector = self.streaming_selector(engine, documents, window);
        let feedback = self.config.budget.is_some_and(|budget| budget.observed_feedback);

        let mut aggregates = Aggregates::default();
        let mut routed_all: Vec<RoutedDocument> = Vec::with_capacity(documents.len());
        let mut extraction_failures = 0usize;

        let windows: Vec<&[Document]> = documents.chunks(window).collect();
        let mut allocation = controller.allocation();
        let mut pending = windows
            .first()
            .map(|docs| self.extract_and_score_wave(engine, docs, seed, allocation.extract_workers));

        for (index, wave_docs) in windows.iter().enumerate() {
            let wave = pending.take().expect("the previous iteration staged this wave");
            extraction_failures += wave.failures;

            // Stage 2, sequential and cheap: one window through the selector.
            let improvements: Vec<f64> = wave.scores.iter().map(|&(s, _)| s).collect();
            let mask = selector.select_window(&improvements);
            let routed_wave = engine.assemble_routes_with_mask(&wave.inputs, &wave.scores, &mask);

            // Stages 3–4 for this window overlap with stages 1–2a of the
            // next: extraction runs on its own fleet of scoped threads while
            // parsing uses the parse fleet. (Overlap is purely a wall-clock
            // optimization — the sequential fallback below produces the
            // identical result.)
            let next_docs = windows.get(index + 1).copied();
            let extract_workers = allocation.extract_workers;
            let (outcomes, parse_seconds, next_wave) = if overlap {
                std::thread::scope(|scope| {
                    let prefetch = next_docs.map(|docs| {
                        scope.spawn(move || self.extract_and_score_wave(engine, docs, seed, extract_workers))
                    });
                    let started = Instant::now();
                    let outcomes = self.parse_wave(
                        &parse,
                        &score,
                        wave_docs,
                        &routed_wave,
                        seed,
                        allocation.parse_workers,
                    );
                    let parse_seconds = started.elapsed().as_secs_f64();
                    let next_wave = prefetch.map(|handle| handle.join().expect("extraction thread panicked"));
                    (outcomes, parse_seconds, next_wave)
                })
            } else {
                let started = Instant::now();
                let outcomes =
                    self.parse_wave(&parse, &score, wave_docs, &routed_wave, seed, allocation.parse_workers);
                let parse_seconds = started.elapsed().as_secs_f64();
                let next_wave =
                    next_docs.map(|docs| self.extract_and_score_wave(engine, docs, seed, extract_workers));
                (outcomes, parse_seconds, next_wave)
            };

            // Close the cost loop: the wave's measured per-document costs
            // (from the deterministic cost models, folded in input order)
            // reconcile the ledger before the next window is selected.
            let mut wave_costs = WaveCosts::default();
            for outcome in outcomes {
                if feedback {
                    // A failed high-quality parse burned only its extraction
                    // seconds — exactly what a default-routed document pays —
                    // so it is recorded as a *cheap* sample at its actual
                    // cost: the spend stays exact (those seconds were
                    // genuinely burned), while a zero-cost *expensive* sample
                    // would teach the ledger the failing parser is cheap and
                    // loosen α toward it.
                    let high_quality = outcome.high_quality && !outcome.parse_failed;
                    wave_costs.record(high_quality, outcome.cost.cpu_seconds + outcome.cost.gpu_seconds);
                }
                aggregates.fold(outcome, sink)?;
            }
            if feedback {
                selector.ingest_observed(&wave_costs);
            }

            allocation = controller.observe(&WaveStats {
                wave_index: index,
                extract: StageSample { busy_seconds: wave.seconds, items: routed_wave.len() },
                parse: StageSample { busy_seconds: parse_seconds, items: wave_docs.len() },
                queue_depth: documents.len().saturating_sub((index + 1) * window),
            });
            routed_all.extend(routed_wave);
            pending = next_wave;
        }

        Ok(aggregates.into_result(documents.len(), routed_all, extraction_failures))
    }

    /// Stages 1–2a for one streaming window: extract and score every
    /// document on a fleet of `workers` threads. Pure per-document work;
    /// results come back in input order.
    fn extract_and_score_wave(
        &self,
        engine: &AdaParseEngine,
        docs: &[Document],
        seed: u64,
        workers: usize,
    ) -> ExtractedWave {
        let started = Instant::now();
        let stage = ExtractStage::new(engine.config(), &self.pool);
        let route = RouteStage::new(engine);
        let pool = wave_pool(workers);
        let shards: Vec<Vec<(Extracted, (f64, bool))>> = pool.install(|| {
            docs.par_chunks(self.config.shard_size)
                .map(|shard| {
                    shard
                        .iter()
                        .map(|doc| {
                            let extracted = stage.run(doc, seed);
                            let improvement = route.improvement(&extracted.input);
                            (extracted, improvement)
                        })
                        .collect()
                })
                .collect()
        });
        let mut inputs = Vec::with_capacity(docs.len());
        let mut scores = Vec::with_capacity(docs.len());
        let mut failures = 0usize;
        for (extracted, improvement) in shards.into_iter().flatten() {
            failures += extracted.failed as usize;
            inputs.push(extracted.input);
            scores.push(improvement);
        }
        ExtractedWave { inputs, scores, failures, seconds: started.elapsed().as_secs_f64() }
    }

    /// Stages 3–4 for one streaming window on a fleet of `workers` threads.
    fn parse_wave(
        &self,
        parse: &ParseStage<'_>,
        score: &ScoreStage<'_>,
        docs: &[Document],
        routed: &[RoutedDocument],
        seed: u64,
        workers: usize,
    ) -> Vec<DocOutcome> {
        let jobs: Vec<(&Document, &RoutedDocument)> = docs.iter().zip(routed).collect();
        let pool = wave_pool(workers);
        let shards: Vec<Vec<DocOutcome>> = pool.install(|| {
            jobs.par_chunks(self.config.shard_size)
                .map(|shard| {
                    shard
                        .iter()
                        .map(|&(doc, decision)| {
                            let parsed = parse.run(doc, decision, seed);
                            let extraction_cost = parse.extraction_cost(doc.page_count());
                            score.run(doc, decision, parsed, extraction_cost)
                        })
                        .collect()
                })
                .collect()
        });
        shards.into_iter().flatten().collect()
    }

    /// Stage 1 over the whole collection, sharded across the pool. Returns
    /// the routing inputs plus the extraction failure count.
    fn extract_all(
        &self,
        engine: &AdaParseEngine,
        documents: &[Document],
        seed: u64,
    ) -> (Vec<RoutingInput>, usize) {
        let stage = ExtractStage::new(engine.config(), &self.pool);
        let shards: Vec<Vec<Extracted>> = self.threads.install(|| {
            documents
                .par_chunks(self.config.shard_size)
                .map(|shard| shard.iter().map(|doc| stage.run(doc, seed)).collect())
                .collect()
        });
        let mut inputs = Vec::with_capacity(documents.len());
        let mut failures = 0usize;
        for extracted in shards.into_iter().flatten() {
            inputs.push(extracted.input);
            failures += extracted.failed as usize;
        }
        (inputs, failures)
    }

    /// CLS inference for stage 2, sharded across the pool (pure per-document
    /// work; the sequential budget selection happens afterwards).
    fn score_improvements(&self, route: &RouteStage<'_>, inputs: &[RoutingInput]) -> Vec<(f64, bool)> {
        let shards: Vec<Vec<(f64, bool)>> = self.threads.install(|| {
            inputs
                .par_chunks(self.config.shard_size)
                .map(|shard| shard.iter().map(|input| route.improvement(input)).collect())
                .collect()
        });
        shards.into_iter().flatten().collect()
    }
}

/// A per-stage worker fleet for one streaming wave. Pools here are logical
/// widths (the vendored `rayon` spawns scoped threads per parallel call), so
/// building one per wave is free; with real `rayon` the two fleets would be
/// kept alive across waves and resized only when the controller moves
/// workers.
fn wave_pool(workers: usize) -> ThreadPool {
    ThreadPoolBuilder::new()
        .num_threads(workers.max(1))
        .build()
        .expect("thread pool construction cannot fail")
}

/// Stage 1–2a output for one streaming window.
struct ExtractedWave {
    /// Router inputs, in input order.
    inputs: Vec<RoutingInput>,
    /// CLS improvement scores, aligned with `inputs`.
    scores: Vec<(f64, bool)>,
    /// Extraction failures in the window.
    failures: usize,
    /// Wall-clock seconds the window's extraction + scoring took (feeds the
    /// scaling controller; never the result).
    seconds: f64,
}

/// The campaign's order-preserving aggregate fold. Folding is strictly in
/// input order in every mode, so float accumulation — and the
/// [`CampaignResult`] as a whole — is identical for every worker count,
/// shard size, and wave boundary.
#[derive(Default)]
struct Aggregates {
    total_cost: ResourceCost,
    accepted: AcceptedTokens,
    coverage: f64,
    bleu: f64,
    rouge: f64,
    car: f64,
    high_quality: usize,
    parse_failures: usize,
}

impl Aggregates {
    /// Fold one document outcome and hand its record to the sink.
    fn fold(&mut self, outcome: DocOutcome, sink: &mut dyn RecordSink) -> std::io::Result<()> {
        self.coverage += outcome.report.coverage;
        self.bleu += outcome.report.bleu;
        self.rouge += outcome.report.rouge;
        self.car += outcome.report.car;
        self.accepted.record(outcome.tokens, outcome.report.bleu, DEFAULT_ACCEPTANCE_THRESHOLD);
        self.total_cost = self.total_cost + outcome.cost;
        self.high_quality += outcome.high_quality as usize;
        self.parse_failures += outcome.parse_failed as usize;
        sink.accept(outcome.record)
    }

    /// Close the fold into a [`CampaignResult`].
    fn into_result(
        self,
        documents: usize,
        routed: Vec<RoutedDocument>,
        extraction_failures: usize,
    ) -> CampaignResult {
        let n = documents.max(1) as f64;
        CampaignResult {
            quality: CampaignQuality {
                coverage: self.coverage / n,
                bleu: self.bleu / n,
                rouge: self.rouge / n,
                car: self.car / n,
                accepted_tokens: self.accepted.rate(),
                documents,
            },
            routed,
            high_quality_fraction: self.high_quality as f64 / n,
            total_cost: self.total_cost,
            records: Vec::new(),
            failures: CampaignFailures { extraction: extraction_failures, parsing: self.parse_failures },
        }
    }
}
