//! The staged, parallel campaign pipeline.
//!
//! This module is the execution spine of the reproduction. A campaign runs
//! in four explicit stages:
//!
//! 1. [`ExtractStage`] — serialize each document to SPDF, decode it, and run
//!    the cheap default parser over the first page to produce the
//!    [`RoutingInput`] the router consumes (no ground truth involved).
//! 2. [`RouteStage`] — score every document's expected improvement under the
//!    high-quality parser (CLS I → II/III) and apply the Appendix C per-batch
//!    budget optimizer to pick the α-fraction that gets it.
//! 3. [`ParseStage`] — parse each document with its assigned parser from the
//!    shared [`ParserPool`].
//! 4. [`ScoreStage`] — score output against ground truth and account
//!    resource costs.
//!
//! Stages 1 and 3–4 are per-document pure functions and run data-parallel
//! over shards of the input on a `rayon` thread pool ([`PipelineConfig`]
//! controls worker count and shard size); stage 2 is a cheap sequential pass
//! because the paper's batch optimizer ranks documents *within consecutive
//! batches* of the input order. Per-document RNG streams are keyed by
//! `seed ^ doc_id`, and the final reduction folds per-document outcomes in
//! input order, so a campaign's [`CampaignResult`] is **bitwise identical for
//! every worker count and shard size**.

use docmodel::document::Document;
use docmodel::spdf::{write_document, SpdfFile};
use parsersim::cost::{CostModel, ResourceCost};
use parsersim::registry::ParserPool;
use parsersim::ParserKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use selector::dataset::AccuracySample;
use serde::{Deserialize, Serialize};
use textmetrics::accepted::{AcceptedTokens, DEFAULT_ACCEPTANCE_THRESHOLD};
use textmetrics::QualityReport;

use rayon::prelude::*;
use rayon::ThreadPoolBuilder;

use crate::config::AdaParseConfig;
use crate::engine::{AdaParseEngine, CampaignQuality, CampaignResult, RoutedDocument};
use crate::output::{MemorySink, ParsedRecord, RecordSink};

/// Parallel-execution knobs of a campaign run.
///
/// Neither knob affects the campaign's *result* — only its wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Worker threads for the data-parallel stages (`0` = all available
    /// cores).
    pub workers: usize,
    /// Documents per shard handed to a worker at a time.
    pub shard_size: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig { workers: 0, shard_size: 32 }
    }
}

impl PipelineConfig {
    /// Clamp degenerate values (a zero shard size would spin forever).
    pub fn normalized(mut self) -> Self {
        if self.shard_size == 0 {
            self.shard_size = 1;
        }
        self
    }
}

/// Per-document failure counts of a campaign (paper §5 failure analysis).
///
/// The simulated parsers can fail outright (malformed container, zero-page
/// document); previously those errors were silently swallowed into empty
/// strings. They still degrade into empty output — a campaign never aborts —
/// but the counts are surfaced here so failure rates are observable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CampaignFailures {
    /// First-page extractions (stage 1) that returned a parser error.
    pub extraction: usize,
    /// Assigned-parser runs (stage 3) that returned a parser error.
    pub parsing: usize,
}

impl CampaignFailures {
    /// Total number of failed parser invocations.
    pub fn total(&self) -> usize {
        self.extraction + self.parsing
    }
}

/// Everything the router needs for one document (no ground truth involved).
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingInput {
    /// Document identifier.
    pub doc_id: u64,
    /// Cheap first-page extraction feeding CLS I–III.
    pub first_page_text: String,
    /// Metadata feature vector.
    pub metadata_features: Vec<f64>,
    /// Document title.
    pub title: String,
    /// Page count.
    pub pages: usize,
}

impl RoutingInput {
    pub(crate) fn as_sample(&self) -> AccuracySample {
        AccuracySample {
            doc_id: self.doc_id,
            first_page_text: self.first_page_text.clone(),
            title: self.title.clone(),
            metadata_features: self.metadata_features.clone(),
            targets: vec![0.0; ParserKind::ALL.len()],
            pages: self.pages,
        }
    }
}

/// Stage 1 output for one document.
///
/// The decoded SPDF container is *not* retained: each stage re-derives it
/// from the document (the stand-in for re-reading the PDF from storage), so
/// campaign memory stays bounded by the input corpus plus one wave of
/// output.
pub struct Extracted {
    /// Router inputs.
    pub input: RoutingInput,
    /// Whether the first-page extraction failed (empty text was substituted).
    pub failed: bool,
}

/// Stage 1: SPDF round-trip plus cheap first-page extraction.
pub struct ExtractStage<'a> {
    config: &'a AdaParseConfig,
    pool: &'a ParserPool,
}

impl<'a> ExtractStage<'a> {
    /// Create the stage over a shared parser pool.
    pub fn new(config: &'a AdaParseConfig, pool: &'a ParserPool) -> Self {
        ExtractStage { config, pool }
    }

    /// Run the stage for one document.
    pub fn run(&self, doc: &Document, seed: u64) -> Extracted {
        let bytes = write_document(doc);
        let file = SpdfFile::parse(&bytes).expect("generated documents serialize cleanly");
        let parser = self.pool.get(self.config.default_parser);
        let mut rng = StdRng::seed_from_u64(seed ^ doc.id.0 ^ 0xEAF1);
        let (first_page_text, failed) = match parser.parse_file(&file, &mut rng) {
            Ok(out) => (out.text.split('\u{c}').next().unwrap_or("").to_string(), false),
            Err(_) => (String::new(), true),
        };
        Extracted {
            input: RoutingInput {
                doc_id: doc.id.0,
                first_page_text,
                metadata_features: doc.metadata.feature_vector(),
                title: doc.metadata.title.clone(),
                pages: doc.page_count(),
            },
            failed,
        }
    }
}

/// Stage 2: hierarchical routing (CLS I → II/III) plus the per-batch budget
/// optimizer.
pub struct RouteStage<'a> {
    engine: &'a AdaParseEngine,
}

impl<'a> RouteStage<'a> {
    /// Create the stage over a trained (or untrained) engine.
    pub fn new(engine: &'a AdaParseEngine) -> Self {
        RouteStage { engine }
    }

    /// Score one document's expected improvement (parallel-safe).
    pub fn improvement(&self, input: &RoutingInput) -> (f64, bool) {
        self.engine.routing_improvement(input)
    }

    /// Apply the batch budget optimizer over all scored documents. Must see
    /// the whole campaign in input order (the optimizer's batches are
    /// consecutive runs of the input), hence sequential.
    pub fn select(&self, inputs: &[RoutingInput], scores: &[(f64, bool)]) -> Vec<RoutedDocument> {
        self.engine.assemble_routes(inputs, scores)
    }
}

/// Stage 3 output for one document.
pub struct Parsed {
    /// The assigned parser's output (empty text on failure).
    pub output: parsersim::ParseOutput,
    /// Whether the assigned parser failed.
    pub failed: bool,
}

/// Stage 3: parse with the assigned parser from the shared pool.
pub struct ParseStage<'a> {
    config: &'a AdaParseConfig,
    pool: &'a ParserPool,
}

impl<'a> ParseStage<'a> {
    /// Create the stage over a shared parser pool.
    pub fn new(config: &'a AdaParseConfig, pool: &'a ParserPool) -> Self {
        ParseStage { config, pool }
    }

    /// Run the stage for one document. The SPDF container is re-derived
    /// from the document (modelling a re-read from storage) rather than
    /// carried over from extraction, keeping campaign memory wave-bounded.
    pub fn run(&self, doc: &Document, decision: &RoutedDocument, seed: u64) -> Parsed {
        let bytes = write_document(doc);
        let file = SpdfFile::parse(&bytes).expect("generated documents serialize cleanly");
        let parser = self.pool.get(decision.parser);
        let mut rng = StdRng::seed_from_u64(seed ^ doc.id.0.wrapping_mul(0x2545F491));
        match parser.parse_file(&file, &mut rng) {
            Ok(output) => Parsed { output, failed: false },
            Err(_) => Parsed {
                output: parsersim::ParseOutput {
                    parser: parser.kind(),
                    text: String::new(),
                    pages_parsed: 0,
                    pages_total: doc.page_count(),
                    cost: ResourceCost::default(),
                },
                failed: true,
            },
        }
    }

    /// The cheap extraction every document pays regardless of routing.
    fn extraction_cost(&self, pages: usize) -> ResourceCost {
        CostModel::for_parser(self.config.default_parser).document_cost(pages, 0.3)
    }
}

/// Per-document outcome produced by stage 4 and folded into the campaign
/// aggregate.
pub struct DocOutcome {
    /// JSONL-ready record.
    pub record: ParsedRecord,
    /// Quality against ground truth.
    pub report: QualityReport,
    /// Word tokens in the output (feeds accepted-token accounting).
    pub tokens: usize,
    /// Resources consumed by this document (extraction + assigned parser).
    pub cost: ResourceCost,
    /// Whether the document went to the high-quality parser.
    pub high_quality: bool,
    /// Whether the assigned parser failed.
    pub parse_failed: bool,
}

/// Stage 4: score parsed output against ground truth and account costs.
pub struct ScoreStage<'a> {
    config: &'a AdaParseConfig,
}

impl<'a> ScoreStage<'a> {
    /// Create the stage.
    pub fn new(config: &'a AdaParseConfig) -> Self {
        ScoreStage { config }
    }

    /// Run the stage for one document.
    pub fn run(
        &self,
        doc: &Document,
        decision: &RoutedDocument,
        parsed: Parsed,
        extraction_cost: ResourceCost,
    ) -> DocOutcome {
        let output = parsed.output;
        // The cheap extraction is always paid (it feeds the router); the
        // assigned parser is paid on top unless it *is* the extraction.
        let mut cost = extraction_cost;
        if decision.parser != self.config.default_parser {
            cost = cost + output.cost;
        }
        let report = QualityReport::compute(&output.text, &doc.ground_truth(), output.coverage());
        let tokens = output.token_count();
        DocOutcome {
            record: ParsedRecord {
                doc_id: doc.id.0,
                parser: decision.parser,
                text: output.text,
                coverage: report.coverage,
                bleu: report.bleu,
            },
            report,
            tokens,
            cost,
            high_quality: decision.parser == self.config.high_quality_parser,
            parse_failed: parsed.failed,
        }
    }
}

/// The staged campaign executor.
///
/// Owns a [`ParserPool`] (each parser constructed once, shared across all
/// workers), the rayon thread pool (built once per pipeline), and a
/// [`PipelineConfig`]. Results are independent of both knobs; see the module
/// docs for why.
pub struct CampaignPipeline {
    config: PipelineConfig,
    pool: ParserPool,
    threads: rayon::ThreadPool,
}

impl Default for CampaignPipeline {
    fn default() -> Self {
        CampaignPipeline::new(PipelineConfig::default())
    }
}

impl CampaignPipeline {
    /// Create a pipeline with explicit parallelism knobs.
    pub fn new(config: PipelineConfig) -> Self {
        let config = config.normalized();
        let threads = ThreadPoolBuilder::new()
            .num_threads(config.workers)
            .build()
            .expect("thread pool construction cannot fail");
        CampaignPipeline { config, pool: ParserPool::new(), threads }
    }

    /// The pipeline's parallelism configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Run stages 1–2 only: routing decisions for a document collection, in
    /// input order, without parsing or scoring.
    pub fn route(&self, engine: &AdaParseEngine, documents: &[Document], seed: u64) -> Vec<RoutedDocument> {
        let (inputs, _) = self.extract_all(engine, documents, seed);
        let route = RouteStage::new(engine);
        let scores = self.score_improvements(&route, &inputs);
        route.select(&inputs, &scores)
    }

    /// Run the full campaign, buffering records in memory (the classic
    /// [`CampaignResult::records`] shape).
    pub fn run(&self, engine: &AdaParseEngine, documents: &[Document], seed: u64) -> CampaignResult {
        let mut sink = MemorySink::new();
        let mut result =
            self.run_with_sink(engine, documents, seed, &mut sink).expect("memory sink cannot fail");
        result.records = sink.into_records();
        result
    }

    /// Run the full campaign, streaming each [`ParsedRecord`] to `sink` in
    /// input order instead of buffering (`CampaignResult::records` stays
    /// empty). Stages 3–4 run wave by wave — a wave is `workers × shard_size`
    /// documents — and each wave is folded and sunk before the next starts.
    /// Decoded SPDF containers are per-stage temporaries and routing inputs
    /// are dropped once decisions exist, so resident memory beyond the
    /// caller's own corpus is one wave of parsed output plus the (small)
    /// per-document routing decisions.
    pub fn run_with_sink(
        &self,
        engine: &AdaParseEngine,
        documents: &[Document],
        seed: u64,
        sink: &mut dyn RecordSink,
    ) -> std::io::Result<CampaignResult> {
        let config = engine.config();

        // Stages 1–2: extract in parallel, route sequentially.
        let (inputs, extraction_failures) = self.extract_all(engine, documents, seed);
        let route = RouteStage::new(engine);
        let scores = self.score_improvements(&route, &inputs);
        let routed = route.select(&inputs, &scores);
        drop(scores);
        drop(inputs);

        // Stages 3–4: parse and score wave by wave. Within a wave, shards run
        // in parallel and come back in input order; the fold then consumes
        // the wave before the next one is produced, bounding resident output
        // text to one wave.
        let parse = ParseStage::new(config, &self.pool);
        let score = ScoreStage::new(config);
        let wave_size = self.config.shard_size * self.threads.current_num_threads().max(1);

        let mut total_cost = ResourceCost::default();
        let mut accepted = AcceptedTokens::new();
        let mut coverage = 0.0;
        let mut bleu = 0.0;
        let mut rouge = 0.0;
        let mut car = 0.0;
        let mut high_quality = 0usize;
        let mut parse_failures = 0usize;

        for (wave_index, wave) in documents.chunks(wave_size).enumerate() {
            let offset = wave_index * wave_size;
            let jobs: Vec<(usize, &Document)> =
                wave.iter().enumerate().map(|(k, doc)| (offset + k, doc)).collect();
            let outcomes: Vec<Vec<DocOutcome>> = self.threads.install(|| {
                jobs.par_chunks(self.config.shard_size)
                    .map(|shard| {
                        shard
                            .iter()
                            .map(|&(i, doc)| {
                                let parsed = parse.run(doc, &routed[i], seed);
                                let extraction_cost = parse.extraction_cost(doc.page_count());
                                score.run(doc, &routed[i], parsed, extraction_cost)
                            })
                            .collect()
                    })
                    .collect()
            });

            // Fold strictly in input order so float accumulation (and the
            // result as a whole) is identical for every worker count, shard
            // size, and wave boundary.
            for outcome in outcomes.into_iter().flatten() {
                coverage += outcome.report.coverage;
                bleu += outcome.report.bleu;
                rouge += outcome.report.rouge;
                car += outcome.report.car;
                accepted.record(outcome.tokens, outcome.report.bleu, DEFAULT_ACCEPTANCE_THRESHOLD);
                total_cost = total_cost + outcome.cost;
                high_quality += outcome.high_quality as usize;
                parse_failures += outcome.parse_failed as usize;
                sink.accept(outcome.record)?;
            }
        }

        let n = documents.len().max(1) as f64;
        Ok(CampaignResult {
            quality: CampaignQuality {
                coverage: coverage / n,
                bleu: bleu / n,
                rouge: rouge / n,
                car: car / n,
                accepted_tokens: accepted.rate(),
                documents: documents.len(),
            },
            routed,
            high_quality_fraction: high_quality as f64 / n,
            total_cost,
            records: Vec::new(),
            failures: CampaignFailures { extraction: extraction_failures, parsing: parse_failures },
        })
    }

    /// Stage 1 over the whole collection, sharded across the pool. Returns
    /// the routing inputs plus the extraction failure count.
    fn extract_all(
        &self,
        engine: &AdaParseEngine,
        documents: &[Document],
        seed: u64,
    ) -> (Vec<RoutingInput>, usize) {
        let stage = ExtractStage::new(engine.config(), &self.pool);
        let shards: Vec<Vec<Extracted>> = self.threads.install(|| {
            documents
                .par_chunks(self.config.shard_size)
                .map(|shard| shard.iter().map(|doc| stage.run(doc, seed)).collect())
                .collect()
        });
        let mut inputs = Vec::with_capacity(documents.len());
        let mut failures = 0usize;
        for extracted in shards.into_iter().flatten() {
            inputs.push(extracted.input);
            failures += extracted.failed as usize;
        }
        (inputs, failures)
    }

    /// CLS inference for stage 2, sharded across the pool (pure per-document
    /// work; the sequential budget selection happens afterwards).
    fn score_improvements(&self, route: &RouteStage<'_>, inputs: &[RoutingInput]) -> Vec<(f64, bool)> {
        let shards: Vec<Vec<(f64, bool)>> = self.threads.install(|| {
            inputs
                .par_chunks(self.config.shard_size)
                .map(|shard| shard.iter().map(|input| route.improvement(input)).collect())
                .collect()
        });
        shards.into_iter().flatten().collect()
    }
}
