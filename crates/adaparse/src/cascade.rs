//! K-parser cascade routing over a cost/quality frontier.
//!
//! The binary router picks, per document, between *the* default parser and
//! *the* high-quality parser under an α budget. This module generalizes that
//! split to a [`ParserFrontier`] of k parsers: per window, every
//! (document, upgrade) pair is a candidate with a transformed gain, and the
//! marginal-gain-per-cost greedy [`crate::budget::assign_k`] spends a slot
//! budget denominated in units of the costliest upgrade. Two deliberate
//! degenerations pin the new machinery to the old:
//!
//! * **k = 2 is the binary router, bitwise.** A [`ParserFrontier::pair`]
//!   frontier makes [`cascade_gains`] the identity transform (the router's
//!   improvement scores pass through untouched, sentinels included) and
//!   carries a single upgrade of weight exactly `1.0`, so
//!   [`CascadeSelector::select_window`] reproduces
//!   [`crate::scaling::WindowedSelector`]'s masks bit for bit — the
//!   `cascade_equivalence` suite freezes this.
//! * **[`RoutingGranularity::ByDoc`] is the whole-document upgrade.** The
//!   [`RoutingGranularity::ByPage`] mode delegates only a document's
//!   hardest pages ([`delegated_pages`], driven by
//!   [`docmodel::document::Document::page_difficulty`]) to the upgrade
//!   parser and stitches the output, paying the upgrade cost only for the
//!   delegated fraction.
//!
//! Everything here is a pure function of its inputs — scores, frontier,
//! seeded per-page difficulties — so cascade campaigns inherit the
//! pipeline's bitwise-determinism contract unchanged.

use docmodel::document::Document;
use parsersim::registry::page_dollars;
use parsersim::{FrontierEntry, ParserFrontier, ParserKind};
use serde::{Deserialize, Serialize};

use crate::budget::assign_k;
use crate::config::AdaParseConfig;
use crate::scaling::ClassLedger;

/// How far down the document a routing decision reaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutingGranularity {
    /// One parser per document — the classic (and pinned-degenerate) mode.
    ByDoc,
    /// The granted upgrade parser handles only the document's
    /// above-mean-difficulty pages ([`delegated_pages`]); the base parser
    /// keeps the rest and the outputs are stitched page by page. The
    /// upgrade's cost is paid only for the delegated fraction.
    ByPage,
}

/// A full cascade-routing configuration: which parsers compete, how deep
/// decisions reach, and the streaming budget knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct CascadeConfig {
    /// The cost/quality frontier documents are assigned over.
    pub frontier: ParserFrontier,
    /// Document- or page-level delegation.
    pub granularity: RoutingGranularity,
    /// Upgrade budget as a fraction of the stream, in units of the
    /// costliest upgrade (the k-way α).
    pub alpha: f64,
    /// Streaming selection window size.
    pub window: usize,
}

impl CascadeConfig {
    /// The pinned degenerate configuration: a two-parser frontier over the
    /// engine's default/high-quality pair at the engine's α and batch size,
    /// whole-document granularity. A cascade campaign run with this
    /// configuration reproduces the binary streaming campaign bitwise.
    pub fn binary(config: &AdaParseConfig, window: usize) -> Self {
        CascadeConfig {
            frontier: ParserFrontier::pair(config.default_parser, config.high_quality_parser),
            granularity: RoutingGranularity::ByDoc,
            alpha: config.alpha,
            window,
        }
    }

    /// The full-frontier configuration: every non-dominated upgrade over the
    /// engine's default parser competes.
    pub fn full(config: &AdaParseConfig, window: usize) -> Self {
        CascadeConfig {
            frontier: ParserFrontier::full(config.default_parser),
            granularity: RoutingGranularity::ByDoc,
            alpha: config.alpha,
            window,
        }
    }

    /// Switch to per-page delegation.
    pub fn by_page(mut self) -> Self {
        self.granularity = RoutingGranularity::ByPage;
        self
    }
}

/// Per-document features the gain transform conditions on. Derived purely
/// from the document model (seeded difficulty, image-layer legibility) — no
/// RNG, no ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CascadeFeatures {
    /// Mean per-page extraction difficulty
    /// ([`Document::page_difficulty`] averaged over the document).
    pub difficulty: f64,
    /// Mean page-image legibility (0.0 when the document has no page
    /// images): how much a render-reading OCR parser has to work with.
    pub legibility: f64,
}

impl CascadeFeatures {
    /// Compute the features for one document.
    pub fn of(doc: &Document) -> Self {
        let difficulties = doc.page_difficulties();
        let difficulty = if difficulties.is_empty() {
            0.5
        } else {
            difficulties.iter().sum::<f64>() / difficulties.len() as f64
        };
        let images = &doc.image_layer.pages;
        let legibility = if images.is_empty() {
            0.0
        } else {
            images.iter().map(|p| p.legibility()).sum::<f64>() / images.len() as f64
        };
        CascadeFeatures { difficulty, legibility }
    }
}

/// How strongly document difficulty tilts gains toward the recognition end
/// of the frontier: a document at difficulty 1.0 scales candidate gains by
/// 1.4, one at 0.0 by 0.6.
const DIFFICULTY_SLOPE: f64 = 0.8;

/// Transform the router's binary improvement scores into one gain vector
/// per frontier upgrade — the input of [`crate::budget::assign_k`].
///
/// For a [`ParserFrontier::pair`] frontier this is the **identity**: the
/// single gain vector is the scores themselves, bitwise, sentinels and all —
/// which is half of the k=2 degeneration guarantee (the other half is the
/// pair's weight of exactly `1.0`).
///
/// For a wider frontier, per (document, upgrade):
///
/// * CLS I **invalid** documents (score `f64::MAX/4`) have no usable text
///   layer, so extraction upgrades get the non-candidate sentinel
///   (`f64::MIN/4`); render-reading parsers keep the urgent sentinel, with
///   the page-image legibility deciding who gets the full `f64::MAX/4`
///   (legible render → classic OCR is sufficient and cheap; degraded render
///   → GPU recognition) and who the still-urgent-but-second `f64::MAX/8`.
/// * **Non-candidates** (score ≤ `f64::MIN/8`) stay non-candidates for
///   every upgrade.
/// * **Candidates** scale the score by the upgrade's relative quality gain
///   (the best upgrade's factor is exactly `1.0`), tilt it by document
///   difficulty (`DIFFICULTY_SLOPE`), and — for classic OCR, which reads
///   the page render — additionally by the render's legibility.
pub fn cascade_gains(
    frontier: &ParserFrontier,
    scores: &[(f64, bool)],
    features: &[CascadeFeatures],
) -> Vec<Vec<f64>> {
    assert_eq!(scores.len(), features.len(), "one feature set per scored document");
    if frontier.is_pair() {
        return vec![scores.iter().map(|&(score, _)| score).collect()];
    }
    let best_gain = frontier.upgrades().iter().map(|e| e.quality_gain).fold(f64::NEG_INFINITY, f64::max);
    frontier
        .upgrades()
        .iter()
        .map(|entry| {
            let relative = entry.quality_gain / best_gain;
            scores
                .iter()
                .zip(features)
                .map(|(&(score, invalid), feat)| entry_gain(entry, score, invalid, feat, relative))
                .collect()
        })
        .collect()
}

/// The transformed gain of one (document, upgrade) candidate; see
/// [`cascade_gains`].
fn entry_gain(
    entry: &FrontierEntry,
    score: f64,
    invalid: bool,
    feat: &CascadeFeatures,
    relative: f64,
) -> f64 {
    let pure_ocr = !entry.parser.requires_gpu() && !entry.parser.is_extraction();
    if invalid {
        if entry.parser.is_extraction() {
            return f64::MIN / 4.0;
        }
        let prefer_ocr = feat.legibility >= 0.5;
        return if prefer_ocr == pure_ocr { f64::MAX / 4.0 } else { f64::MAX / 8.0 };
    }
    if score <= f64::MIN / 8.0 {
        return f64::MIN / 4.0;
    }
    let tilt = 1.0 + DIFFICULTY_SLOPE * (feat.difficulty - 0.5);
    let render = if pure_ocr { feat.legibility } else { 1.0 };
    score * relative * tilt * render
}

/// The resolved routing decision for one document under a cascade.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParserChoice {
    /// Document identifier.
    pub doc_id: u64,
    /// The parser that will produce the document's output (the frontier's
    /// base when no upgrade was granted or the granted candidate wasn't
    /// real).
    pub parser: ParserKind,
    /// Index of the granted upgrade into the frontier's upgrade list, when
    /// one was granted to a real candidate.
    pub upgrade: Option<usize>,
    /// The transformed gain the grant was ranked by (0.0 for
    /// non-candidates, mirroring the binary router's zeroed improvement).
    pub predicted_gain: f64,
    /// Whether CLS I flagged the extraction as invalid.
    pub cls1_invalid: bool,
    /// Pages delegated to the upgrade parser under
    /// [`RoutingGranularity::ByPage`]; empty means the whole document goes
    /// to [`ParserChoice::parser`].
    pub upgraded_pages: Vec<usize>,
}

impl ParserChoice {
    /// Resolve one granted (or not) assignment into a choice. `gain` is the
    /// granted entry's transformed gain (any value when `granted` is
    /// `None`); candidates are real only above the `f64::MIN/8` sentinel
    /// threshold, exactly like the binary router.
    pub fn resolve(
        frontier: &ParserFrontier,
        doc_id: u64,
        granted: Option<usize>,
        gain: f64,
        invalid: bool,
    ) -> Self {
        let is_candidate = gain > f64::MIN / 8.0;
        let upgrade = granted.filter(|_| is_candidate);
        let parser = upgrade.map_or(frontier.base(), |j| frontier.upgrades()[j].parser);
        ParserChoice {
            doc_id,
            parser,
            upgrade,
            predicted_gain: if is_candidate && upgrade.is_some() { gain } else { 0.0 },
            cls1_invalid: invalid,
            upgraded_pages: Vec::new(),
        }
    }

    /// Whether the document leaves the base parser.
    pub fn is_upgraded(&self) -> bool {
        self.upgrade.is_some()
    }
}

/// The pages [`RoutingGranularity::ByPage`] delegates to the upgrade
/// parser: every page at or above the document's mean difficulty. Never
/// empty for a non-empty document (the hardest page always qualifies), so a
/// granted upgrade always does some work.
pub fn delegated_pages(doc: &Document) -> Vec<usize> {
    let difficulties = doc.page_difficulties();
    if difficulties.is_empty() {
        return Vec::new();
    }
    let mean = difficulties.iter().sum::<f64>() / difficulties.len() as f64;
    (0..difficulties.len()).filter(|&p| difficulties[p] >= mean).collect()
}

/// Streaming per-window cascade selector — the k-way analogue of
/// [`crate::scaling::WindowedSelector`].
///
/// Feed it windows of per-upgrade gain vectors in input order via
/// [`select_window`](CascadeSelector::select_window); each call returns the
/// window's per-document assignment. The selector accrues `α` slot credit
/// per document seen (slots are units of the costliest upgrade) and each
/// window spends `⌊credit − spent⌋` of it through
/// [`crate::budget::assign_k`] — the same floor-and-carry arithmetic as the
/// binary selector, so in the k=2 degenerate case (single weight-`1.0`
/// upgrade, identity gains) the emitted masks equal
/// [`crate::scaling::WindowedSelector`]'s bitwise. Fractional weight spend
/// (cheap upgrades) carries over exactly: `spent` accumulates
/// [`crate::budget::KAssignment::slots_consumed`], so unspent credit funds
/// later windows.
///
/// Spend is additionally metered in planned per-page dollars per parser
/// class through a [`ClassLedger`]: every document is charged the base
/// parser's [`page_dollars`] rate and every granted upgrade its frontier
/// entry's `cost_per_page` (scaled by the delegated page fraction when the
/// caller reports one) — the cascade's quality-per-dollar denominator.
#[derive(Debug, Clone, PartialEq)]
pub struct CascadeSelector {
    frontier: ParserFrontier,
    window: usize,
    alpha: f64,
    weights: Vec<f64>,
    credit: f64,
    spent: f64,
    seen: usize,
    granted: usize,
    dollars: ClassLedger,
}

impl CascadeSelector {
    /// A selector over `config`'s frontier, window, and α.
    pub fn new(config: &CascadeConfig) -> Self {
        CascadeSelector {
            weights: config.frontier.weights(),
            frontier: config.frontier.clone(),
            window: config.window.max(1),
            alpha: config.alpha.clamp(0.0, 1.0),
            credit: 0.0,
            spent: 0.0,
            seen: 0,
            granted: 0,
            dollars: ClassLedger::new(),
        }
    }

    /// The selector's frontier.
    pub fn frontier(&self) -> &ParserFrontier {
        &self.frontier
    }

    /// The configured window size.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Documents routed so far.
    pub fn seen(&self) -> usize {
        self.seen
    }

    /// Upgrades granted so far (across all frontier entries).
    pub fn granted(&self) -> usize {
        self.granted
    }

    /// Slot budget consumed so far, in costliest-upgrade units.
    pub fn slots_spent(&self) -> f64 {
        self.spent
    }

    /// Planned dollar spend per parser class so far.
    pub fn dollars(&self) -> &ClassLedger {
        &self.dollars
    }

    /// Route one window of per-upgrade gain vectors (`gains[j][i]` is
    /// upgrade j's transformed gain for the window's i-th document; see
    /// [`cascade_gains`]) and return the per-document assignment.
    ///
    /// The window quota is `⌊credit − spent⌋` slots — never clamped to the
    /// window length, because [`crate::budget::assign_k`] grants at most
    /// one upgrade per document anyway.
    pub fn select_window(&mut self, gains: &[Vec<f64>]) -> Vec<Option<usize>> {
        assert_eq!(gains.len(), self.weights.len(), "one gain vector per frontier upgrade");
        let n = gains.first().map(Vec::len).unwrap_or(0);
        self.seen += n;
        self.credit += n as f64 * self.alpha;
        let slots = (self.credit - self.spent).floor().max(0.0);
        let assignment = assign_k(gains, &self.weights, slots);
        self.spent += assignment.slots_consumed;
        self.dollars.charge(self.frontier.base(), n as f64 * page_dollars(self.frontier.base()));
        for j in assignment.choices.iter().flatten() {
            self.granted += 1;
            let entry = &self.frontier.upgrades()[*j];
            self.dollars.charge(entry.parser, entry.cost_per_page);
        }
        assignment.choices
    }

    /// Refund part of a granted upgrade's dollar charge when per-page
    /// delegation parsed only `fraction` of the document with the upgrade
    /// parser (the remaining pages stayed on the base parser, whose charge
    /// already covers them). Deterministic bookkeeping only — never affects
    /// selection.
    pub fn refund_delegated(&mut self, upgrade: usize, fraction: f64) {
        let entry = &self.frontier.upgrades()[upgrade];
        self.dollars.charge(entry.parser, -entry.cost_per_page * (1.0 - fraction.clamp(0.0, 1.0)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scaling::WindowedSelector;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_scores(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0.0..1.0)).collect()
    }

    fn flat_features(n: usize) -> Vec<CascadeFeatures> {
        vec![CascadeFeatures { difficulty: 0.5, legibility: 0.8 }; n]
    }

    #[test]
    fn pair_gains_are_the_identity_bitwise() {
        let frontier = ParserFrontier::pair(ParserKind::PyMuPdf, ParserKind::Nougat);
        let scores = vec![(0.7, false), (f64::MAX / 4.0, true), (f64::MIN / 4.0, false), (f64::NAN, false)];
        let gains = cascade_gains(&frontier, &scores, &flat_features(scores.len()));
        assert_eq!(gains.len(), 1);
        for (gain, &(score, _)) in gains[0].iter().zip(&scores) {
            assert_eq!(gain.to_bits(), score.to_bits(), "pair transform must be the identity");
        }
    }

    #[test]
    fn degenerate_selector_reproduces_windowed_masks_bitwise() {
        let config = CascadeConfig {
            frontier: ParserFrontier::pair(ParserKind::PyMuPdf, ParserKind::Nougat),
            granularity: RoutingGranularity::ByDoc,
            alpha: 0.13,
            window: 32,
        };
        let mut cascade = CascadeSelector::new(&config);
        let mut binary = WindowedSelector::new(32, 0.13);
        let scores = random_scores(500, 42);
        for chunk in scores.chunks(32) {
            let gains = vec![chunk.to_vec()];
            let choices = cascade.select_window(&gains);
            let mask: Vec<bool> = choices.iter().map(Option::is_some).collect();
            assert_eq!(mask, binary.select_window(chunk));
        }
        assert_eq!(cascade.granted(), binary.selected());
    }

    #[test]
    fn wide_frontier_spends_fractional_slots_on_cheap_upgrades() {
        // Two upgrades, the cheap one at 1/4 slot: one slot of credit funds
        // four cheap upgrades where the binary selector funds one.
        let frontier = ParserFrontier::full(ParserKind::PyMuPdf);
        assert!(frontier.k() > 2, "full frontier must be wider than a pair");
        let config =
            CascadeConfig { frontier, granularity: RoutingGranularity::ByDoc, alpha: 0.1, window: 40 };
        let mut selector = CascadeSelector::new(&config);
        let n = 40;
        // Uniform positive gains: the greedy prefers the best ratio, which
        // for equal gains is the cheapest upgrade.
        let gains: Vec<Vec<f64>> = config.frontier.upgrades().iter().map(|_| vec![0.5; n]).collect();
        let choices = selector.select_window(&gains);
        let granted = choices.iter().filter(|c| c.is_some()).count();
        assert!(granted >= 4, "fractional weights must stretch the slot budget, got {granted}");
        assert!(selector.slots_spent() <= 4.0 + 1e-9);
        assert!(!selector.dollars().is_empty());
    }

    #[test]
    fn invalid_documents_prefer_render_parsers_by_legibility() {
        let frontier = ParserFrontier::full(ParserKind::PyMuPdf);
        let scores = vec![(f64::MAX / 4.0, true), (f64::MAX / 4.0, true)];
        let features = vec![
            CascadeFeatures { difficulty: 0.6, legibility: 0.9 }, // legible scan
            CascadeFeatures { difficulty: 0.6, legibility: 0.2 }, // degraded scan
        ];
        let gains = cascade_gains(&frontier, &scores, &features);
        let entries = frontier.upgrades();
        for (j, entry) in entries.iter().enumerate() {
            let pure_ocr = !entry.parser.requires_gpu() && !entry.parser.is_extraction();
            if pure_ocr {
                assert_eq!(gains[j][0], f64::MAX / 4.0, "legible scan prefers OCR");
                assert_eq!(gains[j][1], f64::MAX / 8.0);
            } else if entry.parser.requires_gpu() {
                assert_eq!(gains[j][0], f64::MAX / 8.0);
                assert_eq!(gains[j][1], f64::MAX / 4.0, "degraded scan prefers recognition");
            }
        }
    }

    #[test]
    fn difficulty_tilts_candidate_gains() {
        let frontier = ParserFrontier::full(ParserKind::PyMuPdf);
        let scores = vec![(0.5, false), (0.5, false)];
        let features = vec![
            CascadeFeatures { difficulty: 0.9, legibility: 1.0 },
            CascadeFeatures { difficulty: 0.1, legibility: 1.0 },
        ];
        let gains = cascade_gains(&frontier, &scores, &features);
        for per_entry in &gains {
            assert!(per_entry[0] > per_entry[1], "harder documents rank higher");
        }
    }

    #[test]
    fn delegated_pages_cover_the_hardest_and_never_empty() {
        use scicorpus::generator::{DocumentGenerator, GeneratorConfig};
        let docs = DocumentGenerator::new(GeneratorConfig {
            n_documents: 6,
            seed: 17,
            min_pages: 1,
            max_pages: 9,
            ..Default::default()
        })
        .generate_many(6);
        for doc in &docs {
            let pages = delegated_pages(doc);
            assert!(!pages.is_empty(), "non-empty documents always delegate something");
            assert!(pages.len() <= doc.page_count());
            let difficulties = doc.page_difficulties();
            let hardest =
                (0..difficulties.len()).max_by(|&a, &b| difficulties[a].total_cmp(&difficulties[b])).unwrap();
            assert!(pages.contains(&hardest), "the hardest page is always delegated");
            // Delegated pages are exactly the at-or-above-mean set.
            let mean = difficulties.iter().sum::<f64>() / difficulties.len() as f64;
            for (p, difficulty) in difficulties.iter().enumerate() {
                assert_eq!(pages.contains(&p), *difficulty >= mean);
            }
        }
    }

    #[test]
    fn resolve_honors_sentinels_and_zeroes_non_candidates() {
        let frontier = ParserFrontier::pair(ParserKind::PyMuPdf, ParserKind::Nougat);
        // A granted non-candidate (surplus quota landed on a MIN/4 doc)
        // stays on the base parser with zeroed gain — the binary router's
        // exact behavior.
        let choice = ParserChoice::resolve(&frontier, 7, Some(0), f64::MIN / 4.0, false);
        assert_eq!(choice.parser, ParserKind::PyMuPdf);
        assert_eq!(choice.upgrade, None);
        assert_eq!(choice.predicted_gain, 0.0);
        // A granted real candidate goes to the upgrade.
        let choice = ParserChoice::resolve(&frontier, 8, Some(0), 0.42, false);
        assert_eq!(choice.parser, ParserKind::Nougat);
        assert_eq!(choice.upgrade, Some(0));
        assert_eq!(choice.predicted_gain, 0.42);
        assert!(choice.is_upgraded());
        // Not granted at all: base parser, gain still zeroed in the record.
        let choice = ParserChoice::resolve(&frontier, 9, None, 0.9, false);
        assert_eq!(choice.parser, ParserKind::PyMuPdf);
        assert_eq!(choice.predicted_gain, 0.0);
    }

    #[test]
    fn by_page_refund_reduces_the_upgrade_class_charge() {
        let config = CascadeConfig {
            frontier: ParserFrontier::pair(ParserKind::PyMuPdf, ParserKind::Nougat),
            granularity: RoutingGranularity::ByPage,
            alpha: 1.0,
            window: 4,
        };
        let mut selector = CascadeSelector::new(&config);
        selector.select_window(&[vec![0.9, 0.8, 0.7, 0.6]]);
        let full = selector.dollars().spent(ParserKind::Nougat);
        assert!(full > 0.0);
        // Half the pages stayed on the base parser.
        selector.refund_delegated(0, 0.5);
        let entry_cost = selector.frontier().upgrades()[0].cost_per_page;
        let after = selector.dollars().spent(ParserKind::Nougat);
        assert!((full - after - entry_cost * 0.5).abs() < 1e-9);
    }
}
