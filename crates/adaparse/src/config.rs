//! Engine configuration.

use parsersim::ParserKind;
use selector::cls1::ValidityRules;
use serde::{Deserialize, Serialize};

/// Which AdaParse variant to run (paper §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Variant {
    /// AdaParse (FT): CLS I + CLS II with fastText-style features; routes
    /// directly to the high-quality parser when improvement is likely.
    FastText,
    /// AdaParse (LLM): CLS I + CLS III with an LLM-style accuracy predictor
    /// (SciBERT-sim), optionally DPO-aligned.
    Llm,
}

impl Variant {
    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Variant::FastText => "AdaParse (FT)",
            Variant::Llm => "AdaParse (LLM)",
        }
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of the AdaParse engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaParseConfig {
    /// Which variant to run.
    pub variant: Variant,
    /// Maximum fraction of documents routed to the high-quality parser
    /// (the paper evaluates α = 5 %).
    pub alpha: f64,
    /// Routing batch size (the paper uses k = 256).
    pub batch_size: usize,
    /// The cheap default parser.
    pub default_parser: ParserKind,
    /// The high-quality parser reserved for difficult documents.
    pub high_quality_parser: ParserKind,
    /// CLS I validity thresholds.
    pub validity: ValidityRules,
    /// Whether to apply DPO alignment to CLS III (LLM variant only).
    pub use_dpo: bool,
    /// Seed used for the engine's internal stochastic components.
    pub seed: u64,
}

impl Default for AdaParseConfig {
    fn default() -> Self {
        AdaParseConfig {
            variant: Variant::Llm,
            alpha: 0.05,
            batch_size: 256,
            default_parser: ParserKind::PyMuPdf,
            high_quality_parser: ParserKind::Nougat,
            validity: ValidityRules::default(),
            use_dpo: true,
            seed: 2024,
        }
    }
}

impl AdaParseConfig {
    /// Validate the configuration, normalizing out-of-range values.
    pub fn normalized(mut self) -> Self {
        self.alpha = self.alpha.clamp(0.0, 1.0);
        if self.batch_size == 0 {
            self.batch_size = 1;
        }
        self
    }

    /// The two parsers AdaParse deploys (Appendix C restricts the choice).
    pub fn allowed_parsers(&self) -> [ParserKind; 2] {
        [self.default_parser, self.high_quality_parser]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = AdaParseConfig::default();
        assert_eq!(c.variant, Variant::Llm);
        assert!((c.alpha - 0.05).abs() < 1e-12);
        assert_eq!(c.batch_size, 256);
        assert_eq!(c.default_parser, ParserKind::PyMuPdf);
        assert_eq!(c.high_quality_parser, ParserKind::Nougat);
        assert!(c.use_dpo);
    }

    #[test]
    fn normalization_clamps() {
        let c = AdaParseConfig { alpha: 3.0, batch_size: 0, ..Default::default() }.normalized();
        assert_eq!(c.alpha, 1.0);
        assert_eq!(c.batch_size, 1);
        let c = AdaParseConfig { alpha: -0.5, ..Default::default() }.normalized();
        assert_eq!(c.alpha, 0.0);
    }

    #[test]
    fn variant_names() {
        assert_eq!(Variant::FastText.to_string(), "AdaParse (FT)");
        assert_eq!(Variant::Llm.to_string(), "AdaParse (LLM)");
    }

    #[test]
    fn allowed_parsers_are_default_and_high_quality() {
        let c = AdaParseConfig::default();
        assert_eq!(c.allowed_parsers(), [ParserKind::PyMuPdf, ParserKind::Nougat]);
    }
}
