//! The AdaParse engine: configuration, training, and hierarchical routing.
//!
//! Campaign *execution* lives in [`crate::campaign`]; the engine's
//! `parse_documents` / `route_documents` are thin delegates over a
//! default-configured [`CampaignPipeline`].

use docmodel::document::Document;
use parsersim::cost::{CostModel, NodeSpec, ResourceCost};
use parsersim::ParserKind;
use selector::cls1::Cls1Decision;
use selector::cls2::ImprovementClassifier;
use selector::cls3::{AccuracyPredictor, ParserPreference, PredictorConfig};
use selector::dataset::AccuracyDataset;
use serde::{Deserialize, Serialize};

use crate::budget::select_batch;
use crate::campaign::{CampaignFailures, CampaignPipeline, RoutingInput};
use crate::config::{AdaParseConfig, Variant};
use crate::output::ParsedRecord;

/// Routing decision for one document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutedDocument {
    /// Document identifier.
    pub doc_id: u64,
    /// Parser the document was routed to.
    pub parser: ParserKind,
    /// Predicted improvement of the high-quality parser over the default
    /// (the ranking key of the budget optimizer).
    pub predicted_improvement: f64,
    /// Whether CLS I flagged the extraction as invalid.
    pub cls1_invalid: bool,
}

/// Aggregate output quality of a campaign (one row of Tables 1–3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignQuality {
    /// Mean page coverage.
    pub coverage: f64,
    /// Mean BLEU.
    pub bleu: f64,
    /// Mean ROUGE-L F1.
    pub rouge: f64,
    /// Mean character accuracy rate.
    pub car: f64,
    /// Accepted-token rate.
    pub accepted_tokens: f64,
    /// Number of documents parsed.
    pub documents: usize,
}

/// Full result of a campaign over a document collection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Aggregate quality.
    pub quality: CampaignQuality,
    /// Per-document routing decisions.
    pub routed: Vec<RoutedDocument>,
    /// Fraction of documents routed to the high-quality parser.
    pub high_quality_fraction: f64,
    /// Total resources consumed (extraction + assigned parsers).
    pub total_cost: ResourceCost,
    /// Per-document output records (JSONL-ready). Empty when the campaign
    /// streamed records to a [`crate::output::RecordSink`] instead.
    pub records: Vec<ParsedRecord>,
    /// Per-document parser failure counts (paper §5 failure analysis).
    pub failures: CampaignFailures,
}

/// The AdaParse engine.
#[derive(Debug, Clone)]
pub struct AdaParseEngine {
    config: AdaParseConfig,
    cls2: ImprovementClassifier,
    cls3: AccuracyPredictor,
    trained: bool,
}

impl AdaParseEngine {
    /// Create an engine (untrained) from a configuration.
    pub fn new(config: AdaParseConfig) -> Self {
        let config = config.normalized();
        let encoder = match config.variant {
            Variant::FastText => mlcore::encoder::EncoderProfile::FastText,
            Variant::Llm => mlcore::encoder::EncoderProfile::SciBert,
        };
        AdaParseEngine {
            cls2: ImprovementClassifier::new(),
            cls3: AccuracyPredictor::new(PredictorConfig { encoder, ..PredictorConfig::default() }),
            config,
            trained: false,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &AdaParseConfig {
        &self.config
    }

    /// Whether the prediction stages have been trained.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// Train CLS II and CLS III on a labelled dataset; `preferences` (may be
    /// empty) feed DPO alignment when the configuration enables it.
    pub fn train(&mut self, dataset: &AccuracyDataset, preferences: &[ParserPreference]) {
        self.cls2.fit(dataset.train());
        self.cls3.fit_regression(dataset.train());
        if self.config.use_dpo && self.config.variant == Variant::Llm && !preferences.is_empty() {
            self.cls3.fit_preferences(preferences);
        }
        self.trained = true;
    }

    /// Convenience: evaluate `documents` with the parser zoo to build the
    /// training dataset, then train (without preference data).
    pub fn train_on_corpus(&mut self, documents: &[Document], seed: u64) {
        let dataset = AccuracyDataset::build(documents, seed, 1.0);
        self.train(&dataset, &[]);
    }

    /// Access to the CLS III predictor (for R² reporting).
    pub fn predictor(&self) -> &AccuracyPredictor {
        &self.cls3
    }

    /// CLS I → II/III scoring for one document: the predicted improvement of
    /// the high-quality parser (the budget optimizer's ranking key) and the
    /// CLS I invalid flag. Pure per-document work — the campaign pipeline
    /// calls this from its parallel routing stage.
    pub(crate) fn routing_improvement(&self, input: &RoutingInput) -> (f64, bool) {
        let decision = self.config.validity.decide(&input.first_page_text, 1);
        let invalid = decision == Cls1Decision::Invalid;
        let improvement = if invalid {
            // CLS I failures always deserve the high-quality parser.
            f64::MAX / 4.0
        } else {
            match self.config.variant {
                Variant::FastText => {
                    let p = self.cls2.improvement_probability(&input.as_sample());
                    if p >= 0.5 {
                        p
                    } else {
                        f64::MIN / 4.0
                    }
                }
                Variant::Llm => {
                    let gain = self.cls3.predicted_improvement(
                        &input.first_page_text,
                        self.config.high_quality_parser,
                        self.config.default_parser,
                    );
                    if gain > 0.0 {
                        gain
                    } else {
                        f64::MIN / 4.0
                    }
                }
            }
        };
        (improvement, invalid)
    }

    /// Apply the per-batch budget optimizer to already-scored documents and
    /// produce the final routing decisions, in input order.
    pub(crate) fn assemble_routes(
        &self,
        inputs: &[RoutingInput],
        scores: &[(f64, bool)],
    ) -> Vec<RoutedDocument> {
        let improvements: Vec<f64> = scores.iter().map(|&(improvement, _)| improvement).collect();
        let mask = select_batch(&improvements, self.config.alpha, self.config.batch_size);
        self.assemble_routes_with_mask(inputs, scores, &mask)
    }

    /// Turn scored documents plus an externally computed selection mask into
    /// final routing decisions, in input order. The streaming pipeline feeds
    /// masks emitted window-by-window by
    /// [`crate::scaling::WindowedSelector`]; the classic path feeds
    /// [`select_batch`]'s whole-corpus mask.
    pub(crate) fn assemble_routes_with_mask(
        &self,
        inputs: &[RoutingInput],
        scores: &[(f64, bool)],
        mask: &[bool],
    ) -> Vec<RoutedDocument> {
        inputs
            .iter()
            .zip(scores.iter())
            .zip(mask.iter())
            .map(|((input, &(improvement, invalid)), &selected)| {
                let is_candidate = improvement > f64::MIN / 8.0;
                let parser = if selected && is_candidate {
                    self.config.high_quality_parser
                } else {
                    self.config.default_parser
                };
                RoutedDocument {
                    doc_id: input.doc_id,
                    parser,
                    predicted_improvement: if is_candidate { improvement } else { 0.0 },
                    cls1_invalid: invalid,
                }
            })
            .collect()
    }

    /// Route a document collection without parsing it (returns one decision
    /// per document, in order). Runs stages 1–2 of a default-configured
    /// [`CampaignPipeline`].
    pub fn route_documents(&self, documents: &[Document], seed: u64) -> Vec<RoutedDocument> {
        CampaignPipeline::default().route(self, documents, seed)
    }

    /// Parse a document collection end-to-end: extract, route, parse with the
    /// assigned parser, and score against ground truth.
    ///
    /// Delegates to a default-configured [`CampaignPipeline`]; use the
    /// pipeline directly to control worker count, shard size, or to stream
    /// records to a [`crate::output::RecordSink`]. The result is identical
    /// for every worker count.
    pub fn parse_documents(&self, documents: &[Document], seed: u64) -> CampaignResult {
        CampaignPipeline::default().run(self, documents, seed)
    }

    /// Steady-state single-node throughput of this engine configuration in
    /// documents per second: every document pays the extraction cost, an
    /// α-fraction additionally pays the high-quality parser, and the LLM
    /// variant pays a small per-document inference cost for CLS III.
    pub fn node_throughput(&self, node: &NodeSpec, pages_per_doc: f64) -> f64 {
        let cheap = CostModel::for_parser(self.config.default_parser)
            .document_cost(pages_per_doc.ceil() as usize, 0.3);
        let expensive = CostModel::for_parser(self.config.high_quality_parser)
            .document_cost(pages_per_doc.ceil() as usize, 0.3);
        let inference_cpu = match self.config.variant {
            Variant::FastText => 0.002,
            Variant::Llm => 0.03,
        };
        let cpu_per_doc = cheap.cpu_seconds + inference_cpu + self.config.alpha * expensive.cpu_seconds;
        let gpu_per_doc = self.config.alpha * expensive.gpu_seconds;
        let cpu_rate = if cpu_per_doc > 0.0 { node.cpu_cores as f64 / cpu_per_doc } else { f64::INFINITY };
        let gpu_rate = if gpu_per_doc > 0.0 { node.gpus as f64 / gpu_per_doc } else { f64::INFINITY };
        let rate = cpu_rate.min(gpu_rate);
        if rate.is_finite() {
            rate
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scicorpus::generator::{DocumentGenerator, GeneratorConfig};

    fn corpus(n: usize, scanned_fraction: f64, seed: u64) -> Vec<Document> {
        DocumentGenerator::new(GeneratorConfig {
            n_documents: n,
            seed,
            min_pages: 1,
            max_pages: 2,
            scanned_fraction,
            ..Default::default()
        })
        .generate_many(n)
    }

    fn trained_engine(config: AdaParseConfig) -> AdaParseEngine {
        let mut engine = AdaParseEngine::new(config);
        engine.train_on_corpus(&corpus(20, 0.3, 111), 5);
        engine
    }

    #[test]
    fn alpha_budget_is_respected() {
        let engine = trained_engine(AdaParseConfig { alpha: 0.10, batch_size: 10, ..Default::default() });
        let docs = corpus(40, 0.4, 222);
        let result = engine.parse_documents(&docs, 9);
        assert!(result.high_quality_fraction <= 0.10 + 1e-9, "fraction = {}", result.high_quality_fraction);
        assert_eq!(result.routed.len(), 40);
        assert_eq!(result.records.len(), 40);
        assert_eq!(result.quality.documents, 40);
    }

    #[test]
    fn adaparse_beats_the_pure_default_parser_on_mixed_corpora() {
        let engine = trained_engine(AdaParseConfig { alpha: 0.3, batch_size: 16, ..Default::default() });
        let docs = corpus(32, 0.5, 333);
        let adaparse = engine.parse_documents(&docs, 13);
        // Baseline: α = 0 means every document goes to PyMuPDF.
        let baseline_engine = trained_engine(AdaParseConfig { alpha: 0.0, ..Default::default() });
        let baseline = baseline_engine.parse_documents(&docs, 13);
        assert!(
            adaparse.quality.bleu >= baseline.quality.bleu,
            "adaparse {} must not trail extraction-only {}",
            adaparse.quality.bleu,
            baseline.quality.bleu
        );
        assert!(adaparse.high_quality_fraction > 0.0);
        assert!(baseline.high_quality_fraction == 0.0);
        // Extra quality costs extra resources.
        assert!(adaparse.total_cost.gpu_seconds > baseline.total_cost.gpu_seconds);
    }

    #[test]
    fn ft_variant_routes_without_llm_inference() {
        let engine = trained_engine(AdaParseConfig {
            variant: Variant::FastText,
            alpha: 0.2,
            batch_size: 8,
            ..Default::default()
        });
        let docs = corpus(16, 0.5, 444);
        let result = engine.parse_documents(&docs, 21);
        assert!(result.high_quality_fraction <= 0.2 + 1e-9);
        for decision in &result.routed {
            assert!(matches!(decision.parser, ParserKind::PyMuPdf | ParserKind::Nougat));
        }
    }

    #[test]
    fn scanned_documents_are_preferentially_routed_to_nougat() {
        let engine = trained_engine(AdaParseConfig { alpha: 0.25, batch_size: 64, ..Default::default() });
        let docs = corpus(40, 0.4, 555);
        let routed = engine.route_documents(&docs, 31);
        let mut nougat_scanned = 0usize;
        let mut nougat_clean = 0usize;
        for (doc, decision) in docs.iter().zip(&routed) {
            if decision.parser == ParserKind::Nougat {
                if doc.text_layer.has_text() {
                    nougat_clean += 1;
                } else {
                    nougat_scanned += 1;
                }
            }
        }
        assert!(
            nougat_scanned >= nougat_clean,
            "scanned docs should dominate Nougat routing ({nougat_scanned} vs {nougat_clean})"
        );
        // CLS I should flag at least some scanned documents as invalid.
        assert!(routed.iter().any(|r| r.cls1_invalid));
    }

    #[test]
    fn throughput_ordering_matches_the_paper() {
        let node = NodeSpec::default();
        let llm = trained_engine(AdaParseConfig { variant: Variant::Llm, ..Default::default() });
        let ft = trained_engine(AdaParseConfig { variant: Variant::FastText, ..Default::default() });
        let t_llm = llm.node_throughput(&node, 10.0);
        let t_ft = ft.node_throughput(&node, 10.0);
        let t_nougat = CostModel::for_parser(ParserKind::Nougat).node_throughput(&node, 10.0);
        let t_pymupdf = CostModel::for_parser(ParserKind::PyMuPdf).node_throughput(&node, 10.0);
        // AdaParse sits between pure extraction and pure recognition…
        assert!(t_llm < t_pymupdf);
        assert!(t_llm > t_nougat);
        // …the FT variant is faster than the LLM variant…
        assert!(t_ft >= t_llm);
        // …and the LLM variant is roughly an order of magnitude (the paper
        // reports 17×) faster than Nougat alone.
        let ratio = t_llm / t_nougat;
        assert!(ratio > 5.0, "AdaParse(LLM)/Nougat ratio = {ratio}");
    }

    #[test]
    fn untrained_engine_still_routes_within_budget() {
        let engine = AdaParseEngine::new(AdaParseConfig { alpha: 0.05, ..Default::default() });
        assert!(!engine.is_trained());
        let docs = corpus(20, 0.2, 666);
        let routed = engine.route_documents(&docs, 41);
        let nougat = routed.iter().filter(|r| r.parser == ParserKind::Nougat).count();
        assert!(nougat as f64 / 20.0 <= 0.05 + 1e-9 + 0.05); // one per batch at most
    }

    #[test]
    fn empty_document_set_yields_empty_result() {
        let engine = AdaParseEngine::new(AdaParseConfig::default());
        let result = engine.parse_documents(&[], 1);
        assert_eq!(result.quality.documents, 0);
        assert_eq!(result.records.len(), 0);
        assert_eq!(result.high_quality_fraction, 0.0);
    }
}
