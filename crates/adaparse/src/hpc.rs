//! Bridge from parser routing decisions to the HPC simulator.
//!
//! Figure 5 of the paper reports the throughput of each parser — and of
//! AdaParse — from 1 to 128 Polaris nodes. This module turns a document
//! workload into `hpcsim` tasks (one per document, with stage-in bytes,
//! compute seconds from the parser cost model, and model-load cold-start
//! costs) and runs the Parsl-like executor over an arbitrary node count.

use docmodel::document::Document;
use hpcsim::{ClusterConfig, ExecutorConfig, GroupRole, LustreModel, SlotKind, Task, WorkflowExecutor};
use parsersim::cost::CostModel;
use parsersim::ParserKind;
use serde::{Deserialize, Serialize};

use parsersim::ParserFrontier;

use crate::campaign::CampaignPipeline;
use crate::cascade::ParserChoice;
use crate::config::AdaParseConfig;
use crate::engine::{AdaParseEngine, RoutedDocument};
use crate::scaling::{NodePlan, Stage};

/// A lightweight description of a document workload for scaling studies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of documents.
    pub documents: usize,
    /// Average pages per document.
    pub pages_per_doc: usize,
    /// Average input size per document in MiB.
    pub mb_per_doc: f64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec { documents: 10_000, pages_per_doc: 10, mb_per_doc: 1.5 }
    }
}

/// Build one task per document for a single fixed parser.
pub fn tasks_for_parser(kind: ParserKind, workload: &WorkloadSpec) -> Vec<Task> {
    let model = CostModel::for_parser(kind);
    let cost = model.document_cost(workload.pages_per_doc, 0.3);
    let slot = if kind.requires_gpu() { SlotKind::Gpu } else { SlotKind::Cpu };
    let compute = if kind.requires_gpu() { cost.gpu_seconds } else { cost.cpu_seconds };
    (0..workload.documents)
        .map(|i| {
            Task::new(i as u64, slot, compute)
                .with_input_mb(workload.mb_per_doc)
                .with_input_files(1)
                .with_cold_start(model.model_load_seconds)
                .with_label(kind.name())
        })
        .collect()
}

/// Build tasks for an AdaParse campaign from explicit routing decisions:
/// every document gets an extraction task and the documents routed to the
/// high-quality parser get a GPU task on top.
pub fn tasks_for_routing(
    config: &AdaParseConfig,
    routed: &[RoutedDocument],
    workload: &WorkloadSpec,
) -> Vec<Task> {
    build_routing_tasks(config, routed, workload, None, 1.0)
}

/// Build tasks for an AdaParse campaign from explicit routing decisions
/// *with node-affinity placement*: extraction tasks are staged round-robin
/// across the plan's extraction fleet, high-quality parse tasks across its
/// parse fleet, and every task carries its staging node so the executor's
/// data-locality model applies. The extract and parse tasks of the same
/// document additionally share a [`hpcsim::TaskGroup`], so the executor's
/// pair co-scheduling can reunite them on one node (the parse half's real
/// input is the extract half's output), *and* each parse task carries a
/// [`hpcsim::Task::depends_on`] edge to its extract partner, so the
/// dependency-aware engine never starts a document's parse before its
/// extraction has finished. This is how the
/// [`crate::scaling::ScalingController`]'s node-level decisions reach the
/// simulator.
///
/// # Example
///
/// ```
/// use adaparse::{tasks_for_routing_with_affinity, AdaParseConfig, NodePlan, RoutedDocument, WorkloadSpec};
/// use hpcsim::{ClusterConfig, ExecutorConfig, LustreModel, WorkflowExecutor};
///
/// let config = AdaParseConfig::default();
/// // Two documents: the first routed to the high-quality parser.
/// let routed: Vec<RoutedDocument> = (0..2)
///     .map(|i| RoutedDocument {
///         doc_id: i,
///         parser: if i == 0 { config.high_quality_parser } else { config.default_parser },
///         predicted_improvement: 0.5,
///         cls1_invalid: false,
///     })
///     .collect();
/// let workload = WorkloadSpec { documents: 2, pages_per_doc: 5, mb_per_doc: 1.0 };
/// let plan = NodePlan { extract_nodes: 1, parse_nodes: 1 };
///
/// let tasks = tasks_for_routing_with_affinity(&config, &routed, &workload, &plan);
/// assert_eq!(tasks.len(), 3); // two extractions + one high-quality parse
/// assert!(tasks.iter().all(|t| t.preferred_node.is_some() && t.group.is_some()));
/// // The parse task (odd id) depends on its extract partner (its id - 1).
/// let parse = tasks.iter().find(|t| t.id % 2 == 1).unwrap();
/// assert_eq!(parse.depends_on, vec![parse.id - 1]);
///
/// // The tasks run as-is on a cluster shaped like the plan.
/// let report = WorkflowExecutor::new(ExecutorConfig::default())
///     .run(&tasks, &ClusterConfig::polaris(plan.total()), &LustreModel::default());
/// assert_eq!(report.tasks_completed, 3);
/// assert_eq!(report.co_located_pairs, 1); // the pair reunited on one node
/// ```
pub fn tasks_for_routing_with_affinity(
    config: &AdaParseConfig,
    routed: &[RoutedDocument],
    workload: &WorkloadSpec,
    plan: &NodePlan,
) -> Vec<Task> {
    build_routing_tasks(config, routed, workload, Some(plan), 1.0)
}

/// [`tasks_for_routing_with_affinity`] with the high-quality parse compute
/// scaled by `parse_fraction` — the task-level model of per-page delegation,
/// where only a document's delegated page fraction runs on the upgrade
/// parser. A fraction of `1.0` is a **bitwise no-op** (`x * 1.0 == x`), so
/// whole-document callers are unchanged; the serve layer passes each
/// tenant's planned delegation fraction here.
pub fn tasks_for_routing_with_affinity_scaled(
    config: &AdaParseConfig,
    routed: &[RoutedDocument],
    workload: &WorkloadSpec,
    plan: &NodePlan,
    parse_fraction: f64,
) -> Vec<Task> {
    build_routing_tasks(config, routed, workload, Some(plan), parse_fraction)
}

/// Compute seconds of the split and join bookkeeping tasks of a per-page
/// delegation DAG: cheap CPU work (page-range bookkeeping and text
/// stitching), deliberately non-zero so the DAG's ordering is visible in
/// schedules.
const SPLIT_JOIN_SECONDS: f64 = 0.05;

/// Build the page-level task DAG of a cascade campaign with node-affinity
/// placement. Per document:
///
/// * an **extract** task (base parser, CPU) — every document pays it;
/// * for a whole-document upgrade, one **parse** task depending on the
///   extract, exactly like [`tasks_for_routing_with_affinity`];
/// * for a per-page delegation
///   ([`ParserChoice::upgraded_pages`] non-empty), a **split** task
///   depending on the extract, one **page** task per delegated page (each
///   [`hpcsim::Task::depends_on`] the split, costed at the upgrade parser's
///   single-page rate), and a **join** task depending on *every* page task
///   — the join can never complete before the last of its page children,
///   which the cascade equivalence suite asserts against executor
///   schedules.
///
/// All of a document's parse-side tasks (split, pages, join, or the single
/// whole-document parse) share the document's [`hpcsim::TaskGroup`] with
/// [`GroupRole::Parse`], so pair co-scheduling anchors the whole subgraph —
/// and the stitching join — next to its extract partner. Task ids are
/// stride-based (`doc_id * stride + offset`), deterministic, and collision
/// free for any delegation pattern in the batch.
pub fn tasks_for_cascade_with_affinity(
    frontier: &ParserFrontier,
    choices: &[ParserChoice],
    workload: &WorkloadSpec,
    plan: &NodePlan,
) -> Vec<Task> {
    let base_model = CostModel::for_parser(frontier.base());
    let base_cost = base_model.document_cost(workload.pages_per_doc, 0.3);
    let max_pages = choices.iter().map(|c| c.upgraded_pages.len()).max().unwrap_or(0);
    // extract + split + pages + join, with room for the whole-doc parse.
    let stride = (max_pages as u64) + 4;
    let page_mb = workload.mb_per_doc / (workload.pages_per_doc.max(1) as f64);

    let mut tasks = Vec::new();
    let mut parse_index = 0usize;
    for (extract_index, choice) in choices.iter().enumerate() {
        let base_id = choice.doc_id * stride;
        let extraction = Task::new(base_id, SlotKind::Cpu, base_cost.cpu_seconds)
            .with_input_mb(workload.mb_per_doc)
            .with_label(frontier.base().name())
            .with_preferred_node(plan.preferred_node(Stage::Extract, extract_index))
            .with_group(choice.doc_id, GroupRole::Extract);
        tasks.push(extraction);
        if !choice.is_upgraded() {
            continue;
        }
        let parser = choice.parser;
        let model = CostModel::for_parser(parser);
        let slot = if parser.requires_gpu() { SlotKind::Gpu } else { SlotKind::Cpu };
        let node = plan.preferred_node(Stage::Parse, parse_index);
        parse_index += 1;
        let parse_side =
            |task: Task| task.with_preferred_node(node).with_group(choice.doc_id, GroupRole::Parse);
        if choice.upgraded_pages.is_empty() {
            // Whole-document upgrade: the classic single parse task.
            let cost = model.document_cost(workload.pages_per_doc, 0.3);
            let compute = if parser.requires_gpu() { cost.gpu_seconds } else { cost.cpu_seconds };
            let parse = Task::new(base_id + 1, slot, compute)
                .with_input_mb(workload.mb_per_doc)
                .with_cold_start(model.model_load_seconds)
                .with_label(parser.name())
                .with_dependency(base_id);
            tasks.push(parse_side(parse));
            continue;
        }
        // Per-page delegation: split → page tasks → join.
        let split = Task::new(base_id + 1, SlotKind::Cpu, SPLIT_JOIN_SECONDS)
            .with_label("page-split")
            .with_dependency(base_id);
        tasks.push(parse_side(split));
        let page_cost = model.document_cost(1, 0.3);
        let page_compute = if parser.requires_gpu() { page_cost.gpu_seconds } else { page_cost.cpu_seconds };
        let join_id = base_id + 2 + choice.upgraded_pages.len() as u64;
        let mut join = Task::new(join_id, SlotKind::Cpu, SPLIT_JOIN_SECONDS).with_label("page-join");
        for (offset, _page) in choice.upgraded_pages.iter().enumerate() {
            let page_id = base_id + 2 + offset as u64;
            let page_task = Task::new(page_id, slot, page_compute)
                .with_input_mb(page_mb)
                .with_cold_start(model.model_load_seconds)
                .with_label(parser.name())
                .with_dependency(base_id + 1);
            tasks.push(parse_side(page_task));
            join = join.with_dependency(page_id);
        }
        tasks.push(parse_side(join));
    }
    tasks
}

/// Shared task construction: with a [`NodePlan`] tasks carry their staging
/// node, the per-document pair group, and the parse→extract dependency
/// edge; without one they are placement-indifferent *and* order-free (the
/// legacy throughput-model construction, kept dependency-free so fixed-α
/// scaling sweeps stay comparable with the seed's Figure 5 numbers). One
/// code path, so the affinity and non-affinity simulations always stay
/// comparable.
///
/// Every task joins its document's group even when the document routes
/// cheap and the group stays a singleton: the group role is what attributes
/// the task to a stage in the executor's `StageTimings` (which the closed
/// loop divides across *all* documents of a wave), and a singleton anchors
/// trivially — its lone member never counts as a co-located or split pair.
///
/// `parse_fraction` scales the high-quality parse compute (per-page
/// delegation's task-level model); `1.0` is a bitwise no-op.
fn build_routing_tasks(
    config: &AdaParseConfig,
    routed: &[RoutedDocument],
    workload: &WorkloadSpec,
    plan: Option<&NodePlan>,
    parse_fraction: f64,
) -> Vec<Task> {
    let cheap_model = CostModel::for_parser(config.default_parser);
    let expensive_model = CostModel::for_parser(config.high_quality_parser);
    let cheap = cheap_model.document_cost(workload.pages_per_doc, 0.3);
    let expensive = expensive_model.document_cost(workload.pages_per_doc, 0.3);
    let place = |task: Task, stage: Stage, index: usize, doc_id: u64| match plan {
        Some(plan) => {
            let role = match stage {
                Stage::Extract => GroupRole::Extract,
                Stage::Parse => GroupRole::Parse,
            };
            task.with_preferred_node(plan.preferred_node(stage, index)).with_group(doc_id, role)
        }
        None => task,
    };
    let mut tasks = Vec::with_capacity(routed.len() * 2);
    let mut parse_index = 0usize;
    for (extract_index, decision) in routed.iter().enumerate() {
        let extraction = Task::new(decision.doc_id * 2, SlotKind::Cpu, cheap.cpu_seconds)
            .with_input_mb(workload.mb_per_doc)
            .with_label(config.default_parser.name());
        tasks.push(place(extraction, Stage::Extract, extract_index, decision.doc_id));
        if decision.parser == config.high_quality_parser {
            let slot = if config.high_quality_parser.requires_gpu() { SlotKind::Gpu } else { SlotKind::Cpu };
            let compute = if config.high_quality_parser.requires_gpu() {
                expensive.gpu_seconds
            } else {
                expensive.cpu_seconds
            } * parse_fraction;
            let mut parse = Task::new(decision.doc_id * 2 + 1, slot, compute)
                .with_input_mb(workload.mb_per_doc)
                .with_cold_start(expensive_model.model_load_seconds)
                .with_label(config.high_quality_parser.name());
            if plan.is_some() {
                // A document's parse consumes its extraction's output: the
                // dependency-aware engine must not start it earlier.
                parse = parse.with_dependency(decision.doc_id * 2);
            }
            tasks.push(place(parse, Stage::Parse, parse_index, decision.doc_id));
            parse_index += 1;
        }
    }
    tasks
}

/// Build tasks for an AdaParse campaign by actually routing `documents`
/// through stages 1–2 of the given [`CampaignPipeline`] — the faithful
/// (rather than α-quota-approximated) Figure 5 construction.
pub fn tasks_for_campaign(
    engine: &AdaParseEngine,
    pipeline: &CampaignPipeline,
    documents: &[Document],
    seed: u64,
    workload: &WorkloadSpec,
) -> Vec<Task> {
    let routed = pipeline.route(engine, documents, seed);
    tasks_for_routing(engine.config(), &routed, workload)
}

/// Build tasks for an AdaParse campaign by *assuming* an α-fraction goes to
/// the high-quality parser (used for large synthetic scaling sweeps where
/// running the router per document would be wasteful).
pub fn tasks_for_alpha(config: &AdaParseConfig, workload: &WorkloadSpec) -> Vec<Task> {
    let quota = ((workload.documents as f64) * config.alpha.clamp(0.0, 1.0)).floor() as usize;
    let routed: Vec<RoutedDocument> = (0..workload.documents)
        .map(|i| RoutedDocument {
            doc_id: i as u64,
            parser: if i < quota { config.high_quality_parser } else { config.default_parser },
            predicted_improvement: 0.0,
            cls1_invalid: false,
        })
        .collect();
    tasks_for_routing(config, &routed, workload)
}

/// Throughput (documents per second) of one parser at a given node count.
pub fn parser_throughput_at_scale(
    kind: ParserKind,
    workload: &WorkloadSpec,
    nodes: usize,
    executor: &ExecutorConfig,
) -> f64 {
    let tasks = tasks_for_parser(kind, workload);
    let report =
        WorkflowExecutor::new(*executor).run(&tasks, &ClusterConfig::polaris(nodes), &LustreModel::default());
    // One task per document for fixed parsers.
    report.throughput_per_second
}

/// Throughput (documents per second) of an AdaParse configuration at a given
/// node count, using the α-quota task construction.
pub fn adaparse_throughput_at_scale(
    config: &AdaParseConfig,
    workload: &WorkloadSpec,
    nodes: usize,
    executor: &ExecutorConfig,
) -> f64 {
    let tasks = tasks_for_alpha(config, workload);
    let report =
        WorkflowExecutor::new(*executor).run(&tasks, &ClusterConfig::polaris(nodes), &LustreModel::default());
    if report.makespan_seconds > 0.0 {
        workload.documents as f64 / report.makespan_seconds
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_workload() -> WorkloadSpec {
        WorkloadSpec { documents: 400, pages_per_doc: 10, mb_per_doc: 1.5 }
    }

    #[test]
    fn fixed_parser_tasks_have_the_right_slot_kind() {
        let w = small_workload();
        let nougat = tasks_for_parser(ParserKind::Nougat, &w);
        assert_eq!(nougat.len(), w.documents);
        assert!(nougat.iter().all(|t| t.slot == SlotKind::Gpu));
        assert!(nougat[0].cold_start_seconds > 10.0);
        let pymupdf = tasks_for_parser(ParserKind::PyMuPdf, &w);
        assert!(pymupdf.iter().all(|t| t.slot == SlotKind::Cpu));
        assert!(pymupdf[0].compute_seconds < nougat[0].compute_seconds);
    }

    #[test]
    fn alpha_quota_controls_the_number_of_gpu_tasks() {
        let w = small_workload();
        let config = AdaParseConfig { alpha: 0.05, ..Default::default() };
        let tasks = tasks_for_alpha(&config, &w);
        let gpu_tasks = tasks.iter().filter(|t| t.slot == SlotKind::Gpu).count();
        assert_eq!(gpu_tasks, 20);
        assert_eq!(tasks.len(), w.documents + gpu_tasks);
    }

    #[test]
    fn scaling_order_matches_figure_5() {
        let w = small_workload();
        let executor = ExecutorConfig::default();
        let nodes = 4;
        let pymupdf = parser_throughput_at_scale(ParserKind::PyMuPdf, &w, nodes, &executor);
        let nougat = parser_throughput_at_scale(ParserKind::Nougat, &w, nodes, &executor);
        let marker = parser_throughput_at_scale(ParserKind::Marker, &w, nodes, &executor);
        let adaparse = adaparse_throughput_at_scale(
            &AdaParseConfig { alpha: 0.05, ..Default::default() },
            &w,
            nodes,
            &executor,
        );
        assert!(pymupdf > adaparse, "extraction is fastest: {pymupdf} vs {adaparse}");
        assert!(adaparse > nougat, "AdaParse beats Nougat: {adaparse} vs {nougat}");
        assert!(nougat > marker, "Nougat beats Marker: {nougat} vs {marker}");
        // AdaParse improves on Nougat by a large factor (the paper reports 17×).
        assert!(adaparse / nougat > 4.0, "ratio = {}", adaparse / nougat);
    }

    #[test]
    fn affinity_tasks_carry_plan_nodes_and_stay_local_on_matching_clusters() {
        // Small enough that no fleet queues (spilling off-node is *allowed*
        // once queueing beats the penalty; with free slots it never is).
        let w = WorkloadSpec { documents: 60, pages_per_doc: 10, mb_per_doc: 1.5 };
        let config = AdaParseConfig { alpha: 0.05, ..Default::default() };
        let quota = ((w.documents as f64) * config.alpha).floor() as usize;
        let routed: Vec<RoutedDocument> = (0..w.documents)
            .map(|i| RoutedDocument {
                doc_id: i as u64,
                parser: if i < quota { config.high_quality_parser } else { config.default_parser },
                predicted_improvement: 0.0,
                cls1_invalid: false,
            })
            .collect();
        let plan = NodePlan { extract_nodes: 3, parse_nodes: 1 };
        let tasks = tasks_for_routing_with_affinity(&config, &routed, &w, &plan);
        assert_eq!(tasks.len(), w.documents + quota);
        // Extraction tasks cycle over nodes 0..3, parse tasks pin to node 3;
        // parse tasks depend on their extract partner, extractions on
        // nothing.
        for task in &tasks {
            let node = task.preferred_node.expect("every task carries its staging node");
            match task.slot {
                SlotKind::Cpu => assert!(node < 3),
                SlotKind::Gpu => assert_eq!(node, 3),
            }
            if task.id % 2 == 1 {
                assert_eq!(task.depends_on, vec![task.id - 1]);
            } else {
                assert!(task.depends_on.is_empty());
            }
        }
        // The plain (plan-free) construction stays order-free: it is the
        // legacy throughput model the fixed-α scaling sweeps are built on.
        let plain = tasks_for_routing(&config, &routed, &w);
        assert!(plain.iter().all(|t| t.depends_on.is_empty()));
        // On a cluster shaped like the plan, scheduling honors the affinity.
        let report = WorkflowExecutor::new(ExecutorConfig::default()).run(
            &tasks,
            &ClusterConfig::polaris(plan.total()),
            &LustreModel::default(),
        );
        assert_eq!(report.tasks_completed, tasks.len());
        assert_eq!(report.non_local_tasks, 0, "a matching cluster never pays the locality penalty");
    }

    #[test]
    fn more_nodes_increase_adaparse_throughput() {
        let w = small_workload();
        let config = AdaParseConfig { alpha: 0.05, ..Default::default() };
        let executor = ExecutorConfig::default();
        let one = adaparse_throughput_at_scale(&config, &w, 1, &executor);
        let four = adaparse_throughput_at_scale(&config, &w, 4, &executor);
        assert!(four > one, "{four} vs {one}");
    }
}
