//! AdaParse: the adaptive parallel PDF parsing and resource scaling engine.
//!
//! This crate is the paper's primary contribution: a meta-parser that routes
//! every document to the parser most likely to produce accurate text, subject
//! to a compute budget, and a staged parallel pipeline that runs that routing
//! as a large campaign.
//!
//! # Architecture: the staged campaign pipeline
//!
//! A campaign flows through four explicit stages (see [`campaign`]):
//!
//! ```text
//!             ┌────────────┐   ┌───────────┐   ┌────────────┐   ┌────────────┐
//!  documents ─► ExtractStage├──►│RouteStage ├──►│ ParseStage ├──►│ ScoreStage ├─► CampaignResult
//!             │ (parallel)  │   │(sequential│   │ (parallel) │   │ (parallel) │      + RecordSink
//!             └────────────┘   │  budget)  │   └────────────┘   └────────────┘
//!                              └───────────┘
//! ```
//!
//! * **Extract** — SPDF round-trip plus a cheap first-page extraction with
//!   the default parser; produces the router's per-document features.
//! * **Route** — CLS I validity, then CLS II (FastText variant) or CLS III
//!   (LLM variant) improvement prediction, then the Appendix C per-batch
//!   budget optimizer caps the high-quality fraction at α.
//! * **Parse** — each document runs its assigned parser, drawn from a shared
//!   immutable [`parsersim::ParserPool`] (each parser constructed once).
//! * **Score** — BLEU/ROUGE/CAR/coverage against ground truth plus resource
//!   accounting; records stream to a [`RecordSink`] in document order.
//!
//! The parallel stages run over shards of the input on a `rayon` thread pool
//! ([`PipelineConfig`] sets worker count and shard size). Per-document RNG
//! streams are keyed by `seed ^ doc_id` and the final fold is in input order,
//! so the result is **bitwise identical for every worker count** — the
//! pipeline scales without changing a single output bit. Parser errors are
//! never silently swallowed: [`CampaignFailures`] counts them per stage.
//!
//! Module map:
//!
//! * [`config`] — the engine configuration (variant, α budget, batch size),
//! * [`budget`] — the Appendix C constrained-budget optimizer (per-batch and
//!   global),
//! * [`engine`] — configuration + training + the hierarchical router
//!   (CLS I → II → III); campaign entry points delegate to the pipeline,
//! * [`campaign`] — the staged parallel pipeline described above, with two
//!   routing modes: [`RoutingMode::GlobalBatch`] (classic two-phase) and
//!   [`RoutingMode::Streaming`] (windowed selection with extract/parse
//!   overlap),
//! * [`scaling`] — the resource-scaling engine: the streaming
//!   [`WindowedSelector`], the feedback-driven [`ScalingController`]
//!   that reallocates workers (and `hpcsim` nodes) between stages — driven
//!   by simulated time, never wall time — the [`ObservedCosts`] ledger
//!   feedback that tightens or loosens the effective α as measured costs
//!   diverge from plan, and the fully closed, *waveless* simulation loop
//!   ([`scaling::simloop`]: one persistent `hpcsim` executor session whose
//!   slots, warm pools, and pair anchors survive across decision epochs),
//! * [`output`] — JSONL records, [`RecordSink`], in-memory and streaming
//!   JSONL sinks,
//! * [`hpc`] — the bridge turning routed documents into `hpcsim` tasks so
//!   multi-node throughput (Figure 5) and GPU utilization (Figure 4) can be
//!   simulated, including node-affinity task placement from a
//!   [`scaling::NodePlan`] and parse→extract dependency edges for the
//!   dependency-aware engine.
//!
//! # Example
//!
//! ```
//! use adaparse::{AdaParseConfig, AdaParseEngine, CampaignPipeline, PipelineConfig};
//! use scicorpus::{Corpus, GeneratorConfig};
//!
//! // A small corpus with a train/test split.
//! let corpus = Corpus::generate(&GeneratorConfig {
//!     n_documents: 12,
//!     seed: 3,
//!     min_pages: 1,
//!     max_pages: 2,
//!     ..Default::default()
//! });
//! let train: Vec<_> = corpus.train().into_iter().cloned().collect();
//! let test: Vec<_> = corpus.test().into_iter().cloned().collect();
//!
//! // Train the router and run a campaign through the parallel pipeline.
//! let mut engine = AdaParseEngine::new(AdaParseConfig::default());
//! engine.train_on_corpus(&train, 7);
//! let pipeline = CampaignPipeline::new(PipelineConfig { workers: 2, shard_size: 4, ..Default::default() });
//! let result = pipeline.run(&engine, &test, 11);
//! assert_eq!(result.quality.documents, test.len());
//! // Identical to the engine's default (sequential-equivalent) entry point.
//! assert_eq!(result, engine.parse_documents(&test, 11));
//!
//! // Streaming mode: windowed selection + extract/parse overlap. Bitwise
//! // identical across worker counts too.
//! let streaming = CampaignPipeline::new(PipelineConfig::streaming(2, 4));
//! assert_eq!(streaming.run(&engine, &test, 11).quality.documents, test.len());
//! ```

#![deny(missing_docs)]

pub mod budget;
pub mod campaign;
pub mod cascade;
pub mod config;
pub mod engine;
pub mod hpc;
pub mod output;
pub mod scaling;
pub mod serve;
pub mod stats;

pub use budget::{assign_k, assign_k_batched, assign_k_global, KAssignment};
pub use budget::{
    max_affordable_alpha, optimality_gap, select_batch, select_global, windowed_optimality_gap,
};
pub use campaign::{
    CampaignBudget, CampaignFailures, CampaignPipeline, CascadeReport, PipelineConfig, RoutingInput,
    RoutingMode,
};
pub use cascade::{
    cascade_gains, delegated_pages, CascadeConfig, CascadeFeatures, CascadeSelector, ParserChoice,
    RoutingGranularity,
};
pub use config::{AdaParseConfig, Variant};
pub use engine::{AdaParseEngine, CampaignQuality, CampaignResult, RoutedDocument};
pub use hpc::{
    adaparse_throughput_at_scale, parser_throughput_at_scale, tasks_for_cascade_with_affinity,
    tasks_for_routing_with_affinity, tasks_for_routing_with_affinity_scaled, WorkloadSpec,
};
pub use output::{JsonlSink, MemorySink, ParsedRecord, RecordSink};
pub use scaling::{
    planned_costs, run_closed_loop, Allocation, AllocationEvent, AutoscaleConfig, BudgetLedger, ClassLedger,
    ControllerConfig, FleetEvent, NodePlan, ObservedCosts, ScalingController, SimLoopConfig, SimLoopReport,
    SimWave, SloAutoscaler, Stage, StageSample, WaveCosts, WaveStats, WindowedSelector, DEFAULT_PRIOR_WEIGHT,
};
pub use serve::{
    run_service, run_service_instrumented, DocArrival, ServeConfig, ServeReport, SoakStats, TenantRegistry,
    TenantServeReport, TenantSpec, TenantTrace, BY_PAGE_PLANNED_FRACTION,
};
pub use stats::{nearest_rank_percentile, LatencyLedger, LatencySummary};
