//! AdaParse: the adaptive parallel PDF parsing and resource scaling engine.
//!
//! This crate is the paper's primary contribution: a meta-parser that routes
//! every document to the parser most likely to produce accurate text, subject
//! to a compute budget, and the machinery to run that routing as a large
//! parallel campaign.
//!
//! * [`config`] — the engine configuration (variant, α budget, batch size),
//! * [`budget`] — the Appendix C constrained-budget optimizer (per-batch and
//!   global),
//! * [`engine`] — the hierarchical routing pipeline (CLS I → II → III) plus
//!   the campaign driver that parses corpora and scores the result,
//! * [`output`] — JSONL output records for parsed documents,
//! * [`hpc`] — the bridge turning routed documents into `hpcsim` tasks so
//!   multi-node throughput (Figure 5) and GPU utilization (Figure 4) can be
//!   simulated.
//!
//! # Example
//!
//! ```no_run
//! use adaparse::{AdaParseConfig, AdaParseEngine};
//! use scicorpus::{Corpus, GeneratorConfig};
//!
//! let corpus = Corpus::generate(&GeneratorConfig { n_documents: 50, seed: 3, ..Default::default() });
//! let mut engine = AdaParseEngine::new(AdaParseConfig::default());
//! engine.train_on_corpus(corpus.train().into_iter().cloned().collect::<Vec<_>>().as_slice(), 7);
//! let result = engine.parse_documents(&corpus.test().into_iter().cloned().collect::<Vec<_>>(), 11);
//! println!("BLEU = {:.3}", result.quality.bleu);
//! ```

pub mod budget;
pub mod config;
pub mod engine;
pub mod hpc;
pub mod output;

pub use budget::{max_affordable_alpha, select_batch, select_global};
pub use config::{AdaParseConfig, Variant};
pub use engine::{AdaParseEngine, CampaignQuality, CampaignResult, RoutedDocument};
pub use hpc::{adaparse_throughput_at_scale, parser_throughput_at_scale, WorkloadSpec};
pub use output::ParsedRecord;
