//! JSONL output records.
//!
//! Large parsing campaigns write one JSON object per document to line-
//! delimited files (the paper's pipeline emits JSONL for LLM data curation).
//! Serialization is hand-rolled to keep the dependency set to the approved
//! crates; only the small, flat record type below needs it.

use parsersim::ParserKind;
use serde::{Deserialize, Serialize};

/// One parsed document as written to the campaign's JSONL output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParsedRecord {
    /// Document identifier.
    pub doc_id: u64,
    /// Parser that produced the accepted text.
    pub parser: ParserKind,
    /// The parsed text.
    pub text: String,
    /// Page coverage of the parse.
    pub coverage: f64,
    /// BLEU against ground truth (only available in benchmark runs).
    pub bleu: f64,
}

impl ParsedRecord {
    /// Serialize to a single JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"doc_id\":{},\"parser\":\"{}\",\"coverage\":{:.4},\"bleu\":{:.4},\"text\":\"{}\"}}",
            self.doc_id,
            self.parser.name(),
            self.coverage,
            self.bleu,
            escape_json(&self.text)
        )
    }
}

/// Serialize a batch of records to JSONL.
pub fn to_jsonl(records: &[ParsedRecord]) -> String {
    let mut out = String::new();
    for record in records {
        out.push_str(&record.to_json_line());
        out.push('\n');
    }
    out
}

fn escape_json(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_is_well_formed() {
        let record = ParsedRecord {
            doc_id: 7,
            parser: ParserKind::Nougat,
            text: "line one\nwith \"quotes\" and \\slashes\\".to_string(),
            coverage: 0.93,
            bleu: 0.48,
        };
        let line = record.to_json_line();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"parser\":\"Nougat\""));
        assert!(line.contains("\\n"));
        assert!(line.contains("\\\""));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn jsonl_has_one_line_per_record() {
        let records: Vec<ParsedRecord> = (0..3)
            .map(|i| ParsedRecord {
                doc_id: i,
                parser: ParserKind::PyMuPdf,
                text: format!("text {i}"),
                coverage: 1.0,
                bleu: 0.5,
            })
            .collect();
        let jsonl = to_jsonl(&records);
        assert_eq!(jsonl.lines().count(), 3);
        assert!(to_jsonl(&[]).is_empty());
    }

    #[test]
    fn control_characters_are_escaped() {
        let record = ParsedRecord {
            doc_id: 1,
            parser: ParserKind::Pypdf,
            text: "form\u{c}feed and \t tab".to_string(),
            coverage: 1.0,
            bleu: 0.1,
        };
        let line = record.to_json_line();
        assert!(line.contains("\\u000c"));
        assert!(line.contains("\\t"));
    }
}
