//! JSONL output records and the campaign's [`RecordSink`] abstraction.
//!
//! Large parsing campaigns write one JSON object per document to line-
//! delimited files (the paper's pipeline emits JSONL for LLM data curation).
//! Serialization is hand-rolled to keep the dependency set to the approved
//! crates; only the small, flat record type below needs it.
//!
//! The campaign pipeline hands each finished [`ParsedRecord`] to a
//! [`RecordSink`] in document order. [`MemorySink`] buffers them (the classic
//! `CampaignResult::records` shape); [`JsonlSink`] streams them to any
//! writer, so a million-document campaign keeps at most one wave
//! (workers × shard size documents) of parsed output text in memory.

use std::io::Write;

use parsersim::ParserKind;
use serde::{Deserialize, Serialize};

/// One parsed document as written to the campaign's JSONL output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParsedRecord {
    /// Document identifier.
    pub doc_id: u64,
    /// Parser that produced the accepted text.
    pub parser: ParserKind,
    /// The parsed text.
    pub text: String,
    /// Page coverage of the parse.
    pub coverage: f64,
    /// BLEU against ground truth (only available in benchmark runs).
    pub bleu: f64,
}

impl ParsedRecord {
    /// Serialize to a single JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"doc_id\":{},\"parser\":\"{}\",\"coverage\":{:.4},\"bleu\":{:.4},\"text\":\"{}\"}}",
            self.doc_id,
            self.parser.name(),
            self.coverage,
            self.bleu,
            escape_json(&self.text)
        )
    }
}

/// Serialize a batch of records to JSONL.
pub fn to_jsonl(records: &[ParsedRecord]) -> String {
    let mut out = String::new();
    for record in records {
        out.push_str(&record.to_json_line());
        out.push('\n');
    }
    out
}

/// Destination for the stream of per-document campaign records.
///
/// Implementations receive records **in input (document) order**, one per
/// parsed document, regardless of how many workers the pipeline ran with.
pub trait RecordSink {
    /// Consume one record. Errors abort the campaign's final fold.
    fn accept(&mut self, record: ParsedRecord) -> std::io::Result<()>;
}

/// Buffers records in memory.
#[derive(Debug, Default)]
pub struct MemorySink {
    records: Vec<ParsedRecord>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// The buffered records, in document order.
    pub fn into_records(self) -> Vec<ParsedRecord> {
        self.records
    }
}

impl RecordSink for MemorySink {
    fn accept(&mut self, record: ParsedRecord) -> std::io::Result<()> {
        self.records.push(record);
        Ok(())
    }
}

/// Streams records as JSONL to a writer (file, socket, `Vec<u8>`, …).
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    written: usize,
}

impl<W: Write> JsonlSink<W> {
    /// Wrap a writer.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer, written: 0 }
    }

    /// Number of records written so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Flush and return the underlying writer.
    pub fn into_inner(mut self) -> std::io::Result<W> {
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> RecordSink for JsonlSink<W> {
    fn accept(&mut self, record: ParsedRecord) -> std::io::Result<()> {
        self.writer.write_all(record.to_json_line().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.written += 1;
        Ok(())
    }
}

fn escape_json(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_is_well_formed() {
        let record = ParsedRecord {
            doc_id: 7,
            parser: ParserKind::Nougat,
            text: "line one\nwith \"quotes\" and \\slashes\\".to_string(),
            coverage: 0.93,
            bleu: 0.48,
        };
        let line = record.to_json_line();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"parser\":\"Nougat\""));
        assert!(line.contains("\\n"));
        assert!(line.contains("\\\""));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn jsonl_has_one_line_per_record() {
        let records: Vec<ParsedRecord> = (0..3)
            .map(|i| ParsedRecord {
                doc_id: i,
                parser: ParserKind::PyMuPdf,
                text: format!("text {i}"),
                coverage: 1.0,
                bleu: 0.5,
            })
            .collect();
        let jsonl = to_jsonl(&records);
        assert_eq!(jsonl.lines().count(), 3);
        assert!(to_jsonl(&[]).is_empty());
    }

    #[test]
    fn memory_sink_preserves_order() {
        let mut sink = MemorySink::new();
        for i in 0..5 {
            sink.accept(ParsedRecord {
                doc_id: i,
                parser: ParserKind::PyMuPdf,
                text: String::new(),
                coverage: 1.0,
                bleu: 0.0,
            })
            .unwrap();
        }
        let ids: Vec<u64> = sink.into_records().iter().map(|r| r.doc_id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn jsonl_sink_streams_one_line_per_record() {
        let mut sink = JsonlSink::new(Vec::new());
        for i in 0..3 {
            sink.accept(ParsedRecord {
                doc_id: i,
                parser: ParserKind::Nougat,
                text: format!("text {i}\nsecond line"),
                coverage: 0.5,
                bleu: 0.25,
            })
            .unwrap();
        }
        assert_eq!(sink.written(), 3);
        let bytes = sink.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 3);
        assert!(text.ends_with('\n'));
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn control_characters_are_escaped() {
        let record = ParsedRecord {
            doc_id: 1,
            parser: ParserKind::Pypdf,
            text: "form\u{c}feed and \t tab".to_string(),
            coverage: 1.0,
            bleu: 0.1,
        };
        let line = record.to_json_line();
        assert!(line.contains("\\u000c"));
        assert!(line.contains("\\t"));
    }
}
