//! SLO-driven fleet autoscaling for the serve layer.
//!
//! The [`ScalingController`](crate::scaling::ScalingController) splits a
//! *fixed* fleet between stages; this
//! module decides how big the fleet should be in the first place. Each
//! serve epoch the [`SloAutoscaler`] observes two signals — the worst
//! per-tenant ratio of achieved p99 time-to-parsed to its SLO target, and
//! the admission backlog per active slot — and moves the active node count
//! asymmetrically:
//!
//! * **Up, fast**: one epoch of SLO violation (`ratio > 1`) or of backlog
//!   above the pressure threshold grows the fleet by `step_up` nodes. Tail
//!   latency compounds while you hesitate.
//! * **Down, slow**: the fleet shrinks by `step_down` only after
//!   `down_patience` *consecutive* epochs with every tenant comfortably
//!   under target (`ratio < headroom`) and a quiet backlog. This
//!   hysteresis keeps a bursty trace from whipsawing the fleet.
//!
//! Decisions are pure functions of the observation stream, so a replayed
//! serve run replays its fleet trace bit for bit. Every change is recorded
//! as a [`FleetEvent`] for reports and ablations.

/// Tunables for [`SloAutoscaler`]. `min_nodes..=max_nodes` bounds the
/// fleet; see the module docs for the up/down asymmetry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscaleConfig {
    /// Smallest fleet the autoscaler will ever request (≥ 1).
    pub min_nodes: usize,
    /// Largest fleet the autoscaler will ever request.
    pub max_nodes: usize,
    /// Nodes added per scale-up decision.
    pub step_up: usize,
    /// Nodes removed per scale-down decision.
    pub step_down: usize,
    /// Consecutive healthy epochs required before any scale-down.
    pub down_patience: usize,
    /// A tenant p99/SLO ratio below this counts as "comfortable"; only
    /// then does the healthy streak advance. Must be < 1.
    pub headroom: f64,
    /// Admitted-but-unfinished documents per active slot above which the
    /// fleet scales up even with no SLO violation yet (backlog is a
    /// leading indicator; p99 is a trailing one).
    pub backlog_per_slot_up: f64,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        AutoscaleConfig {
            min_nodes: 1,
            max_nodes: 8,
            step_up: 2,
            step_down: 1,
            down_patience: 3,
            headroom: 0.6,
            backlog_per_slot_up: 4.0,
        }
    }
}

/// One fleet-size change: which epoch, when, from/to how many nodes, and
/// the signals that drove it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetEvent {
    /// Serve epoch index of the decision.
    pub epoch: usize,
    /// Simulated time of the decision boundary.
    pub at_seconds: f64,
    /// Active nodes before the change.
    pub from_nodes: usize,
    /// Active nodes after the change.
    pub to_nodes: usize,
    /// Worst per-tenant achieved-p99 / SLO ratio observed this epoch
    /// (0 when no tenant has completions yet).
    pub worst_slo_ratio: f64,
    /// Admission backlog per active slot observed this epoch.
    pub backlog_per_slot: f64,
}

/// The SLO-driven autoscaler. Feed it one observation per serve epoch via
/// [`SloAutoscaler::observe`]; read the current fleet with
/// [`SloAutoscaler::nodes`] and the change log with
/// [`SloAutoscaler::history`].
#[derive(Debug, Clone)]
pub struct SloAutoscaler {
    config: AutoscaleConfig,
    nodes: usize,
    healthy_streak: usize,
    history: Vec<FleetEvent>,
}

impl SloAutoscaler {
    /// Create an autoscaler starting at `initial_nodes` (clamped into the
    /// configured bounds).
    ///
    /// # Panics
    ///
    /// Panics if the config is inconsistent: `min_nodes` of zero,
    /// `max_nodes < min_nodes`, or `headroom` outside `(0, 1)`.
    pub fn new(config: AutoscaleConfig, initial_nodes: usize) -> Self {
        assert!(config.min_nodes >= 1, "min_nodes must be at least 1");
        assert!(
            config.max_nodes >= config.min_nodes,
            "max_nodes ({}) must be >= min_nodes ({})",
            config.max_nodes,
            config.min_nodes
        );
        assert!(
            config.headroom > 0.0 && config.headroom < 1.0,
            "headroom must be in (0, 1), got {}",
            config.headroom
        );
        let nodes = initial_nodes.clamp(config.min_nodes, config.max_nodes);
        SloAutoscaler { config, nodes, healthy_streak: 0, history: Vec::new() }
    }

    /// Current fleet size in nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Every fleet-size change so far, in decision order.
    pub fn history(&self) -> &[FleetEvent] {
        &self.history
    }

    /// Observe one epoch boundary and return the fleet size to run the
    /// next epoch with. `worst_slo_ratio` is the maximum over tenants of
    /// achieved p99 / SLO target (0 when nothing has completed yet);
    /// `backlog_per_slot` is admitted-but-unfinished documents divided by
    /// active slots.
    pub fn observe(
        &mut self,
        epoch: usize,
        at_seconds: f64,
        worst_slo_ratio: f64,
        backlog_per_slot: f64,
    ) -> usize {
        let pressured = worst_slo_ratio > 1.0 || backlog_per_slot > self.config.backlog_per_slot_up;
        let comfortable = worst_slo_ratio < self.config.headroom
            && backlog_per_slot <= self.config.backlog_per_slot_up * 0.5;
        let target = if pressured {
            self.healthy_streak = 0;
            (self.nodes + self.config.step_up).min(self.config.max_nodes)
        } else if comfortable {
            self.healthy_streak += 1;
            if self.healthy_streak >= self.config.down_patience {
                self.healthy_streak = 0;
                self.nodes.saturating_sub(self.config.step_down).max(self.config.min_nodes)
            } else {
                self.nodes
            }
        } else {
            // Neither pressured nor comfortable: hold, and restart the
            // patience clock so a borderline epoch can't sneak a shrink.
            self.healthy_streak = 0;
            self.nodes
        };
        if target != self.nodes {
            self.history.push(FleetEvent {
                epoch,
                at_seconds,
                from_nodes: self.nodes,
                to_nodes: target,
                worst_slo_ratio,
                backlog_per_slot,
            });
            self.nodes = target;
        }
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scaler() -> SloAutoscaler {
        SloAutoscaler::new(AutoscaleConfig::default(), 2)
    }

    #[test]
    fn violation_scales_up_immediately() {
        let mut s = scaler();
        assert_eq!(s.observe(0, 10.0, 1.3, 0.0), 4);
        assert_eq!(s.history().len(), 1);
        assert_eq!(s.history()[0].from_nodes, 2);
        assert_eq!(s.history()[0].to_nodes, 4);
    }

    #[test]
    fn backlog_pressure_scales_up_without_a_violation() {
        let mut s = scaler();
        assert_eq!(s.observe(0, 10.0, 0.2, 9.0), 4);
    }

    #[test]
    fn scale_down_requires_consecutive_healthy_epochs() {
        let mut s = scaler();
        s.observe(0, 0.0, 1.5, 0.0); // up to 4
        assert_eq!(s.observe(1, 1.0, 0.1, 0.0), 4);
        assert_eq!(s.observe(2, 2.0, 0.1, 0.0), 4);
        // Third comfortable epoch in a row finally shrinks.
        assert_eq!(s.observe(3, 3.0, 0.1, 0.0), 3);
        // A borderline epoch resets the patience clock.
        assert_eq!(s.observe(4, 4.0, 0.8, 0.0), 3);
        assert_eq!(s.observe(5, 5.0, 0.1, 0.0), 3);
        assert_eq!(s.observe(6, 6.0, 0.1, 0.0), 3);
        assert_eq!(s.observe(7, 7.0, 0.1, 0.0), 2);
    }

    #[test]
    fn fleet_stays_inside_the_configured_bounds() {
        let mut s = scaler();
        for epoch in 0..10 {
            assert!(s.observe(epoch, epoch as f64, 2.0, 50.0) <= 8);
        }
        assert_eq!(s.nodes(), 8);
        let mut s = scaler();
        for epoch in 0..40 {
            assert!(s.observe(epoch, epoch as f64, 0.0, 0.0) >= 1);
        }
        assert_eq!(s.nodes(), 1);
    }

    #[test]
    fn identical_observation_streams_replay_identical_traces() {
        let observations =
            [(0.1, 0.0), (1.4, 2.0), (0.2, 0.1), (0.9, 5.0), (0.1, 0.0), (0.1, 0.0), (0.1, 0.0)];
        let run = |mut s: SloAutoscaler| {
            for (epoch, (ratio, backlog)) in observations.iter().enumerate() {
                s.observe(epoch, epoch as f64 * 7.0, *ratio, *backlog);
            }
            (s.nodes(), s.history().to_vec())
        };
        assert_eq!(run(scaler()), run(scaler()));
    }

    #[test]
    #[should_panic(expected = "max_nodes")]
    fn inverted_bounds_panic() {
        SloAutoscaler::new(AutoscaleConfig { min_nodes: 4, max_nodes: 2, ..Default::default() }, 2);
    }
}
