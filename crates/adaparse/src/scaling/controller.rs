//! The feedback-driven resource-scaling controller.
//!
//! Each wave of the streaming pipeline reports how long its extraction and
//! parsing stages ran and how much work remains ([`WaveStats`]); the
//! controller turns that into the next wave's worker [`Allocation`] under a
//! total-worker cap. Hysteresis keeps the loop stable: a stage must be the
//! bottleneck by more than a configurable ratio for a configurable number of
//! consecutive waves before a worker moves, and at most `step` workers move
//! at a time. The decision is a pure function of the controller's state and
//! the observed stats — replaying the same stat stream replays the same
//! allocation trace — while the *campaign result* never depends on the
//! allocation at all (worker counts only change wall-clock time).

use serde::{Deserialize, Serialize};

/// Pipeline stages the controller allocates workers across. Routing is a
/// cheap sequential pass and gets no dedicated workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stage {
    /// SPDF decode + first-page extraction + CLS scoring (CPU-bound).
    Extract,
    /// Assigned-parser runs + scoring (the expensive, possibly GPU-bound
    /// stage).
    Parse,
}

impl Stage {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Extract => "extract",
            Stage::Parse => "parse",
        }
    }
}

/// One stage's measurements for one wave.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageSample {
    /// Wall-clock seconds the stage spent on the wave.
    pub busy_seconds: f64,
    /// Documents the stage processed in the wave.
    pub items: usize,
}

impl StageSample {
    /// Documents per second (0 when the sample is degenerate).
    pub fn throughput(&self) -> f64 {
        if self.busy_seconds > 0.0 {
            self.items as f64 / self.busy_seconds
        } else {
            0.0
        }
    }
}

/// Everything the controller observes about one completed wave.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaveStats {
    /// Zero-based wave index.
    pub wave_index: usize,
    /// Extraction-stage sample (includes CLS scoring).
    pub extract: StageSample,
    /// Parse-stage sample (includes quality scoring).
    pub parse: StageSample,
    /// The *true* pending count after this wave: work items not yet done
    /// when the wave was observed. In the closed simulation loop this is
    /// documents not yet windowed **plus** session tasks still in flight
    /// at the observation boundary (stragglers from earlier epochs
    /// included — counting only the unwindowed remainder undercounts the
    /// backlog and freezes the allocation too early on a draining tail).
    pub queue_depth: usize,
}

/// Worker split across the two pipeline stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocation {
    /// Workers running extraction (+ CLS scoring).
    pub extract_workers: usize,
    /// Workers running parse (+ quality scoring).
    pub parse_workers: usize,
}

impl Allocation {
    /// Total workers in use.
    pub fn total(&self) -> usize {
        self.extract_workers + self.parse_workers
    }

    /// An even split of `total` workers (extract rounds down, both ≥ 1).
    pub fn even(total: usize) -> Self {
        let total = total.max(2);
        let extract = (total / 2).max(1);
        Allocation { extract_workers: extract, parse_workers: (total - extract).max(1) }
    }
}

/// Controller tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Total workers shared by both stages. Clamped to ≥ 2 (each stage keeps
    /// at least one worker so neither can starve).
    pub total_workers: usize,
    /// Minimum workers pinned to each stage.
    pub min_per_stage: usize,
    /// A stage must take more than `hysteresis ×` the other stage's wave
    /// time to count as the bottleneck (≥ 1.0).
    pub hysteresis: f64,
    /// Consecutive bottleneck waves required before a worker moves.
    pub patience: usize,
    /// Workers moved per adjustment.
    pub step: usize,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig { total_workers: 8, min_per_stage: 1, hysteresis: 1.25, patience: 2, step: 1 }
    }
}

impl ControllerConfig {
    /// A default-tuned controller config over `total` workers.
    pub fn for_workers(total: usize) -> Self {
        ControllerConfig { total_workers: total, ..Default::default() }
    }

    /// Clamp degenerate values.
    pub fn normalized(mut self) -> Self {
        self.total_workers = self.total_workers.max(2);
        self.min_per_stage = self.min_per_stage.clamp(1, self.total_workers / 2);
        self.hysteresis = if self.hysteresis.is_finite() { self.hysteresis.max(1.0) } else { 1.0 };
        self.patience = self.patience.max(1);
        self.step = self.step.max(1);
        self
    }
}

/// One allocation change, kept in the controller's trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AllocationEvent {
    /// Wave whose stats triggered the change.
    pub wave_index: usize,
    /// Campaign time of the change in seconds: simulated time when the
    /// controller is driven by a clock via
    /// [`ScalingController::observe_at`] (e.g. an
    /// [`hpcsim::SimClock`] advanced by wave makespans), otherwise the
    /// controller's internal accumulation of observed wave seconds. Either
    /// way it is derived purely from the observed stats, never read from
    /// the host's clock, so a fixed stat stream (recorded or simulated)
    /// replays its trace bit for bit; stats that are themselves wall-clock
    /// measurements vary run to run, and so do their traces.
    pub at_seconds: f64,
    /// Stage that gained `ControllerConfig::step` workers.
    pub gained: Stage,
    /// The allocation after the change.
    pub allocation: Allocation,
}

/// Node split for an `hpcsim` cluster mirroring the worker allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodePlan {
    /// Nodes `0..extract_nodes` serve extraction tasks.
    pub extract_nodes: usize,
    /// Nodes `extract_nodes..extract_nodes + parse_nodes` serve parse tasks.
    pub parse_nodes: usize,
}

impl NodePlan {
    /// Total nodes in the plan.
    pub fn total(&self) -> usize {
        self.extract_nodes + self.parse_nodes
    }

    /// The preferred node for the `index`-th task of `stage`: round-robin
    /// within the stage's node range, so data staged for a stage stays on
    /// its fleet. A stage whose fleet is empty (e.g. `plan_nodes(1)` gives
    /// the parse fleet zero nodes) falls back to the whole plan, so the
    /// returned node always exists on a cluster shaped like the plan.
    pub fn preferred_node(&self, stage: Stage, index: usize) -> usize {
        let (offset, span) = match stage {
            Stage::Extract if self.extract_nodes > 0 => (0, self.extract_nodes),
            Stage::Parse if self.parse_nodes > 0 => (self.extract_nodes, self.parse_nodes),
            _ => (0, self.total().max(1)),
        };
        offset + index % span
    }
}

/// The resource-scaling engine's feedback loop.
///
/// Create it with a [`ControllerConfig`], feed it one [`WaveStats`] per wave
/// via [`observe`](ScalingController::observe), and read the allocation for
/// the next wave from the return value. [`history`](ScalingController::history)
/// records every change for reporting.
///
/// The controller never reads the host's wall clock. Timestamps in its
/// trace come either from its own virtual clock (which accrues the
/// overlapped wave time `max(extract, parse)` per observed wave) or — in
/// closed-loop simulation — from an external simulated clock passed to
/// [`observe_at`](ScalingController::observe_at), typically an
/// [`hpcsim::SimClock`] advanced by each simulated wave's makespan.
///
/// # Example
///
/// ```
/// use adaparse::{ControllerConfig, ScalingController, StageSample, WaveStats};
///
/// let mut controller = ScalingController::new(ControllerConfig::for_workers(8));
/// // Parse is the persistent bottleneck: after `patience` (default 2)
/// // consecutive waves a worker moves from extract to parse.
/// for wave in 0..2 {
///     controller.observe(&WaveStats {
///         wave_index: wave,
///         extract: StageSample { busy_seconds: 1.0, items: 64 },
///         parse: StageSample { busy_seconds: 3.0, items: 64 },
///         queue_depth: 256,
///     });
/// }
/// let allocation = controller.allocation();
/// assert_eq!(allocation.parse_workers, 5);
/// assert_eq!(allocation.total(), 8);
/// assert_eq!(controller.history().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingController {
    config: ControllerConfig,
    allocation: Allocation,
    /// Signed bottleneck streak: positive = parse was the bottleneck for
    /// `pressure` consecutive waves, negative = extract was.
    pressure: i64,
    /// The controller's notion of campaign time in seconds (see
    /// [`clock_seconds`](ScalingController::clock_seconds)).
    clock_seconds: f64,
    history: Vec<AllocationEvent>,
}

impl ScalingController {
    /// A controller starting from an even worker split.
    pub fn new(config: ControllerConfig) -> Self {
        let config = config.normalized();
        ScalingController {
            allocation: Allocation::even(config.total_workers),
            config,
            pressure: 0,
            clock_seconds: 0.0,
            history: Vec::new(),
        }
    }

    /// The controller's configuration (normalized).
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// The current allocation.
    pub fn allocation(&self) -> Allocation {
        self.allocation
    }

    /// Every allocation change so far, in wave order.
    pub fn history(&self) -> &[AllocationEvent] {
        &self.history
    }

    /// The controller's current campaign time in seconds: the last
    /// timestamp sampled via [`observe_at`](ScalingController::observe_at),
    /// or — under plain [`observe`](ScalingController::observe) — the sum
    /// of overlapped wave times seen so far. Never wall time.
    pub fn clock_seconds(&self) -> f64 {
        self.clock_seconds
    }

    /// Digest one wave's stats and return the allocation for the next wave.
    ///
    /// Pure in the functional sense: the new state (and thus the returned
    /// allocation) depends only on the previous state and `stats`. The
    /// controller's virtual clock advances by the wave's overlapped
    /// duration, `max(extract, parse)` busy seconds.
    pub fn observe(&mut self, stats: &WaveStats) -> Allocation {
        let wave_seconds = stats.extract.busy_seconds.max(stats.parse.busy_seconds).max(0.0);
        let at = self.clock_seconds + if wave_seconds.is_finite() { wave_seconds } else { 0.0 };
        self.observe_at(at, stats)
    }

    /// [`observe`](ScalingController::observe), sampling an external clock:
    /// `at_seconds` is the campaign time the wave completed at — in
    /// closed-loop simulation, an [`hpcsim::SimClock`] advanced by the
    /// executor-reported wave makespan. Trace timestamps then carry
    /// simulated time, so a replayed simulation reproduces the trace
    /// exactly.
    pub fn observe_at(&mut self, at_seconds: f64, stats: &WaveStats) -> Allocation {
        if at_seconds.is_finite() && at_seconds > self.clock_seconds {
            self.clock_seconds = at_seconds;
        }
        // An empty downstream queue means the campaign is draining; freeze
        // the allocation rather than react to a final ragged wave.
        if stats.queue_depth == 0 {
            return self.allocation;
        }
        let extract_s = stats.extract.busy_seconds.max(0.0);
        let parse_s = stats.parse.busy_seconds.max(0.0);
        let direction = if parse_s > extract_s * self.config.hysteresis {
            1
        } else if extract_s > parse_s * self.config.hysteresis {
            -1
        } else {
            0
        };
        // Hysteresis: the streak resets whenever the bottleneck flips or
        // disappears, and must reach `patience` before anything moves.
        self.pressure = match direction {
            0 => 0,
            d if self.pressure.signum() == d => self.pressure + d,
            d => d,
        };
        if self.pressure.unsigned_abs() as usize >= self.config.patience {
            let gained = if self.pressure > 0 { Stage::Parse } else { Stage::Extract };
            if self.shift(gained, stats.wave_index) {
                self.pressure = 0;
            }
        }
        self.allocation
    }

    /// Move `step` workers toward `gained`, respecting the per-stage floor.
    /// Returns whether anything moved.
    fn shift(&mut self, gained: Stage, wave_index: usize) -> bool {
        let step = self.config.step;
        let (give, take) = match gained {
            Stage::Parse => (&mut self.allocation.extract_workers, &mut self.allocation.parse_workers),
            Stage::Extract => (&mut self.allocation.parse_workers, &mut self.allocation.extract_workers),
        };
        let movable = give.saturating_sub(self.config.min_per_stage).min(step);
        if movable == 0 {
            return false;
        }
        *give -= movable;
        *take += movable;
        self.history.push(AllocationEvent {
            wave_index,
            at_seconds: self.clock_seconds,
            gained,
            allocation: self.allocation,
        });
        true
    }

    /// Project the worker allocation onto an `hpcsim` cluster of `nodes`
    /// nodes: each stage gets a node share proportional to its workers, and
    /// both fleets keep at least one node (for `nodes ≥ 2`).
    pub fn plan_nodes(&self, nodes: usize) -> NodePlan {
        if nodes <= 1 {
            return NodePlan { extract_nodes: nodes, parse_nodes: 0 };
        }
        let share = self.allocation.extract_workers as f64 / self.allocation.total().max(1) as f64;
        let extract = ((nodes as f64 * share).round() as usize).clamp(1, nodes - 1);
        NodePlan { extract_nodes: extract, parse_nodes: nodes - extract }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(wave: usize, extract_s: f64, parse_s: f64, queue: usize) -> WaveStats {
        WaveStats {
            wave_index: wave,
            extract: StageSample { busy_seconds: extract_s, items: 64 },
            parse: StageSample { busy_seconds: parse_s, items: 64 },
            queue_depth: queue,
        }
    }

    #[test]
    fn balanced_waves_never_move_workers() {
        let mut c = ScalingController::new(ControllerConfig::for_workers(8));
        let start = c.allocation();
        for wave in 0..20 {
            assert_eq!(c.observe(&stats(wave, 1.0, 1.1, 100)), start);
        }
        assert!(c.history().is_empty());
    }

    #[test]
    fn persistent_parse_bottleneck_shifts_workers_to_parse() {
        let mut c = ScalingController::new(ControllerConfig::for_workers(8));
        // patience = 2: the first slow wave arms the streak, the second fires.
        c.observe(&stats(0, 1.0, 3.0, 100));
        assert_eq!(c.allocation(), Allocation::even(8));
        let after = c.observe(&stats(1, 1.0, 3.0, 100));
        assert_eq!(after, Allocation { extract_workers: 3, parse_workers: 5 });
        assert_eq!(c.history().len(), 1);
        assert_eq!(c.history()[0].gained, Stage::Parse);
        // Total worker cap holds throughout.
        assert_eq!(after.total(), 8);
    }

    #[test]
    fn hysteresis_ignores_transient_spikes() {
        let mut c = ScalingController::new(ControllerConfig::for_workers(8));
        for wave in 0..10 {
            // Alternate bottlenecks: the streak never reaches patience.
            let (e, p) = if wave % 2 == 0 { (1.0, 3.0) } else { (3.0, 1.0) };
            c.observe(&stats(wave, e, p, 100));
        }
        assert_eq!(c.allocation(), Allocation::even(8));
        assert!(c.history().is_empty());
    }

    #[test]
    fn allocation_never_starves_a_stage() {
        let mut c =
            ScalingController::new(ControllerConfig { total_workers: 4, patience: 1, ..Default::default() });
        for wave in 0..50 {
            let a = c.observe(&stats(wave, 0.1, 10.0, 100));
            assert!(a.extract_workers >= 1 && a.parse_workers >= 1);
            assert_eq!(a.total(), 4);
        }
        assert_eq!(c.allocation(), Allocation { extract_workers: 1, parse_workers: 3 });
    }

    #[test]
    fn identical_stat_streams_replay_identical_traces() {
        let run = || {
            let mut c = ScalingController::new(ControllerConfig::for_workers(16));
            let mut trace = Vec::new();
            for wave in 0..30 {
                let parse_s = if wave < 15 { 4.0 } else { 0.5 };
                trace.push(c.observe(&stats(wave, 1.0, parse_s, 500 - wave * 16)));
            }
            (trace, c.history().to_vec())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn draining_queue_freezes_the_allocation() {
        let mut c =
            ScalingController::new(ControllerConfig { total_workers: 8, patience: 1, ..Default::default() });
        c.observe(&stats(0, 1.0, 5.0, 100));
        let before = c.allocation();
        // Ragged final wave with a wild imbalance: ignored.
        assert_eq!(c.observe(&stats(1, 0.001, 9.0, 0)), before);
    }

    #[test]
    fn node_plan_mirrors_the_worker_split() {
        let mut c =
            ScalingController::new(ControllerConfig { total_workers: 8, patience: 1, ..Default::default() });
        assert_eq!(c.plan_nodes(8), NodePlan { extract_nodes: 4, parse_nodes: 4 });
        // Push workers toward parse, the node plan follows.
        for wave in 0..3 {
            c.observe(&stats(wave, 1.0, 9.0, 100));
        }
        let plan = c.plan_nodes(8);
        assert!(plan.parse_nodes > plan.extract_nodes, "{plan:?}");
        assert_eq!(plan.total(), 8);
        // Both fleets survive even extreme splits.
        let tiny = c.plan_nodes(2);
        assert_eq!(tiny, NodePlan { extract_nodes: 1, parse_nodes: 1 });
        assert_eq!(c.plan_nodes(1), NodePlan { extract_nodes: 1, parse_nodes: 0 });
    }

    #[test]
    fn preferred_nodes_round_robin_within_each_fleet() {
        let plan = NodePlan { extract_nodes: 2, parse_nodes: 3 };
        let extract: Vec<usize> = (0..4).map(|i| plan.preferred_node(Stage::Extract, i)).collect();
        assert_eq!(extract, vec![0, 1, 0, 1]);
        let parse: Vec<usize> = (0..4).map(|i| plan.preferred_node(Stage::Parse, i)).collect();
        assert_eq!(parse, vec![2, 3, 4, 2]);
    }

    #[test]
    fn empty_fleets_fall_back_to_nodes_that_exist() {
        // A 1-node plan has no parse fleet: parse tasks must still land on
        // the (only) real node instead of a phantom node 1.
        let single = NodePlan { extract_nodes: 1, parse_nodes: 0 };
        for i in 0..4 {
            assert_eq!(single.preferred_node(Stage::Parse, i), 0);
            assert_eq!(single.preferred_node(Stage::Extract, i), 0);
        }
        let parse_only = NodePlan { extract_nodes: 0, parse_nodes: 2 };
        let extract: Vec<usize> = (0..4).map(|i| parse_only.preferred_node(Stage::Extract, i)).collect();
        assert_eq!(extract, vec![0, 1, 0, 1]);
    }

    #[test]
    fn virtual_clock_accrues_overlapped_wave_time() {
        let mut c = ScalingController::new(ControllerConfig::for_workers(8));
        c.observe(&stats(0, 1.0, 3.0, 100));
        assert_eq!(c.clock_seconds(), 3.0);
        c.observe(&stats(1, 2.5, 1.0, 100));
        assert_eq!(c.clock_seconds(), 5.5);
    }

    #[test]
    fn simulated_clock_timestamps_the_trace() {
        let mut c =
            ScalingController::new(ControllerConfig { total_workers: 8, patience: 1, ..Default::default() });
        c.observe_at(10.0, &stats(0, 1.0, 5.0, 100));
        assert_eq!(c.clock_seconds(), 10.0);
        assert_eq!(c.history().len(), 1);
        assert_eq!(c.history()[0].at_seconds, 10.0);
        // Stale or bad samples never move the clock backwards.
        c.observe_at(5.0, &stats(1, 1.0, 1.0, 100));
        c.observe_at(f64::NAN, &stats(2, 1.0, 1.0, 100));
        assert_eq!(c.clock_seconds(), 10.0);
    }

    #[test]
    fn config_normalization_clamps() {
        let c = ControllerConfig {
            total_workers: 0,
            min_per_stage: 99,
            hysteresis: f64::NAN,
            patience: 0,
            step: 0,
        }
        .normalized();
        assert_eq!(c.total_workers, 2);
        assert_eq!(c.min_per_stage, 1);
        assert_eq!(c.hysteresis, 1.0);
        assert_eq!(c.patience, 1);
        assert_eq!(c.step, 1);
    }

    #[test]
    fn stage_sample_throughput() {
        assert_eq!(StageSample { busy_seconds: 2.0, items: 10 }.throughput(), 5.0);
        assert_eq!(StageSample { busy_seconds: 0.0, items: 10 }.throughput(), 0.0);
    }
}
