//! The adaptive resource-scaling engine (the paper's "… and Resource
//! Scaling Engine" half).
//!
//! The Appendix C budget optimizer, run globally, serializes routing: no
//! document can be parsed before *every* document has been extracted, scored,
//! and sorted. This module replaces that whole-corpus barrier with two
//! cooperating pieces:
//!
//! * [`WindowedSelector`] — streaming budget selection. Documents arrive in
//!   input order and are selected per *window* of size k against a running
//!   remaining-budget ledger (fractional quota credit carries over between
//!   windows, so the selected fraction never exceeds ⌊α·seen⌋ at any prefix).
//!   Window boundaries are fixed by k alone — never by worker count or wave
//!   timing — so the emitted routing masks are bitwise-deterministic, and
//!   with k = corpus size the selection is exactly the global optimum.
//!   The windowed-vs-global optimality gap is measurable with
//!   [`crate::budget::windowed_optimality_gap`].
//!
//! * [`ScalingController`] — the feedback loop. Each wave it samples
//!   per-stage throughput and queue depth ([`WaveStats`]) and reallocates
//!   workers between the extraction and parsing stages under a total-worker
//!   cap, with hysteresis (a persistent imbalance must exceed a threshold for
//!   `patience` consecutive waves before a worker moves). Decisions are pure
//!   functions of the observed stats, so identical stat streams produce
//!   identical allocation traces. [`ScalingController::plan_nodes`] projects
//!   the same allocation onto an `hpcsim` cluster as a node split whose
//!   data-locality consequences the executor models (tasks carry a preferred
//!   node; off-node placement pays a `LustreModel` penalty).
//!
//! [`crate::campaign::CampaignPipeline`] wires both into its
//! [`crate::campaign::RoutingMode::Streaming`] mode: extraction of window
//! i+1 overlaps with parsing of window i, routing masks are emitted
//! wave-by-wave, and the campaign result stays bitwise identical for every
//! worker count.

pub mod controller;
pub mod window;

pub use controller::{
    Allocation, ControllerConfig, NodePlan, ScalingController, Stage, StageSample, WaveStats,
};
pub use window::{BudgetLedger, WindowedSelector};
