//! The adaptive resource-scaling engine (the paper's "… and Resource
//! Scaling Engine" half).
//!
//! The Appendix C budget optimizer, run globally, serializes routing: no
//! document can be parsed before *every* document has been extracted, scored,
//! and sorted. This module replaces that whole-corpus barrier with two
//! cooperating pieces:
//!
//! * [`WindowedSelector`] — streaming budget selection. Documents arrive in
//!   input order and are selected per *window* of size k against a running
//!   remaining-budget ledger (fractional quota credit carries over between
//!   windows, so the selected fraction never exceeds ⌊α·seen⌋ at any prefix).
//!   Window boundaries are fixed by k alone — never by worker count or wave
//!   timing — so the emitted routing masks are bitwise-deterministic, and
//!   with k = corpus size the selection is exactly the global optimum.
//!   The windowed-vs-global optimality gap is measurable with
//!   [`crate::budget::windowed_optimality_gap`].
//!
//! * [`ScalingController`] — the feedback loop. Each wave it samples
//!   per-stage throughput and queue depth ([`WaveStats`]) and reallocates
//!   workers between the extraction and parsing stages under a total-worker
//!   cap, with hysteresis (a persistent imbalance must exceed a threshold for
//!   `patience` consecutive waves before a worker moves). Decisions are pure
//!   functions of the observed stats, so identical stat streams produce
//!   identical allocation traces. [`ScalingController::plan_nodes`] projects
//!   the same allocation onto an `hpcsim` cluster as a node split whose
//!   data-locality consequences the executor models (tasks carry a preferred
//!   node; off-node placement pays a `LustreModel` penalty).
//!
//! [`crate::campaign::CampaignPipeline`] wires both into its
//! [`crate::campaign::RoutingMode::Streaming`] mode: extraction of window
//! i+1 overlaps with parsing of window i, routing masks are emitted
//! wave-by-wave, and the campaign result stays bitwise identical for every
//! worker count.
//!
//! Since PR 3 the loop is *closed* in both directions:
//!
//! * **Time** — the controller never reads wall time. Under
//!   [`ScalingController::observe_at`] it samples an external simulated
//!   clock ([`hpcsim::SimClock`] advanced by executor-reported wave
//!   makespans), and even plain [`ScalingController::observe`] accrues a
//!   virtual clock from the observed stage seconds, so a trace is a pure
//!   function of its stat stream: replaying recorded or simulated stats
//!   replays the trace bit for bit. (A live streaming campaign's stats are
//!   wall-clock measurements, so its traces naturally vary run to run.)
//! * **Costs** — [`observed::ObservedCosts`] blends the planned
//!   per-document costs with what completed waves *actually* cost
//!   ([`observed::WaveCosts`]); a [`BudgetLedger`] with
//!   [`BudgetLedger::with_observed_costs`] reconciles each wave's
//!   reservation against its measured spend and re-derives the affordable
//!   α from the blended estimates, tightening (or loosening) selection as
//!   reality diverges from plan.
//! * **Placement** — [`simloop::run_closed_loop`] drives the whole circuit
//!   inside `hpcsim`: simulated clock → controller → node plan →
//!   co-scheduled extract+parse task pairs → observed costs → ledger →
//!   next window's selection.
//!
//! Since PR 4 the loop is also *waveless*: the circuit runs over one
//! persistent [`hpcsim::ExecutorSession`], so slot availability, per-node
//! warm-pool residency, and pair anchors survive across decision epochs —
//! a later window starts on slots that free up while the previous window's
//! stragglers are still running, models stay loaded across windows instead
//! of re-paying their cold starts each wave, and each parse task carries a
//! dependency edge to its extract partner so the engine never schedules a
//! parse before its input exists. The controller observes at event
//! boundaries via [`ScalingController::observe_at`], and the whole run —
//! including the executor's critical-path, queue-wait, and per-model warm
//! statistics — replays bit for bit.
//!
//! Since PR 5 the loop is also *causal* on demand:
//! [`hpcsim::CausalityMode::Causal`] admits each window at the session's
//! dispatch frontier as a release floor — no task starts before the
//! decision that created it, the effective α ingests only observations
//! whose tasks finished by the decision time (stragglers defer to a later
//! boundary), and the controller's backlog counts documents remaining
//! *plus* tasks still in flight. The legacy
//! [`hpcsim::CausalityMode::RetroFill`] placement stays bitwise-identical
//! and now audits its own violations
//! ([`hpcsim::CampaignReport::retro_filled_tasks`],
//! [`hpcsim::CampaignReport::decision_lag_seconds`]); causal makespans are
//! achievable schedules and bound the retro-fill makespan from above. See
//! [`simloop`]'s "two-mode contract" section.

pub mod autoscale;
pub mod controller;
pub mod observed;
pub mod simloop;
pub mod window;

pub use autoscale::{AutoscaleConfig, FleetEvent, SloAutoscaler};
pub use controller::{
    Allocation, AllocationEvent, ControllerConfig, NodePlan, ScalingController, Stage, StageSample, WaveStats,
};
pub use observed::{ObservedCosts, WaveCosts, DEFAULT_PRIOR_WEIGHT};
pub use simloop::{planned_costs, run_closed_loop, SimLoopConfig, SimLoopReport, SimWave};
pub use window::{BudgetLedger, ClassLedger, WindowedSelector};
