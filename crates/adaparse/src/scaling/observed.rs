//! Observed per-document cost accounting.
//!
//! The budget ledger of [`crate::scaling::window`] plans with *a-priori*
//! per-document costs from the parser cost models. Real campaigns diverge
//! from those plans — per-tool cost varies wildly across document
//! categories, and on a cluster the effective cost of a document includes
//! stage-in time, cold starts, and data-locality re-fetches. This module
//! closes that gap: a [`WaveCosts`] snapshot reports what a completed wave
//! *actually* cost, and an [`ObservedCosts`] accumulator blends those
//! observations with the planned priors into running per-document cost
//! estimates that tighten (or loosen) the effective α the remaining budget
//! affords.
//!
//! Everything here is plain arithmetic over the cost trace, in ingestion
//! order — feeding the same trace twice produces the same estimates bit for
//! bit, which is what keeps the windowed selector deterministic with
//! feedback enabled.

use serde::{Deserialize, Serialize};

/// Actual measured costs of one completed wave (or window) of documents,
/// split by routing category.
///
/// "Cheap" documents are the ones routed to the default parser; "expensive"
/// documents went to the high-quality parser and their seconds include
/// *everything* they cost (extraction + high-quality parse), matching the
/// ledger's commit model where a selected document pays the full expensive
/// per-document cost.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct WaveCosts {
    /// Documents routed to the default parser in the wave.
    pub cheap_docs: usize,
    /// Total observed seconds those default-routed documents cost.
    pub cheap_seconds: f64,
    /// Documents routed to the high-quality parser in the wave.
    pub expensive_docs: usize,
    /// Total observed seconds those high-quality documents cost
    /// (extraction included).
    pub expensive_seconds: f64,
}

impl WaveCosts {
    /// Documents covered by the snapshot.
    pub fn docs(&self) -> usize {
        self.cheap_docs + self.expensive_docs
    }

    /// Total observed seconds of the wave.
    pub fn total_seconds(&self) -> f64 {
        self.cheap_seconds + self.expensive_seconds
    }

    /// Fold one document into the snapshot: `high_quality` selects the
    /// category, `seconds` is everything the document cost.
    pub fn record(&mut self, high_quality: bool, seconds: f64) {
        let seconds = seconds.max(0.0);
        if high_quality {
            self.expensive_docs += 1;
            self.expensive_seconds += seconds;
        } else {
            self.cheap_docs += 1;
            self.cheap_seconds += seconds;
        }
    }
}

/// Running per-document cost estimates blending planned priors with
/// observed samples.
///
/// Each category's estimate is a pseudo-count blend: the planned cost
/// enters as `prior_weight` phantom documents, so early waves barely move
/// the estimate and a long campaign converges to the empirical mean. The
/// estimate feeds [`crate::scaling::BudgetLedger::affordable_alpha`], so
/// when real documents run more expensive than planned the effective α
/// tightens — and loosens again if costs come in under plan.
///
/// # Example
///
/// ```
/// use adaparse::{ObservedCosts, WaveCosts};
///
/// // Planned: 1 s cheap, 10 s expensive; prior worth 4 phantom documents.
/// let mut costs = ObservedCosts::new(1.0, 10.0).with_prior_weight(4.0);
/// assert_eq!(costs.effective_expensive(), 10.0);
///
/// // A wave whose expensive documents actually cost 20 s each.
/// costs.ingest(&WaveCosts { cheap_docs: 8, cheap_seconds: 8.0, expensive_docs: 4, expensive_seconds: 80.0 });
/// // (4 × 10 + 80) / (4 + 4) = 15 s — halfway between prior and evidence.
/// assert_eq!(costs.effective_expensive(), 15.0);
/// assert_eq!(costs.effective_cheap(), 1.0);
/// assert!(costs.expensive_divergence() > 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObservedCosts {
    planned_cheap: f64,
    planned_expensive: f64,
    prior_weight: f64,
    cheap_docs: usize,
    cheap_seconds: f64,
    expensive_docs: usize,
    expensive_seconds: f64,
}

/// Default pseudo-document weight of the planned-cost prior.
pub const DEFAULT_PRIOR_WEIGHT: f64 = 32.0;

impl ObservedCosts {
    /// An accumulator seeded with the planned per-document costs and the
    /// [`DEFAULT_PRIOR_WEIGHT`].
    pub fn new(planned_cheap: f64, planned_expensive: f64) -> Self {
        ObservedCosts {
            planned_cheap: planned_cheap.max(0.0),
            planned_expensive: planned_expensive.max(0.0),
            prior_weight: DEFAULT_PRIOR_WEIGHT,
            cheap_docs: 0,
            cheap_seconds: 0.0,
            expensive_docs: 0,
            expensive_seconds: 0.0,
        }
    }

    /// Override how many phantom documents the planned costs are worth
    /// (0 = trust observations immediately; large = trust the plan longer).
    pub fn with_prior_weight(mut self, weight: f64) -> Self {
        self.prior_weight = if weight.is_finite() { weight.max(0.0) } else { DEFAULT_PRIOR_WEIGHT };
        self
    }

    /// Fold one wave's measured costs into the running estimates.
    pub fn ingest(&mut self, wave: &WaveCosts) {
        self.cheap_docs += wave.cheap_docs;
        self.cheap_seconds += wave.cheap_seconds.max(0.0);
        self.expensive_docs += wave.expensive_docs;
        self.expensive_seconds += wave.expensive_seconds.max(0.0);
    }

    /// Current per-document estimate for default-routed documents.
    pub fn effective_cheap(&self) -> f64 {
        blend(self.planned_cheap, self.prior_weight, self.cheap_seconds, self.cheap_docs)
    }

    /// Current per-document estimate for high-quality-routed documents.
    pub fn effective_expensive(&self) -> f64 {
        blend(self.planned_expensive, self.prior_weight, self.expensive_seconds, self.expensive_docs)
    }

    /// Ratio of the current cheap estimate to the planned cheap cost
    /// (1.0 = on plan, above = running hot).
    pub fn cheap_divergence(&self) -> f64 {
        divergence(self.effective_cheap(), self.planned_cheap)
    }

    /// Ratio of the current expensive estimate to the planned expensive
    /// cost (1.0 = on plan, above = running hot).
    pub fn expensive_divergence(&self) -> f64 {
        divergence(self.effective_expensive(), self.planned_expensive)
    }

    /// Documents observed so far, across both categories.
    pub fn observed_docs(&self) -> usize {
        self.cheap_docs + self.expensive_docs
    }
}

/// Pseudo-count blend of a planned per-document cost with observed totals.
/// With no prior and no observations the planned value is returned as-is.
fn blend(planned: f64, prior_weight: f64, observed_seconds: f64, observed_docs: usize) -> f64 {
    let denominator = prior_weight + observed_docs as f64;
    if denominator <= 0.0 {
        return planned;
    }
    (prior_weight * planned + observed_seconds) / denominator
}

fn divergence(effective: f64, planned: f64) -> f64 {
    if planned > 0.0 {
        effective / planned
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_start_at_the_plan_and_converge_to_observations() {
        let mut costs = ObservedCosts::new(1.0, 10.0).with_prior_weight(10.0);
        assert_eq!(costs.effective_cheap(), 1.0);
        assert_eq!(costs.effective_expensive(), 10.0);
        assert_eq!(costs.cheap_divergence(), 1.0);
        // 1000 observed documents at 2 s cheap / 30 s expensive swamp the
        // 10-document prior.
        for _ in 0..100 {
            costs.ingest(&WaveCosts {
                cheap_docs: 9,
                cheap_seconds: 18.0,
                expensive_docs: 1,
                expensive_seconds: 30.0,
            });
        }
        assert!((costs.effective_cheap() - 2.0).abs() < 0.05);
        assert!((costs.effective_expensive() - 30.0).abs() < 2.0);
        assert!(costs.cheap_divergence() > 1.9);
        assert_eq!(costs.observed_docs(), 1000);
    }

    #[test]
    fn costs_under_plan_loosen_the_estimate() {
        let mut costs = ObservedCosts::new(2.0, 20.0).with_prior_weight(0.0);
        costs.ingest(&WaveCosts {
            cheap_docs: 4,
            cheap_seconds: 4.0,
            expensive_docs: 2,
            expensive_seconds: 20.0,
        });
        assert_eq!(costs.effective_cheap(), 1.0);
        assert_eq!(costs.effective_expensive(), 10.0);
        assert!(costs.expensive_divergence() < 1.0);
    }

    #[test]
    fn wave_costs_record_by_category() {
        let mut wave = WaveCosts::default();
        wave.record(false, 1.5);
        wave.record(true, 12.0);
        wave.record(false, -3.0); // clamped to zero seconds
        assert_eq!(wave.cheap_docs, 2);
        assert_eq!(wave.expensive_docs, 1);
        assert_eq!(wave.cheap_seconds, 1.5);
        assert_eq!(wave.total_seconds(), 13.5);
        assert_eq!(wave.docs(), 3);
    }

    #[test]
    fn degenerate_priors_are_safe() {
        let costs = ObservedCosts::new(-1.0, f64::INFINITY).with_prior_weight(f64::NAN);
        assert_eq!(costs.effective_cheap(), 0.0);
        // Planned costs are clamped non-negative; the NaN prior weight falls
        // back to the default.
        assert!(costs.effective_expensive().is_infinite());
        let zero_prior = ObservedCosts::new(1.0, 2.0).with_prior_weight(0.0);
        assert_eq!(zero_prior.effective_cheap(), 1.0, "no data and no prior keeps the plan");
    }
}
