//! Closed-loop simulation-driven scaling — waveless.
//!
//! This module is where every piece of the resource-scaling engine meets:
//! it runs a whole routed campaign *inside* `hpcsim`, one selection window
//! per controller decision epoch, and feeds everything the simulator
//! observes back into the decision layers —
//!
//! ```text
//!        ┌────────────── ExecutorSession clock (simulated s) ◄───────────┐
//!        ▼                                                               │
//!  ScalingController ──plan_nodes──► NodePlan ──tasks──► hpcsim          │
//!        ▲                                         ExecutorSession::submit
//!        │ WaveStats (per-stage busy seconds)      (persistent slots,    │
//!        └────────────────────────────────────────  warm pools, anchors) ┤
//!  WindowedSelector ◄──ingest──  ObservedCosts  ◄── WaveCosts ◄──────────┘
//!   (BudgetLedger)              (effective α)
//! ```
//!
//! Each epoch: the [`WindowedSelector`] routes the next k documents at its
//! current effective α; the [`ScalingController`]'s node plan places the
//! window's extract+parse task pairs (each parse carrying a dependency edge
//! to its extract partner); the persistent [`hpcsim::ExecutorSession`]
//! schedules the window against the *live* cluster state — slots still busy
//! with earlier windows delay it, models loaded by earlier windows are
//! still warm, and its tasks start the moment a slot frees, even before the
//! previous window's stragglers finish. **There is no wave barrier**: slot
//! availability, warm-pool residency, and pair anchors persist across
//! epochs, and the campaign makespan is the session's last completion time,
//! not a sum of per-wave makespans. The controller observes at event
//! boundaries — each window's completion frontier, via
//! [`ScalingController::observe_at`] on the session clock — the observed
//! per-document costs reconcile the budget ledger, and the next window is
//! selected.
//!
//! Nothing in the loop reads the host clock or any other ambient state, so
//! a closed-loop run is a pure function of its inputs: replaying the same
//! scores and workload replays the same report — including the executor's
//! critical-path, queue-wait, and per-model warm-pool statistics — bit for
//! bit, on any machine.
//!
//! # Decision causality — the two-mode contract
//!
//! [`hpcsim::CausalityMode`] (on [`SimLoopConfig::executor`]) selects how
//! strictly the loop honors the arrow of simulated time:
//!
//! * **[`RetroFill`](hpcsim::CausalityMode::RetroFill)** (legacy default).
//!   A window is submitted only after the previous window fully completes,
//!   but its tasks may be *placed* on slots that freed earlier — at
//!   simulated times before the observations that selected the window
//!   existed — and the effective α applied to a window ingests the
//!   *entire* previous window's observed costs, which a live controller
//!   would only have part of. Makespans are an optimistic lower bound; the
//!   violations are quantified per run in
//!   [`hpcsim::CampaignReport::retro_filled_tasks`] and
//!   [`hpcsim::CampaignReport::decision_lag_seconds`].
//! * **[`Causal`](hpcsim::CausalityMode::Causal)**. Each window is admitted
//!   at an *event boundary*: the session's dispatch frontier — the
//!   simulated time the engine last ran out of undispatched work, recorded
//!   per wave as [`SimWave::decided_at_seconds`]. The window is submitted
//!   with that boundary as its release floor
//!   ([`hpcsim::SubmitOptions::release_seconds`]), so none of its tasks
//!   starts before the decision that created it; the effective α ingests
//!   only the [`WaveCosts`] of documents whose tasks *finished at or
//!   before* the decision time (stragglers defer to a later boundary), and
//!   the controller's stage samples are built from the same
//!   finished-by-then task set. Makespans are achievable schedules:
//!   `causal makespan ≥ retro-fill makespan` on the same inputs, with the
//!   gap being exactly the price of causality. Any observations still
//!   deferred when the last window has been selected are folded in after
//!   the loop, so the *report's* final cost estimates and remaining budget
//!   cover every completed document (no further selection is affected).
//!
//! Both modes replay bitwise, window *i+1* still overlaps window *i*'s
//! stragglers (the floor is the dispatch frontier, not the completion
//! time), and the controller's backlog signal counts the *true* pending
//! work: documents not yet windowed plus session tasks still in flight at
//! the observation boundary ([`SimWave::queue_depth`]).

use std::collections::HashMap;

use hpcsim::{
    CampaignReport, CausalityMode, ClusterConfig, ExecutorConfig, GroupRole, LustreModel, StageTiming,
    SubmitOptions, WorkflowExecutor,
};
use parsersim::cost::CostModel;

use crate::config::AdaParseConfig;
use crate::engine::RoutedDocument;
use crate::hpc::{tasks_for_routing_with_affinity, WorkloadSpec};
use crate::scaling::observed::{ObservedCosts, WaveCosts, DEFAULT_PRIOR_WEIGHT};
use crate::scaling::{
    Allocation, AllocationEvent, BudgetLedger, ControllerConfig, NodePlan, ScalingController, StageSample,
    WaveStats, WindowedSelector,
};
use crate::stats::LatencySummary;

/// Knobs of a closed-loop simulated campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimLoopConfig {
    /// Selection window size k — one window is one controller decision
    /// epoch.
    pub window: usize,
    /// Cluster size in (Polaris-like) nodes.
    pub nodes: usize,
    /// Explicit cluster shape; `None` (the default) uses
    /// [`ClusterConfig::polaris`] over [`nodes`](Self::nodes). Overriding
    /// lets a test or what-if run drive the loop against degenerate
    /// clusters (e.g. one without the GPU slots the high-quality parser
    /// needs — its parse tasks are then skipped, and an epoch may complete
    /// nothing at all; see [`SimWave::tasks_skipped`]).
    pub cluster: Option<ClusterConfig>,
    /// Total compute budget in seconds; `None` routes at the configured α
    /// with no seconds ledger.
    pub total_budget_seconds: Option<f64>,
    /// Pseudo-document weight of the planned-cost prior in the observed
    /// ledger (ignored without a budget).
    pub prior_weight: f64,
    /// Executor options (warm pools, staging, prefetch, pair
    /// co-scheduling).
    pub executor: ExecutorConfig,
    /// Shared-filesystem model.
    pub filesystem: LustreModel,
    /// Controller tuning; its worker allocation is projected onto the
    /// cluster via [`ScalingController::plan_nodes`] each epoch.
    pub controller: ControllerConfig,
}

impl Default for SimLoopConfig {
    fn default() -> Self {
        SimLoopConfig {
            window: 256,
            nodes: 4,
            cluster: None,
            total_budget_seconds: None,
            prior_weight: DEFAULT_PRIOR_WEIGHT,
            executor: ExecutorConfig::default(),
            filesystem: LustreModel::default(),
            controller: ControllerConfig::default(),
        }
    }
}

/// One selection window (decision epoch) of a waveless closed-loop
/// campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimWave {
    /// Zero-based epoch index.
    pub wave_index: usize,
    /// Simulated time of the decision that created the epoch — the release
    /// floor its batch was submitted under. Under
    /// [`hpcsim::CausalityMode::Causal`] this is the session's dispatch
    /// frontier at selection time and every task of the epoch starts at or
    /// after it; under [`hpcsim::CausalityMode::RetroFill`] it is the
    /// session clock at submission (the previous window's drain), recorded
    /// for audit while placement is free to retro-fill earlier slots.
    /// Monotone across epochs in both modes.
    pub decided_at_seconds: f64,
    /// Simulated time the epoch's *earliest* task started. Wavelessness
    /// made visible: this is routinely earlier than the previous epoch's
    /// [`finished_at_seconds`](Self::finished_at_seconds) — the next window
    /// starts on slots that free up while the previous window's stragglers
    /// are still running. An epoch that completed nothing (all tasks
    /// skipped, see [`tasks_skipped`](Self::tasks_skipped)) is pinned to
    /// its decision time: `started == finished == decided_at`.
    pub started_at_seconds: f64,
    /// Simulated time the epoch's last task finished. Not necessarily
    /// monotone across epochs: a short window can drain before an earlier
    /// window's straggler — the controller's clock clamps monotonically on
    /// its own. Equal to
    /// [`decided_at_seconds`](Self::decided_at_seconds) for an epoch that
    /// completed nothing.
    pub finished_at_seconds: f64,
    /// Documents routed in the epoch.
    pub documents: usize,
    /// Documents sent to the high-quality parser.
    pub selected: usize,
    /// The α the epoch was selected at (after any ledger tightening).
    pub effective_alpha: f64,
    /// Node plan the epoch's tasks were placed under.
    pub plan: NodePlan,
    /// Worker allocation after the controller digested the epoch.
    pub allocation: Allocation,
    /// Extract+parse pairs reunited on one node this epoch.
    pub co_located_pairs: usize,
    /// Pairs split across nodes this epoch.
    pub split_pairs: usize,
    /// Data-locality penalty seconds paid this epoch.
    pub locality_penalty_seconds: f64,
    /// Warm-pool hits this epoch (models reused across epochs count here —
    /// pools persist).
    pub warm_hits: usize,
    /// Seconds the epoch's tasks spent ready but queued for a slot.
    pub queue_wait_seconds: f64,
    /// Seconds the epoch's paid cold starts spent queued for a shared
    /// model-load channel
    /// ([`hpcsim::LustreModel::model_load_channels`]) — the
    /// thundering-herd serialization cost. Zero with unlimited channels.
    pub herd_queue_seconds: f64,
    /// Tasks of the epoch that could not run (no slot of the required
    /// kind, or a dependency that was itself skipped). An epoch whose
    /// tasks were *all* skipped is well-defined: its
    /// [`started_at_seconds`](Self::started_at_seconds) and
    /// [`finished_at_seconds`](Self::finished_at_seconds) both equal its
    /// [`decided_at_seconds`](Self::decided_at_seconds).
    pub tasks_skipped: usize,
    /// The backlog the controller observed after this epoch: documents not
    /// yet windowed *plus* session tasks still in flight at the
    /// observation boundary (stragglers from this or any earlier epoch) —
    /// the true pending count, not just the unwindowed remainder.
    pub queue_depth: usize,
    /// Per-stage extract timing of the epoch.
    pub extract: StageTiming,
    /// Per-stage parse timing of the epoch.
    pub parse: StageTiming,
}

/// Aggregate outcome of a closed-loop simulated campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct SimLoopReport {
    /// Per-epoch records, in epoch order.
    pub waves: Vec<SimWave>,
    /// The full routing mask, concatenated across epochs (`true` = routed
    /// to the high-quality parser).
    pub mask: Vec<bool>,
    /// Documents routed.
    pub documents: usize,
    /// Documents sent to the high-quality parser.
    pub selected: usize,
    /// Total simulated campaign time: the persistent session's last
    /// completion. Epochs overlap (no barrier), so this is *less* than the
    /// sum of per-epoch spans whenever the cluster pipeline stays busy.
    pub makespan_seconds: f64,
    /// Extract+parse pairs reunited on one node, campaign-wide.
    pub co_located_pairs: usize,
    /// Pairs split across nodes, campaign-wide.
    pub split_pairs: usize,
    /// Tasks that ran away from their data, campaign-wide.
    pub non_local_tasks: usize,
    /// Data-locality penalty seconds paid, campaign-wide.
    pub locality_penalty_seconds: f64,
    /// The controller's allocation trace, timestamped in simulated seconds.
    pub history: Vec<AllocationEvent>,
    /// The session-cumulative executor report: critical path, queue wait,
    /// per-model warm hits/evictions, GPU trace — everything the persistent
    /// engine measured over the whole campaign.
    pub executor_report: CampaignReport,
    /// Distribution of per-task slot waits (`start − max(ready, floor)`),
    /// summarized with the shared exact nearest-rank percentiles
    /// ([`crate::stats`]) — the same definition the serve layer's
    /// per-tenant latency SLOs use, so a campaign's queue tail and a
    /// service's latency tail are directly comparable.
    pub queue_wait: LatencySummary,
    /// Final observed-cost estimates, when a budget ledger was attached.
    pub final_observed: Option<ObservedCosts>,
    /// Seconds of budget left unspent, when a budget was set.
    pub remaining_budget_seconds: Option<f64>,
}

impl SimLoopReport {
    /// Fraction of documents routed to the high-quality parser.
    pub fn selected_fraction(&self) -> f64 {
        if self.documents == 0 {
            0.0
        } else {
            self.selected as f64 / self.documents as f64
        }
    }

    /// Whether any epoch started before its predecessor finished — the
    /// direct witness that the loop ran without a wave barrier.
    pub fn epochs_overlap(&self) -> bool {
        self.waves.windows(2).any(|pair| pair[1].started_at_seconds < pair[0].finished_at_seconds)
    }
}

/// Run a waveless closed-loop simulated campaign over per-document
/// improvement scores (one score per document, in input order).
///
/// The loop is fully deterministic: same inputs, same report. See the
/// module docs for the feedback structure and the no-barrier semantics.
pub fn run_closed_loop(
    config: &AdaParseConfig,
    improvements: &[f64],
    workload: &WorkloadSpec,
    sim: &SimLoopConfig,
) -> SimLoopReport {
    let window = sim.window.max(1);
    let nodes = sim.nodes.max(1);
    let cluster = sim.cluster.unwrap_or_else(|| ClusterConfig::polaris(nodes));
    let causal = sim.executor.causality == CausalityMode::Causal;
    let executor = WorkflowExecutor::new(sim.executor);
    // The one persistent session: slots, warm pools, pair anchors, and the
    // clock live across every decision epoch below.
    let mut session = executor.session(&cluster);

    let mut selector = WindowedSelector::new(window, config.alpha);
    if let Some(total_seconds) = sim.total_budget_seconds {
        let (planned_cheap, planned_expensive) = planned_costs(config, workload.pages_per_doc);
        let ledger = BudgetLedger::new(total_seconds, improvements.len(), planned_cheap, planned_expensive)
            .with_observed_costs(sim.prior_weight);
        selector = selector.with_budget(ledger);
    }
    let mut controller = ScalingController::new(sim.controller);

    let mut report = SimLoopReport {
        waves: Vec::new(),
        mask: Vec::with_capacity(improvements.len()),
        documents: improvements.len(),
        selected: 0,
        makespan_seconds: 0.0,
        co_located_pairs: 0,
        split_pairs: 0,
        non_local_tasks: 0,
        locality_penalty_seconds: 0.0,
        history: Vec::new(),
        // Placeholder until the loop closes (a blank session's snapshot is
        // identical to its full report); the cheap path skips cloning the
        // GPU trace and warm rows.
        executor_report: session.report_snapshot(),
        queue_wait: LatencySummary::default(),
        final_observed: None,
        remaining_budget_seconds: None,
    };

    // Deferred causal observations: a document's (or task's) measurement
    // only becomes visible to the loop once a decision boundary passes its
    // finish time.
    let mut deferred_docs: Vec<DeferredDocCost> = Vec::new();
    let mut deferred_tasks: Vec<DeferredTaskObs> = Vec::new();
    // The next window's decision time under causal admission; advances to
    // the session's dispatch frontier after every epoch.
    let mut decided_at = 0.0f64;
    // Documents whose measured costs have been reconciled so far (causal
    // admission): whatever is committed but never observed — skipped work —
    // has its reservation released at campaign close.
    let mut observed_docs = 0usize;

    for (wave_index, chunk) in improvements.chunks(window).enumerate() {
        let offset = wave_index * window;
        // The decision that creates this window: under causal admission
        // the dispatch frontier carried over from the previous epoch;
        // under retro-fill the session clock at submission (audit only).
        let wave_decided_at = if causal { decided_at } else { session.now_seconds() };
        if causal {
            // Partial-window observation: ingest exactly the documents
            // whose tasks finished at or before this decision time —
            // stragglers stay deferred for a later boundary. Partial
            // reconciliation releases the ledger's reservations one
            // document-slot at a time (a whole-window `ingest` here would
            // refund still-running stragglers' reserved cost early).
            let observable = drain_observable(&mut deferred_docs, wave_decided_at, |d| d.observable_at);
            if !observable.is_empty() {
                let mut costs = WaveCosts::default();
                for obs in observable {
                    costs.record(obs.expensive, obs.seconds);
                }
                observed_docs += costs.docs();
                selector.ingest_observed_partial(&costs);
            }
        }
        let effective_alpha = selector.effective_alpha();
        let mask = selector.select_window(chunk);
        let selected = mask.iter().filter(|&&m| m).count();
        let routed: Vec<RoutedDocument> = chunk
            .iter()
            .zip(&mask)
            .enumerate()
            .map(|(k, (&score, &hq))| RoutedDocument {
                doc_id: (offset + k) as u64,
                parser: if hq { config.high_quality_parser } else { config.default_parser },
                predicted_improvement: score,
                cls1_invalid: false,
            })
            .collect();

        // Fleets: the controller's allocation projected onto the cluster.
        let plan = controller.plan_nodes(cluster.nodes);
        let tasks = tasks_for_routing_with_affinity(config, &routed, workload, &plan);
        // Captured before the session takes ownership of the batch: the
        // causal branch needs each task's stage role to classify its
        // deferred observation.
        let roles: HashMap<u64, GroupRole> = if causal {
            tasks.iter().filter_map(|t| t.group.map(|g| (t.id, g.role))).collect()
        } else {
            HashMap::new()
        };
        let scheduled_before = session.schedule().len();
        // Ownership moves into the session — the per-epoch batch is built
        // fresh anyway, so nothing needs the post-submission clone.
        let release = if causal { Some(wave_decided_at) } else { None };
        session.submit_owned(tasks, SubmitOptions { release_seconds: release });
        let wave = session.advance_to_frontier(&sim.filesystem);
        let wave_slice = &session.schedule()[scheduled_before..];
        // An epoch that completed nothing is pinned to its decision time;
        // otherwise its span is first start to last completion.
        let (started_at_seconds, finished_at_seconds) = if wave.tasks_completed == 0 {
            (wave_decided_at, wave_decided_at)
        } else {
            let first_start = wave_slice.iter().map(|s| s.start_seconds).fold(f64::INFINITY, f64::min);
            (first_start, wave.makespan_seconds)
        };
        // The event boundary the controller observes at: under causal
        // admission the dispatch frontier (the engine just ran out of
        // undispatched work — a live controller would be refilling the
        // queue now, with this epoch's stragglers still running); under
        // retro-fill this epoch's last completion, as before.
        let observed_at = if causal { session.frontier_seconds() } else { finished_at_seconds };
        // The true backlog at that boundary: documents not yet windowed
        // plus session tasks still in flight (stragglers from this or any
        // earlier epoch) — not just the unwindowed remainder.
        let docs_remaining = improvements.len().saturating_sub(offset + chunk.len());
        let queue_depth = docs_remaining + session.tasks_in_flight_at(observed_at);

        let allocation = if causal {
            // Queue this epoch's measurements; each becomes observable
            // once a decision boundary passes its finish time.
            for row in wave_slice {
                if let Some(&role) = roles.get(&row.id) {
                    deferred_tasks.push(DeferredTaskObs {
                        observable_at: row.finish_seconds,
                        role,
                        busy_seconds: row.finish_seconds - row.start_seconds,
                    });
                }
            }
            let spans: HashMap<u64, (f64, f64)> =
                wave_slice.iter().map(|s| (s.id, (s.start_seconds, s.finish_seconds))).collect();
            for (k, &hq) in mask.iter().enumerate() {
                let extract_id = (offset + k) as u64 * 2;
                // A document whose extract was skipped ran nothing at all
                // — its cost is never observable and its reservation is
                // released at campaign close.
                let Some(&(extract_start, extract_finish)) = spans.get(&extract_id) else { continue };
                let extract_busy = extract_finish - extract_start;
                let (observable_at, seconds) = match spans.get(&(extract_id + 1)) {
                    Some(&(parse_start, parse_finish)) if hq => {
                        (extract_finish.max(parse_finish), extract_busy + (parse_finish - parse_start))
                    }
                    // A selected document whose parse was skipped still
                    // burned its extract seconds: charge what actually ran
                    // (the retro-fill branch charges it too, through the
                    // extract stage-busy share).
                    _ => (extract_finish, extract_busy),
                };
                deferred_docs.push(DeferredDocCost { observable_at, expensive: hq, seconds });
            }
            // The controller's stage samples are likewise built from the
            // tasks that finished by the boundary — never from work whose
            // outcome does not causally exist yet.
            let observable = drain_observable(&mut deferred_tasks, observed_at, |t| t.observable_at);
            let mut extract = StageSample { busy_seconds: 0.0, items: 0 };
            let mut parse = StageSample { busy_seconds: 0.0, items: 0 };
            for obs in observable {
                let sample = match obs.role {
                    GroupRole::Extract => &mut extract,
                    GroupRole::Parse => &mut parse,
                };
                sample.busy_seconds += obs.busy_seconds;
                sample.items += 1;
            }
            decided_at = observed_at;
            controller.observe_at(observed_at, &WaveStats { wave_index, extract, parse, queue_depth })
        } else {
            // Retro-fill: the acausal full-window ingest the legacy mode
            // is pinned to — the entire window's observed costs flow back
            // before the next selection, including stragglers a live
            // controller could not have measured yet. A selected
            // document's cost is its parse busy time plus its share of
            // the extraction stage.
            if !chunk.is_empty() {
                let extract_share = wave.stage_timings.extract.busy_seconds / chunk.len() as f64;
                selector.ingest_observed(&WaveCosts {
                    cheap_docs: chunk.len() - selected,
                    cheap_seconds: extract_share * (chunk.len() - selected) as f64,
                    expensive_docs: selected,
                    expensive_seconds: wave.stage_timings.parse.busy_seconds
                        + extract_share * selected as f64,
                });
            }
            // The controller samples the session clock, not wall time.
            controller.observe_at(
                observed_at,
                &WaveStats {
                    wave_index,
                    extract: StageSample {
                        busy_seconds: wave.stage_timings.extract.busy_seconds,
                        items: wave.stage_timings.extract.tasks,
                    },
                    parse: StageSample {
                        busy_seconds: wave.stage_timings.parse.busy_seconds,
                        items: wave.stage_timings.parse.tasks,
                    },
                    queue_depth,
                },
            )
        };

        report.selected += selected;
        report.co_located_pairs += wave.co_located_pairs;
        report.split_pairs += wave.split_pairs;
        report.non_local_tasks += wave.non_local_tasks;
        report.locality_penalty_seconds += wave.locality_penalty_seconds;
        report.waves.push(SimWave {
            wave_index,
            decided_at_seconds: wave_decided_at,
            started_at_seconds,
            finished_at_seconds,
            documents: chunk.len(),
            selected,
            effective_alpha,
            plan,
            allocation,
            co_located_pairs: wave.co_located_pairs,
            split_pairs: wave.split_pairs,
            locality_penalty_seconds: wave.locality_penalty_seconds,
            warm_hits: wave.warm_hits,
            queue_wait_seconds: wave.queue_wait_seconds,
            herd_queue_seconds: wave.herd_queue_seconds,
            tasks_skipped: wave.tasks_skipped,
            queue_depth,
            extract: wave.stage_timings.extract,
            parse: wave.stage_timings.parse,
        });
        report.mask.extend(mask);
    }

    // Causal admission defers straggler observations past each decision
    // boundary; once the last window has been selected there is no further
    // decision to protect, so the remaining measurements fold in here and
    // the reservations of documents that will never complete (skipped
    // work) are released. This only reconciles the *report* — the final
    // cost estimates and remaining budget cover every completed document,
    // leaving `remaining = budget − Σ measured` (clamped at zero).
    if causal {
        if !deferred_docs.is_empty() {
            let mut costs = WaveCosts::default();
            for obs in deferred_docs.drain(..) {
                costs.record(obs.expensive, obs.seconds);
            }
            observed_docs += costs.docs();
            selector.ingest_observed_partial(&costs);
        }
        selector.release_unobserved(improvements.len().saturating_sub(observed_docs));
    }

    report.makespan_seconds = session.now_seconds();
    report.history = controller.history().to_vec();
    report.executor_report = session.report();
    let waits: Vec<f64> = session
        .schedule()
        .iter()
        .map(|row| (row.start_seconds - row.ready_seconds.max(row.submitted_at_seconds)).max(0.0))
        .collect();
    report.queue_wait = LatencySummary::from_values(&waits);
    report.final_observed = selector.ledger().and_then(|ledger| ledger.observed().copied());
    report.remaining_budget_seconds = selector.ledger().map(BudgetLedger::remaining_seconds);
    report
}

/// A per-document cost measurement waiting for a decision boundary to pass
/// its finish time (causal admission only).
#[derive(Debug, Clone, Copy)]
struct DeferredDocCost {
    /// Simulated time the document's last task finished — the earliest
    /// decision boundary that may observe it.
    observable_at: f64,
    /// Routed to the high-quality parser (its seconds include extraction).
    expensive: bool,
    /// Total slot-busy seconds the document cost.
    seconds: f64,
}

/// A per-task stage sample waiting for a decision boundary to pass its
/// finish time (causal admission only).
#[derive(Debug, Clone, Copy)]
struct DeferredTaskObs {
    observable_at: f64,
    role: GroupRole,
    busy_seconds: f64,
}

/// Split off (in insertion order, so the fold stays deterministic) every
/// deferred observation whose finish time — read by `at` — is at or
/// before `boundary`.
fn drain_observable<T>(deferred: &mut Vec<T>, boundary: f64, at: impl Fn(&T) -> f64) -> Vec<T> {
    let mut observable = Vec::new();
    let mut kept = Vec::new();
    for item in deferred.drain(..) {
        if at(&item) <= boundary {
            observable.push(item);
        } else {
            kept.push(item);
        }
    }
    *deferred = kept;
    observable
}

/// Planned per-document costs in seconds at a given page count, as
/// `(cheap, expensive)`: the cheap cost is the default parser alone, the
/// expensive cost is extraction *plus* the high-quality parser — matching
/// what the campaign actually pays per routed document. This is the single
/// source of the cost convention every budget ledger is seeded with; size
/// campaign budgets with it rather than re-deriving the formula.
pub fn planned_costs(config: &AdaParseConfig, pages_per_doc: usize) -> (f64, f64) {
    let cheap = CostModel::for_parser(config.default_parser).document_cost(pages_per_doc, 0.3);
    let expensive = CostModel::for_parser(config.high_quality_parser).document_cost(pages_per_doc, 0.3);
    let planned_cheap = cheap.cpu_seconds + cheap.gpu_seconds;
    let planned_expensive = planned_cheap + expensive.cpu_seconds + expensive.gpu_seconds;
    (planned_cheap, planned_expensive)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn scores(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0.0..1.0)).collect()
    }

    fn base_config() -> AdaParseConfig {
        AdaParseConfig { alpha: 0.2, ..Default::default() }
    }

    fn workload(n: usize) -> WorkloadSpec {
        WorkloadSpec { documents: n, pages_per_doc: 8, mb_per_doc: 50.0 }
    }

    #[test]
    fn closed_loop_replays_bitwise() {
        let config = base_config();
        let improvements = scores(240, 11);
        let sim = SimLoopConfig {
            window: 48,
            total_budget_seconds: Some(5_000.0),
            controller: ControllerConfig { total_workers: 8, patience: 1, ..Default::default() },
            ..Default::default()
        };
        let a = run_closed_loop(&config, &improvements, &workload(240), &sim);
        let b = run_closed_loop(&config, &improvements, &workload(240), &sim);
        assert_eq!(a, b, "a closed-loop run must be a pure function of its inputs");
        assert_eq!(a.documents, 240);
        assert_eq!(a.mask.len(), 240);
        assert!(a.makespan_seconds > 0.0);
        // The campaign makespan is the session's last completion, and the
        // executor's cumulative report agrees with the loop's view.
        assert_eq!(a.executor_report.makespan_seconds, a.makespan_seconds);
        assert!(a.executor_report.critical_path_seconds > 0.0);
        assert!(a.executor_report.critical_path_seconds <= a.makespan_seconds);
        // Every epoch's event boundary lies inside the campaign, and the
        // last one closes it.
        for wave in &a.waves {
            assert!(wave.started_at_seconds <= wave.finished_at_seconds);
            assert!(wave.finished_at_seconds <= a.makespan_seconds);
        }
        assert!(a.waves.iter().any(|w| w.finished_at_seconds == a.makespan_seconds));
        // Controller trace timestamps are simulated times within the run.
        for event in &a.history {
            assert!(event.at_seconds > 0.0 && event.at_seconds <= a.makespan_seconds);
        }
        // The shared nearest-rank queue-wait summary covers every scheduled
        // task and agrees with the executor's summed queue wait.
        assert_eq!(a.queue_wait.count, a.executor_report.tasks_completed);
        assert!(a.queue_wait.p50_seconds <= a.queue_wait.p99_seconds);
        assert!(a.queue_wait.p99_seconds <= a.queue_wait.max_seconds);
        let summed = a.queue_wait.mean_seconds * a.queue_wait.count as f64;
        assert!(
            (summed - a.executor_report.queue_wait_seconds).abs() <= 1e-6 * summed.max(1.0),
            "percentile summary and executor sum disagree: {summed} vs {}",
            a.executor_report.queue_wait_seconds
        );
    }

    #[test]
    fn epochs_overlap_without_a_wave_barrier() {
        let config = base_config();
        let improvements = scores(200, 3);
        let sim = SimLoopConfig { window: 40, nodes: 2, ..Default::default() };
        let report = run_closed_loop(&config, &improvements, &workload(200), &sim);
        assert!(
            report.epochs_overlap(),
            "later windows must start on freed slots before earlier stragglers finish"
        );
        // The waveless makespan beats the barriered sum of epoch spans.
        let barriered: f64 = report.waves.iter().map(|w| w.finished_at_seconds - w.started_at_seconds).sum();
        assert!(report.makespan_seconds < barriered, "{} vs {barriered}", report.makespan_seconds);
    }

    #[test]
    fn warm_pools_persist_across_epochs() {
        let config = base_config();
        let improvements = scores(200, 7);
        let sim = SimLoopConfig { window: 40, ..Default::default() };
        let report = run_closed_loop(&config, &improvements, &workload(200), &sim);
        let executor = &report.executor_report;
        assert!(executor.warm_hits > 0, "resident models must be reused");
        assert_eq!(executor.warm_evictions, 0, "an unbounded pool never evicts");
        // The high-quality model loads at most once per concurrent loader
        // per node over the *whole campaign* — not once per epoch.
        let parse_tasks: usize = report.waves.iter().map(|w| w.selected).sum();
        assert!(parse_tasks > executor.cold_starts * 2, "cold starts must not scale with epochs");
        // Later epochs find the model warm: their hits show up per wave.
        assert!(report.waves.iter().skip(1).any(|w| w.warm_hits > 0));
    }

    #[test]
    fn co_scheduling_reunites_pairs_and_cuts_the_penalty() {
        let config = base_config();
        let improvements = scores(160, 5);
        let paired = SimLoopConfig { window: 40, ..Default::default() };
        let split = SimLoopConfig {
            executor: ExecutorConfig { co_schedule_pairs: false, ..Default::default() },
            ..paired
        };
        let with_pairs = run_closed_loop(&config, &improvements, &workload(160), &paired);
        let without = run_closed_loop(&config, &improvements, &workload(160), &split);
        assert!(with_pairs.co_located_pairs > 0, "pairs must reunite under co-scheduling");
        assert_eq!(with_pairs.selected, without.selected, "placement must not change routing");
        assert!(
            with_pairs.locality_penalty_seconds < without.locality_penalty_seconds,
            "co-scheduling must cut the locality penalty ({} vs {})",
            with_pairs.locality_penalty_seconds,
            without.locality_penalty_seconds
        );
        assert!(without.split_pairs > with_pairs.split_pairs);
    }

    #[test]
    fn observed_overruns_throttle_selection_under_a_budget() {
        let config = base_config();
        let improvements = scores(300, 9);
        let n = improvements.len();
        // Budget sized so the *planned* costs afford exactly the configured
        // α = 0.2 — but simulated documents also pay stage-in, cold starts,
        // and contention, so observed costs run hot and the ledger must
        // throttle.
        let (planned_cheap, planned_expensive) = planned_costs(&config, 8);
        let budget = n as f64 * planned_cheap + 0.2 * n as f64 * (planned_expensive - planned_cheap);
        let open = SimLoopConfig { window: 30, ..Default::default() };
        let closed = SimLoopConfig {
            window: 30,
            total_budget_seconds: Some(budget),
            prior_weight: 8.0,
            ..Default::default()
        };
        let unbudgeted = run_closed_loop(&config, &improvements, &workload(n), &open);
        let budgeted = run_closed_loop(&config, &improvements, &workload(n), &closed);
        assert!(unbudgeted.selected_fraction() > 0.15, "α = 0.2 without a ledger");
        assert!(
            budgeted.selected < unbudgeted.selected,
            "observed overruns must tighten selection ({} vs {})",
            budgeted.selected,
            unbudgeted.selected
        );
        let observed = budgeted.final_observed.expect("budgeted run keeps observed estimates");
        assert!(
            observed.expensive_divergence() > 1.0,
            "simulated costs exceed the pure-compute plan: {}",
            observed.expensive_divergence()
        );
        // Later epochs run at a tighter α than the first.
        let first = budgeted.waves.first().unwrap().effective_alpha;
        let last = budgeted.waves.last().unwrap().effective_alpha;
        assert!(last < first, "effective α must tighten over the campaign ({first} → {last})");
    }

    #[test]
    fn empty_campaign_is_a_noop() {
        let report = run_closed_loop(&base_config(), &[], &workload(0), &SimLoopConfig::default());
        assert_eq!(report.documents, 0);
        assert!(report.waves.is_empty());
        assert_eq!(report.makespan_seconds, 0.0);
        assert_eq!(report.selected_fraction(), 0.0);
        assert!(!report.epochs_overlap());
    }
}
