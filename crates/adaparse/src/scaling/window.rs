//! Streaming windowed budget selection.
//!
//! [`WindowedSelector`] consumes improvement scores in input order, one
//! window of (up to) k documents at a time, and emits the routing mask for
//! each window immediately — the pipeline can start parsing a window while
//! later windows are still being extracted. A running ledger carries the
//! fractional quota credit between windows, so the number of selected
//! documents never exceeds ⌊α · documents-seen⌋ at any prefix of the stream,
//! and an optional seconds-denominated [`BudgetLedger`] tightens the
//! effective α when the committed spend threatens the total compute budget.

use crate::budget::{max_affordable_alpha, top_quota_mask};

/// Seconds-denominated remaining-budget ledger.
///
/// Tracks the compute budget left after each committed window and derives
/// the largest α the remainder can afford (Appendix C's bound applied to the
/// *remaining* documents instead of the whole corpus). Deterministic: the
/// ledger advances only on committed selections, in input order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetLedger {
    remaining_seconds: f64,
    remaining_docs: usize,
    cheap_cost: f64,
    expensive_cost: f64,
}

impl BudgetLedger {
    /// A ledger over `total_seconds` of budget for `total_docs` documents
    /// with the given per-document parser costs.
    pub fn new(total_seconds: f64, total_docs: usize, cheap_cost: f64, expensive_cost: f64) -> Self {
        BudgetLedger {
            remaining_seconds: total_seconds.max(0.0),
            remaining_docs: total_docs,
            cheap_cost: cheap_cost.max(0.0),
            expensive_cost: expensive_cost.max(0.0),
        }
    }

    /// Seconds of budget not yet committed.
    pub fn remaining_seconds(&self) -> f64 {
        self.remaining_seconds
    }

    /// Documents not yet routed.
    pub fn remaining_docs(&self) -> usize {
        self.remaining_docs
    }

    /// The largest α the remaining budget affords for the remaining
    /// documents.
    pub fn affordable_alpha(&self) -> f64 {
        max_affordable_alpha(
            self.remaining_seconds,
            self.remaining_docs,
            self.cheap_cost,
            self.expensive_cost,
        )
    }

    /// Commit one routed window: every document pays the cheap parser,
    /// `selected` additionally pay the expensive one.
    fn commit(&mut self, docs: usize, selected: usize) {
        let spend = docs as f64 * self.cheap_cost
            + selected as f64 * (self.expensive_cost - self.cheap_cost).max(0.0);
        self.remaining_seconds = (self.remaining_seconds - spend).max(0.0);
        self.remaining_docs = self.remaining_docs.saturating_sub(docs);
    }
}

/// Streaming per-window budget selector.
///
/// Feed it windows of improvement scores in input order via
/// [`select_window`](WindowedSelector::select_window); each call returns the
/// routing mask for that window. The selector maintains a running quota
/// credit (`α` per document seen) minus the documents already selected, so:
///
/// * at every prefix of the stream, `selected ≤ ⌊α · seen⌋` — the budget
///   holds even if the campaign is aborted mid-stream;
/// * fractional quota credit carries over between windows (unlike the
///   independent per-batch selection of [`crate::budget::select_batch`],
///   which floors each batch's quota and forfeits the remainder — with
///   α·k < 1 it would select nothing at all);
/// * with a single window spanning the whole corpus the selection is
///   *exactly* [`crate::budget::select_global`], bitwise.
///
/// Masks depend only on the scores and the window boundaries — never on
/// worker counts or timing — which is what lets the streaming pipeline keep
/// its bitwise-determinism contract.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedSelector {
    window: usize,
    alpha: f64,
    credit: f64,
    seen: usize,
    selected: usize,
    ledger: Option<BudgetLedger>,
}

impl WindowedSelector {
    /// A selector emitting masks per window of `window` documents with a
    /// high-quality fraction capped at `alpha`.
    pub fn new(window: usize, alpha: f64) -> Self {
        WindowedSelector {
            window: window.max(1),
            alpha: alpha.clamp(0.0, 1.0),
            credit: 0.0,
            seen: 0,
            selected: 0,
            ledger: None,
        }
    }

    /// Attach a seconds-denominated budget ledger: each window's effective α
    /// is the smaller of the configured α and what the remaining budget
    /// affords.
    pub fn with_budget(mut self, ledger: BudgetLedger) -> Self {
        self.ledger = Some(ledger);
        self
    }

    /// The configured window size k.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Documents routed so far.
    pub fn seen(&self) -> usize {
        self.seen
    }

    /// Documents selected for the high-quality parser so far.
    pub fn selected(&self) -> usize {
        self.selected
    }

    /// The seconds ledger, if one is attached.
    pub fn ledger(&self) -> Option<&BudgetLedger> {
        self.ledger.as_ref()
    }

    /// Route one window of scores (the final window may be shorter than k)
    /// and return its routing mask.
    ///
    /// The quota is the accumulated fractional credit not yet spent:
    /// `⌊credit − selected⌋`, clamped to the window length. With a constant
    /// α this equals `⌊α·seen⌋ − selected`, the exact prefix-budget
    /// invariant.
    pub fn select_window(&mut self, scores: &[f64]) -> Vec<bool> {
        let alpha = match &self.ledger {
            Some(ledger) => self.alpha.min(ledger.affordable_alpha()),
            None => self.alpha,
        };
        self.seen += scores.len();
        self.credit += (scores.len() as f64) * alpha;
        let quota = ((self.credit - self.selected as f64).floor().max(0.0) as usize).min(scores.len());
        let mask = top_quota_mask(scores, quota);
        self.selected += quota;
        if let Some(ledger) = &mut self.ledger {
            ledger.commit(scores.len(), quota);
        }
        mask
    }

    /// Drive the selector over a whole score slice, chunked into k-sized
    /// windows, and return the concatenated mask. Consumes the selector's
    /// stream position; use a fresh selector per corpus.
    pub fn select_all(mut self, scores: &[f64]) -> Vec<bool> {
        let mut mask = Vec::with_capacity(scores.len());
        for chunk in scores.chunks(self.window) {
            mask.extend(self.select_window(chunk));
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::{select_batch, select_global};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_scores(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0.0..1.0)).collect()
    }

    #[test]
    fn full_window_equals_global_selection_bitwise() {
        for seed in 0..5u64 {
            let scores = random_scores(257, seed);
            for &alpha in &[0.0, 0.05, 0.2, 0.5, 1.0] {
                let windowed = WindowedSelector::new(scores.len(), alpha).select_all(&scores);
                assert_eq!(windowed, select_global(&scores, alpha), "alpha={alpha} seed={seed}");
            }
        }
    }

    #[test]
    fn prefix_budget_invariant_holds_at_every_window() {
        let scores = random_scores(1000, 9);
        let alpha = 0.13;
        let mut selector = WindowedSelector::new(32, alpha);
        for chunk in scores.chunks(32) {
            selector.select_window(chunk);
            assert!(
                selector.selected() as f64 <= (alpha * selector.seen() as f64).floor() + 1e-9,
                "selected {} of {} seen",
                selector.selected(),
                selector.seen()
            );
        }
        // The full stream lands on the global quota up to one slot of float
        // slack (credit accrues as a sum of per-window products, which can
        // round a hair below the single-multiplication ⌊α·n⌋) and never
        // exceeds it.
        let global_quota = (alpha * scores.len() as f64).floor() as usize;
        assert!(selector.selected() <= global_quota);
        assert!(selector.selected() + 1 >= global_quota, "{} vs {global_quota}", selector.selected());
    }

    #[test]
    fn fractional_credit_carries_over_where_independent_batches_forfeit_it() {
        // α·k < 1: every independent batch floors its quota to zero and
        // selects nothing, while the ledger accrues 0.5 credit per window and
        // spends a slot every second window.
        let scores = random_scores(200, 6);
        let alpha = 0.05;
        let windowed = WindowedSelector::new(10, alpha).select_all(&scores);
        let batch = select_batch(&scores, alpha, 10);
        assert_eq!(batch.iter().filter(|&&m| m).count(), 0, "per-batch forfeits sub-1 quotas");
        assert_eq!(windowed.iter().filter(|&&m| m).count(), (alpha * 200.0).floor() as usize);
        let captured =
            |mask: &[bool]| -> f64 { scores.iter().zip(mask).filter(|(_, &m)| m).map(|(v, _)| v).sum() };
        assert!(captured(&windowed) > captured(&batch));
    }

    #[test]
    fn masks_are_independent_of_how_the_stream_is_replayed() {
        let scores = random_scores(300, 4);
        let all_at_once = WindowedSelector::new(64, 0.1).select_all(&scores);
        let mut incremental = WindowedSelector::new(64, 0.1);
        let mut mask = Vec::new();
        for chunk in scores.chunks(64) {
            mask.extend(incremental.select_window(chunk));
        }
        assert_eq!(all_at_once, mask);
    }

    #[test]
    fn seconds_ledger_tightens_alpha_when_budget_runs_short() {
        // Budget affords exactly 10% expensive docs overall; configured α
        // asks for 50%. The ledger must hold the line.
        let n = 200usize;
        let cheap = 1.0;
        let expensive = 11.0;
        let budget = n as f64 * cheap + 0.10 * n as f64 * (expensive - cheap);
        let scores = random_scores(n, 8);
        let selector =
            WindowedSelector::new(20, 0.5).with_budget(BudgetLedger::new(budget, n, cheap, expensive));
        let mask = selector.select_all(&scores);
        let selected = mask.iter().filter(|&&m| m).count();
        assert!(selected > 0, "some budget must be spent");
        let spend = n as f64 * cheap + selected as f64 * (expensive - cheap);
        assert!(spend <= budget + 1e-9, "spend {spend} exceeds budget {budget}");
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        let mut selector = WindowedSelector::new(0, 2.0); // clamped to window=1, alpha=1
        assert_eq!(selector.window(), 1);
        assert_eq!(selector.select_window(&[]), Vec::<bool>::new());
        assert_eq!(selector.select_window(&[0.5]), vec![true]);
        let empty = WindowedSelector::new(8, 0.5).select_all(&[]);
        assert!(empty.is_empty());
    }
}
