//! Streaming windowed budget selection.
//!
//! [`WindowedSelector`] consumes improvement scores in input order, one
//! window of (up to) k documents at a time, and emits the routing mask for
//! each window immediately — the pipeline can start parsing a window while
//! later windows are still being extracted. A running ledger carries the
//! fractional quota credit between windows, so the number of selected
//! documents never exceeds ⌊α · documents-seen⌋ at any prefix of the stream,
//! and an optional seconds-denominated [`BudgetLedger`] tightens the
//! effective α when the committed spend threatens the total compute budget.
//!
//! The ledger can additionally *close the loop on costs*: with
//! [`BudgetLedger::with_observed_costs`] it ingests the measured cost of
//! each completed wave ([`WaveCosts`]), reconciles the planned spend it
//! reserved against what the wave actually burned, and re-derives the
//! affordable α from blended [`ObservedCosts`] estimates instead of the
//! static plan.

use std::collections::VecDeque;

use parsersim::ParserKind;

use crate::budget::{max_affordable_alpha, top_quota_mask};
use crate::scaling::observed::{ObservedCosts, WaveCosts};

/// Committed spend broken down by parser class, in seconds (or any other
/// single cost unit — the cascade selector meters planned dollars with it).
///
/// Entries are kept in [`ParserKind::index`] order, so iteration — and
/// therefore any report built from it — is deterministic. Used by
/// [`BudgetLedger`] to split the binary cheap/expensive spend between its
/// two parser classes, and by the k-parser cascade selector to meter spend
/// across the whole frontier.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClassLedger {
    spend: Vec<(ParserKind, f64)>,
}

impl ClassLedger {
    /// An empty breakdown.
    pub fn new() -> Self {
        ClassLedger::default()
    }

    /// Add `amount` to a parser class's committed spend.
    pub fn charge(&mut self, kind: ParserKind, amount: f64) {
        match self.spend.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, total)) => *total += amount,
            None => {
                self.spend.push((kind, amount));
                self.spend.sort_by_key(|(k, _)| k.index());
            }
        }
    }

    /// Committed spend of one parser class (0.0 if never charged).
    pub fn spent(&self, kind: ParserKind) -> f64 {
        self.spend.iter().find(|(k, _)| *k == kind).map(|(_, total)| *total).unwrap_or(0.0)
    }

    /// Total spend across all classes.
    pub fn total(&self) -> f64 {
        self.spend.iter().map(|(_, total)| total).sum()
    }

    /// The charged classes and their totals, in [`ParserKind::index`] order.
    pub fn classes(&self) -> impl Iterator<Item = (ParserKind, f64)> + '_ {
        self.spend.iter().copied()
    }

    /// Whether nothing has been charged yet.
    pub fn is_empty(&self) -> bool {
        self.spend.is_empty()
    }
}

/// Seconds-denominated remaining-budget ledger.
///
/// Tracks the compute budget left after each committed window and derives
/// the largest α the remainder can afford (Appendix C's bound applied to the
/// *remaining* documents instead of the whole corpus). Deterministic: the
/// ledger advances only on committed selections and ingested cost traces,
/// in input order — the same trace replays the same ledger states bit for
/// bit.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetLedger {
    remaining_seconds: f64,
    remaining_docs: usize,
    cheap_cost: f64,
    expensive_cost: f64,
    /// Observed-cost feedback, when enabled: running per-document estimates
    /// that replace the planned costs in `affordable_alpha` and `commit`.
    observed: Option<ObservedCosts>,
    /// Spend reserved by each committed-but-not-yet-reconciled window, in
    /// commit order. [`ingest`](Self::ingest) pops the oldest reservation
    /// whole and replaces it with the measured spend;
    /// [`ingest_partial`](Self::ingest_partial) consumes it one
    /// document-slot at a time.
    pending_commits: VecDeque<Reservation>,
    /// The parser classes behind `cheap_cost`/`expensive_cost`, when known:
    /// lets `commit` attribute spend per class in `class_spend`.
    classes: Option<(ParserKind, ParserKind)>,
    /// Planned spend attributed per parser class (see
    /// [`class_spend`](Self::class_spend)).
    class_spend: ClassLedger,
}

/// One committed window's outstanding reservation: the seconds still
/// reserved and the document slots not yet reconciled against measured
/// costs.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Reservation {
    charged: f64,
    docs: usize,
}

impl BudgetLedger {
    /// A ledger over `total_seconds` of budget for `total_docs` documents
    /// with the given *planned* per-document parser costs (`expensive_cost`
    /// is the full cost of a selected document, extraction included).
    pub fn new(total_seconds: f64, total_docs: usize, cheap_cost: f64, expensive_cost: f64) -> Self {
        BudgetLedger {
            remaining_seconds: total_seconds.max(0.0),
            remaining_docs: total_docs,
            cheap_cost: cheap_cost.max(0.0),
            expensive_cost: expensive_cost.max(0.0),
            observed: None,
            pending_commits: VecDeque::new(),
            classes: None,
            class_spend: ClassLedger::new(),
        }
    }

    /// Name the parser classes behind the cheap/expensive costs so every
    /// commit splits its planned spend between them in
    /// [`class_spend`](Self::class_spend): the whole window pays the base
    /// class, selected documents additionally pay the upgrade class.
    pub fn with_classes(mut self, base: ParserKind, upgrade: ParserKind) -> Self {
        self.classes = Some((base, upgrade));
        self
    }

    /// Planned spend attributed per parser class. Empty unless
    /// [`with_classes`](Self::with_classes) named the classes (or a cascade
    /// selector charges classes directly). The attribution is of *planned*
    /// spend at commit-time effective costs — near exhaustion the clamped
    /// charge can be smaller than the attributed total, which keeps the
    /// per-class ratios meaningful even when the ledger bottoms out.
    pub fn class_spend(&self) -> &ClassLedger {
        &self.class_spend
    }

    /// Enable observed-cost feedback: the ledger's effective per-document
    /// costs become pseudo-count blends of the planned costs (worth
    /// `prior_weight` phantom documents) and every wave ingested via
    /// [`ingest`](Self::ingest).
    pub fn with_observed_costs(mut self, prior_weight: f64) -> Self {
        self.observed =
            Some(ObservedCosts::new(self.cheap_cost, self.expensive_cost).with_prior_weight(prior_weight));
        self
    }

    /// Seconds of budget not yet committed.
    pub fn remaining_seconds(&self) -> f64 {
        self.remaining_seconds
    }

    /// Documents not yet routed.
    pub fn remaining_docs(&self) -> usize {
        self.remaining_docs
    }

    /// The observed-cost estimates, when feedback is enabled.
    pub fn observed(&self) -> Option<&ObservedCosts> {
        self.observed.as_ref()
    }

    /// Current effective per-document cost of a default-routed document:
    /// the observed estimate with feedback enabled, the planned cost
    /// otherwise.
    pub fn effective_cheap_cost(&self) -> f64 {
        self.observed.as_ref().map_or(self.cheap_cost, ObservedCosts::effective_cheap)
    }

    /// Current effective per-document cost of a high-quality-routed
    /// document (extraction included).
    pub fn effective_expensive_cost(&self) -> f64 {
        self.observed.as_ref().map_or(self.expensive_cost, ObservedCosts::effective_expensive)
    }

    /// The largest α the remaining budget affords for the remaining
    /// documents, at the current effective costs.
    pub fn affordable_alpha(&self) -> f64 {
        max_affordable_alpha(
            self.remaining_seconds,
            self.remaining_docs,
            self.effective_cheap_cost(),
            self.effective_expensive_cost(),
        )
    }

    /// Reconcile one completed wave's measured costs, in commit order: the
    /// oldest outstanding reservation is replaced by the wave's actual
    /// spend (refunding the difference, or charging the overrun), and the
    /// observed estimates absorb the samples. Ingesting a wave that was
    /// never committed through this ledger simply charges its actual cost
    /// and accounts its documents.
    ///
    /// A no-op on a plan-only ledger (built without
    /// [`with_observed_costs`](Self::with_observed_costs)): such a ledger
    /// tracks no reservations, so reconciling here would charge a committed
    /// wave's spend — and its documents — a second time.
    pub fn ingest(&mut self, wave: &WaveCosts) {
        let Some(observed) = &mut self.observed else { return };
        observed.ingest(wave);
        let reservation = self.pending_commits.pop_front();
        let actual = wave.total_seconds().max(0.0);
        self.remaining_seconds =
            (self.remaining_seconds + reservation.map_or(0.0, |r| r.charged) - actual).max(0.0);
        if reservation.is_none() {
            // Never committed through this ledger: the documents were never
            // deducted either, so account for them now.
            self.remaining_docs = self.remaining_docs.saturating_sub(wave.docs());
        }
    }

    /// Reconcile a *partial* observation: `wave` covers some — not
    /// necessarily all — documents of the oldest outstanding
    /// reservation(s). Each observed document releases one document-slot's
    /// pro-rata share of the front reservation (a reservation whose slots
    /// are exhausted is dropped, surrendering any rounding remainder), and
    /// the wave's measured seconds are charged; the observed estimates
    /// absorb the samples exactly as [`ingest`](Self::ingest) does.
    ///
    /// This is the causal closed loop's reconciliation: decision
    /// boundaries observe whatever subset of committed work has finished
    /// by then — never a whole window at once — so popping a full
    /// reservation per call (the [`ingest`](Self::ingest) contract) would
    /// refund still-running stragglers' estimated cost the moment their
    /// window's first document completed. Slot-by-slot release keeps the
    /// running balance honest: over a full campaign the total released
    /// equals the total reserved, so the final remaining budget is exactly
    /// `budget − Σ measured` (clamped at zero) once every document has
    /// been observed or [released](Self::release_unobserved). Use one
    /// reconciliation style per ledger — mixing whole-window and partial
    /// ingests would misalign the slot accounting. A no-op on a plan-only
    /// ledger, like [`ingest`](Self::ingest).
    pub fn ingest_partial(&mut self, wave: &WaveCosts) {
        let Some(observed) = &mut self.observed else { return };
        observed.ingest(wave);
        let released = self.release_slots(wave.docs());
        let actual = wave.total_seconds().max(0.0);
        self.remaining_seconds = (self.remaining_seconds + released - actual).max(0.0);
    }

    /// Release the reservations of `docs` document-slots that will *never*
    /// be observed — documents whose tasks were skipped (no slot of the
    /// required kind, poisoned dependencies) and therefore never complete.
    /// Refunds their reserved seconds without feeding anything into the
    /// observed estimates (a document that never ran is not a cost
    /// sample). Call once at campaign close, after the last partial
    /// ingest.
    pub fn release_unobserved(&mut self, docs: usize) {
        if self.observed.is_none() {
            return;
        }
        let released = self.release_slots(docs);
        self.remaining_seconds = (self.remaining_seconds + released).max(0.0);
    }

    /// Consume `docs` document-slots from the front of the reservation
    /// queue and return the seconds they release (pro-rata within each
    /// reservation; exhausted reservations surrender their rounding
    /// remainder). Slots beyond the committed total release nothing.
    fn release_slots(&mut self, mut docs: usize) -> f64 {
        let mut released = 0.0;
        while docs > 0 {
            let Some(front) = self.pending_commits.front_mut() else { break };
            if front.docs == 0 {
                released += front.charged;
                self.pending_commits.pop_front();
                continue;
            }
            let take = docs.min(front.docs);
            let share = front.charged * take as f64 / front.docs as f64;
            front.charged = (front.charged - share).max(0.0);
            front.docs -= take;
            released += share;
            docs -= take;
            if front.docs == 0 {
                released += front.charged;
                self.pending_commits.pop_front();
            }
        }
        released
    }

    /// Commit one routed window at the current effective costs: every
    /// document pays the cheap parser, `selected` additionally pay the
    /// expensive one. With observed-cost feedback enabled the reservation is
    /// remembered (one `f64` per window, FIFO) so a later
    /// [`ingest`](Self::ingest) can reconcile it against measured costs; a
    /// plan-only ledger keeps no reservations — nothing ever drains them,
    /// and the queue must not grow unboundedly on a long-lived stream.
    fn commit(&mut self, docs: usize, selected: usize) {
        let cheap = self.effective_cheap_cost();
        let expensive = self.effective_expensive_cost();
        let spend = docs as f64 * cheap + selected as f64 * (expensive - cheap).max(0.0);
        if let Some((base, upgrade)) = self.classes {
            self.class_spend.charge(base, docs as f64 * cheap);
            self.class_spend.charge(upgrade, selected as f64 * (expensive - cheap).max(0.0));
        }
        // Only what the ledger can actually deduct is reserved: a later
        // refund of more than was charged would fabricate budget exactly in
        // the near-exhaustion regime the ledger exists to police.
        let charged = spend.min(self.remaining_seconds).max(0.0);
        self.remaining_seconds -= charged;
        self.remaining_docs = self.remaining_docs.saturating_sub(docs);
        if self.observed.is_some() {
            self.pending_commits.push_back(Reservation { charged, docs });
        }
    }
}

/// Streaming per-window budget selector.
///
/// Feed it windows of improvement scores in input order via
/// [`select_window`](WindowedSelector::select_window); each call returns the
/// routing mask for that window. The selector maintains a running quota
/// credit (`α` per document seen) minus the documents already selected, so:
///
/// * at every prefix of the stream, `selected ≤ ⌊α · seen⌋` — the budget
///   holds even if the campaign is aborted mid-stream;
/// * fractional quota credit carries over between windows (unlike the
///   independent per-batch selection of [`crate::budget::select_batch`],
///   which floors each batch's quota and forfeits the remainder — with
///   α·k < 1 it would select nothing at all);
/// * with a single window spanning the whole corpus the selection is
///   *exactly* [`crate::budget::select_global`], bitwise.
///
/// Masks depend only on the scores and the window boundaries — never on
/// worker counts or timing — which is what lets the streaming pipeline keep
/// its bitwise-determinism contract. With a [`BudgetLedger`] carrying
/// observed-cost feedback, masks additionally depend on the ingested cost
/// trace — still bitwise-deterministic for a fixed trace.
///
/// # Example
///
/// ```
/// use adaparse::WindowedSelector;
///
/// // Select at most 50% of the stream, one window of 4 at a time.
/// let mut selector = WindowedSelector::new(4, 0.5);
/// let first = selector.select_window(&[0.9, 0.1, 0.8, 0.3]);
/// assert_eq!(first, vec![true, false, true, false]);
/// let second = selector.select_window(&[0.2, 0.7]);
/// assert_eq!(second, vec![false, true]);
/// assert_eq!(selector.seen(), 6);
/// assert_eq!(selector.selected(), 3); // ⌊0.5 · 6⌋ — the prefix budget holds
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedSelector {
    window: usize,
    alpha: f64,
    credit: f64,
    seen: usize,
    selected: usize,
    ledger: Option<BudgetLedger>,
}

impl WindowedSelector {
    /// A selector emitting masks per window of `window` documents with a
    /// high-quality fraction capped at `alpha`.
    pub fn new(window: usize, alpha: f64) -> Self {
        WindowedSelector {
            window: window.max(1),
            alpha: alpha.clamp(0.0, 1.0),
            credit: 0.0,
            seen: 0,
            selected: 0,
            ledger: None,
        }
    }

    /// Attach a seconds-denominated budget ledger: each window's effective α
    /// is the smaller of the configured α and what the remaining budget
    /// affords.
    pub fn with_budget(mut self, ledger: BudgetLedger) -> Self {
        self.ledger = Some(ledger);
        self
    }

    /// The configured window size k.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Documents routed so far.
    pub fn seen(&self) -> usize {
        self.seen
    }

    /// Documents selected for the high-quality parser so far.
    pub fn selected(&self) -> usize {
        self.selected
    }

    /// The seconds ledger, if one is attached.
    pub fn ledger(&self) -> Option<&BudgetLedger> {
        self.ledger.as_ref()
    }

    /// Per-parser-class spend of the attached ledger (`None` without a
    /// ledger; empty unless the ledger was built with
    /// [`BudgetLedger::with_classes`]).
    pub fn class_spend(&self) -> Option<&ClassLedger> {
        self.ledger.as_ref().map(BudgetLedger::class_spend)
    }

    /// The α the *next* window will be selected at: the configured α capped
    /// by what the ledger's remaining budget affords at current effective
    /// costs (just the configured α without a ledger).
    pub fn effective_alpha(&self) -> f64 {
        match &self.ledger {
            Some(ledger) => self.alpha.min(ledger.affordable_alpha()),
            None => self.alpha,
        }
    }

    /// Feed one completed wave's measured costs back into the ledger
    /// (no-op without one, or with a plan-only ledger built without
    /// [`BudgetLedger::with_observed_costs`]). Call after each window
    /// finishes parsing and before selecting the next window; the
    /// reconciliation tightens or loosens the effective α of every later
    /// window.
    pub fn ingest_observed(&mut self, wave: &WaveCosts) {
        if let Some(ledger) = &mut self.ledger {
            ledger.ingest(wave);
        }
    }

    /// Feed a *partial* observation back into the ledger — a subset of one
    /// or more committed windows' documents, in commit order, as the
    /// causal closed loop observes them at decision boundaries (see
    /// [`BudgetLedger::ingest_partial`]). No-op without a ledger; use one
    /// reconciliation style (whole-window or partial) per selector.
    pub fn ingest_observed_partial(&mut self, wave: &WaveCosts) {
        if let Some(ledger) = &mut self.ledger {
            ledger.ingest_partial(wave);
        }
    }

    /// Release the reservations of documents that will never be observed
    /// (skipped work), at campaign close — see
    /// [`BudgetLedger::release_unobserved`]. No-op without a ledger.
    pub fn release_unobserved(&mut self, docs: usize) {
        if let Some(ledger) = &mut self.ledger {
            ledger.release_unobserved(docs);
        }
    }

    /// Route one window of scores (the final window may be shorter than k)
    /// and return its routing mask.
    ///
    /// The quota is the accumulated fractional credit not yet spent:
    /// `⌊credit − selected⌋`, clamped to the window length. With a constant
    /// α this equals `⌊α·seen⌋ − selected`, the exact prefix-budget
    /// invariant.
    pub fn select_window(&mut self, scores: &[f64]) -> Vec<bool> {
        let alpha = self.effective_alpha();
        self.seen += scores.len();
        self.credit += (scores.len() as f64) * alpha;
        let quota = ((self.credit - self.selected as f64).floor().max(0.0) as usize).min(scores.len());
        let mask = top_quota_mask(scores, quota);
        self.selected += quota;
        if let Some(ledger) = &mut self.ledger {
            ledger.commit(scores.len(), quota);
        }
        mask
    }

    /// Drive the selector over a whole score slice, chunked into k-sized
    /// windows, and return the concatenated mask. Consumes the selector's
    /// stream position; use a fresh selector per corpus.
    pub fn select_all(mut self, scores: &[f64]) -> Vec<bool> {
        let mut mask = Vec::with_capacity(scores.len());
        for chunk in scores.chunks(self.window) {
            mask.extend(self.select_window(chunk));
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::{select_batch, select_global};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_scores(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0.0..1.0)).collect()
    }

    #[test]
    fn full_window_equals_global_selection_bitwise() {
        for seed in 0..5u64 {
            let scores = random_scores(257, seed);
            for &alpha in &[0.0, 0.05, 0.2, 0.5, 1.0] {
                let windowed = WindowedSelector::new(scores.len(), alpha).select_all(&scores);
                assert_eq!(windowed, select_global(&scores, alpha), "alpha={alpha} seed={seed}");
            }
        }
    }

    #[test]
    fn prefix_budget_invariant_holds_at_every_window() {
        let scores = random_scores(1000, 9);
        let alpha = 0.13;
        let mut selector = WindowedSelector::new(32, alpha);
        for chunk in scores.chunks(32) {
            selector.select_window(chunk);
            assert!(
                selector.selected() as f64 <= (alpha * selector.seen() as f64).floor() + 1e-9,
                "selected {} of {} seen",
                selector.selected(),
                selector.seen()
            );
        }
        // The full stream lands on the global quota up to one slot of float
        // slack (credit accrues as a sum of per-window products, which can
        // round a hair below the single-multiplication ⌊α·n⌋) and never
        // exceeds it.
        let global_quota = (alpha * scores.len() as f64).floor() as usize;
        assert!(selector.selected() <= global_quota);
        assert!(selector.selected() + 1 >= global_quota, "{} vs {global_quota}", selector.selected());
    }

    #[test]
    fn fractional_credit_carries_over_where_independent_batches_forfeit_it() {
        // α·k < 1: every independent batch floors its quota to zero and
        // selects nothing, while the ledger accrues 0.5 credit per window and
        // spends a slot every second window.
        let scores = random_scores(200, 6);
        let alpha = 0.05;
        let windowed = WindowedSelector::new(10, alpha).select_all(&scores);
        let batch = select_batch(&scores, alpha, 10);
        assert_eq!(batch.iter().filter(|&&m| m).count(), 0, "per-batch forfeits sub-1 quotas");
        assert_eq!(windowed.iter().filter(|&&m| m).count(), (alpha * 200.0).floor() as usize);
        let captured =
            |mask: &[bool]| -> f64 { scores.iter().zip(mask).filter(|(_, &m)| m).map(|(v, _)| v).sum() };
        assert!(captured(&windowed) > captured(&batch));
    }

    #[test]
    fn masks_are_independent_of_how_the_stream_is_replayed() {
        let scores = random_scores(300, 4);
        let all_at_once = WindowedSelector::new(64, 0.1).select_all(&scores);
        let mut incremental = WindowedSelector::new(64, 0.1);
        let mut mask = Vec::new();
        for chunk in scores.chunks(64) {
            mask.extend(incremental.select_window(chunk));
        }
        assert_eq!(all_at_once, mask);
    }

    #[test]
    fn seconds_ledger_tightens_alpha_when_budget_runs_short() {
        // Budget affords exactly 10% expensive docs overall; configured α
        // asks for 50%. The ledger must hold the line.
        let n = 200usize;
        let cheap = 1.0;
        let expensive = 11.0;
        let budget = n as f64 * cheap + 0.10 * n as f64 * (expensive - cheap);
        let scores = random_scores(n, 8);
        let selector =
            WindowedSelector::new(20, 0.5).with_budget(BudgetLedger::new(budget, n, cheap, expensive));
        let mask = selector.select_all(&scores);
        let selected = mask.iter().filter(|&&m| m).count();
        assert!(selected > 0, "some budget must be spent");
        let spend = n as f64 * cheap + selected as f64 * (expensive - cheap);
        assert!(spend <= budget + 1e-9, "spend {spend} exceeds budget {budget}");
    }

    #[test]
    fn observed_overruns_tighten_the_effective_alpha() {
        // Planned: 1 s cheap / 11 s expensive, budget sized for α = 0.5.
        let n = 400usize;
        let budget = n as f64 * 1.0 + 0.5 * n as f64 * 10.0;
        let ledger = BudgetLedger::new(budget, n, 1.0, 11.0).with_observed_costs(8.0);
        let mut selector = WindowedSelector::new(40, 0.5).with_budget(ledger);
        assert!((selector.effective_alpha() - 0.5).abs() < 1e-9);

        let scores = random_scores(40, 3);
        let mask = selector.select_window(&scores);
        let selected = mask.iter().filter(|&&m| m).count();
        assert_eq!(selected, 20);
        // The wave comes back 3× over plan on the expensive side.
        selector.ingest_observed(&WaveCosts {
            cheap_docs: 20,
            cheap_seconds: 20.0,
            expensive_docs: 20,
            expensive_seconds: 20.0 * 33.0,
        });
        let tightened = selector.effective_alpha();
        assert!(tightened < 0.5, "overruns must tighten α, got {tightened}");
        let ledger = selector.ledger().expect("ledger attached");
        assert!(ledger.effective_expensive_cost() > 11.0);
        assert!(ledger.observed().expect("feedback on").expensive_divergence() > 1.0);
    }

    #[test]
    fn observed_underruns_refund_the_reservation() {
        // A plan-only ledger ignores ingested waves entirely — commit
        // already charged them, so reconciling would double-count.
        let mut plan_only = BudgetLedger::new(100.0, 10, 2.0, 12.0);
        plan_only.ingest(&WaveCosts {
            cheap_docs: 2,
            cheap_seconds: 1.0,
            expensive_docs: 0,
            ..Default::default()
        });
        assert_eq!(plan_only.remaining_seconds(), 100.0);
        assert_eq!(plan_only.remaining_docs(), 10);

        // With feedback, a wave never committed through the ledger is
        // simply charged at its actual cost and its documents accounted.
        let mut ledger = BudgetLedger::new(100.0, 10, 2.0, 12.0).with_observed_costs(4.0);
        let before = ledger.remaining_seconds();
        ledger.ingest(&WaveCosts {
            cheap_docs: 2,
            cheap_seconds: 1.0,
            expensive_docs: 0,
            ..Default::default()
        });
        assert!((ledger.remaining_seconds() - (before - 1.0)).abs() < 1e-12);
        assert_eq!(ledger.remaining_docs(), 8);

        // Committed-then-cheaper: the difference comes back.
        let ledger = BudgetLedger::new(100.0, 10, 2.0, 12.0).with_observed_costs(4.0);
        let mut selector = WindowedSelector::new(4, 0.5).with_budget(ledger);
        selector.select_window(&[0.9, 0.8, 0.1, 0.2]); // commits 4·2 + 2·10 = 28 s
        let reserved = selector.ledger().unwrap().remaining_seconds();
        assert!((reserved - 72.0).abs() < 1e-9);
        selector.ingest_observed(&WaveCosts {
            cheap_docs: 2,
            cheap_seconds: 2.0,
            expensive_docs: 2,
            expensive_seconds: 12.0,
        });
        let after = selector.ledger().unwrap().remaining_seconds();
        assert!((after - 86.0).abs() < 1e-9, "72 + 28 reserved − 14 actual = 86, got {after}");
        // Cheaper-than-planned costs loosen the affordable α.
        assert!(selector.ledger().unwrap().effective_expensive_cost() < 12.0);
    }

    #[test]
    fn feedback_selection_is_deterministic_for_a_fixed_cost_trace() {
        let run = || {
            let ledger = BudgetLedger::new(500.0, 300, 1.0, 9.0).with_observed_costs(16.0);
            let mut selector = WindowedSelector::new(25, 0.3).with_budget(ledger);
            let mut masks = Vec::new();
            for window in 0..12u64 {
                let scores = random_scores(25, window);
                let mask = selector.select_window(&scores);
                let selected = mask.iter().filter(|&&m| m).count();
                masks.push(mask);
                // A synthetic but fixed cost trace: costs drift upward.
                let drift = 1.0 + window as f64 * 0.25;
                selector.ingest_observed(&WaveCosts {
                    cheap_docs: 25 - selected,
                    cheap_seconds: (25 - selected) as f64 * drift,
                    expensive_docs: selected,
                    expensive_seconds: selected as f64 * 9.0 * drift,
                });
            }
            (masks, selector.ledger().cloned())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn plan_only_ledgers_keep_no_reservations() {
        // Without observed-cost feedback nothing ever drains the
        // reservation queue, so commit must not grow it: a long-lived
        // plan-only stream stays O(1) in ledger state.
        let ledger = BudgetLedger::new(1_000.0, 1_000, 1.0, 9.0);
        let mut selector = WindowedSelector::new(10, 0.5).with_budget(ledger);
        for window in 0..50u64 {
            selector.select_window(&random_scores(10, window));
        }
        assert!(selector.ledger().unwrap().pending_commits.is_empty());

        // With feedback on, commit/ingest pairs keep the queue bounded by
        // the number of in-flight (committed-but-unreconciled) windows.
        let ledger = BudgetLedger::new(1_000.0, 1_000, 1.0, 9.0).with_observed_costs(8.0);
        let mut selector = WindowedSelector::new(10, 0.5).with_budget(ledger);
        for window in 0..50u64 {
            let mask = selector.select_window(&random_scores(10, window));
            let selected = mask.iter().filter(|&&m| m).count();
            selector.ingest_observed(&WaveCosts {
                cheap_docs: 10 - selected,
                cheap_seconds: (10 - selected) as f64,
                expensive_docs: selected,
                expensive_seconds: selected as f64 * 9.0,
            });
        }
        assert!(selector.ledger().unwrap().pending_commits.is_empty());
    }

    #[test]
    fn partial_ingests_release_reservations_slot_by_slot() {
        // One window of 10 docs committed at planned cost 5 s each → 50 s
        // reserved out of a 100 s budget.
        let ledger = BudgetLedger::new(100.0, 10, 5.0, 5.0).with_observed_costs(1.0);
        let mut selector = WindowedSelector::new(10, 0.0).with_budget(ledger);
        selector.select_window(&[0.0; 10]);
        assert!((selector.ledger().unwrap().remaining_seconds() - 50.0).abs() < 1e-9);
        // 5 docs finish costing 30 s: only their 25 s of reservation is
        // released (a whole-window ingest would have refunded all 50 s
        // while the other half is still running).
        let half = |seconds| WaveCosts { cheap_docs: 5, cheap_seconds: seconds, ..Default::default() };
        selector.ingest_observed_partial(&half(30.0));
        assert!((selector.ledger().unwrap().remaining_seconds() - 45.0).abs() < 1e-9);
        // The stragglers finish costing 20 s: the remaining 25 s releases.
        selector.ingest_observed_partial(&half(20.0));
        // Net: budget − measured = 100 − 50, exactly — nothing stranded,
        // nothing fabricated.
        assert!((selector.ledger().unwrap().remaining_seconds() - 50.0).abs() < 1e-9);
        assert!(selector.ledger().unwrap().pending_commits.is_empty());
    }

    #[test]
    fn unobserved_documents_release_their_reservations_at_close() {
        let ledger = BudgetLedger::new(100.0, 10, 5.0, 5.0).with_observed_costs(1.0);
        let mut selector = WindowedSelector::new(10, 0.0).with_budget(ledger);
        selector.select_window(&[0.0; 10]); // 50 s reserved
                                            // 4 docs complete; 6 are skipped and will never be observed.
        selector.ingest_observed_partial(&WaveCosts {
            cheap_docs: 4,
            cheap_seconds: 20.0,
            ..Default::default()
        });
        selector.release_unobserved(6);
        assert!((selector.ledger().unwrap().remaining_seconds() - 80.0).abs() < 1e-9);
        assert!(selector.ledger().unwrap().pending_commits.is_empty());
        // Releasing more slots than were ever committed is harmless.
        selector.release_unobserved(99);
        assert!((selector.ledger().unwrap().remaining_seconds() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn class_ledger_accounts_spend_per_parser_deterministically() {
        let mut classes = ClassLedger::new();
        assert!(classes.is_empty());
        classes.charge(ParserKind::Nougat, 10.0);
        classes.charge(ParserKind::PyMuPdf, 4.0);
        classes.charge(ParserKind::Nougat, 2.5);
        assert_eq!(classes.spent(ParserKind::Nougat), 12.5);
        assert_eq!(classes.spent(ParserKind::PyMuPdf), 4.0);
        assert_eq!(classes.spent(ParserKind::Marker), 0.0);
        assert!((classes.total() - 16.5).abs() < 1e-12);
        // Iteration follows ParserKind::index order (Nougat before PyMuPDF
        // in the paper's table order), not insertion order.
        let order: Vec<ParserKind> = classes.classes().map(|(k, _)| k).collect();
        assert_eq!(order, vec![ParserKind::Nougat, ParserKind::PyMuPdf]);
    }

    #[test]
    fn ledger_commits_split_spend_between_its_parser_classes() {
        let ledger =
            BudgetLedger::new(1_000.0, 100, 1.0, 11.0).with_classes(ParserKind::PyMuPdf, ParserKind::Nougat);
        let mut selector = WindowedSelector::new(10, 0.5).with_budget(ledger);
        selector.select_window(&random_scores(10, 21)); // 10 cheap + 5 upgrades
        let classes = selector.class_spend().expect("ledger attached");
        assert!((classes.spent(ParserKind::PyMuPdf) - 10.0).abs() < 1e-9);
        assert!((classes.spent(ParserKind::Nougat) - 50.0).abs() < 1e-9);
        // The class breakdown covers exactly the committed spend.
        assert!((classes.total() - (1_000.0 - selector.ledger().unwrap().remaining_seconds())).abs() < 1e-9);
        // Without with_classes the breakdown stays empty.
        let plain = WindowedSelector::new(10, 0.5).with_budget(BudgetLedger::new(100.0, 10, 1.0, 2.0));
        assert!(plain.class_spend().unwrap().is_empty());
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        let mut selector = WindowedSelector::new(0, 2.0); // clamped to window=1, alpha=1
        assert_eq!(selector.window(), 1);
        assert_eq!(selector.select_window(&[]), Vec::<bool>::new());
        assert_eq!(selector.select_window(&[0.5]), vec![true]);
        let empty = WindowedSelector::new(8, 0.5).select_all(&[]);
        assert!(empty.is_empty());
    }
}
