//! The resident ingest loop: epochs, admission, harvest, autoscaling.
//!
//! See the module docs on [`super`] for the full contract. The loop here
//! is the serve-layer analogue of [`crate::scaling::simloop`]'s closed
//! loop, with three structural differences: documents *arrive over time*
//! instead of existing up front, several tenants compete for one fleet
//! under weighted-fair queuing, and the fleet itself breathes — an
//! [`SloAutoscaler`] moves the session's active-node prefix against SLO
//! attainment while the cluster object stays fixed at the maximum size.

use std::collections::HashMap;

use hpcsim::{
    CampaignReport, CausalityMode, ClusterConfig, ExecutorConfig, LustreModel, SubmitOptions,
    WorkflowExecutor,
};

use crate::config::AdaParseConfig;
use crate::engine::RoutedDocument;
use crate::hpc::tasks_for_routing_with_affinity_scaled;
use crate::scaling::{
    AutoscaleConfig, ControllerConfig, FleetEvent, ScalingController, SloAutoscaler, StageSample, WaveCosts,
    WaveStats,
};
use crate::stats::{LatencyLedger, LatencySummary};

use super::tenant::{DocArrival, TenantRegistry, TenantServeReport, TenantTrace};

/// Minimum sliding-window completions a tenant needs before its p99
/// participates in the autoscaler's worst-ratio signal; below this the
/// tail estimate is too noisy to scale on.
const SLO_MIN_SAMPLES: usize = 8;

/// Knobs of a serve run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Engine configuration supplying the cheap/high-quality parser pair
    /// (per-tenant α comes from each [`TenantSpec`](super::TenantSpec),
    /// not from `engine.alpha`).
    pub engine: AdaParseConfig,
    /// Seconds between decision boundaries: each epoch the loop drains the
    /// session up to the boundary, harvests completions, ingests arrivals,
    /// admits, and rescales.
    pub epoch_seconds: f64,
    /// Initial fleet size in nodes (also the fixed size when
    /// [`autoscale`](Self::autoscale) is `None`).
    pub nodes: usize,
    /// Explicit cluster shape; `None` builds [`ClusterConfig::polaris`]
    /// over the maximum fleet (the autoscaler's `max_nodes`, or
    /// [`nodes`](Self::nodes) without autoscaling).
    pub cluster: Option<ClusterConfig>,
    /// Executor options. The causality mode is ignored: a serve run always
    /// admits causally (a service cannot retro-fill the past).
    pub executor: ExecutorConfig,
    /// Shared-filesystem model.
    pub filesystem: LustreModel,
    /// Stage-split controller tuning; its allocation is projected onto the
    /// *active* nodes each epoch via
    /// [`ScalingController::plan_nodes`].
    pub controller: ControllerConfig,
    /// SLO-driven fleet autoscaling; `None` pins the fleet at
    /// [`nodes`](Self::nodes) (the ablation baseline).
    pub autoscale: Option<AutoscaleConfig>,
    /// Admission cap as in-flight documents per active CPU slot; admission
    /// stops (documents wait in tenant queues) once
    /// `in_flight ≥ ceil(inflight_per_slot × active CPU slots)`.
    pub inflight_per_slot: f64,
    /// Sliding-window length (completions per tenant) for the SLO signal.
    pub slo_window: usize,
    /// Safety bound on epochs; a run that hits it closes with whatever is
    /// unfinished reported per tenant. Generous by default.
    pub max_epochs: usize,
    /// Retire session history behind each epoch boundary
    /// ([`hpcsim::ExecutorSession::retire_before`]), keeping resident
    /// memory and per-epoch accounting cost proportional to work in
    /// flight instead of session age. Every observable of the run —
    /// report, fingerprint, per-tenant percentiles — is **bitwise
    /// identical** either way (the loop satisfies the retirement contract
    /// structurally); the switch exists for the equivalence wall and for
    /// ablation. Default on.
    pub retirement: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            engine: AdaParseConfig::default(),
            epoch_seconds: 30.0,
            nodes: 2,
            cluster: None,
            executor: ExecutorConfig::default(),
            filesystem: LustreModel::default(),
            controller: ControllerConfig::default(),
            autoscale: None,
            inflight_per_slot: 4.0,
            slo_window: 64,
            max_epochs: 100_000,
            retirement: true,
        }
    }
}

/// Aggregate outcome of a serve run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Per-tenant accounting, in tenant declaration order.
    pub tenants: Vec<TenantServeReport>,
    /// Decision epochs the run took.
    pub epochs: usize,
    /// Simulated time of the last completion.
    pub makespan_seconds: f64,
    /// Every fleet-size change the autoscaler made (empty for a fixed
    /// fleet).
    pub fleet: Vec<FleetEvent>,
    /// Epoch-mean active nodes — the fleet capacity actually consumed.
    /// Size an equal-capacity fixed-fleet ablation from this.
    pub mean_active_nodes: f64,
    /// Largest fleet the run ever used.
    pub max_active_nodes: usize,
    /// Documents admitted across tenants.
    pub admitted: usize,
    /// Arrivals rejected across tenants (bounded queues).
    pub rejected: usize,
    /// The session-cumulative executor report.
    pub executor_report: CampaignReport,
    /// Time-to-parsed over *all* tenants' completed documents.
    pub latency: LatencySummary,
    /// FNV-1a fingerprint over the per-tenant latency summaries and the
    /// makespan — two runs with equal fingerprints produced bitwise-equal
    /// latency distributions. Cheap to diff across machines or commits.
    pub fingerprint: u64,
}

impl ServeReport {
    /// Worst per-tenant achieved-p99 / SLO ratio (0 with no completions).
    pub fn worst_slo_ratio(&self) -> f64 {
        self.tenants.iter().map(TenantServeReport::slo_ratio).fold(0.0, f64::max)
    }

    /// Whether every tenant met its p99 target.
    pub fn all_slos_met(&self) -> bool {
        self.tenants.iter().all(TenantServeReport::slo_met)
    }
}

/// A document admitted into the cluster, tracked until all its tasks have
/// scheduled.
#[derive(Debug, Clone, Copy)]
struct DocProgress {
    tenant: usize,
    arrived_at: f64,
    /// Routed to the high-quality parser (a parse task exists).
    expensive: bool,
    extract: Option<(f64, f64)>,
    parse: Option<(f64, f64)>,
}

impl DocProgress {
    /// Finish time of the document's last task, once every expected task
    /// has a schedule row.
    fn completion(&self) -> Option<f64> {
        let (_, extract_finish) = self.extract?;
        if self.expensive {
            let (_, parse_finish) = self.parse?;
            Some(extract_finish.max(parse_finish))
        } else {
            Some(extract_finish)
        }
    }
}

/// A completed document waiting (keyed in a [`DeferredQueue`] by its
/// finish time) for a decision boundary to pass before its latency and
/// cost become observable.
#[derive(Debug, Clone, Copy)]
struct DeferredCompletion {
    tenant: usize,
    latency_seconds: f64,
    expensive: bool,
    busy_seconds: f64,
}

/// A per-task stage sample deferred (keyed by the task finish) to the
/// boundary past it.
#[derive(Debug, Clone, Copy)]
struct DeferredStageObs {
    /// Even task ids are extract, odd are parse.
    parse: bool,
    busy_seconds: f64,
}

/// Order-preserving bit key of an observable-at time: non-negative finite
/// times sort by their IEEE-754 bits (`-0.0` → 0); `+∞` (the close
/// boundary) sorts last.
fn time_bits(seconds: f64) -> u64 {
    debug_assert!(seconds >= 0.0 && !seconds.is_nan(), "observable-at out of domain: {seconds}");
    if seconds == 0.0 {
        0
    } else {
        seconds.to_bits()
    }
}

/// An entry of a [`DeferredQueue`], ordered by `(observable-at bits,
/// insertion sequence)` — the deterministic tie-break that lets the heap
/// reproduce the old linear rescan's insertion order exactly.
struct DeferredEntry<T> {
    at_bits: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for DeferredEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.at_bits, self.seq) == (other.at_bits, other.seq)
    }
}
impl<T> Eq for DeferredEntry<T> {}
impl<T> PartialOrd for DeferredEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for DeferredEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at_bits, self.seq).cmp(&(other.at_bits, other.seq))
    }
}

/// Min-heap of deferred observations keyed by `(observable_at bits,
/// insertion index)`. Each epoch pops only the entries the boundary
/// surfaces — O(Δ log n) — instead of rescanning every deferred item, and
/// the popped batch is re-sorted by insertion index so the output is
/// *bitwise the order the old full rescan produced* (insertion order among
/// due items), which everything downstream (cost folds, controller
/// samples, fingerprints) depends on.
struct DeferredQueue<T> {
    heap: std::collections::BinaryHeap<std::cmp::Reverse<DeferredEntry<T>>>,
    next_seq: u64,
}

impl<T> DeferredQueue<T> {
    fn new() -> Self {
        DeferredQueue { heap: std::collections::BinaryHeap::new(), next_seq: 0 }
    }

    fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    fn push(&mut self, observable_at: f64, item: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(std::cmp::Reverse(DeferredEntry { at_bits: time_bits(observable_at), seq, item }));
    }

    /// Pop every entry observable at or before `boundary`, in insertion
    /// order.
    fn pop_due(&mut self, boundary: f64) -> Vec<T> {
        let boundary_bits = if boundary.is_infinite() { u64::MAX } else { time_bits(boundary) };
        let mut due: Vec<DeferredEntry<T>> = Vec::new();
        while let Some(std::cmp::Reverse(entry)) = self.heap.peek() {
            if entry.at_bits > boundary_bits {
                break;
            }
            let std::cmp::Reverse(entry) = self.heap.pop().expect("peeked non-empty");
            due.push(entry);
        }
        due.sort_by_key(|entry| entry.seq);
        due.into_iter().map(|entry| entry.item).collect()
    }
}

/// FNV-1a over the bytes that define a run's observable outcome.
fn fingerprint(tenants: &[TenantServeReport], makespan_seconds: f64) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for t in tenants {
        eat(&(t.latency.count as u64).to_le_bytes());
        eat(&t.latency.mean_seconds.to_bits().to_le_bytes());
        eat(&t.latency.p50_seconds.to_bits().to_le_bytes());
        eat(&t.latency.p99_seconds.to_bits().to_le_bytes());
        eat(&t.latency.max_seconds.to_bits().to_le_bytes());
        eat(&(t.admitted as u64).to_le_bytes());
        eat(&(t.rejected as u64).to_le_bytes());
        eat(&(t.selected as u64).to_le_bytes());
    }
    eat(&makespan_seconds.to_bits().to_le_bytes());
    hash
}

/// Steady-state instrumentation of one serve run, returned by
/// [`run_service_instrumented`] alongside the report. Wall-clock fields
/// are host measurements and **not** deterministic — they live here, apart
/// from [`ServeReport`], precisely so replay equality over reports stays
/// meaningful.
#[derive(Debug, Clone, Default)]
pub struct SoakStats {
    /// Wall-clock seconds each epoch took (host time).
    pub epoch_wall_seconds: Vec<f64>,
    /// Peak retained schedule rows observed at any epoch boundary —
    /// post-retirement when [`ServeConfig::retirement`] is on, so this is
    /// the resident-row bound the soak benchmark asserts.
    pub peak_retained_rows: usize,
    /// Peak retained completed-task records at any epoch boundary.
    pub peak_retained_completed: usize,
    /// Peak documents simultaneously awaiting schedule rows.
    pub peak_awaiting_docs: usize,
    /// Peak admitted-but-uncompleted documents (the in-flight cap's view).
    pub peak_in_flight: usize,
    /// Largest single-task busy span (finish − start) harvested — the
    /// straggler horizon bounding how many epochs a retained row can span.
    pub max_task_busy_seconds: f64,
}

/// Run the resident multi-tenant ingest service over the given tenant
/// traces. Fully deterministic: same config and traces, same report, bit
/// for bit. See the [module docs](super) for the epoch contract.
pub fn run_service(config: &ServeConfig, traces: &[TenantTrace]) -> ServeReport {
    run_service_instrumented(config, traces).0
}

/// [`run_service`], additionally returning [`SoakStats`] — per-epoch wall
/// times and peak retained-state sizes — for steady-state (soak)
/// benchmarking. The report is bitwise identical to [`run_service`]'s.
pub fn run_service_instrumented(config: &ServeConfig, traces: &[TenantTrace]) -> (ServeReport, SoakStats) {
    let epoch_seconds = config.epoch_seconds.max(1e-9);
    let max_nodes = match &config.autoscale {
        Some(auto) => auto.max_nodes.max(config.nodes).max(1),
        None => config.nodes.max(1),
    };
    let cluster = config.cluster.unwrap_or_else(|| ClusterConfig::polaris(max_nodes));
    // A service cannot retro-fill the past: admission is causal by
    // construction, whatever the caller's executor config says.
    let executor_config = ExecutorConfig { causality: CausalityMode::Causal, ..config.executor };
    let executor = WorkflowExecutor::new(executor_config);
    let mut session = executor.session(&cluster);
    session.set_active_nodes(config.nodes.max(1));

    let mut registry = TenantRegistry::new(&config.engine, traces);
    let mut controller = ScalingController::new(config.controller);
    let mut autoscaler = config.autoscale.map(|auto| SloAutoscaler::new(auto, config.nodes.max(1)));

    // Global arrival order: (time, tenant, per-tenant order). Ties inside
    // a timestamp admit lower tenant indices first — deterministic, and
    // exercised hard by the adversarial-herd traces.
    let mut events: Vec<(f64, usize, DocArrival)> = Vec::new();
    for (tenant, trace) in traces.iter().enumerate() {
        for arrival in &trace.arrivals {
            events.push((arrival.at_seconds, tenant, *arrival));
        }
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

    let mut cursor = 0usize;
    let mut next_doc_id = 0u64;
    // Documents in the cluster whose tasks have not all scheduled yet,
    // keyed by doc id.
    let mut awaiting: HashMap<u64, DocProgress> = HashMap::new();
    let mut deferred_done: DeferredQueue<DeferredCompletion> = DeferredQueue::new();
    let mut deferred_stage: DeferredQueue<DeferredStageObs> = DeferredQueue::new();
    // Global-order harvest cursor: compared against `schedule_len()`, not
    // the retained slice, so retirement never moves it.
    let mut scanned_rows = 0usize;
    let mut in_flight = 0usize;
    let mut epochs = 0usize;
    let mut active_node_sum = 0usize;
    let mut max_active = session.active_nodes();
    let mut plan = controller.plan_nodes(session.active_nodes());
    let mut soak = SoakStats::default();

    // One closure-free harvest pass, shared by the epoch loop and the
    // final drain: scan new schedule rows into per-doc progress, then
    // surface everything observable at `boundary`.
    macro_rules! harvest {
        ($boundary:expr) => {{
            let boundary: f64 = $boundary;
            for row in session.schedule_since(scanned_rows) {
                let doc_id = row.id / 2;
                let parse = row.id % 2 == 1;
                if let Some(progress) = awaiting.get_mut(&doc_id) {
                    let span = (row.start_seconds, row.finish_seconds);
                    if parse {
                        progress.parse = Some(span);
                    } else {
                        progress.extract = Some(span);
                    }
                    // Herd-channel queue time is attributed to the owning
                    // tenant as its rows surface (a doc's rows always scan
                    // before it graduates out of `awaiting`).
                    if row.herd_wait_seconds > 0.0 {
                        registry.states_mut()[progress.tenant].herd_queue_seconds += row.herd_wait_seconds;
                    }
                }
                soak.max_task_busy_seconds =
                    soak.max_task_busy_seconds.max(row.finish_seconds - row.start_seconds);
                deferred_stage.push(
                    row.finish_seconds,
                    DeferredStageObs { parse, busy_seconds: row.finish_seconds - row.start_seconds },
                );
            }
            scanned_rows = session.schedule_len();
            // Documents whose last task has now scheduled graduate from
            // awaiting to deferred completion (iterate in doc-id order so
            // the deferred list, and everything downstream, is
            // deterministic).
            let mut done_ids: Vec<u64> =
                awaiting.iter().filter(|(_, p)| p.completion().is_some()).map(|(&id, _)| id).collect();
            done_ids.sort_unstable();
            for id in done_ids {
                let progress = awaiting.remove(&id).expect("id came from the map");
                let finish = progress.completion().expect("filtered on completion");
                let busy = progress.extract.map(|(s, f)| f - s).unwrap_or(0.0)
                    + progress.parse.map(|(s, f)| f - s).unwrap_or(0.0);
                deferred_done.push(
                    finish,
                    DeferredCompletion {
                        tenant: progress.tenant,
                        latency_seconds: finish - progress.arrived_at,
                        expensive: progress.expensive,
                        busy_seconds: busy,
                    },
                );
            }
            // Latencies and measured costs become visible only once the
            // boundary passes the finish — the service never acts on a
            // completion that has not happened yet.
            let observable = deferred_done.pop_due(boundary);
            let mut per_tenant_costs: HashMap<usize, WaveCosts> = HashMap::new();
            for done in observable {
                let state = &mut registry.states_mut()[done.tenant];
                state.completed += 1;
                state.latencies.record(done.latency_seconds);
                state.recent_latency.push_back(done.latency_seconds);
                while state.recent_latency.len() > config.slo_window.max(1) {
                    state.recent_latency.pop_front();
                }
                per_tenant_costs.entry(done.tenant).or_default().record(done.expensive, done.busy_seconds);
                in_flight -= 1;
            }
            let mut tenants_with_costs: Vec<usize> = per_tenant_costs.keys().copied().collect();
            tenants_with_costs.sort_unstable();
            for tenant in tenants_with_costs {
                let costs = &per_tenant_costs[&tenant];
                let state = &mut registry.states_mut()[tenant];
                state.observed_docs += costs.docs();
                state.selector.ingest_observed_partial(costs);
            }
        }};
    }

    while cursor < events.len()
        || registry.queued() > 0
        || !awaiting.is_empty()
        || !deferred_done.is_empty()
        || session.pending_task_count() > 0
    {
        if epochs >= config.max_epochs {
            break;
        }
        let epoch_started = std::time::Instant::now();
        let boundary = (epochs + 1) as f64 * epoch_seconds;
        active_node_sum += session.active_nodes();
        epochs += 1;

        // 1. Advance the engine to the boundary: dispatch every event with
        //    release time at or before it, in global event order.
        session.advance_until(boundary, &config.filesystem);

        // 2. Harvest: completions (latency + measured cost) and stage
        //    samples that are observable at this boundary. Every row up to
        //    the boundary is scanned before retirement, all later floors
        //    are ≥ the boundary, and documents never reference earlier
        //    batches — the retirement contract holds structurally, so the
        //    drop below is invisible in every observable.
        harvest!(boundary);
        if config.retirement {
            session.retire_before(boundary);
        }

        // 3. Ingest arrivals up to the boundary into bounded per-tenant
        //    queues; overflow is rejected, never silently dropped.
        while cursor < events.len() && events[cursor].0 <= boundary {
            let (_, tenant, arrival) = events[cursor];
            cursor += 1;
            let state = &mut registry.states_mut()[tenant];
            state.arrived += 1;
            if state.queue.len() >= state.spec.max_pending {
                state.rejected += 1;
            } else {
                state.queue.push_back(arrival);
            }
        }

        // 4. Weighted-fair admission: repeatedly grant the backlogged
        //    tenant with the least virtual service (planned cost over
        //    weight; ties to the lower tenant index), until the in-flight
        //    cap fills or every queue drains. No tenant starves: a
        //    backlogged tenant's service stands still while others grow,
        //    so it is eventually the minimum.
        let active_cpu_slots = session.active_nodes() * cluster.cpu_slots_per_node;
        let inflight_cap = ((config.inflight_per_slot * active_cpu_slots as f64).ceil() as usize).max(1);
        let mut admitted_now: Vec<Vec<DocArrival>> = vec![Vec::new(); registry.len()];
        while in_flight + admitted_now.iter().map(Vec::len).sum::<usize>() < inflight_cap {
            let mut best: Option<usize> = None;
            for (tenant, state) in registry.states().iter().enumerate() {
                if state.queue.is_empty() {
                    continue;
                }
                best = match best {
                    None => Some(tenant),
                    Some(current) if state.virtual_service < registry.states()[current].virtual_service => {
                        Some(tenant)
                    }
                    keep => keep,
                };
            }
            let Some(tenant) = best else { break };
            let state = &mut registry.states_mut()[tenant];
            let doc = state.queue.pop_front().expect("best tenant has a queue");
            state.virtual_service += state.planned_doc_cost / state.spec.weight;
            state.admitted += 1;
            admitted_now[tenant].push(doc);
        }

        // 5. Route and submit each tenant's admitted batch at its own
        //    effective α, with the boundary as the causal release floor.
        for (tenant, batch) in admitted_now.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let state = &mut registry.states_mut()[tenant];
            let scores: Vec<f64> = batch.iter().map(|d| d.score).collect();
            // The α actually applied to this batch; the last admission's
            // value is what the report calls the tenant's final α (after
            // the stream position passes the last document, the live
            // clamp turns vacuous).
            state.closing_alpha = state.selector.effective_alpha();
            let mask = state.selector.select_window(&scores);
            let routed: Vec<RoutedDocument> = batch
                .iter()
                .zip(&mask)
                .map(|(doc, &hq)| {
                    let doc_id = next_doc_id;
                    next_doc_id += 1;
                    awaiting.insert(
                        doc_id,
                        DocProgress {
                            tenant,
                            arrived_at: doc.at_seconds,
                            expensive: hq,
                            extract: None,
                            parse: None,
                        },
                    );
                    in_flight += 1;
                    RoutedDocument {
                        doc_id,
                        // The tenant's own parser pair: the service pair by
                        // default, the allowlist-derived pair otherwise.
                        parser: if hq {
                            state.route_config.high_quality_parser
                        } else {
                            state.route_config.default_parser
                        },
                        predicted_improvement: doc.score,
                        cls1_invalid: false,
                    }
                })
                .collect();
            let selected = mask.iter().filter(|&&m| m).count();
            state.selected += selected;
            let workload = state.spec.workload;
            // Parse compute scales by the tenant's delegation fraction
            // (exactly 1.0 for by-doc tenants — a bitwise no-op).
            let tasks = tasks_for_routing_with_affinity_scaled(
                &state.route_config,
                &routed,
                &workload,
                &plan,
                state.parse_fraction,
            );
            session.submit_owned(tasks, SubmitOptions { release_seconds: Some(boundary) });
        }

        // 6. Feed the stage-split controller the samples observable at the
        //    boundary and rescale the fleet against SLO attainment.
        let observable = deferred_stage.pop_due(boundary);
        let mut extract = StageSample { busy_seconds: 0.0, items: 0 };
        let mut parse = StageSample { busy_seconds: 0.0, items: 0 };
        for obs in observable {
            let sample = if obs.parse { &mut parse } else { &mut extract };
            sample.busy_seconds += obs.busy_seconds;
            sample.items += 1;
        }
        let queue_depth = registry.queued() + in_flight;
        controller.observe_at(boundary, &WaveStats { wave_index: epochs - 1, extract, parse, queue_depth });
        if let Some(autoscaler) = autoscaler.as_mut() {
            let worst = registry.worst_slo_ratio(SLO_MIN_SAMPLES.min(config.slo_window.max(1)));
            let backlog_per_slot = queue_depth as f64 / active_cpu_slots.max(1) as f64;
            let nodes = autoscaler.observe(epochs - 1, boundary, worst, backlog_per_slot);
            session.set_active_nodes(nodes);
        }
        max_active = max_active.max(session.active_nodes());
        plan = controller.plan_nodes(session.active_nodes());

        // 7. Soak sampling (host-side only; never feeds back into the
        //    run): per-epoch wall time and peak retained-state sizes,
        //    measured after retirement so the peaks reflect what actually
        //    stays resident.
        soak.epoch_wall_seconds.push(epoch_started.elapsed().as_secs_f64());
        soak.peak_retained_rows = soak.peak_retained_rows.max(session.schedule().len());
        soak.peak_retained_completed = soak.peak_retained_completed.max(session.retained_completed_tasks());
        soak.peak_awaiting_docs = soak.peak_awaiting_docs.max(awaiting.len());
        soak.peak_in_flight = soak.peak_in_flight.max(in_flight);
    }

    // Close: let every in-flight task run to completion and fold in the
    // remaining observations (no further decision needs protecting).
    session.advance_to_frontier(&config.filesystem);
    harvest!(f64::INFINITY);
    // After an unbounded harvest the only unaccounted documents are those
    // with a task the engine skipped outright (they are reported per
    // tenant as unfinished).
    assert_eq!(in_flight, awaiting.len(), "every scheduled document must be harvested at close");
    debug_assert_eq!(scanned_rows, session.schedule_len());
    for state in registry.states_mut() {
        // Every arrival held a planning slot in the ledger — including
        // rejected and never-admitted documents; refund whatever was never
        // measured.
        let unobserved = state.arrived.saturating_sub(state.observed_docs);
        state.selector.release_unobserved(unobserved);
    }

    let tenants = registry.reports();
    let admitted = tenants.iter().map(|t| t.admitted).sum();
    let rejected = tenants.iter().map(|t| t.rejected).sum();
    // Overall latency is the tenant ledgers merged in declaration order —
    // exact count/percentiles/max; the mean is the merged-sum mean.
    let mut overall = LatencyLedger::new();
    for state in registry.states() {
        overall.absorb(&state.latencies);
    }
    let makespan_seconds = session.now_seconds();
    let fingerprint = fingerprint(&tenants, makespan_seconds);
    let report = ServeReport {
        tenants,
        epochs,
        makespan_seconds,
        fleet: autoscaler.as_ref().map(|a| a.history().to_vec()).unwrap_or_default(),
        mean_active_nodes: if epochs == 0 {
            session.active_nodes() as f64
        } else {
            active_node_sum as f64 / epochs as f64
        },
        max_active_nodes: max_active,
        admitted,
        rejected,
        executor_report: session.report(),
        latency: overall.summary(),
        fingerprint,
    };
    (report, soak)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::tenant::TenantSpec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn trace(name: &str, n: usize, seed: u64, rate: f64) -> TenantTrace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut now = 0.0;
        let arrivals = (0..n)
            .map(|_| {
                let u: f64 = rng.gen_range(0.0..1.0);
                now += -(1.0 - u).ln() / rate;
                DocArrival { at_seconds: now, score: rng.gen_range(0.0..1.0) }
            })
            .collect();
        TenantTrace { spec: TenantSpec { name: name.to_string(), ..Default::default() }, arrivals }
    }

    #[test]
    fn empty_service_is_a_noop() {
        let report = run_service(&ServeConfig::default(), &[]);
        assert_eq!(report.epochs, 0);
        assert_eq!(report.admitted, 0);
        assert!(report.tenants.is_empty());
        assert_eq!(report.latency, LatencySummary::default());
        // A tenant with no arrivals is likewise trivial.
        let empty = TenantTrace { spec: TenantSpec::default(), arrivals: Vec::new() };
        let report = run_service(&ServeConfig::default(), &[empty]);
        assert_eq!(report.tenants[0].arrived, 0);
        assert_eq!(report.epochs, 0);
    }

    #[test]
    fn steady_single_tenant_run_completes_every_document() {
        let traces = vec![trace("solo", 80, 5, 1.0)];
        let report = run_service(&ServeConfig::default(), &traces);
        let tenant = &report.tenants[0];
        assert_eq!(tenant.arrived, 80);
        assert_eq!(tenant.admitted, 80, "an uncontended fleet admits everything");
        assert_eq!(tenant.rejected, 0);
        assert_eq!(tenant.completed, 80);
        assert_eq!(tenant.unfinished, 0);
        assert_eq!(tenant.latency.count, 80);
        assert!(tenant.latency.p50_seconds <= tenant.latency.p99_seconds);
        assert!(tenant.latency.p99_seconds <= tenant.latency.max_seconds);
        // Latency includes the admission epoch: every document waits for
        // at least the boundary after its arrival before it can start.
        assert!(tenant.latency.p50_seconds > 0.0);
        assert!(report.makespan_seconds > 0.0);
        assert_eq!(report.fleet, Vec::new(), "a fixed fleet records no scaling events");
        assert_eq!(report.mean_active_nodes, 2.0);
    }

    #[test]
    fn multi_tenant_run_replays_bitwise() {
        let traces = vec![trace("a", 60, 5, 1.5), trace("b", 45, 6, 1.0), trace("c", 30, 7, 0.7)];
        let config = ServeConfig { autoscale: Some(AutoscaleConfig::default()), ..ServeConfig::default() };
        let x = run_service(&config, &traces);
        let y = run_service(&config, &traces);
        assert_eq!(x, y, "a serve run must be a pure function of its inputs");
        assert_eq!(x.fingerprint, y.fingerprint);
        assert_eq!(x.admitted, 135);
        assert_eq!(x.tenants.iter().map(|t| t.completed).sum::<usize>(), 135);
    }

    #[test]
    fn allowlisted_tenants_route_on_their_own_parser_pair() {
        use crate::campaign::CampaignBudget;
        use crate::cascade::RoutingGranularity;
        use parsersim::ParserKind;

        let mut restricted = trace("ocr-only", 40, 11, 1.0);
        restricted.spec.parsers = Some(vec![ParserKind::PyMuPdf, ParserKind::Tesseract, ParserKind::Marker]);
        restricted.spec.budget = Some(CampaignBudget::seconds(1e6));
        let mut by_page = trace("by-page", 40, 12, 1.0);
        by_page.spec.granularity = RoutingGranularity::ByPage;
        let default_tenant = trace("default", 40, 13, 1.0);

        let config = ServeConfig::default();
        let report = run_service(&config, &[restricted, by_page, default_tenant]);

        let ocr = &report.tenants[0];
        assert_eq!(ocr.base_parser, ParserKind::PyMuPdf, "cheapest allowed parser is the base");
        assert_eq!(ocr.upgrade_parser, ParserKind::Marker, "costliest frontier survivor upgrades");
        assert_eq!(ocr.completed, 40);
        // The budget ledger attributes planned spend to the tenant's own
        // parser classes, not the service pair.
        let classes: Vec<ParserKind> = ocr.class_seconds.iter().map(|&(kind, _)| kind).collect();
        assert!(classes.contains(&ParserKind::PyMuPdf));
        assert!(
            !classes.contains(&config.engine.default_parser)
                || ParserKind::PyMuPdf == config.engine.default_parser
        );

        // A by-page tenant still completes everything; its planned upgrade
        // compute is scaled, never its correctness.
        assert_eq!(report.tenants[1].completed, 40);

        // A default-spec tenant keeps the service-wide pair.
        let default_report = &report.tenants[2];
        assert_eq!(default_report.base_parser, config.engine.default_parser);
        assert_eq!(default_report.upgrade_parser, config.engine.high_quality_parser);
        assert_eq!(default_report.completed, 40);

        // Replays bitwise like every serve run.
        let mut restricted = trace("ocr-only", 40, 11, 1.0);
        restricted.spec.parsers = Some(vec![ParserKind::PyMuPdf, ParserKind::Tesseract, ParserKind::Marker]);
        restricted.spec.budget = Some(CampaignBudget::seconds(1e6));
        let mut by_page = trace("by-page", 40, 12, 1.0);
        by_page.spec.granularity = RoutingGranularity::ByPage;
        let again = run_service(&config, &[restricted, by_page, trace("default", 40, 13, 1.0)]);
        assert_eq!(report, again);
    }

    #[test]
    fn bounded_queues_reject_overflow_instead_of_growing() {
        // One tenant, tiny queue, all documents in one herd: everything
        // past the queue bound plus the first admission wave is rejected.
        let arrivals = (0..50).map(|_| DocArrival { at_seconds: 1.0, score: 0.5 }).collect();
        let spec = TenantSpec { max_pending: 8, ..Default::default() };
        let traces = vec![TenantTrace { spec, arrivals }];
        let report = run_service(&ServeConfig::default(), &traces);
        let tenant = &report.tenants[0];
        assert_eq!(tenant.arrived, 50);
        assert!(tenant.rejected > 0, "a bounded queue must shed herd overflow");
        assert_eq!(tenant.admitted + tenant.rejected, 50);
        assert_eq!(tenant.completed, tenant.admitted);
    }
}
