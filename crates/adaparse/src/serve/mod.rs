//! The serve layer: a resident multi-tenant ingest service.
//!
//! Everything below [`crate::scaling::simloop`] assumes a *campaign*: the
//! full document list exists up front and the loop's only job is to finish
//! it. This module lifts the same closed-loop machinery into a *service*:
//! documents arrive over simulated time on per-tenant traces, several
//! tenants — each with its own α target, compute budget, and p99
//! time-to-parsed SLO — compete for one persistent
//! [`hpcsim::ExecutorSession`] fleet, and the fleet itself autoscales
//! against SLO attainment.
//!
//! ```text
//!  tenant A arrivals ─┐                 ┌──────────────────────────────┐
//!  tenant B arrivals ─┼─► bounded per-  │  epoch k, boundary t = k·Δ:  │
//!  tenant C arrivals ─┘   tenant queues │  1 advance_until(t)  (drain) │
//!        (rejected when full)      │    │  2 harvest completions ≤ t   │
//!                                  ▼    │  3 ingest arrivals ≤ t       │
//!                     weighted-fair ────┤  4 WFQ admission (cap'd)     │
//!                     admission         │  5 per-tenant α-routing,     │
//!                          │            │    submit at floor t         │
//!                          ▼            │  6 controller + autoscaler   │
//!               ExecutorSession (active │    → set_active_nodes        │
//!               node prefix breathes)   └──────────────────────────────┘
//! ```
//!
//! # The epoch contract
//!
//! [`run_service`] cuts simulated time into fixed decision epochs of
//! [`ServeConfig::epoch_seconds`]. At each boundary `t` it:
//!
//! 1. **Drains** the session up to `t` with the bounded
//!    [`hpcsim::ExecutorSession::advance_until`] — every queued event with
//!    release time ≤ `t` dispatches in global (time, id) order, and
//!    nothing later does, so admission and execution interleave causally.
//! 2. **Harvests** completions whose finish is ≤ `t`: each yields the
//!    owning tenant a time-to-parsed sample (arrival → last task finish)
//!    and a measured cost that reconciles the tenant's budget ledger.
//!    A completion with finish > `t` stays invisible — the service never
//!    acts on the future.
//! 3. **Ingests** arrivals ≤ `t` into bounded per-tenant queues;
//!    overflow is *rejected* and counted, never silently dropped.
//! 4. **Admits** by weighted-fair queuing: the backlogged tenant with the
//!    least virtual service (admitted planned cost ÷ weight, ties to the
//!    lower tenant index) is granted next, until the in-flight cap
//!    ([`ServeConfig::inflight_per_slot`] × active CPU slots) fills. A
//!    backlogged tenant's service stands still while others grow, so no
//!    tenant starves — even against an adversarial herd.
//! 5. **Routes** each tenant's admitted batch through its own
//!    [`crate::scaling::WindowedSelector`] (its α, its ledger — budget
//!    exhaustion degrades that tenant to the cheap parser, nobody else's
//!    latency), and submits the extract/parse task pairs with `t` as the
//!    causal release floor.
//! 6. **Rescales**: the [`crate::scaling::ScalingController`] digests the
//!    boundary's stage samples into the node split, and the
//!    [`crate::scaling::SloAutoscaler`] moves the session's active-node
//!    prefix against the worst per-tenant p99/SLO ratio and the backlog —
//!    up fast, down with patience. Drained nodes finish what they run and
//!    take no new work; no task is ever preempted.
//!
//! The whole run is a pure function of its inputs: same
//! [`ServeConfig`] and [`TenantTrace`]s, same [`ServeReport`] — including
//! every per-tenant exact nearest-rank p50/p99 ([`crate::stats`]) — bit
//! for bit. [`ServeReport::fingerprint`] condenses that for cheap
//! cross-machine diffing.

mod ingest;
mod tenant;

pub use ingest::{run_service, run_service_instrumented, ServeConfig, ServeReport, SoakStats};
pub use tenant::{
    DocArrival, TenantRegistry, TenantServeReport, TenantSpec, TenantTrace, BY_PAGE_PLANNED_FRACTION,
};
