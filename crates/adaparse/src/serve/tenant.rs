//! Tenants: who is sending documents, under what budget, toward what SLO.
//!
//! A [`TenantSpec`] is the contract one customer of the service signs: its
//! routing α, its optional compute budget, its p99 time-to-parsed target,
//! its weighted-fair share of the fleet, and the bound on how many of its
//! documents may sit admitted-but-unselected at once. A [`TenantTrace`]
//! pairs the spec with the tenant's arrival trace. The
//! [`TenantRegistry`] owns the per-tenant live state — selector, budget
//! ledger, admission queue, latency samples — for the duration of a serve
//! run and renders it into per-tenant [`TenantServeReport`]s at close.

use std::collections::VecDeque;

use parsersim::{page_dollars, ParserFrontier, ParserKind};

use crate::campaign::CampaignBudget;
use crate::cascade::RoutingGranularity;
use crate::hpc::WorkloadSpec;
use crate::scaling::{BudgetLedger, WindowedSelector};
use crate::stats::{nearest_rank_percentile, LatencyLedger, LatencySummary};

use crate::config::AdaParseConfig;
use crate::scaling::planned_costs;

/// Planned fraction of a document's pages a [`RoutingGranularity::ByPage`]
/// tenant delegates to its upgrade parser. Page delegation sends the
/// at-or-above-mean-difficulty pages — about half of a typical document —
/// so capacity planning (task compute, WFQ charge, ledger costs) budgets
/// the upgrade at this fraction of the whole-document cost.
pub const BY_PAGE_PLANNED_FRACTION: f64 = 0.5;

/// One document arriving at the service: when it becomes visible, and the
/// router's predicted improvement score for it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DocArrival {
    /// Simulated arrival time in seconds.
    pub at_seconds: f64,
    /// Predicted improvement score fed to the tenant's windowed selector.
    pub score: f64,
}

/// The per-tenant service contract.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Human-readable tenant name (reports and logs only).
    pub name: String,
    /// Target fraction of this tenant's documents routed to the
    /// high-quality parser.
    pub alpha: f64,
    /// Optional compute budget; `None` routes at `alpha` with no seconds
    /// ledger. An exhausted budget drives the tenant's effective α to
    /// zero — its documents keep flowing, on the cheap parser.
    pub budget: Option<CampaignBudget>,
    /// SLO: target p99 time-to-parsed (arrival → last task finish) in
    /// seconds.
    pub slo_p99_seconds: f64,
    /// Weighted-fair-queuing weight (> 0): a tenant with weight 2 is
    /// entitled to twice the admitted planned-cost rate of a tenant with
    /// weight 1 when both have work queued.
    pub weight: f64,
    /// Bound on the tenant's admission queue; arrivals past it are
    /// rejected (counted, never silently dropped).
    pub max_pending: usize,
    /// Shape of this tenant's documents (pages, MB) for task generation
    /// and planned costs.
    pub workload: WorkloadSpec,
    /// Optional parser allowlist. `None` routes on the service-wide pair
    /// from [`ServeConfig::engine`](super::ServeConfig::engine) — the
    /// bitwise-unchanged default. `Some` restricts the tenant to the listed
    /// parsers: the cheapest (by [`page_dollars`]) becomes its base and the
    /// costliest surviving entry of a [`ParserFrontier`] over the list
    /// becomes its upgrade.
    pub parsers: Option<Vec<ParserKind>>,
    /// Whether an upgrade routes the whole document
    /// ([`RoutingGranularity::ByDoc`], the default) or only its
    /// hardest pages ([`RoutingGranularity::ByPage`]), in which case
    /// planned costs and task compute are scaled by
    /// [`BY_PAGE_PLANNED_FRACTION`].
    pub granularity: RoutingGranularity,
}

impl Default for TenantSpec {
    fn default() -> Self {
        TenantSpec {
            name: "tenant".to_string(),
            alpha: 0.2,
            budget: None,
            slo_p99_seconds: 60.0,
            weight: 1.0,
            max_pending: 256,
            workload: WorkloadSpec { documents: 0, pages_per_doc: 8, mb_per_doc: 50.0 },
            parsers: None,
            granularity: RoutingGranularity::ByDoc,
        }
    }
}

/// A tenant's spec plus its arrival trace — one input lane of a serve run.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantTrace {
    /// The service contract.
    pub spec: TenantSpec,
    /// Arrivals in non-decreasing time order. (Typically generated from
    /// `scicorpus::generate_arrivals` timestamps zipped with improvement
    /// scores.)
    pub arrivals: Vec<DocArrival>,
}

/// Final per-tenant accounting of a serve run.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantServeReport {
    /// Tenant name, copied from the spec.
    pub name: String,
    /// Documents that arrived over the run.
    pub arrived: usize,
    /// Documents admitted into the cluster.
    pub admitted: usize,
    /// Arrivals rejected because the tenant's queue was full.
    pub rejected: usize,
    /// Admitted documents whose tasks all finished.
    pub completed: usize,
    /// Admitted documents still unfinished at close (nonzero only when the
    /// run hit its epoch bound or tasks were skipped).
    pub unfinished: usize,
    /// Documents routed to the high-quality parser.
    pub selected: usize,
    /// Time-to-parsed (arrival → last task finish) over completed
    /// documents, with exact nearest-rank percentiles.
    pub latency: LatencySummary,
    /// Seconds this tenant's paid cold starts spent queued for a shared
    /// model-load channel ([`hpcsim::LustreModel::model_load_channels`]) —
    /// the tenant's share of the thundering-herd serialization cost. Zero
    /// with unlimited channels.
    pub herd_queue_seconds: f64,
    /// The tenant's p99 target, copied from the spec.
    pub slo_p99_seconds: f64,
    /// The tenant's effective α when the run closed (after any ledger
    /// tightening).
    pub final_effective_alpha: f64,
    /// Seconds of budget left, when the tenant had one.
    pub remaining_budget_seconds: Option<f64>,
    /// The base parser this tenant's unselected documents ran on (the
    /// service default, or the cheapest of its allowlist).
    pub base_parser: ParserKind,
    /// The upgrade parser its selected documents ran on.
    pub upgrade_parser: ParserKind,
    /// Planned budget seconds attributed per parser class, in
    /// [`ParserKind::index`] order. Empty without a budget ledger.
    pub class_seconds: Vec<(ParserKind, f64)>,
}

impl TenantServeReport {
    /// Achieved p99 over SLO target; < 1 means the SLO was met. Zero when
    /// nothing completed.
    pub fn slo_ratio(&self) -> f64 {
        if self.latency.count == 0 {
            0.0
        } else {
            self.latency.p99_seconds / self.slo_p99_seconds
        }
    }

    /// Whether the tenant's p99 target was met (vacuously true with no
    /// completions).
    pub fn slo_met(&self) -> bool {
        self.slo_ratio() <= 1.0
    }
}

/// Live per-tenant state during a serve run (registry-internal).
#[derive(Debug)]
pub(crate) struct TenantState {
    pub(crate) spec: TenantSpec,
    /// Streaming α selection with the tenant's own ledger.
    pub(crate) selector: WindowedSelector,
    /// The engine config this tenant routes and generates tasks with: the
    /// service config with the parser pair overridden from the tenant's
    /// allowlist (a value-identical clone when the spec has no allowlist,
    /// keeping the default path bitwise-unchanged).
    pub(crate) route_config: AdaParseConfig,
    /// Fraction of whole-document parse compute an upgraded document costs:
    /// exactly `1.0` for [`RoutingGranularity::ByDoc`] (a bitwise no-op on
    /// task compute), [`BY_PAGE_PLANNED_FRACTION`] for
    /// [`RoutingGranularity::ByPage`].
    pub(crate) parse_fraction: f64,
    /// Admitted planned-cost seconds divided by weight — the WFQ virtual
    /// service that admission minimizes across tenants.
    pub(crate) virtual_service: f64,
    /// Expected planned cost of one admitted document (cheap + α-share of
    /// the upgrade), the WFQ charge unit.
    pub(crate) planned_doc_cost: f64,
    /// Arrived-but-unadmitted documents, in arrival order.
    pub(crate) queue: VecDeque<DocArrival>,
    /// Recent time-to-parsed samples (sliding window) for the SLO signal.
    pub(crate) recent_latency: VecDeque<f64>,
    /// All time-to-parsed samples, folded in completion-observation order
    /// into a bounded-memory counting ledger (exact nearest-rank
    /// percentiles, bitwise-equal summary — see [`LatencyLedger`]).
    pub(crate) latencies: LatencyLedger,
    /// Herd-channel queue seconds paid by this tenant's tasks, accumulated
    /// from schedule rows as they are harvested.
    pub(crate) herd_queue_seconds: f64,
    pub(crate) arrived: usize,
    pub(crate) admitted: usize,
    pub(crate) rejected: usize,
    pub(crate) completed: usize,
    pub(crate) selected: usize,
    /// Completed documents whose measured costs were reconciled into the
    /// tenant's ledger (the rest are released at close).
    pub(crate) observed_docs: usize,
    /// Effective α as applied to the tenant's most recent admitted batch
    /// (once the stream position passes the last document, the live
    /// affordable-α clamp is vacuous, so the report carries this instead).
    pub(crate) closing_alpha: f64,
}

/// The set of tenants a serve run multiplexes, with their live state.
#[derive(Debug)]
pub struct TenantRegistry {
    tenants: Vec<TenantState>,
}

/// Derive the engine config a tenant routes with: the service config with
/// the parser pair overridden from the tenant's allowlist. With no
/// allowlist this is a value-identical clone, so the default serve path
/// stays bitwise-unchanged.
fn route_config_for(config: &AdaParseConfig, spec: &TenantSpec) -> AdaParseConfig {
    let Some(allow) = &spec.parsers else {
        return config.clone();
    };
    assert!(!allow.is_empty(), "tenant {:?}: parser allowlist must not be empty", spec.name);
    // Cheapest allowed parser is the base (ties to the stable kind index).
    let base = allow
        .iter()
        .copied()
        .min_by(|a, b| page_dollars(*a).total_cmp(&page_dollars(*b)).then(a.index().cmp(&b.index())))
        .expect("allowlist is non-empty");
    // The costliest frontier survivor is the upgrade; if nothing on the
    // allowlist improves on the base (single-parser tenants), the upgrade
    // degenerates to the base and α is vacuous.
    let upgrade = ParserFrontier::new(base, allow).costliest().map(|e| e.parser).unwrap_or(base);
    AdaParseConfig { default_parser: base, high_quality_parser: upgrade, ..config.clone() }
}

impl TenantRegistry {
    /// Build the registry from the run's tenant traces: one selector,
    /// ledger, and queue per tenant. `config` supplies the parser pair the
    /// planned costs are derived from.
    ///
    /// # Panics
    ///
    /// Panics if a tenant has a non-positive weight or a non-positive SLO
    /// target, or if arrivals are not in non-decreasing time order.
    pub fn new(config: &AdaParseConfig, traces: &[TenantTrace]) -> Self {
        let tenants = traces
            .iter()
            .map(|trace| {
                let spec = &trace.spec;
                assert!(spec.weight > 0.0, "tenant {:?}: weight must be positive", spec.name);
                assert!(spec.slo_p99_seconds > 0.0, "tenant {:?}: SLO target must be positive", spec.name);
                for pair in trace.arrivals.windows(2) {
                    assert!(
                        pair[1].at_seconds >= pair[0].at_seconds,
                        "tenant {:?}: arrivals must be time-sorted",
                        spec.name
                    );
                }
                let route_config = route_config_for(config, spec);
                let parse_fraction = match spec.granularity {
                    RoutingGranularity::ByDoc => 1.0,
                    RoutingGranularity::ByPage => BY_PAGE_PLANNED_FRACTION,
                };
                let (cheap, mut expensive) = planned_costs(&route_config, spec.workload.pages_per_doc);
                if parse_fraction < 1.0 {
                    // A by-page tenant's upgrade only re-parses the hardest
                    // pages, so plan for that fraction of the gap. Gated so
                    // the by-doc path keeps the bitwise-original cost.
                    expensive = cheap + (expensive - cheap) * parse_fraction;
                }
                let mut selector = WindowedSelector::new(spec.max_pending.max(1), spec.alpha);
                if let Some(budget) = &spec.budget {
                    let mut ledger =
                        BudgetLedger::new(budget.total_seconds, trace.arrivals.len(), cheap, expensive)
                            .with_classes(route_config.default_parser, route_config.high_quality_parser);
                    if budget.observed_feedback {
                        ledger = ledger.with_observed_costs(budget.prior_weight);
                    }
                    selector = selector.with_budget(ledger);
                }
                TenantState {
                    spec: spec.clone(),
                    selector,
                    route_config,
                    parse_fraction,
                    virtual_service: 0.0,
                    planned_doc_cost: cheap + spec.alpha * (expensive - cheap),
                    queue: VecDeque::new(),
                    recent_latency: VecDeque::new(),
                    latencies: LatencyLedger::new(),
                    herd_queue_seconds: 0.0,
                    arrived: 0,
                    admitted: 0,
                    rejected: 0,
                    completed: 0,
                    selected: 0,
                    observed_docs: 0,
                    closing_alpha: spec.alpha,
                }
            })
            .collect();
        TenantRegistry { tenants }
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether the registry has no tenants.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    pub(crate) fn states(&self) -> &[TenantState] {
        &self.tenants
    }

    pub(crate) fn states_mut(&mut self) -> &mut [TenantState] {
        &mut self.tenants
    }

    /// Total documents currently queued for admission across tenants.
    pub(crate) fn queued(&self) -> usize {
        self.tenants.iter().map(|t| t.queue.len()).sum()
    }

    /// The worst per-tenant ratio of sliding-window p99 to SLO target,
    /// over tenants with at least `min_samples` recent completions (0 when
    /// none qualifies yet).
    pub(crate) fn worst_slo_ratio(&self, min_samples: usize) -> f64 {
        let mut worst = 0.0f64;
        for tenant in &self.tenants {
            if tenant.recent_latency.len() < min_samples {
                continue;
            }
            let window: Vec<f64> = tenant.recent_latency.iter().copied().collect();
            if let Some(p99) = nearest_rank_percentile(&window, 99.0) {
                worst = worst.max(p99 / tenant.spec.slo_p99_seconds);
            }
        }
        worst
    }

    /// Render the per-tenant final reports.
    pub(crate) fn reports(&self) -> Vec<TenantServeReport> {
        self.tenants
            .iter()
            .map(|tenant| TenantServeReport {
                name: tenant.spec.name.clone(),
                arrived: tenant.arrived,
                admitted: tenant.admitted,
                rejected: tenant.rejected,
                completed: tenant.completed,
                unfinished: tenant.admitted - tenant.completed,
                selected: tenant.selected,
                latency: tenant.latencies.summary(),
                herd_queue_seconds: tenant.herd_queue_seconds,
                slo_p99_seconds: tenant.spec.slo_p99_seconds,
                final_effective_alpha: tenant.closing_alpha,
                remaining_budget_seconds: tenant.selector.ledger().map(BudgetLedger::remaining_seconds),
                base_parser: tenant.route_config.default_parser,
                upgrade_parser: tenant.route_config.high_quality_parser,
                class_seconds: tenant
                    .selector
                    .class_spend()
                    .map(|ledger| ledger.classes().collect())
                    .unwrap_or_default(),
            })
            .collect()
    }
}
