//! Exact order statistics shared by the closed-loop simulator and the
//! serve layer.
//!
//! Latency SLOs are stated over tail percentiles, and two subsystems
//! reporting "p99" must mean the same number — so both the simulation
//! loop's queue-wait summary and the serve layer's per-tenant
//! time-to-parsed use this one helper instead of ad-hoc aggregates. The
//! method is the *exact nearest-rank* definition (no interpolation): the
//! p-th percentile of `n` values is the `ceil(p/100 · n)`-th smallest
//! (1-indexed), which is always one of the observed values — a latency
//! that actually happened, not a blend of two. NaNs sort last under a
//! deterministic total order, so a corrupted observation can only inflate
//! the extreme tail, never silently vanish or poison a comparison.

/// Deterministic total order on `f64`: ordinary order on numbers
/// (`-0.0 == 0.0`), every NaN after every number, NaNs tied with each
/// other.
fn nan_last(a: &f64, b: &f64) -> std::cmp::Ordering {
    match (a.is_nan(), b.is_nan()) {
        (false, false) => a.partial_cmp(b).expect("both finite-or-infinite"),
        (false, true) => std::cmp::Ordering::Less,
        (true, false) => std::cmp::Ordering::Greater,
        (true, true) => std::cmp::Ordering::Equal,
    }
}

/// The exact nearest-rank `percentile` (in `[0, 100]`) of `values`:
/// the `ceil(p/100 · n)`-th smallest value (1-indexed), under the
/// NaN-last total order. `p = 0` returns the minimum. Returns `None` on an
/// empty slice.
///
/// # Panics
///
/// Panics if `percentile` is not in `[0, 100]` (NaN included).
///
/// # Examples
///
/// ```
/// use adaparse::stats::nearest_rank_percentile;
///
/// let waits = [4.0, 1.0, 3.0, 2.0];
/// assert_eq!(nearest_rank_percentile(&waits, 50.0), Some(2.0));
/// assert_eq!(nearest_rank_percentile(&waits, 99.0), Some(4.0));
/// assert_eq!(nearest_rank_percentile(&waits, 0.0), Some(1.0));
/// assert_eq!(nearest_rank_percentile(&[], 50.0), None);
/// ```
pub fn nearest_rank_percentile(values: &[f64], percentile: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&percentile), "percentile must be in [0, 100], got {percentile}");
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(nan_last);
    let n = sorted.len();
    // ceil(p/100 · n), clamped into 1..=n. The product is exact enough
    // for any realistic n; the clamp guards the p = 0 and rounding edges.
    let rank = ((percentile / 100.0) * n as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, n) - 1])
}

/// Exact summary of one latency population: count, mean, max, and the two
/// SLO-facing nearest-rank percentiles. This is the unit both
/// `SimLoopReport` (queue waits) and the serve layer's per-tenant
/// time-to-parsed reports carry, so their tails are directly comparable.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean (0 when empty).
    pub mean_seconds: f64,
    /// Exact nearest-rank p50 (0 when empty).
    pub p50_seconds: f64,
    /// Exact nearest-rank p99 (0 when empty).
    pub p99_seconds: f64,
    /// Largest observation (0 when empty).
    pub max_seconds: f64,
}

impl LatencySummary {
    /// Summarize `values` (empty input yields the all-zero summary).
    pub fn from_values(values: &[f64]) -> Self {
        if values.is_empty() {
            return LatencySummary::default();
        }
        let count = values.len();
        let mean_seconds = values.iter().sum::<f64>() / count as f64;
        let p50_seconds = nearest_rank_percentile(values, 50.0).expect("non-empty");
        let p99_seconds = nearest_rank_percentile(values, 99.0).expect("non-empty");
        let max_seconds = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        LatencySummary { count, mean_seconds, p50_seconds, p99_seconds, max_seconds }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_has_no_percentile() {
        assert_eq!(nearest_rank_percentile(&[], 0.0), None);
        assert_eq!(nearest_rank_percentile(&[], 50.0), None);
        assert_eq!(nearest_rank_percentile(&[], 100.0), None);
        assert_eq!(LatencySummary::from_values(&[]), LatencySummary::default());
    }

    #[test]
    fn single_value_is_every_percentile() {
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(nearest_rank_percentile(&[7.5], p), Some(7.5), "p{p}");
        }
        let summary = LatencySummary::from_values(&[7.5]);
        assert_eq!(summary.count, 1);
        assert_eq!(summary.p50_seconds, 7.5);
        assert_eq!(summary.p99_seconds, 7.5);
        assert_eq!(summary.max_seconds, 7.5);
    }

    #[test]
    fn tied_values_return_the_tie() {
        let tied = [3.0; 9];
        assert_eq!(nearest_rank_percentile(&tied, 50.0), Some(3.0));
        assert_eq!(nearest_rank_percentile(&tied, 99.0), Some(3.0));
        // Ties mixed with distinct values still hit an observed value.
        let mixed = [1.0, 2.0, 2.0, 2.0, 5.0];
        assert_eq!(nearest_rank_percentile(&mixed, 50.0), Some(2.0));
        assert_eq!(nearest_rank_percentile(&mixed, 80.0), Some(2.0));
        assert_eq!(nearest_rank_percentile(&mixed, 81.0), Some(5.0));
    }

    #[test]
    fn nearest_rank_matches_the_textbook_cases() {
        // Classic worked example: n = 5.
        let v = [15.0, 20.0, 35.0, 40.0, 50.0];
        assert_eq!(nearest_rank_percentile(&v, 5.0), Some(15.0));
        assert_eq!(nearest_rank_percentile(&v, 30.0), Some(20.0));
        assert_eq!(nearest_rank_percentile(&v, 40.0), Some(20.0));
        assert_eq!(nearest_rank_percentile(&v, 50.0), Some(35.0));
        assert_eq!(nearest_rank_percentile(&v, 100.0), Some(50.0));
        // Unsorted input is handled (the helper sorts a copy).
        let shuffled = [40.0, 15.0, 50.0, 20.0, 35.0];
        assert_eq!(nearest_rank_percentile(&shuffled, 50.0), Some(35.0));
    }

    #[test]
    fn nans_sort_last_and_only_touch_the_extreme_tail() {
        let v = [1.0, f64::NAN, 2.0, 3.0];
        assert_eq!(nearest_rank_percentile(&v, 50.0), Some(2.0));
        assert_eq!(nearest_rank_percentile(&v, 75.0), Some(3.0));
        assert!(nearest_rank_percentile(&v, 100.0).unwrap().is_nan());
        // Negative zero and zero are tied; the result is a real value.
        assert_eq!(nearest_rank_percentile(&[-0.0, 0.0], 50.0), Some(0.0));
    }

    #[test]
    #[should_panic(expected = "percentile must be in [0, 100]")]
    fn out_of_range_percentile_panics() {
        nearest_rank_percentile(&[1.0], 101.0);
    }

    #[test]
    fn summary_is_exact_on_a_known_population() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let summary = LatencySummary::from_values(&values);
        assert_eq!(summary.count, 100);
        assert_eq!(summary.mean_seconds, 50.5);
        assert_eq!(summary.p50_seconds, 50.0);
        assert_eq!(summary.p99_seconds, 99.0);
        assert_eq!(summary.max_seconds, 100.0);
    }
}
