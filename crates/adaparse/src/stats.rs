//! Exact order statistics shared by the closed-loop simulator and the
//! serve layer.
//!
//! Latency SLOs are stated over tail percentiles, and two subsystems
//! reporting "p99" must mean the same number — so both the simulation
//! loop's queue-wait summary and the serve layer's per-tenant
//! time-to-parsed use this one helper instead of ad-hoc aggregates. The
//! method is the *exact nearest-rank* definition (no interpolation): the
//! p-th percentile of `n` values is the `ceil(p/100 · n)`-th smallest
//! (1-indexed), which is always one of the observed values — a latency
//! that actually happened, not a blend of two. NaNs sort last under a
//! deterministic total order, so a corrupted observation can only inflate
//! the extreme tail, never silently vanish or poison a comparison.

/// Deterministic total order on `f64`: ordinary order on numbers
/// (`-0.0 == 0.0`), every NaN after every number, NaNs tied with each
/// other.
fn nan_last(a: &f64, b: &f64) -> std::cmp::Ordering {
    match (a.is_nan(), b.is_nan()) {
        (false, false) => a.partial_cmp(b).expect("both finite-or-infinite"),
        (false, true) => std::cmp::Ordering::Less,
        (true, false) => std::cmp::Ordering::Greater,
        (true, true) => std::cmp::Ordering::Equal,
    }
}

/// The exact nearest-rank `percentile` (in `[0, 100]`) of `values`:
/// the `ceil(p/100 · n)`-th smallest value (1-indexed), under the
/// NaN-last total order. `p = 0` returns the minimum. Returns `None` on an
/// empty slice.
///
/// # Panics
///
/// Panics if `percentile` is not in `[0, 100]` (NaN included).
///
/// # Examples
///
/// ```
/// use adaparse::stats::nearest_rank_percentile;
///
/// let waits = [4.0, 1.0, 3.0, 2.0];
/// assert_eq!(nearest_rank_percentile(&waits, 50.0), Some(2.0));
/// assert_eq!(nearest_rank_percentile(&waits, 99.0), Some(4.0));
/// assert_eq!(nearest_rank_percentile(&waits, 0.0), Some(1.0));
/// assert_eq!(nearest_rank_percentile(&[], 50.0), None);
/// ```
pub fn nearest_rank_percentile(values: &[f64], percentile: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&percentile), "percentile must be in [0, 100], got {percentile}");
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(nan_last);
    let n = sorted.len();
    // ceil(p/100 · n), clamped into 1..=n. The product is exact enough
    // for any realistic n; the clamp guards the p = 0 and rounding edges.
    let rank = ((percentile / 100.0) * n as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, n) - 1])
}

/// Exact summary of one latency population: count, mean, max, and the two
/// SLO-facing nearest-rank percentiles. This is the unit both
/// `SimLoopReport` (queue waits) and the serve layer's per-tenant
/// time-to-parsed reports carry, so their tails are directly comparable.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean (0 when empty).
    pub mean_seconds: f64,
    /// Exact nearest-rank p50 (0 when empty).
    pub p50_seconds: f64,
    /// Exact nearest-rank p99 (0 when empty).
    pub p99_seconds: f64,
    /// Largest observation (0 when empty).
    pub max_seconds: f64,
}

impl LatencySummary {
    /// Summarize `values` (empty input yields the all-zero summary).
    pub fn from_values(values: &[f64]) -> Self {
        if values.is_empty() {
            return LatencySummary::default();
        }
        let count = values.len();
        let mean_seconds = values.iter().sum::<f64>() / count as f64;
        let p50_seconds = nearest_rank_percentile(values, 50.0).expect("non-empty");
        let p99_seconds = nearest_rank_percentile(values, 99.0).expect("non-empty");
        let max_seconds = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        LatencySummary { count, mean_seconds, p50_seconds, p99_seconds, max_seconds }
    }
}

/// Order-preserving sortable bit key of an `f64` (sign-flipped two's-
/// complement trick): numeric order on numbers with `-0.0` just below
/// `+0.0`. NaNs are excluded — the ledger counts them separately.
fn ledger_key(value: f64) -> u64 {
    let bits = value.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Inverse of [`ledger_key`].
fn ledger_value(key: u64) -> f64 {
    if key >> 63 == 1 {
        f64::from_bits(key & !(1 << 63))
    } else {
        f64::from_bits(!key)
    }
}

/// A bounded-memory, bit-exact counting ledger of a latency population.
///
/// The serve layer used to keep every observed latency in a `Vec<f64>` so
/// its final report could take exact nearest-rank percentiles — O(total
/// completions) resident memory over a service's lifetime. This ledger
/// keeps a count per *distinct bit pattern* instead (an ordered histogram
/// keyed by order-preserving sign-flipped f64 bits), plus the push-order
/// running sum and maximum,
/// and yields a [`LatencySummary`] **bitwise identical** to
/// [`LatencySummary::from_values`] over the same observations for
/// populations free of NaN and `-0.0` (which real latencies are — they are
/// differences of finite times with the minuend ≥ the subtrahend):
///
/// - `count` — trivially equal.
/// - `mean` — the sum accumulates left-to-right in observation order,
///   exactly the fold `from_values` computes, divided by the same count.
/// - `p50`/`p99` — nearest-rank over an ordered multiset is a function of
///   the multiset alone; walking the histogram in key order to rank
///   `ceil(p/100 · n)` selects the same value the sorted-`Vec` index does.
/// - `max` — tracked with the same `f64::max` fold in observation order.
///
/// With `-0.0` present, percentile ties between the two zeros resolve to
/// `-0.0` first (a stable Vec sort keeps insertion order instead); with
/// NaNs present, NaNs count into the extreme tail as in the NaN-last sort
/// but surface as the canonical `f64::NAN` bit pattern. Both divergences
/// are outside the serve latency domain and affect only bit patterns of
/// equal-comparing values.
///
/// Memory is O(distinct latency values), which a discrete-event simulator
/// keeps small (task times are sums of a few model terms); the worst case
/// is the old `Vec` cost, never more.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyLedger {
    /// Observation count per distinct non-NaN bit pattern, in value order.
    counts: std::collections::BTreeMap<u64, usize>,
    /// NaN observations (sorted past every number, like `from_values`).
    nan_count: usize,
    /// Total observations, NaNs included.
    count: usize,
    /// Running sum in observation order (the `from_values` mean fold).
    sum: f64,
    /// Running `f64::max` fold in observation order.
    max: f64,
}

impl LatencyLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        LatencyLedger {
            counts: std::collections::BTreeMap::new(),
            nan_count: 0,
            count: 0,
            sum: 0.0,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, seconds: f64) {
        self.count += 1;
        self.sum += seconds;
        self.max = self.max.max(seconds);
        if seconds.is_nan() {
            self.nan_count += 1;
        } else {
            *self.counts.entry(ledger_key(seconds)).or_insert(0) += 1;
        }
    }

    /// Number of observations recorded.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the ledger is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Fold another ledger into this one, as if `other`'s observations had
    /// been recorded after this ledger's own (the merged sum is
    /// `self.sum + other.sum`, one addition — callers folding tenants in a
    /// fixed order get a deterministic, reproducible merged mean).
    pub fn absorb(&mut self, other: &LatencyLedger) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.nan_count += other.nan_count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        for (&key, &n) in &other.counts {
            *self.counts.entry(key).or_insert(0) += n;
        }
    }

    /// Exact nearest-rank `percentile` (in `[0, 100]`) over the recorded
    /// population — the value [`nearest_rank_percentile`] returns on the
    /// same observations. `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `percentile` is not in `[0, 100]` (NaN included).
    pub fn percentile(&self, percentile: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&percentile), "percentile must be in [0, 100], got {percentile}");
        if self.count == 0 {
            return None;
        }
        let rank = ((percentile / 100.0) * self.count as f64).ceil() as usize;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0usize;
        for (&key, &n) in &self.counts {
            seen += n;
            if seen >= rank {
                return Some(ledger_value(key));
            }
        }
        // Rank falls past every number: a NaN observation holds it.
        Some(f64::NAN)
    }

    /// Summarize the population — bitwise equal to
    /// [`LatencySummary::from_values`] over the same observations (NaN- and
    /// `-0.0`-free populations; see the type docs).
    pub fn summary(&self) -> LatencySummary {
        if self.count == 0 {
            return LatencySummary::default();
        }
        LatencySummary {
            count: self.count,
            mean_seconds: self.sum / self.count as f64,
            p50_seconds: self.percentile(50.0).expect("non-empty"),
            p99_seconds: self.percentile(99.0).expect("non-empty"),
            max_seconds: self.max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_has_no_percentile() {
        assert_eq!(nearest_rank_percentile(&[], 0.0), None);
        assert_eq!(nearest_rank_percentile(&[], 50.0), None);
        assert_eq!(nearest_rank_percentile(&[], 100.0), None);
        assert_eq!(LatencySummary::from_values(&[]), LatencySummary::default());
    }

    #[test]
    fn single_value_is_every_percentile() {
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(nearest_rank_percentile(&[7.5], p), Some(7.5), "p{p}");
        }
        let summary = LatencySummary::from_values(&[7.5]);
        assert_eq!(summary.count, 1);
        assert_eq!(summary.p50_seconds, 7.5);
        assert_eq!(summary.p99_seconds, 7.5);
        assert_eq!(summary.max_seconds, 7.5);
    }

    #[test]
    fn tied_values_return_the_tie() {
        let tied = [3.0; 9];
        assert_eq!(nearest_rank_percentile(&tied, 50.0), Some(3.0));
        assert_eq!(nearest_rank_percentile(&tied, 99.0), Some(3.0));
        // Ties mixed with distinct values still hit an observed value.
        let mixed = [1.0, 2.0, 2.0, 2.0, 5.0];
        assert_eq!(nearest_rank_percentile(&mixed, 50.0), Some(2.0));
        assert_eq!(nearest_rank_percentile(&mixed, 80.0), Some(2.0));
        assert_eq!(nearest_rank_percentile(&mixed, 81.0), Some(5.0));
    }

    #[test]
    fn nearest_rank_matches_the_textbook_cases() {
        // Classic worked example: n = 5.
        let v = [15.0, 20.0, 35.0, 40.0, 50.0];
        assert_eq!(nearest_rank_percentile(&v, 5.0), Some(15.0));
        assert_eq!(nearest_rank_percentile(&v, 30.0), Some(20.0));
        assert_eq!(nearest_rank_percentile(&v, 40.0), Some(20.0));
        assert_eq!(nearest_rank_percentile(&v, 50.0), Some(35.0));
        assert_eq!(nearest_rank_percentile(&v, 100.0), Some(50.0));
        // Unsorted input is handled (the helper sorts a copy).
        let shuffled = [40.0, 15.0, 50.0, 20.0, 35.0];
        assert_eq!(nearest_rank_percentile(&shuffled, 50.0), Some(35.0));
    }

    #[test]
    fn nans_sort_last_and_only_touch_the_extreme_tail() {
        let v = [1.0, f64::NAN, 2.0, 3.0];
        assert_eq!(nearest_rank_percentile(&v, 50.0), Some(2.0));
        assert_eq!(nearest_rank_percentile(&v, 75.0), Some(3.0));
        assert!(nearest_rank_percentile(&v, 100.0).unwrap().is_nan());
        // Negative zero and zero are tied; the result is a real value.
        assert_eq!(nearest_rank_percentile(&[-0.0, 0.0], 50.0), Some(0.0));
    }

    #[test]
    #[should_panic(expected = "percentile must be in [0, 100]")]
    fn out_of_range_percentile_panics() {
        nearest_rank_percentile(&[1.0], 101.0);
    }

    #[test]
    fn ledger_summary_is_bitwise_equal_to_from_values() {
        // Deterministic LCG over awkward magnitudes, with heavy ties.
        let mut state = 0xDEADBEEFCAFEF00Du64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = ((state >> 33) as f64) / ((1u64 << 31) as f64);
            if u < 0.3 {
                1.5 // tie cluster
            } else {
                u * 73.3 + 0.001
            }
        };
        let mut ledger = LatencyLedger::new();
        let mut values = Vec::new();
        for _ in 0..1000 {
            let v = next();
            ledger.record(v);
            values.push(v);
        }
        let from_vec = LatencySummary::from_values(&values);
        let from_ledger = ledger.summary();
        assert_eq!(from_ledger.count, from_vec.count);
        assert_eq!(from_ledger.mean_seconds.to_bits(), from_vec.mean_seconds.to_bits());
        assert_eq!(from_ledger.p50_seconds.to_bits(), from_vec.p50_seconds.to_bits());
        assert_eq!(from_ledger.p99_seconds.to_bits(), from_vec.p99_seconds.to_bits());
        assert_eq!(from_ledger.max_seconds.to_bits(), from_vec.max_seconds.to_bits());
        for p in [0.0, 1.0, 37.0, 50.0, 99.0, 100.0] {
            assert_eq!(
                ledger.percentile(p).unwrap().to_bits(),
                nearest_rank_percentile(&values, p).unwrap().to_bits(),
                "p{p}"
            );
        }
    }

    #[test]
    fn ledger_absorb_merges_multisets_exactly() {
        let mut a = LatencyLedger::new();
        let mut b = LatencyLedger::new();
        let mut all = Vec::new();
        for (i, v) in [5.0, 1.0, 3.0, 3.0, 9.0, 2.0, 7.0, 3.0].iter().enumerate() {
            if i % 2 == 0 {
                a.record(*v);
            } else {
                b.record(*v);
            }
        }
        // Merge order a-then-b defines the merged observation order.
        for v in [5.0, 3.0, 9.0, 7.0, 1.0, 3.0, 2.0, 3.0] {
            all.push(v);
        }
        a.absorb(&b);
        assert_eq!(a.len(), 8);
        let expected = LatencySummary::from_values(&all);
        let got = a.summary();
        assert_eq!(got.count, expected.count);
        assert_eq!(got.p50_seconds.to_bits(), expected.p50_seconds.to_bits());
        assert_eq!(got.p99_seconds.to_bits(), expected.p99_seconds.to_bits());
        assert_eq!(got.max_seconds.to_bits(), expected.max_seconds.to_bits());
        // Absorbing an empty ledger is a no-op; absorbing into empty copies.
        let snapshot = a.clone();
        a.absorb(&LatencyLedger::new());
        assert_eq!(a, snapshot);
        let mut fresh = LatencyLedger::new();
        fresh.absorb(&snapshot);
        assert_eq!(fresh.summary(), snapshot.summary());
        assert!(LatencyLedger::new().is_empty());
        assert_eq!(LatencyLedger::new().summary(), LatencySummary::default());
        assert_eq!(LatencyLedger::new().percentile(50.0), None);
    }

    #[test]
    fn summary_is_exact_on_a_known_population() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let summary = LatencySummary::from_values(&values);
        assert_eq!(summary.count, 100);
        assert_eq!(summary.mean_seconds, 50.5);
        assert_eq!(summary.p50_seconds, 50.0);
        assert_eq!(summary.p99_seconds, 99.0);
        assert_eq!(summary.max_seconds, 100.0);
    }
}
