//! The cascade's pinned contracts, end to end:
//!
//! * the k = 2 by-document cascade reproduces the binary streaming
//!   campaign **bitwise** — same masks, same records, same
//!   `CampaignResult` — on a frozen workload,
//! * the [`CascadeSelector`] over a pair frontier degenerates to the
//!   [`WindowedSelector`] mask for mask under proptest-random streams,
//! * the by-page task DAG never lets a join start before every one of its
//!   page children has finished, for proptest-random delegation patterns.

use adaparse::{
    cascade_gains, tasks_for_cascade_with_affinity, AdaParseConfig, AdaParseEngine, CampaignPipeline,
    CampaignResult, CascadeConfig, CascadeSelector, NodePlan, ParserChoice, PipelineConfig, RoutingMode,
    WindowedSelector, WorkloadSpec,
};
use docmodel::document::Document;
use hpcsim::{ClusterConfig, ExecutorConfig, LustreModel, WorkflowExecutor};
use parsersim::{ParserFrontier, ParserKind};
use proptest::prelude::*;
use scicorpus::generator::{DocumentGenerator, GeneratorConfig};

fn corpus(n: usize, seed: u64) -> Vec<Document> {
    DocumentGenerator::new(GeneratorConfig {
        n_documents: n,
        seed,
        min_pages: 1,
        max_pages: 3,
        scanned_fraction: 0.25,
        ..Default::default()
    })
    .generate_many(n)
}

fn trained_engine(config: AdaParseConfig) -> AdaParseEngine {
    let mut engine = AdaParseEngine::new(config);
    engine.train_on_corpus(&corpus(20, 2024), 5);
    engine
}

fn run_streaming(
    engine: &AdaParseEngine,
    docs: &[Document],
    seed: u64,
    workers: usize,
    shard: usize,
    window: usize,
) -> CampaignResult {
    CampaignPipeline::new(PipelineConfig {
        workers,
        shard_size: shard,
        mode: RoutingMode::Streaming { window },
        ..Default::default()
    })
    .run(engine, docs, seed)
}

/// The tentpole's frozen-workload pin: a binary (pair-frontier, by-doc)
/// cascade is not "approximately" the old streaming campaign — it *is* the
/// old streaming campaign, record for record and bit for bit, at every
/// worker count.
#[test]
fn k2_by_doc_cascade_reproduces_the_streaming_campaign_bitwise() {
    let config = AdaParseConfig { alpha: 0.2, ..Default::default() };
    let engine = trained_engine(config.clone());
    let docs = corpus(90, 77);
    let window = 16;

    let streaming = run_streaming(&engine, &docs, 11, 2, 8, window);
    for (workers, shard) in [(1, 7), (2, 8), (4, 16)] {
        let pipeline = CampaignPipeline::new(PipelineConfig {
            workers,
            shard_size: shard,
            mode: RoutingMode::Streaming { window },
            ..Default::default()
        });
        let cascade = pipeline.run_cascade(&engine, &docs, &CascadeConfig::binary(&config, window), 11);
        assert_eq!(
            cascade.result, streaming,
            "binary cascade diverged from streaming at workers={workers} shard={shard}"
        );
        // The degenerate cascade masks are the binary masks: a document is
        // upgraded exactly when streaming routed it to the high-quality
        // parser.
        for (choice, record) in cascade.choices.iter().zip(&streaming.records) {
            assert_eq!(choice.doc_id, record.doc_id);
            assert_eq!(
                choice.is_upgraded(),
                record.parser == config.high_quality_parser,
                "doc {}: mask bit diverged",
                choice.doc_id
            );
        }
        // And the route-only entry point agrees with the full run.
        let routed_only = pipeline.route_cascade(&engine, &docs, &CascadeConfig::binary(&config, window), 11);
        assert_eq!(routed_only, cascade.choices);
    }
}

/// At the same ledger spend (equal α in costliest-upgrade units), a wider
/// frontier never captures *less* predicted quality than the binary one —
/// the greedy can always fall back on the binary assignment.
#[test]
fn wider_frontiers_dominate_binary_predicted_gain_on_the_frozen_corpus() {
    let config = AdaParseConfig { alpha: 0.2, ..Default::default() };
    let engine = trained_engine(config.clone());
    let docs = corpus(90, 77);
    let pipeline = CampaignPipeline::new(PipelineConfig::streaming(2, 8));
    let binary = pipeline.run_cascade(&engine, &docs, &CascadeConfig::binary(&config, 16), 11);
    let k4 = pipeline.run_cascade(&engine, &docs, &CascadeConfig::full(&config, 16), 11);
    let upgraded = |r: &adaparse::CascadeReport| r.choices.iter().filter(|c| c.is_upgraded()).count();
    assert!(
        upgraded(&k4) >= upgraded(&binary),
        "fractional-weight upgrades cannot shrink coverage: k4={} binary={}",
        upgraded(&k4),
        upgraded(&binary)
    );
    assert!(k4.result.quality.documents == docs.len() && binary.result.quality.documents == docs.len());
}

proptest! {
    // Mask-for-mask degeneration of the cascade selector to the windowed
    // selector over random score streams, windows and budgets — including
    // the CLS I sentinel values the binary router emits.
    #[test]
    fn cascade_selector_degenerates_to_windowed_selector(
        raw in proptest::collection::vec(-1.0f64..1.0, 1..200),
        sentinels in proptest::collection::vec(0usize..200, 0..20),
        alpha in 0.0f64..1.0,
        window in 1usize..40,
    ) {
        let mut scores = raw;
        for &i in &sentinels {
            if i < scores.len() {
                // Alternate invalid / non-candidate sentinels.
                scores[i] = if i % 2 == 0 { f64::MAX / 4.0 } else { f64::MIN / 4.0 };
            }
        }
        let config = AdaParseConfig { alpha, ..Default::default() };
        let cascade_config = CascadeConfig::binary(&config, window);
        let mut windowed = WindowedSelector::new(window, alpha);
        let mut cascade = CascadeSelector::new(&cascade_config);
        for chunk in scores.chunks(window) {
            let expected = windowed.select_window(chunk);
            let pair_scores: Vec<(f64, bool)> = chunk.iter().map(|&s| (s, false)).collect();
            let features = vec![
                adaparse::CascadeFeatures { difficulty: 0.5, legibility: 0.5 };
                chunk.len()
            ];
            let gains = cascade_gains(&cascade_config.frontier, &pair_scores, &features);
            let got = cascade.select_window(&gains);
            let got_mask: Vec<bool> = got.iter().map(Option::is_some).collect();
            prop_assert_eq!(&got_mask, &expected, "masks diverged within a window");
        }
        prop_assert_eq!(cascade.granted(), windowed.selected());
    }

    // The by-page DAG's ordering contract: for random delegation
    // patterns, a document's page-join task never starts before the last
    // of its page children finishes, and page children never start before
    // the split.
    #[test]
    fn page_join_waits_for_every_page_child(
        pages in proptest::collection::vec(1usize..7, 1..14),
        delegate_bits in proptest::collection::vec(0u8..2, 14..15),
        nodes in 1usize..4,
    ) {
        let frontier = ParserFrontier::full(ParserKind::PyMuPdf);
        let upgrade = frontier.upgrades().len() - 1;
        let choices: Vec<ParserChoice> = pages
            .iter()
            .enumerate()
            .map(|(i, &n_pages)| {
                let delegated: Vec<usize> = if delegate_bits[i % delegate_bits.len()] == 1 {
                    // Delegate a strict, non-empty prefix when possible.
                    (0..n_pages.saturating_sub(1).max(1).min(n_pages)).collect()
                } else {
                    Vec::new()
                };
                ParserChoice {
                    doc_id: i as u64,
                    parser: if delegated.is_empty() && i % 3 != 0 {
                        frontier.base()
                    } else {
                        frontier.upgrades()[upgrade].parser
                    },
                    upgrade: if delegated.is_empty() && i % 3 != 0 { None } else { Some(upgrade) },
                    predicted_gain: 0.1,
                    cls1_invalid: false,
                    upgraded_pages: delegated,
                }
            })
            .collect();
        let workload = WorkloadSpec { documents: choices.len(), pages_per_doc: 6, mb_per_doc: 3.0 };
        let plan = NodePlan { extract_nodes: nodes, parse_nodes: 1 };
        let tasks = tasks_for_cascade_with_affinity(&frontier, &choices, &workload, &plan);
        let executor = WorkflowExecutor::new(ExecutorConfig::default());
        let mut session = executor.session(&ClusterConfig::polaris(plan.total()));
        let report = session.submit(&tasks, &LustreModel::default());
        prop_assert_eq!(report.tasks_completed, tasks.len(), "every DAG task must schedule");

        let max_pages = choices.iter().map(|c| c.upgraded_pages.len()).max().unwrap_or(0);
        let stride = (max_pages as u64) + 4;
        let rows = session.schedule();
        let row = |id: u64| rows.iter().find(|r| r.id == id);
        for choice in &choices {
            if choice.upgraded_pages.is_empty() {
                continue;
            }
            let base_id = choice.doc_id * stride;
            let split = row(base_id + 1).expect("split task scheduled");
            prop_assert_eq!(split.label.as_str(), "page-split");
            let join = row(base_id + 2 + choice.upgraded_pages.len() as u64)
                .expect("join task scheduled");
            prop_assert_eq!(join.label.as_str(), "page-join");
            for offset in 0..choice.upgraded_pages.len() as u64 {
                let page = row(base_id + 2 + offset).expect("page task scheduled");
                prop_assert!(
                    page.start_seconds >= split.finish_seconds,
                    "doc {}: page started at {} before its split finished at {}",
                    choice.doc_id, page.start_seconds, split.finish_seconds
                );
                prop_assert!(
                    join.start_seconds >= page.finish_seconds,
                    "doc {}: join started at {} before page child finished at {}",
                    choice.doc_id, join.start_seconds, page.finish_seconds
                );
            }
        }
    }
}
