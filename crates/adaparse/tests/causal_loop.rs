//! Causal-admission regression suite for the closed simulation loop.
//!
//! The contract under test (see `scaling::simloop`'s "two-mode contract"):
//!
//! * `CausalityMode::Causal` admits no causality violation — every task
//!   starts at or after the decision time that created its window, and the
//!   executor's `retro_filled_tasks` audit stays zero;
//! * `CausalityMode::RetroFill` reproduces the legacy placement and audits
//!   the violations it permits;
//! * respecting causality can only cost time: `causal makespan ≥
//!   retro-fill makespan` on identical inputs;
//! * both modes replay bitwise;
//! * the controller's backlog signal counts session tasks still in flight,
//!   not just unwindowed documents;
//! * an epoch whose tasks are all skipped is well-defined
//!   (`started == finished == decided_at`, explicit `tasks_skipped`).

use adaparse::{run_closed_loop, AdaParseConfig, ControllerConfig, SimLoopConfig, WorkloadSpec};
use hpcsim::{CausalityMode, ClusterConfig, ExecutorConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn scores(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0.0..1.0)).collect()
}

fn base_config() -> AdaParseConfig {
    AdaParseConfig { alpha: 0.2, ..Default::default() }
}

fn workload(n: usize) -> WorkloadSpec {
    WorkloadSpec { documents: n, pages_per_doc: 8, mb_per_doc: 50.0 }
}

fn sim(causality: CausalityMode) -> SimLoopConfig {
    SimLoopConfig {
        window: 40,
        nodes: 2,
        executor: ExecutorConfig { causality, ..Default::default() },
        controller: ControllerConfig { total_workers: 8, patience: 1, ..Default::default() },
        ..Default::default()
    }
}

#[test]
fn causal_mode_admits_zero_causality_violations() {
    let config = base_config();
    let improvements = scores(200, 3);
    let report = run_closed_loop(&config, &improvements, &workload(200), &sim(CausalityMode::Causal));
    assert_eq!(
        report.executor_report.retro_filled_tasks, 0,
        "no task may start before its window's decision time"
    );
    // Decision times are monotone event boundaries, and every epoch's
    // earliest start respects its own decision.
    for pair in report.waves.windows(2) {
        assert!(pair[1].decided_at_seconds >= pair[0].decided_at_seconds);
    }
    for wave in &report.waves {
        assert!(
            wave.started_at_seconds >= wave.decided_at_seconds,
            "epoch {} started at {} before its decision at {}",
            wave.wave_index,
            wave.started_at_seconds,
            wave.decided_at_seconds
        );
    }
    // The floor is the dispatch frontier, not the completion time, so the
    // loop still overlaps epochs.
    assert!(report.epochs_overlap(), "causal admission must not degenerate into a wave barrier");
    // Readiness deferred to respect causality is accounted.
    assert!(report.executor_report.decision_lag_seconds > 0.0);
}

#[test]
fn retro_fill_audits_the_violations_it_permits() {
    let config = base_config();
    let improvements = scores(200, 3);
    let report = run_closed_loop(&config, &improvements, &workload(200), &sim(CausalityMode::RetroFill));
    assert!(
        report.executor_report.retro_filled_tasks > 0,
        "the overlapping legacy loop must retro-fill some slots"
    );
    // The audit floor is recorded per wave even though placement ignores
    // it: retro-filled epochs start before their submission clock.
    assert!(report.waves.iter().any(|w| w.started_at_seconds < w.decided_at_seconds));
}

#[test]
fn causal_makespan_dominates_retro_fill_and_both_replay_bitwise() {
    let config = base_config();
    let improvements = scores(240, 11);
    let causal_sim = SimLoopConfig { total_budget_seconds: Some(5_000.0), ..sim(CausalityMode::Causal) };
    let retro_sim = SimLoopConfig { total_budget_seconds: Some(5_000.0), ..sim(CausalityMode::RetroFill) };
    let causal = run_closed_loop(&config, &improvements, &workload(240), &causal_sim);
    let retro = run_closed_loop(&config, &improvements, &workload(240), &retro_sim);
    assert!(
        causal.makespan_seconds >= retro.makespan_seconds,
        "respecting decision causality cannot beat retro-fill ({} vs {})",
        causal.makespan_seconds,
        retro.makespan_seconds
    );
    // Both modes are pure functions of their inputs.
    let causal_replay = run_closed_loop(&config, &improvements, &workload(240), &causal_sim);
    assert_eq!(causal, causal_replay, "causal closed loop must replay bitwise");
    let retro_replay = run_closed_loop(&config, &improvements, &workload(240), &retro_sim);
    assert_eq!(retro, retro_replay, "retro-fill closed loop must replay bitwise");
}

#[test]
fn causal_budget_accounting_reconciles_exactly() {
    // With a budget large enough that nothing clamps, slot-by-slot
    // reconciliation must end at exactly `budget − measured seconds`:
    // every reservation is released by the partial ingests (stragglers
    // included), none is popped early against a fraction of its window,
    // and none is stranded.
    let config = base_config();
    let improvements = scores(200, 13);
    let budget = 1_000_000.0;
    let causal_sim = SimLoopConfig { total_budget_seconds: Some(budget), ..sim(CausalityMode::Causal) };
    let report = run_closed_loop(&config, &improvements, &workload(200), &causal_sim);
    let measured = report.executor_report.cpu_busy_seconds + report.executor_report.gpu_busy_seconds;
    let remaining = report.remaining_budget_seconds.expect("budgeted run reports remaining budget");
    assert!(
        (remaining - (budget - measured)).abs() < 1e-6,
        "partial reconciliation must leave exactly budget − measured ({remaining} vs {budget} − {measured})"
    );

    // The identity survives skipped work: on a GPU-less cluster every
    // selected document's parse is skipped, but its completed extract
    // still burned measured seconds that must be charged — only documents
    // that ran *nothing* have their reservations released unobserved.
    let gpu_less = SimLoopConfig {
        cluster: Some(ClusterConfig { nodes: 2, cpu_slots_per_node: 30, gpu_slots_per_node: 0 }),
        ..causal_sim
    };
    let skippy = run_closed_loop(&config, &improvements, &workload(200), &gpu_less);
    assert!(skippy.executor_report.tasks_skipped > 0, "parse tasks need GPUs this cluster lacks");
    let measured = skippy.executor_report.cpu_busy_seconds + skippy.executor_report.gpu_busy_seconds;
    let remaining = skippy.remaining_budget_seconds.expect("budgeted run reports remaining budget");
    assert!(
        (remaining - (budget - measured)).abs() < 1e-6,
        "skipped parses must not hide their extracts' measured cost ({remaining} vs {budget} − {measured})"
    );
}

#[test]
fn queue_depth_counts_in_flight_stragglers_not_just_unwindowed_documents() {
    let config = base_config();
    let improvements = scores(200, 7);
    for causality in [CausalityMode::RetroFill, CausalityMode::Causal] {
        let report = run_closed_loop(&config, &improvements, &workload(200), &sim(causality));
        let mut windowed = 0usize;
        let mut saw_stragglers = false;
        for wave in &report.waves {
            windowed += wave.documents;
            let docs_remaining = improvements.len() - windowed;
            assert!(
                wave.queue_depth >= docs_remaining,
                "backlog can never be below the unwindowed remainder ({:?})",
                causality
            );
            saw_stragglers |= wave.queue_depth > docs_remaining;
        }
        if causality == CausalityMode::Causal {
            // The causal boundary is the dispatch frontier, which the
            // epoch's own stragglers always outlive — the old undercount
            // (unwindowed documents only) would have reported 0 on the
            // final epoch and frozen the controller on the drain.
            assert!(saw_stragglers, "the causal loop must observe in-flight session tasks in its backlog");
            let last = report.waves.last().unwrap();
            assert!(last.queue_depth > 0, "the final epoch's stragglers are still in flight");
        }
    }
}

#[test]
fn all_skipped_epochs_are_well_defined() {
    // A cluster with no slots at all: every task of every epoch is
    // skipped, nothing ever completes, and each SimWave must still be
    // well-formed rather than a degenerate record.
    let config = base_config();
    let improvements = scores(96, 5);
    for causality in [CausalityMode::RetroFill, CausalityMode::Causal] {
        let sim = SimLoopConfig {
            cluster: Some(ClusterConfig { nodes: 1, cpu_slots_per_node: 0, gpu_slots_per_node: 0 }),
            ..sim(causality)
        };
        let report = run_closed_loop(&config, &improvements, &workload(96), &sim);
        assert_eq!(report.makespan_seconds, 0.0, "nothing ran ({causality:?})");
        assert_eq!(report.executor_report.tasks_completed, 0);
        assert!(report.executor_report.tasks_skipped > 0);
        assert_eq!(report.waves.len(), 3);
        for wave in &report.waves {
            assert!(wave.tasks_skipped > 0, "every epoch's tasks were skipped");
            assert_eq!(wave.started_at_seconds, wave.decided_at_seconds);
            assert_eq!(wave.finished_at_seconds, wave.decided_at_seconds);
        }
        // Routing is independent of placement: the mask is still emitted
        // for every document, deterministically.
        assert_eq!(report.mask.len(), 96);
        let replay = run_closed_loop(&config, &improvements, &workload(96), &sim);
        assert_eq!(report, replay);
    }
}
