//! Regression tests for the dependency edges the routing bridge emits: with
//! edges enabled, no parse task ever starts before its extract partner
//! finishes — the exact scheduling hole the pre-DAG throughput model had —
//! while the plan-free construction stays order-free (legacy mode).

use adaparse::{
    run_closed_loop, tasks_for_routing_with_affinity, AdaParseConfig, NodePlan, RoutedDocument,
    SimLoopConfig, WorkloadSpec,
};
use hpcsim::{ClusterConfig, ExecutorConfig, LustreModel, SlotKind, WorkflowExecutor};

fn routed_docs(config: &AdaParseConfig, n: usize, every: usize) -> Vec<RoutedDocument> {
    (0..n)
        .map(|i| RoutedDocument {
            doc_id: i as u64,
            parser: if i % every == 0 { config.high_quality_parser } else { config.default_parser },
            predicted_improvement: 0.5,
            cls1_invalid: false,
        })
        .collect()
}

#[test]
fn no_parse_starts_before_its_extract_partner_finishes() {
    let config = AdaParseConfig::default();
    let routed = routed_docs(&config, 120, 3);
    let workload = WorkloadSpec { documents: 120, pages_per_doc: 10, mb_per_doc: 2.0 };
    let plan = NodePlan { extract_nodes: 3, parse_nodes: 1 };
    let tasks = tasks_for_routing_with_affinity(&config, &routed, &workload, &plan);
    let executor = WorkflowExecutor::new(ExecutorConfig::default());
    let mut session = executor.session(&ClusterConfig::polaris(plan.total()));
    let report = session.submit(&tasks, &LustreModel::default());
    assert_eq!(report.tasks_completed, tasks.len());

    let mut parse_pairs = 0usize;
    for scheduled in session.schedule() {
        if scheduled.kind != SlotKind::Gpu {
            continue;
        }
        // Parse task ids are `doc_id * 2 + 1`; the partner is `id - 1`.
        let partner = session
            .schedule()
            .iter()
            .find(|s| s.id == scheduled.id - 1)
            .expect("every parse task has a scheduled extract partner");
        assert!(
            scheduled.start_seconds >= partner.finish_seconds,
            "parse {} started at {} before extract finished at {}",
            scheduled.id,
            scheduled.start_seconds,
            partner.finish_seconds
        );
        parse_pairs += 1;
    }
    assert_eq!(parse_pairs, 40, "a third of the documents routed high-quality");
    // Dependency stalls show up as a critical path spanning both halves.
    assert!(report.critical_path_seconds > 0.0);
}

#[test]
fn the_closed_loop_respects_dependencies_in_every_epoch() {
    let config = AdaParseConfig { alpha: 0.25, ..Default::default() };
    let improvements: Vec<f64> = (0..160).map(|i| (i % 97) as f64 / 97.0).collect();
    let workload = WorkloadSpec { documents: 160, pages_per_doc: 8, mb_per_doc: 10.0 };
    let sim = SimLoopConfig { window: 40, ..Default::default() };
    let report = run_closed_loop(&config, &improvements, &workload, &sim);
    // The loop's executor report is cumulative over one persistent session;
    // re-run the same construction through a raw session to check ordering.
    assert!(report.selected > 0);
    assert!(report.makespan_seconds > 0.0);
    // Parse busy time can only begin after extraction: in every epoch the
    // parse stage finishes no earlier than the extract stage *started*
    // work, and parse never finishes before extraction of the same window
    // begins producing input. The sharp per-task guarantee is asserted
    // above; here we sanity-check the per-epoch aggregates are consistent.
    for wave in &report.waves {
        if wave.selected > 0 {
            assert!(
                wave.parse.finished_at_seconds >= wave.extract.finished_at_seconds,
                "epoch {}: parse cannot finish before the extractions it feeds on",
                wave.wave_index
            );
        }
    }
}

#[test]
fn legacy_plan_free_construction_remains_order_free() {
    // Without a node plan the bridge emits no edges: this is the legacy
    // throughput-model construction (Figure 5 sweeps), and the executor's
    // behavior on it is pinned bitwise against the old model in
    // `hpcsim/tests/legacy_equivalence.rs`.
    let config = AdaParseConfig::default();
    let routed = routed_docs(&config, 60, 4);
    let workload = WorkloadSpec { documents: 60, pages_per_doc: 10, mb_per_doc: 2.0 };
    let tasks = adaparse::hpc::tasks_for_routing(&config, &routed, &workload);
    assert!(tasks.iter().all(|t| t.depends_on.is_empty() && t.group.is_none()));
}
