//! The campaign pipeline's headline guarantee: with a fixed seed, the
//! [`CampaignResult`] is bitwise identical for every worker count and shard
//! size, the α budget holds under sharding, and streamed records match the
//! buffered ones.

use adaparse::{
    AdaParseConfig, AdaParseEngine, CampaignPipeline, CampaignResult, JsonlSink, PipelineConfig, Variant,
};
use docmodel::document::Document;
use proptest::prelude::*;
use scicorpus::generator::{DocumentGenerator, GeneratorConfig};

fn corpus(n: usize, scanned_fraction: f64, seed: u64) -> Vec<Document> {
    DocumentGenerator::new(GeneratorConfig {
        n_documents: n,
        seed,
        min_pages: 1,
        max_pages: 2,
        scanned_fraction,
        ..Default::default()
    })
    .generate_many(n)
}

fn trained_engine(config: AdaParseConfig) -> AdaParseEngine {
    let mut engine = AdaParseEngine::new(config);
    engine.train_on_corpus(&corpus(20, 0.3, 2024), 5);
    engine
}

fn run(
    engine: &AdaParseEngine,
    docs: &[Document],
    seed: u64,
    workers: usize,
    shard: usize,
) -> CampaignResult {
    CampaignPipeline::new(PipelineConfig { workers, shard_size: shard, ..Default::default() })
        .run(engine, docs, seed)
}

#[test]
fn eight_workers_equal_one_worker_bitwise() {
    let engine = trained_engine(AdaParseConfig { alpha: 0.2, batch_size: 8, ..Default::default() });
    let docs = corpus(40, 0.4, 77);
    let sequential = run(&engine, &docs, 9, 1, 32);
    let parallel = run(&engine, &docs, 9, 8, 32);
    assert_eq!(sequential, parallel);
}

#[test]
fn shard_size_does_not_change_the_result() {
    let engine = trained_engine(AdaParseConfig { alpha: 0.15, batch_size: 10, ..Default::default() });
    let docs = corpus(33, 0.3, 123);
    let baseline = run(&engine, &docs, 5, 1, 33);
    for (workers, shard) in [(1, 1), (4, 3), (8, 7), (8, 64), (3, 16)] {
        assert_eq!(
            baseline,
            run(&engine, &docs, 5, workers, shard),
            "workers={workers} shard={shard} diverged"
        );
    }
}

#[test]
fn pipeline_matches_the_engine_entry_point() {
    let engine = trained_engine(AdaParseConfig::default());
    let docs = corpus(24, 0.25, 55);
    let via_engine = engine.parse_documents(&docs, 3);
    let via_pipeline = run(&engine, &docs, 3, 8, 5);
    assert_eq!(via_engine, via_pipeline);
}

#[test]
fn alpha_budget_holds_under_sharding() {
    for &(workers, shard) in &[(1usize, 4usize), (8, 4), (8, 64), (5, 9)] {
        let engine = trained_engine(AdaParseConfig { alpha: 0.10, batch_size: 10, ..Default::default() });
        let docs = corpus(40, 0.4, 222);
        let result = run(&engine, &docs, 9, workers, shard);
        assert!(
            result.high_quality_fraction <= 0.10 + 1e-9,
            "α violated at workers={workers} shard={shard}: {}",
            result.high_quality_fraction
        );
        assert_eq!(result.routed.len(), 40);
        assert_eq!(result.records.len(), 40);
    }
}

#[test]
fn fasttext_variant_is_deterministic_too() {
    let engine = trained_engine(AdaParseConfig {
        variant: Variant::FastText,
        alpha: 0.2,
        batch_size: 8,
        ..Default::default()
    });
    let docs = corpus(16, 0.5, 444);
    assert_eq!(run(&engine, &docs, 21, 1, 16), run(&engine, &docs, 21, 8, 2));
}

#[test]
fn streamed_jsonl_matches_buffered_records() {
    let engine = trained_engine(AdaParseConfig { alpha: 0.2, batch_size: 8, ..Default::default() });
    let docs = corpus(12, 0.3, 99);
    let pipeline = CampaignPipeline::new(PipelineConfig { workers: 4, shard_size: 3, ..Default::default() });

    let buffered = pipeline.run(&engine, &docs, 7);

    let mut sink = JsonlSink::new(Vec::new());
    let streamed = pipeline.run_with_sink(&engine, &docs, 7, &mut sink).unwrap();
    assert!(streamed.records.is_empty(), "streaming must not buffer records");
    assert_eq!(streamed.quality, buffered.quality);
    assert_eq!(streamed.routed, buffered.routed);
    assert_eq!(streamed.failures, buffered.failures);
    assert_eq!(sink.written(), docs.len());

    // Every streamed line is valid JSON and lines appear in document order,
    // matching the buffered records exactly.
    let text = String::from_utf8(sink.into_inner().unwrap()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), buffered.records.len());
    for (line, record) in lines.iter().zip(&buffered.records) {
        let value = serde_json::from_str(line).expect("JSONL line parses");
        assert_eq!(value.get("doc_id").and_then(serde_json::Value::as_u64), Some(record.doc_id));
        assert_eq!(value.get("parser").and_then(serde_json::Value::as_str), Some(record.parser.name()));
        let text_field = value.get("text").and_then(serde_json::Value::as_str).unwrap();
        assert_eq!(text_field, record.text);
    }
}

#[test]
fn failure_counts_are_zero_on_clean_corpora_and_reported_in_results() {
    let engine = trained_engine(AdaParseConfig::default());
    let docs = corpus(10, 0.2, 31);
    let result = engine.parse_documents(&docs, 13);
    // Generated documents always decode; the simulators degrade rather than
    // error on them, so a clean corpus reports zero failures…
    assert_eq!(result.failures.total(), 0);
    // …and the count is part of the deterministic result surface.
    assert_eq!(result.failures, run(&engine, &docs, 13, 8, 3).failures);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // Property form of the headline guarantee, over random worker counts,
    // shard sizes, seeds, and corpus shapes.
    #[test]
    fn any_worker_count_is_bitwise_deterministic(
        workers in 2usize..9,
        shard in 1usize..17,
        seed in 0u64..1000,
        n_docs in 8usize..20,
    ) {
        let engine = trained_engine(AdaParseConfig { alpha: 0.2, batch_size: 8, ..Default::default() });
        let docs = corpus(n_docs, 0.3, seed ^ 0xC0FFEE);
        let baseline = run(&engine, &docs, seed, 1, 8);
        let parallel = run(&engine, &docs, seed, workers, shard);
        prop_assert_eq!(baseline, parallel);
    }
}
