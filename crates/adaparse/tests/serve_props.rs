//! Property tests for the serve layer's multi-tenant guarantees.
//!
//! The contracts under test (see `adaparse::serve`'s module docs):
//!
//! * **No starvation** — under an adversarial herd from a heavy tenant,
//!   a light steady tenant still gets every one of its documents admitted
//!   and completed, across random seeds, weights, and herd shapes.
//! * **Budget isolation** — one tenant exhausting its compute budget
//!   degrades *its own* routing (effective α → 0), never another tenant's
//!   admitted latency: the victim's p99 with a broke neighbor is no worse
//!   than with a rich one.
//! * **Bitwise replay** — a full serve run, autoscaler and all, is a pure
//!   function of its config and traces.
//! * **Warm locality** — a tenant whose documents all route to one
//!   resident model never pays more cold starts under
//!   `PlacementPolicy::CostAware` than under the warm-blind
//!   `PlacementPolicy::EarliestSlot`, and full service runs (autoscaler
//!   included) replay bitwise under both policies.
//! * **Retirement invisibility** — running the service with per-epoch
//!   session retirement on produces a bitwise-identical report (same
//!   fingerprint, same per-tenant percentiles, same executor totals and
//!   per-GPU busy bits) to running it with retirement off, while keeping
//!   the retained schedule rows bounded by work in flight instead of run
//!   length.

use adaparse::{
    run_service, run_service_instrumented, AutoscaleConfig, CampaignBudget, DocArrival, ServeConfig,
    TenantSpec, TenantTrace, WorkloadSpec,
};
use hpcsim::{ExecutorConfig, GpuTrace, PlacementPolicy};
use proptest::prelude::*;
use scicorpus::{generate_arrivals, ArrivalConfig, ArrivalPattern};

/// Zip a scicorpus arrival trace with deterministic scores derived from
/// the seed (a cheap LCG keeps the test free of extra RNG plumbing).
fn doc_arrivals(n: usize, seed: u64, rate: f64, pattern: ArrivalPattern) -> Vec<DocArrival> {
    let times =
        generate_arrivals(&ArrivalConfig { n_documents: n, seed, mean_rate_per_second: rate, pattern });
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
    times
        .into_iter()
        .map(|arrival| {
            state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let score = (state >> 11) as f64 / (1u64 << 53) as f64;
            DocArrival { at_seconds: arrival.at_seconds, score }
        })
        .collect()
}

fn tenant(name: &str, weight: f64) -> TenantSpec {
    TenantSpec {
        name: name.to_string(),
        weight,
        workload: WorkloadSpec { documents: 0, pages_per_doc: 8, mb_per_doc: 50.0 },
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // A light steady tenant keeps full service under a herding heavy
    // tenant: admission is weighted-fair, not first-come-first-served.
    #[test]
    fn no_tenant_starves_under_an_adversarial_herd(
        seed in 0u64..1000,
        herd_size in 10usize..40,
        heavy_weight in 1.0f64..4.0,
    ) {
        let heavy = TenantTrace {
            spec: TenantSpec {
                // The herd may legitimately overflow its own bounded
                // queue; what must not happen is damage to the neighbor.
                max_pending: 64,
                ..tenant("heavy", heavy_weight)
            },
            arrivals: doc_arrivals(120, seed, 3.0, ArrivalPattern::AdversarialHerd { herd_size }),
        };
        let light = TenantTrace {
            spec: tenant("light", 1.0),
            arrivals: doc_arrivals(25, seed.wrapping_add(1), 0.4, ArrivalPattern::Steady),
        };
        let report = run_service(&ServeConfig::default(), &[heavy, light]);
        let light_report = &report.tenants[1];
        prop_assert_eq!(light_report.arrived, 25);
        prop_assert_eq!(light_report.rejected, 0, "the light tenant's queue never overflows");
        prop_assert_eq!(light_report.admitted, 25, "weighted-fair admission must not starve");
        prop_assert_eq!(light_report.completed, 25);
        // The heavy tenant still makes progress too — fairness is not
        // exclusion.
        prop_assert!(report.tenants[0].completed > 0);
    }

    // Tenant A going broke mid-run changes A's routing, not B's latency:
    // B's p99 with a broke neighbor is no worse than with a rich one
    // (cheaper neighbor tasks can only help).
    #[test]
    fn budget_exhaustion_never_degrades_a_neighbor(seed in 0u64..1000) {
        let run = |a_budget_seconds: f64| {
            let a = TenantTrace {
                spec: TenantSpec {
                    budget: Some(CampaignBudget::seconds(a_budget_seconds)),
                    alpha: 0.5,
                    ..tenant("a", 1.0)
                },
                arrivals: doc_arrivals(80, seed, 1.5, ArrivalPattern::Bursty { burst_size: 10 }),
            };
            let b = TenantTrace {
                spec: tenant("b", 1.0),
                arrivals: doc_arrivals(40, seed.wrapping_add(7), 0.8, ArrivalPattern::Steady),
            };
            run_service(&ServeConfig::default(), &[a, b])
        };
        let rich = run(1.0e9);
        let broke = run(1.0);
        // The broke run visibly throttled A...
        prop_assert!(
            broke.tenants[0].final_effective_alpha < rich.tenants[0].final_effective_alpha,
            "a 1-second budget must tighten A's α ({} vs {})",
            broke.tenants[0].final_effective_alpha,
            rich.tenants[0].final_effective_alpha
        );
        prop_assert!(broke.tenants[0].selected < rich.tenants[0].selected);
        // ...while B kept full service and a no-worse tail (tiny FP slack
        // for the changed interleaving of cheaper neighbor tasks).
        prop_assert_eq!(broke.tenants[1].completed, 40);
        prop_assert_eq!(rich.tenants[1].completed, 40);
        prop_assert!(
            broke.tenants[1].latency.p99_seconds
                <= rich.tenants[1].latency.p99_seconds * (1.0 + 1e-9) + 1e-9,
            "B's p99 must not degrade when A goes broke ({} vs {})",
            broke.tenants[1].latency.p99_seconds,
            rich.tenants[1].latency.p99_seconds
        );
    }

    // The full service — WFQ, per-tenant ledgers, autoscaler — replays
    // bit for bit.
    #[test]
    fn serve_runs_replay_bitwise(
        seed in 0u64..1000,
        autoscale in 0u8..2,
        burst_size in 2usize..20,
    ) {
        let traces = vec![
            TenantTrace {
                spec: TenantSpec {
                    budget: Some(CampaignBudget::seconds(50_000.0)),
                    ..tenant("bursty", 2.0)
                },
                arrivals: doc_arrivals(60, seed, 1.5, ArrivalPattern::Bursty { burst_size }),
            },
            TenantTrace {
                spec: tenant("diurnal", 1.0),
                arrivals: doc_arrivals(
                    40,
                    seed.wrapping_add(3),
                    1.0,
                    ArrivalPattern::Diurnal { period_seconds: 120.0 },
                ),
            },
        ];
        let config = ServeConfig {
            autoscale: (autoscale == 1).then(AutoscaleConfig::default),
            ..ServeConfig::default()
        };
        let x = run_service(&config, &traces);
        let y = run_service(&config, &traces);
        prop_assert_eq!(&x, &y, "a serve run must be a pure function of its inputs");
        prop_assert_eq!(x.fingerprint, y.fingerprint);
        // Sanity on the replayed run: everything admitted eventually
        // finishes and the latency population matches.
        let completed: usize = x.tenants.iter().map(|t| t.completed).sum();
        prop_assert_eq!(completed, x.latency.count);
        prop_assert_eq!(x.admitted, completed + x.tenants.iter().map(|t| t.unfinished).sum::<usize>());
    }

    // Warm locality: a tenant routing every document to the one expensive
    // parser (α = 1, one resident model) never pays *more* cold starts
    // when placement follows the warm weights than when it is warm-blind —
    // and both policies remain pure functions of their inputs, autoscaler
    // included.
    #[test]
    fn one_model_tenant_never_pays_more_cold_starts_under_cost_aware(
        seed in 0u64..1000,
        autoscale in 0u8..2,
        docs in 20usize..60,
    ) {
        let traces = vec![TenantTrace {
            spec: TenantSpec { alpha: 1.0, ..tenant("one-model", 1.0) },
            arrivals: doc_arrivals(docs, seed, 1.2, ArrivalPattern::Steady),
        }];
        let run = |placement| {
            let config = ServeConfig {
                executor: ExecutorConfig { placement, ..Default::default() },
                autoscale: (autoscale == 1).then(AutoscaleConfig::default),
                ..ServeConfig::default()
            };
            (run_service(&config, &traces), run_service(&config, &traces))
        };
        let (blind, blind_replay) = run(PlacementPolicy::EarliestSlot);
        let (aware, aware_replay) = run(PlacementPolicy::CostAware);
        prop_assert_eq!(&blind, &blind_replay, "EarliestSlot serve runs must replay bitwise");
        prop_assert_eq!(&aware, &aware_replay, "CostAware serve runs must replay bitwise");
        // The single tenant owns every task, so the executor totals are its
        // own: following the warm weights can only avoid re-loads.
        prop_assert!(
            aware.executor_report.cold_starts <= blind.executor_report.cold_starts,
            "CostAware paid {} cold starts where warm-blind paid {}",
            aware.executor_report.cold_starts,
            blind.executor_report.cold_starts
        );
        // Same service either way: every admitted document completes.
        prop_assert_eq!(aware.tenants[0].completed, blind.tenants[0].completed);
        // No load channels are configured, so no herd wait accrues.
        prop_assert_eq!(aware.tenants[0].herd_queue_seconds.to_bits(), 0.0f64.to_bits());
    }

    // Per-epoch session retirement must be invisible in every observable
    // of the run — only the retained GPU-trace *span lists* (a memory
    // artifact, not an observable) may differ — while bounding resident
    // schedule rows by work in flight.
    #[test]
    fn retirement_replays_bitwise_and_bounds_resident_state(
        seed in 0u64..1000,
        autoscale in 0u8..2,
        burst_size in 2usize..16,
    ) {
        let traces = vec![
            TenantTrace {
                spec: TenantSpec {
                    budget: Some(CampaignBudget::seconds(50_000.0)),
                    ..tenant("bursty", 2.0)
                },
                arrivals: doc_arrivals(50, seed, 1.5, ArrivalPattern::Bursty { burst_size }),
            },
            TenantTrace {
                spec: tenant("steady", 1.0),
                arrivals: doc_arrivals(30, seed.wrapping_add(9), 0.8, ArrivalPattern::Steady),
            },
        ];
        let config = ServeConfig {
            autoscale: (autoscale == 1).then(AutoscaleConfig::default),
            ..ServeConfig::default()
        };
        let (mut on, soak) =
            run_service_instrumented(&ServeConfig { retirement: true, ..config.clone() }, &traces);
        let (mut off, _) =
            run_service_instrumented(&ServeConfig { retirement: false, ..config }, &traces);

        prop_assert_eq!(on.fingerprint, off.fingerprint, "latency fingerprints diverged");
        prop_assert_eq!(&on.tenants, &off.tenants, "per-tenant reports diverged");
        prop_assert_eq!(on.latency, off.latency);
        prop_assert_eq!(on.makespan_seconds.to_bits(), off.makespan_seconds.to_bits());
        // The executor report agrees on every observable, including the
        // per-GPU busy and model-load seconds the retained trace folds
        // through its retired partial sums.
        let gpus = on.executor_report.gpu_trace.gpus();
        prop_assert_eq!(gpus, off.executor_report.gpu_trace.gpus());
        for gpu in 0..gpus {
            prop_assert_eq!(
                on.executor_report.gpu_trace.busy_seconds(gpu).to_bits(),
                off.executor_report.gpu_trace.busy_seconds(gpu).to_bits(),
                "GPU {} busy seconds diverged", gpu
            );
            prop_assert_eq!(
                on.executor_report.gpu_trace.model_load_seconds(gpu).to_bits(),
                off.executor_report.gpu_trace.model_load_seconds(gpu).to_bits(),
                "GPU {} model-load seconds diverged", gpu
            );
        }
        // With the span lists normalized away, the whole report — tenants,
        // fleet history, executor totals, warm stats, stage timings — must
        // be *equal*, not merely fingerprint-equal.
        on.executor_report.gpu_trace = GpuTrace::new(gpus);
        off.executor_report.gpu_trace = GpuTrace::new(gpus);
        prop_assert_eq!(&on, &off, "retirement changed an observable");

        // Bounded memory: every retained schedule row (and completed-task
        // record) belongs to a document still in flight at the boundary,
        // and a document owns at most two tasks.
        let row_bound = 2 * soak.peak_in_flight.max(1);
        prop_assert!(
            soak.peak_retained_rows <= row_bound,
            "retained {} rows with {} docs in flight",
            soak.peak_retained_rows,
            soak.peak_in_flight
        );
        prop_assert!(
            soak.peak_retained_completed <= row_bound,
            "retained {} completed-task records with {} docs in flight",
            soak.peak_retained_completed,
            soak.peak_in_flight
        );
    }
}
