//! The streaming pipeline's guarantees: with a fixed seed,
//! [`RoutingMode::Streaming`] produces a bitwise-identical [`CampaignResult`]
//! at every worker count and shard size, the α budget holds at every stream
//! prefix, the windowed selector degenerates to global selection at full
//! window, and the windowed-vs-global quality gap is negligible for the
//! paper's window sizes.

use adaparse::budget::{select_global, windowed_optimality_gap};
use adaparse::{
    AdaParseConfig, AdaParseEngine, CampaignBudget, CampaignPipeline, CampaignResult, JsonlSink,
    PipelineConfig, RoutingMode, WindowedSelector,
};
use docmodel::document::Document;
use proptest::prelude::*;
use scicorpus::generator::{DocumentGenerator, GeneratorConfig};

fn corpus(n: usize, scanned_fraction: f64, seed: u64) -> Vec<Document> {
    DocumentGenerator::new(GeneratorConfig {
        n_documents: n,
        seed,
        min_pages: 1,
        max_pages: 2,
        scanned_fraction,
        ..Default::default()
    })
    .generate_many(n)
}

fn trained_engine(config: AdaParseConfig) -> AdaParseEngine {
    let mut engine = AdaParseEngine::new(config);
    engine.train_on_corpus(&corpus(20, 0.3, 2024), 5);
    engine
}

fn run_streaming(
    engine: &AdaParseEngine,
    docs: &[Document],
    seed: u64,
    workers: usize,
    shard: usize,
    window: usize,
) -> CampaignResult {
    CampaignPipeline::new(PipelineConfig {
        workers,
        shard_size: shard,
        mode: RoutingMode::Streaming { window },
        ..Default::default()
    })
    .run(engine, docs, seed)
}

fn run_streaming_budgeted(
    engine: &AdaParseEngine,
    docs: &[Document],
    seed: u64,
    workers: usize,
    shard: usize,
    window: usize,
    budget: CampaignBudget,
) -> CampaignResult {
    CampaignPipeline::new(
        PipelineConfig {
            workers,
            shard_size: shard,
            mode: RoutingMode::Streaming { window },
            ..Default::default()
        }
        .with_budget(budget),
    )
    .run(engine, docs, seed)
}

#[test]
fn streaming_results_are_bitwise_identical_across_worker_counts() {
    let engine = trained_engine(AdaParseConfig { alpha: 0.2, batch_size: 8, ..Default::default() });
    let docs = corpus(48, 0.4, 77);
    let baseline = run_streaming(&engine, &docs, 9, 1, 8, 16);
    for workers in [2usize, 4, 8] {
        assert_eq!(baseline, run_streaming(&engine, &docs, 9, workers, 8, 16), "workers={workers}");
    }
}

#[test]
fn streaming_results_are_independent_of_shard_size() {
    let engine = trained_engine(AdaParseConfig { alpha: 0.15, batch_size: 10, ..Default::default() });
    let docs = corpus(33, 0.3, 123);
    let baseline = run_streaming(&engine, &docs, 5, 1, 33, 10);
    for (workers, shard) in [(1usize, 1usize), (4, 3), (8, 7), (8, 64), (3, 16)] {
        assert_eq!(
            baseline,
            run_streaming(&engine, &docs, 5, workers, shard, 10),
            "workers={workers} shard={shard} diverged"
        );
    }
}

#[test]
fn streaming_alpha_budget_holds_at_every_prefix() {
    let engine = trained_engine(AdaParseConfig { alpha: 0.10, batch_size: 10, ..Default::default() });
    let docs = corpus(50, 0.4, 222);
    let result = run_streaming(&engine, &docs, 9, 4, 4, 10);
    let hq = engine.config().high_quality_parser;
    let mut routed_hq = 0usize;
    for (i, decision) in result.routed.iter().enumerate() {
        routed_hq += (decision.parser == hq) as usize;
        assert!(
            routed_hq as f64 <= 0.10 * (i + 1) as f64 + 1.0,
            "prefix {} routed {} high-quality documents",
            i + 1,
            routed_hq
        );
    }
    assert!(result.high_quality_fraction <= 0.10 + 1e-9);
}

#[test]
fn observed_cost_ledger_keeps_streaming_bitwise_deterministic() {
    // The headline guarantee survives closing the cost loop: with a budget
    // ledger ingesting observed per-document costs, the campaign result is
    // still bitwise identical at every worker count and shard size (the
    // cost trace comes from the deterministic cost models and folds in
    // input order — never from timing).
    let engine = trained_engine(AdaParseConfig { alpha: 0.25, batch_size: 8, ..Default::default() });
    let docs = corpus(48, 0.4, 321);
    let n = docs.len() as f64;
    let (cheap_s, expensive_s) = adaparse::planned_costs(engine.config(), 2);
    // Tight enough that the ledger genuinely intervenes mid-campaign.
    let budget = CampaignBudget {
        total_seconds: n * cheap_s + 0.1 * n * (expensive_s - cheap_s),
        observed_feedback: true,
        prior_weight: 4.0,
    };
    let baseline = run_streaming_budgeted(&engine, &docs, 9, 1, 8, 12, budget);
    for (workers, shard) in [(2usize, 8usize), (4, 3), (8, 16), (3, 1)] {
        assert_eq!(
            baseline,
            run_streaming_budgeted(&engine, &docs, 9, workers, shard, 12, budget),
            "workers={workers} shard={shard} diverged with the observed-cost ledger"
        );
    }
    // The ledger must actually have constrained routing relative to the
    // configured α = 0.25 (otherwise this test exercises nothing).
    assert!(baseline.high_quality_fraction < 0.25 - 1e-9, "{}", baseline.high_quality_fraction);
}

#[test]
fn short_budget_with_feedback_routes_fewer_documents_to_the_expensive_parser() {
    let engine = trained_engine(AdaParseConfig { alpha: 0.30, batch_size: 8, ..Default::default() });
    let docs = corpus(50, 0.5, 99);
    let hq = engine.config().high_quality_parser;
    let count_hq = |result: &CampaignResult| result.routed.iter().filter(|r| r.parser == hq).count();

    let unbudgeted = run_streaming(&engine, &docs, 7, 2, 8, 10);
    let n = docs.len() as f64;
    let (cheap_s, expensive_s) = adaparse::planned_costs(engine.config(), 2);
    let budget = CampaignBudget {
        total_seconds: n * cheap_s + 0.12 * n * (expensive_s - cheap_s),
        observed_feedback: true,
        prior_weight: 2.0,
    };
    let budgeted = run_streaming_budgeted(&engine, &docs, 7, 2, 8, 10, budget);
    assert!(
        count_hq(&budgeted) < count_hq(&unbudgeted),
        "a short budget must throttle the expensive parser ({} vs {})",
        count_hq(&budgeted),
        count_hq(&unbudgeted)
    );
    assert!(count_hq(&budgeted) > 0, "a non-empty budget must still buy some quality");
    // Quality can only move with routing: same documents, fewer expensive
    // parses, no other changes.
    assert_eq!(budgeted.quality.documents, unbudgeted.quality.documents);
    assert!(budgeted.total_cost.gpu_seconds <= unbudgeted.total_cost.gpu_seconds);
}

#[test]
fn full_window_streaming_matches_global_selection_masks() {
    // Selector-level equivalence on the actual campaign scores: one window
    // spanning the corpus must reproduce select_global bitwise.
    let engine = trained_engine(AdaParseConfig { alpha: 0.2, batch_size: 7, ..Default::default() });
    let docs = corpus(40, 0.4, 555);
    let scores: Vec<f64> =
        engine.route_documents(&docs, 31).iter().map(|r| r.predicted_improvement).collect();
    let windowed = WindowedSelector::new(scores.len(), 0.2).select_all(&scores);
    assert_eq!(windowed, select_global(&scores, 0.2));
}

#[test]
fn windowed_optimality_gap_is_negligible_for_large_windows() {
    // The paper's claim on the synthetic corpus: the per-window gap is
    // bounded and negligible for k ≥ 64.
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(99);
    let improvements: Vec<f64> = (0..4096).map(|_| rng.gen_range(0.0..1.0)).collect();
    let mut gaps = Vec::new();
    for window in [8usize, 64, 512] {
        let gap = windowed_optimality_gap(&improvements, 0.05, window);
        assert!((0.0..1.0).contains(&gap));
        gaps.push((window, gap));
    }
    for &(window, gap) in &gaps {
        if window >= 64 {
            assert!(gap < 0.02, "window {window}: gap {gap} ≥ 2%");
        }
    }
    // The gap shrinks (weakly) as the window grows.
    assert!(gaps[2].1 <= gaps[0].1 + 1e-9, "{gaps:?}");
}

#[test]
fn streaming_quality_tracks_global_mode_within_two_percent() {
    // End-to-end form of the optimality-gap claim: a streaming campaign with
    // k ≥ 64 loses < 2% absolute accuracy against the global-batch run.
    let engine = trained_engine(AdaParseConfig { alpha: 0.2, batch_size: 256, ..Default::default() });
    let docs = corpus(128, 0.4, 777);
    let global = CampaignPipeline::new(PipelineConfig {
        workers: 2,
        shard_size: 16,
        mode: RoutingMode::GlobalBatch,
        ..Default::default()
    })
    .run(&engine, &docs, 11);
    let streaming = run_streaming(&engine, &docs, 11, 2, 16, 64);
    assert_eq!(streaming.quality.documents, global.quality.documents);
    let gap = (global.quality.bleu - streaming.quality.bleu).abs();
    assert!(gap < 0.02, "streaming BLEU gap {gap} ≥ 2% (global {})", global.quality.bleu);
    let coverage_gap = (global.quality.coverage - streaming.quality.coverage).abs();
    assert!(coverage_gap < 0.02, "coverage gap {coverage_gap}");
}

#[test]
fn streaming_jsonl_sink_matches_buffered_records() {
    let engine = trained_engine(AdaParseConfig { alpha: 0.2, batch_size: 8, ..Default::default() });
    let docs = corpus(14, 0.3, 99);
    let pipeline = CampaignPipeline::new(PipelineConfig::streaming(4, 5));

    let buffered = pipeline.run(&engine, &docs, 7);
    assert_eq!(buffered.records.len(), docs.len());

    let mut sink = JsonlSink::new(Vec::new());
    let streamed = pipeline.run_with_sink(&engine, &docs, 7, &mut sink).unwrap();
    assert!(streamed.records.is_empty(), "sink mode must not buffer");
    assert_eq!(streamed.quality, buffered.quality);
    assert_eq!(streamed.routed, buffered.routed);
    assert_eq!(sink.written(), docs.len());
    let text = String::from_utf8(sink.into_inner().unwrap()).unwrap();
    for (line, record) in text.lines().zip(&buffered.records) {
        let value: serde_json::Value = serde_json::from_str(line).expect("JSONL line parses");
        assert_eq!(value.get("doc_id").and_then(serde_json::Value::as_u64), Some(record.doc_id));
    }
}

#[test]
fn route_matches_the_full_streaming_campaign() {
    let engine = trained_engine(AdaParseConfig { alpha: 0.15, batch_size: 9, ..Default::default() });
    let docs = corpus(30, 0.3, 404);
    let pipeline = CampaignPipeline::new(PipelineConfig::streaming(3, 8));
    let routed_only = pipeline.route(&engine, &docs, 13);
    let full = pipeline.run(&engine, &docs, 13);
    assert_eq!(routed_only, full.routed);
}

#[test]
fn degenerate_streaming_shapes_work() {
    let engine = trained_engine(AdaParseConfig::default());
    // Empty corpus.
    let empty = CampaignPipeline::new(PipelineConfig::streaming(2, 8)).run(&engine, &[], 1);
    assert_eq!(empty.quality.documents, 0);
    assert!(empty.routed.is_empty());
    // Window of 1 (every document is its own wave), window larger than the
    // corpus, and a window-0 config that normalizes to 1.
    let docs = corpus(7, 0.3, 31);
    for window in [1usize, 64, 0] {
        let result = CampaignPipeline::new(PipelineConfig::streaming(2, window)).run(&engine, &docs, 3);
        assert_eq!(result.quality.documents, 7);
        assert_eq!(result.routed.len(), 7);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // Property form of the headline guarantee, over random worker counts,
    // shard sizes, window sizes, seeds, and corpus shapes.
    #[test]
    fn any_streaming_configuration_is_bitwise_deterministic(
        workers in 2usize..9,
        shard in 1usize..17,
        window in 1usize..24,
        seed in 0u64..1000,
        n_docs in 8usize..20,
    ) {
        let engine = trained_engine(AdaParseConfig { alpha: 0.2, batch_size: 8, ..Default::default() });
        let docs = corpus(n_docs, 0.3, seed ^ 0xC0FFEE);
        let baseline = run_streaming(&engine, &docs, seed, 1, 8, window);
        let parallel = run_streaming(&engine, &docs, seed, workers, shard, window);
        prop_assert_eq!(baseline, parallel);
    }

    // Window = corpus size reproduces the global selection mask bitwise, for
    // arbitrary score vectors (including ties).
    #[test]
    fn full_window_equals_global_on_arbitrary_scores(
        scores in proptest::collection::vec(-1.0f64..1.0, 1..120),
        alpha in 0.0f64..1.0,
    ) {
        let windowed = WindowedSelector::new(scores.len(), alpha).select_all(&scores);
        prop_assert_eq!(windowed, select_global(&scores, alpha));
    }
}
