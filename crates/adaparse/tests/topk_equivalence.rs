//! Mask-level equivalence of the public selection API against a full-sort
//! reference implementation.
//!
//! `select_global` and `select_batch` now rank with a bounded O(n log k)
//! max-heap instead of sorting every score. The routing mask is part of the
//! campaign's determinism contract (it feeds the fingerprint in
//! `BENCH_hotpath.json`), so these properties pin the masks bitwise against
//! the obvious full-sort selection: NaN never beats a finite score, ties
//! break by ascending index, and the per-batch quota is `⌊α·|batch|⌋`.

use adaparse::{select_batch, select_global};
use proptest::prelude::*;

/// Reference selection: full descending sort (NaN last, index tiebreak),
/// mark the first `quota` entries.
fn sort_mask(scores: &[f64], quota: usize) -> Vec<bool> {
    fn key(v: f64) -> f64 {
        if v.is_nan() {
            f64::NEG_INFINITY
        } else {
            v
        }
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| key(scores[b]).total_cmp(&key(scores[a])).then_with(|| a.cmp(&b)));
    let mut mask = vec![false; scores.len()];
    for &index in order.iter().take(quota.min(scores.len())) {
        mask[index] = true;
    }
    mask
}

/// Expand the generated `(tag, value)` pairs into scores that cover NaN,
/// infinities, and deliberate ties alongside ordinary finite values.
fn decode(raw: Vec<(u8, f64)>) -> Vec<f64> {
    raw.into_iter()
        .map(|(tag, v)| match tag {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => 0.25,
            _ => v,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn global_selection_matches_full_sort(
        raw in prop::collection::vec((0u8..9, 0.0f64..1.0), 0..200),
        alpha in 0.0f64..1.0,
    ) {
        let scores = decode(raw);
        let quota = ((scores.len() as f64) * alpha).floor() as usize;
        prop_assert_eq!(select_global(&scores, alpha), sort_mask(&scores, quota));
    }

    #[test]
    fn batch_selection_matches_full_sort_per_batch(
        raw in prop::collection::vec((0u8..9, 0.0f64..1.0), 0..200),
        alpha in 0.0f64..1.0,
        batch_size in 1usize..40,
    ) {
        let scores = decode(raw);
        let got = select_batch(&scores, alpha, batch_size);
        let mut expected = vec![false; scores.len()];
        for (batch_index, batch) in scores.chunks(batch_size).enumerate() {
            let quota = ((batch.len() as f64) * alpha).floor() as usize;
            for (local, &m) in sort_mask(batch, quota).iter().enumerate() {
                expected[batch_index * batch_size + local] = m;
            }
        }
        prop_assert_eq!(got, expected);
    }
}
