//! Appendix C: the per-batch budget optimizer against the global optimum, at
//! the batch sizes a campaign would use.

use adaparse::budget::{optimality_gap, select_batch, select_global};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn improvements(n: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(42);
    (0..n).map(|_| rng.gen_range(0.0..1.0)).collect()
}

fn bench_budget(c: &mut Criterion) {
    let values = improvements(16_384);
    let mut group = c.benchmark_group("budget");
    for &batch in &[16usize, 64, 256, 1024] {
        group.bench_with_input(BenchmarkId::new("per_batch", batch), &batch, |b, &batch| {
            b.iter(|| select_batch(black_box(&values), 0.05, batch))
        });
    }
    group.bench_function("global", |b| b.iter(|| select_global(black_box(&values), 0.05)));
    group.bench_function("optimality_gap_k256", |b| b.iter(|| optimality_gap(black_box(&values), 0.05, 256)));
    group.finish();
}

criterion_group!(benches, bench_budget);
criterion_main!(benches);
