//! The campaign pipeline's parallel-scaling kernel: the same end-to-end
//! campaign (extract → route → parse → score) at 1 worker vs N workers.
//!
//! On a multi-core host the N-worker rows should show a ≥2× lower wall time
//! for the ≥200-document campaign; on a single-core host all rows collapse
//! to the sequential time (the pipeline's *results* are identical either
//! way — see the `pipeline_determinism` tests).

use adaparse::{AdaParseConfig, AdaParseEngine, CampaignPipeline, PipelineConfig};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use scicorpus::generator::{DocumentGenerator, GeneratorConfig};

fn bench_pipeline_scaling(c: &mut Criterion) {
    let docs = DocumentGenerator::new(GeneratorConfig {
        n_documents: 200,
        seed: 42,
        min_pages: 1,
        max_pages: 3,
        scanned_fraction: 0.3,
        ..Default::default()
    })
    .generate_many(200);
    let mut engine = AdaParseEngine::new(AdaParseConfig { alpha: 0.1, ..Default::default() });
    engine.train_on_corpus(&docs[..20], 5);

    let mut group = c.benchmark_group("campaign_pipeline");
    for &workers in &[1usize, 2, 4, 8] {
        let pipeline =
            CampaignPipeline::new(PipelineConfig { workers, shard_size: 16, ..Default::default() });
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, _| {
            b.iter(|| pipeline.run(black_box(&engine), black_box(&docs), 7))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline_scaling);
criterion_main!(benches);
