//! Figure 3 kernel: evaluating one document with the whole parser zoo (the
//! unit of work the quality benchmark repeats tens of thousands of times).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use parsersim::evaluate::evaluate_document;
use scicorpus::generator::{DocumentGenerator, GeneratorConfig};

fn bench_parser_quality(c: &mut Criterion) {
    let mut generator = DocumentGenerator::new(GeneratorConfig {
        n_documents: 4,
        seed: 21,
        min_pages: 2,
        max_pages: 2,
        ..Default::default()
    });
    let docs = generator.generate_many(4);
    c.bench_function("fig3/evaluate_document_all_parsers", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let doc = &docs[i % docs.len()];
            i += 1;
            evaluate_document(black_box(doc), 9)
        })
    });
}

criterion_group!(benches, bench_parser_quality);
criterion_main!(benches);
