//! Figure 5 kernel: simulating a multi-node campaign with the Parsl-like
//! executor for the extreme parsers and for AdaParse.

use adaparse::hpc::{tasks_for_alpha, tasks_for_parser, WorkloadSpec};
use adaparse::AdaParseConfig;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hpcsim::{ClusterConfig, ExecutorConfig, LustreModel, WorkflowExecutor};
use parsersim::ParserKind;

fn bench_scaling(c: &mut Criterion) {
    let workload = WorkloadSpec { documents: 2_000, pages_per_doc: 10, mb_per_doc: 1.5 };
    let executor = WorkflowExecutor::new(ExecutorConfig::default());
    let fs = LustreModel::default();
    let mut group = c.benchmark_group("fig5");
    for &nodes in &[8usize, 64] {
        let cluster = ClusterConfig::polaris(nodes);
        let pymupdf_tasks = tasks_for_parser(ParserKind::PyMuPdf, &workload);
        group.bench_with_input(BenchmarkId::new("pymupdf_campaign", nodes), &nodes, |b, _| {
            b.iter(|| executor.run(black_box(&pymupdf_tasks), &cluster, &fs))
        });
        let ada_tasks = tasks_for_alpha(&AdaParseConfig::default(), &workload);
        group.bench_with_input(BenchmarkId::new("adaparse_campaign", nodes), &nodes, |b, _| {
            b.iter(|| executor.run(black_box(&ada_tasks), &cluster, &fs))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
