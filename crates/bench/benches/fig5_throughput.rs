//! Figure 5 kernel: simulating a multi-node campaign with the Parsl-like
//! executor for the extreme parsers and for AdaParse — with the AdaParse
//! task graph built both by the α-quota shortcut and by actually routing a
//! corpus through the campaign pipeline's extract + route stages.

use adaparse::hpc::{tasks_for_alpha, tasks_for_campaign, tasks_for_parser, WorkloadSpec};
use adaparse::{AdaParseConfig, AdaParseEngine, CampaignPipeline, PipelineConfig};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hpcsim::{ClusterConfig, ExecutorConfig, LustreModel, WorkflowExecutor};
use parsersim::ParserKind;
use scicorpus::generator::{DocumentGenerator, GeneratorConfig};

fn bench_scaling(c: &mut Criterion) {
    let workload = WorkloadSpec { documents: 2_000, pages_per_doc: 10, mb_per_doc: 1.5 };
    let executor = WorkflowExecutor::new(ExecutorConfig::default());
    let fs = LustreModel::default();
    let mut group = c.benchmark_group("fig5");
    for &nodes in &[8usize, 64] {
        let cluster = ClusterConfig::polaris(nodes);
        let pymupdf_tasks = tasks_for_parser(ParserKind::PyMuPdf, &workload);
        group.bench_with_input(BenchmarkId::new("pymupdf_campaign", nodes), &nodes, |b, _| {
            b.iter(|| executor.run(black_box(&pymupdf_tasks), &cluster, &fs))
        });
        let ada_tasks = tasks_for_alpha(&AdaParseConfig::default(), &workload);
        group.bench_with_input(BenchmarkId::new("adaparse_campaign", nodes), &nodes, |b, _| {
            b.iter(|| executor.run(black_box(&ada_tasks), &cluster, &fs))
        });
    }
    group.finish();
}

fn bench_pipeline_routing(c: &mut Criterion) {
    // The faithful Figure 5 construction: a real (small) corpus routed
    // through pipeline stages 1–2, then the task graph executed at scale.
    let docs = DocumentGenerator::new(GeneratorConfig {
        n_documents: 300,
        seed: 11,
        min_pages: 1,
        max_pages: 2,
        scanned_fraction: 0.3,
        ..Default::default()
    })
    .generate_many(300);
    let mut engine = AdaParseEngine::new(AdaParseConfig { alpha: 0.05, ..Default::default() });
    engine.train_on_corpus(&docs[..20], 5);
    let pipeline = CampaignPipeline::new(PipelineConfig::default());
    let workload = WorkloadSpec { documents: docs.len(), pages_per_doc: 10, mb_per_doc: 1.5 };
    let executor = WorkflowExecutor::new(ExecutorConfig::default());
    let fs = LustreModel::default();
    let cluster = ClusterConfig::polaris(8);

    c.bench_function("fig5/pipeline_routed_campaign/8", |b| {
        b.iter(|| {
            let tasks = tasks_for_campaign(&engine, &pipeline, black_box(&docs), 7, &workload);
            executor.run(&tasks, &cluster, &fs)
        })
    });
}

criterion_group!(benches, bench_scaling, bench_pipeline_routing);
criterion_main!(benches);
