//! Micro-benchmarks for the million-task hot-path kernels: the executor's
//! [`ReadyQueue`] (every task passes through it twice — once as an event,
//! once as a dispatch) and the budget selector's `select_global` (the
//! bounded-heap top-k that replaced a full sort). Sized at 1k and 100k to
//! show the asymptotic gap, with deterministic seeded inputs so runs are
//! comparable across commits alongside `BENCH_hotpath.json`.

use adaparse::select_global;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hpcsim::ReadyQueue;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SIZES: [usize; 2] = [1_000, 100_000];

/// Deterministic `(time, id)` pairs with heavy time collisions so the
/// id/sequence tiebreaks are exercised, not just the float compare.
fn arrivals(n: usize) -> Vec<(f64, u64)> {
    let mut rng = StdRng::seed_from_u64(42);
    (0..n).map(|i| ((rng.gen_range(0.0f64..64.0)).floor(), i as u64)).collect()
}

fn scores(n: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(42);
    (0..n).map(|_| rng.gen_range(0.0f64..1.0)).collect()
}

fn bench_ready_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("ready_queue");
    for &n in &SIZES {
        let input = arrivals(n);
        group.bench_with_input(BenchmarkId::new("push_pop", n), &input, |b, input| {
            b.iter(|| {
                let mut queue = ReadyQueue::new();
                for &(time, id) in black_box(input) {
                    queue.push(time, id, id as usize);
                }
                let mut last = 0u64;
                while let Some((_, id, _)) = queue.pop() {
                    last = id;
                }
                last
            })
        });
    }
    group.finish();
}

fn bench_select_global(c: &mut Criterion) {
    let mut group = c.benchmark_group("select_global");
    for &n in &SIZES {
        let input = scores(n);
        // alpha = 0.1 keeps k = n/10: large enough to stress the heap's
        // replace path, small enough that the bound over a full sort shows.
        group.bench_with_input(BenchmarkId::new("alpha_0_1", n), &input, |b, input| {
            b.iter(|| select_global(black_box(input), 0.1))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ready_queue, bench_select_global);
criterion_main!(benches);
