//! Microbenchmarks of the metric kernels every evaluation run leans on
//! (BLEU, ROUGE-L, character accuracy rate).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use textmetrics::bleu::sentence_bleu;
use textmetrics::levenshtein::char_accuracy_rate;
use textmetrics::rouge::rouge_l;

fn sample_pair() -> (String, String) {
    let reference = "the gravitational force between two masses is directly proportional to the \
                     product of their masses and inversely proportional to the square of the distance "
        .repeat(20);
    let mut candidate = reference.clone();
    candidate.insert_str(200, "scrambled artifact ");
    (candidate, reference)
}

fn bench_metrics(c: &mut Criterion) {
    let (candidate, reference) = sample_pair();
    c.bench_function("bleu/medium_doc", |b| {
        b.iter(|| sentence_bleu(black_box(&candidate), black_box(&reference)))
    });
    c.bench_function("rouge_l/medium_doc", |b| {
        b.iter(|| rouge_l(black_box(&candidate), black_box(&reference)))
    });
    c.bench_function("car/medium_doc", |b| {
        b.iter(|| char_accuracy_rate(black_box(&candidate), black_box(&reference)))
    });
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
