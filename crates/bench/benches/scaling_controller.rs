//! Kernels of the resource-scaling engine: the controller's per-wave
//! decision, the windowed selector's per-window selection, and the
//! windowed-vs-global gap computation. All three sit on the streaming
//! pipeline's sequential path (between waves), so their cost bounds how
//! small a window can be before routing overhead shows up.

use adaparse::budget::windowed_optimality_gap;
use adaparse::{ControllerConfig, ScalingController, StageSample, WaveStats, WindowedSelector};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn scores(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0.0..1.0)).collect()
}

fn bench_controller_observe(c: &mut Criterion) {
    c.bench_function("scaling_controller/observe_1k_waves", |b| {
        b.iter(|| {
            let mut controller = ScalingController::new(ControllerConfig::for_workers(16));
            for wave in 0..1000usize {
                let parse_seconds = 1.0 + ((wave % 13) as f64) * 0.3;
                controller.observe(black_box(&WaveStats {
                    wave_index: wave,
                    extract: StageSample { busy_seconds: 1.5, items: 256 },
                    parse: StageSample { busy_seconds: parse_seconds, items: 256 },
                    queue_depth: 256_000 - wave * 256,
                }));
            }
            controller.history().len()
        })
    });
}

fn bench_windowed_selection(c: &mut Criterion) {
    let corpus = scores(65_536, 7);
    let mut group = c.benchmark_group("windowed_selector");
    for &window in &[64usize, 256, 4096] {
        group.bench_with_input(BenchmarkId::new("select_all", window), &window, |b, &window| {
            b.iter(|| WindowedSelector::new(window, 0.05).select_all(black_box(&corpus)))
        });
    }
    group.finish();
}

fn bench_gap(c: &mut Criterion) {
    let corpus = scores(16_384, 11);
    c.bench_function("windowed_optimality_gap/16k_docs_k256", |b| {
        b.iter(|| windowed_optimality_gap(black_box(&corpus), 0.05, 256))
    });
}

criterion_group!(benches, bench_controller_observe, bench_windowed_selection, bench_gap);
criterion_main!(benches);
