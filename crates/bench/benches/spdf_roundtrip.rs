//! Benchmarks of the SPDF container (write + parse) and of the fastest
//! extraction parser over it — the per-document overhead every campaign pays.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use docmodel::spdf::{write_document, SpdfFile};
use parsersim::pymupdf::PyMuPdfParser;
use parsersim::Parser;
use rand::rngs::StdRng;
use rand::SeedableRng;
use scicorpus::generator::{DocumentGenerator, GeneratorConfig};

fn bench_spdf(c: &mut Criterion) {
    let mut generator = DocumentGenerator::new(GeneratorConfig {
        n_documents: 1,
        seed: 7,
        min_pages: 8,
        max_pages: 8,
        ..Default::default()
    });
    let doc = generator.generate();
    let bytes = write_document(&doc);

    c.bench_function("spdf/write_8_pages", |b| b.iter(|| write_document(black_box(&doc))));
    c.bench_function("spdf/parse_8_pages", |b| b.iter(|| SpdfFile::parse(black_box(&bytes)).unwrap()));
    c.bench_function("pymupdf/parse_8_pages", |b| {
        let parser = PyMuPdfParser::new();
        let file = SpdfFile::parse(&bytes).unwrap();
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            parser.parse_file(black_box(&file), &mut rng).unwrap()
        })
    });
}

criterion_group!(benches, bench_spdf);
criterion_main!(benches);
