//! Cascade-routing ablation benchmark: binary vs k = 4 vs k = 4 + by-page
//! delegation at a fixed upgrade budget.
//!
//! All three arms run the same trained engine over the same
//! category-skewed corpus ([`scicorpus::generate_categorized`]) under the
//! same **upgrade-dollar budget**: `--alpha` is the binary arm's upgrade
//! fraction, which fixes a dollar credit per document
//! (`alpha × page dollars of the binary upgrade`), and each wider arm's α
//! is rescaled by its own costliest upgrade so every arm accrues the same
//! dollars of upgrade credit per document seen. The arms then differ only
//! in what that credit buys: the binary arm can only buy whole-document
//! high-quality upgrades; the k = 4 arm may split the same credit across
//! cheap OCR and mid-price recognition upgrades; the by-page arm
//! additionally delegates only the hardest pages and refunds the
//! remainder. Each run appends a schema-versioned entry to
//! `BENCH_cascade.json` at the repo root, and `--validate` checks the
//! trajectory file (the CI wall runs `--smoke`, which doubles every arm
//! and insists the report replays bitwise).
//!
//! ```text
//! cargo run --release --bin bench_cascade                  # full entry
//! cargo run --release --bin bench_cascade -- --docs 200 --smoke
//! cargo run --release --bin bench_cascade -- --validate
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use adaparse::{
    AdaParseConfig, AdaParseEngine, CampaignPipeline, CascadeConfig, CascadeReport, PipelineConfig,
};
use bench::trajectory::{append_entry, unix_timestamp, validate_trajectory, JsonValue};
use docmodel::DocCategory;
use scicorpus::categories::{generate_categorized, CategoryMix};
use scicorpus::generator::GeneratorConfig;

struct Args {
    docs: usize,
    seed: u64,
    window: usize,
    alpha: f64,
    label: String,
    out: PathBuf,
    smoke: bool,
    validate: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        docs: 600,
        seed: 42,
        window: 32,
        alpha: 0.1,
        label: "cascade".to_string(),
        out: PathBuf::from("BENCH_cascade.json"),
        smoke: false,
        validate: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--docs" => args.docs = value("--docs")?.parse().map_err(|e| format!("--docs: {e}"))?,
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--window" => args.window = value("--window")?.parse().map_err(|e| format!("--window: {e}"))?,
            "--alpha" => args.alpha = value("--alpha")?.parse().map_err(|e| format!("--alpha: {e}"))?,
            "--label" => args.label = value("--label")?,
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--smoke" => args.smoke = true,
            "--validate" => args.validate = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.docs == 0 || args.window == 0 {
        return Err("--docs and --window must be positive".to_string());
    }
    Ok(args)
}

/// Fields every `BENCH_cascade.json` entry must carry (shared with the CI
/// `--validate` step).
const REQUIRED_FIELDS: &[&str] =
    &["label", "docs", "seed", "window", "alpha", "smoke", "arms", "quality_gap_k4_vs_binary"];

/// FNV-1a over a byte stream.
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Bit-exact digest of one arm: choices and aggregate quality.
fn fingerprint(report: &CascadeReport) -> u64 {
    let mut bytes = Vec::new();
    for choice in &report.choices {
        bytes.extend_from_slice(&choice.doc_id.to_le_bytes());
        bytes.push(choice.parser.index() as u8);
        bytes.push(choice.upgrade.map(|u| u as u8 + 1).unwrap_or(0));
        bytes.extend_from_slice(&(choice.upgraded_pages.len() as u32).to_le_bytes());
    }
    bytes.extend_from_slice(&report.result.quality.car.to_bits().to_le_bytes());
    bytes.extend_from_slice(&report.result.quality.bleu.to_bits().to_le_bytes());
    fnv1a(bytes)
}

/// Headline quality of one arm: mean of BLEU, ROUGE-L and CAR.
fn composite_quality(report: &CascadeReport) -> f64 {
    let q = &report.result.quality;
    (q.bleu + q.rouge + q.car) / 3.0
}

struct Arm {
    name: &'static str,
    report: CascadeReport,
    wall_seconds: f64,
}

fn run_arm(
    name: &'static str,
    pipeline: &CampaignPipeline,
    engine: &AdaParseEngine,
    docs: &[docmodel::Document],
    cascade: &CascadeConfig,
    seed: u64,
    smoke: bool,
) -> Result<Arm, String> {
    let start = Instant::now();
    let report = pipeline.run_cascade(engine, docs, cascade, seed);
    let wall_seconds = start.elapsed().as_secs_f64();
    if smoke {
        let replay = pipeline.run_cascade(engine, docs, cascade, seed);
        if replay != report {
            return Err(format!("smoke determinism check failed: arm {name} did not replay bitwise"));
        }
    }
    Ok(Arm { name, report, wall_seconds })
}

fn arm_json(arm: &Arm) -> JsonValue {
    let report = &arm.report;
    let upgraded = report.choices.iter().filter(|c| c.upgrade.is_some()).count();
    JsonValue::object(vec![
        ("name", JsonValue::Str(arm.name.to_string())),
        ("k", JsonValue::U64((report.parser_docs.len().max(1)) as u64)),
        ("documents", JsonValue::U64(report.result.quality.documents as u64)),
        ("upgraded_docs", JsonValue::U64(upgraded as u64)),
        ("pages_delegated", JsonValue::U64(report.pages_delegated as u64)),
        ("pages_total", JsonValue::U64(report.pages_total as u64)),
        ("ledger_dollars", JsonValue::F64(report.dollars.total())),
        (
            "class_dollars",
            JsonValue::object(
                report
                    .dollars
                    .classes()
                    .map(|(kind, dollars)| (kind.name(), JsonValue::F64(dollars)))
                    .collect(),
            ),
        ),
        (
            "parser_docs",
            JsonValue::object(
                report.parser_docs.iter().map(|&(kind, n)| (kind.name(), JsonValue::U64(n as u64))).collect(),
            ),
        ),
        ("quality_composite", JsonValue::F64(composite_quality(report))),
        ("bleu", JsonValue::F64(report.result.quality.bleu)),
        ("rouge", JsonValue::F64(report.result.quality.rouge)),
        ("car", JsonValue::F64(report.result.quality.car)),
        ("coverage", JsonValue::F64(report.result.quality.coverage)),
        ("wall_seconds", JsonValue::F64(arm.wall_seconds)),
        ("fingerprint", JsonValue::hex(fingerprint(report))),
    ])
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    if args.validate {
        let entries = validate_trajectory(&args.out, "cascade", REQUIRED_FIELDS)?;
        println!("{}: valid ({entries} entries)", args.out.display());
        return Ok(());
    }

    println!(
        "bench_cascade: {} documents, seed {}, window {}, alpha {}{}",
        args.docs,
        args.seed,
        args.window,
        args.alpha,
        if args.smoke { " (smoke: double run per arm)" } else { "" }
    );

    // A corpus where parser choice matters: heavy on scans and tables,
    // where cheap OCR and mid-price recognition upgrades pay off.
    let mix = CategoryMix {
        weights: vec![
            (DocCategory::Scanned, 0.30),
            (DocCategory::TablesHeavy, 0.25),
            (DocCategory::Multilingual, 0.10),
            (DocCategory::CleanBornDigital, 0.35),
        ],
    };
    let base = GeneratorConfig { min_pages: 1, max_pages: 4, ..Default::default() };
    let corpus = generate_categorized(&base, &mix, args.docs, args.seed);
    // The binary baseline routes its α-split at the *top* of the quality
    // frontier — hard documents go straight to the most capable (and most
    // expensive) parser. The cascade arms get the same dollars and may
    // split them across the whole frontier instead.
    let config = AdaParseConfig {
        alpha: args.alpha,
        high_quality_parser: parsersim::ParserKind::Marker,
        ..Default::default()
    };
    let mut engine = AdaParseEngine::new(config.clone());
    engine.train_on_corpus(&corpus.documents[..24.min(args.docs)], 5);
    let pipeline = CampaignPipeline::new(PipelineConfig::streaming(2, 16));

    // Equal-dollar budgets: `--alpha` is the binary arm's upgrade
    // fraction; a wider frontier's slots are denominated in *its* costliest
    // upgrade, so its α is rescaled to keep dollars-per-document fixed.
    let dollar_credit_per_doc = args.alpha * parsersim::page_dollars(config.high_quality_parser);
    let rescaled = |mut cascade: CascadeConfig| {
        let costliest = cascade.frontier.costliest().map(|e| e.cost_per_page).unwrap_or(1.0);
        cascade.alpha = dollar_credit_per_doc / costliest;
        cascade
    };
    let binary_config = CascadeConfig::binary(&config, args.window);
    let k4_config = rescaled(CascadeConfig::full(&config, args.window));
    let by_page_config = rescaled(CascadeConfig::full(&config, args.window)).by_page();
    println!(
        "  upgrade credit: ${:.2}/doc (binary alpha {:.3}, k4 alpha {:.4})",
        dollar_credit_per_doc, binary_config.alpha, k4_config.alpha
    );
    let seed = args.seed ^ 0xCA5C;
    let arms = [
        run_arm("binary", &pipeline, &engine, &corpus.documents, &binary_config, seed, args.smoke)?,
        run_arm("k4", &pipeline, &engine, &corpus.documents, &k4_config, seed, args.smoke)?,
        run_arm("k4-by-page", &pipeline, &engine, &corpus.documents, &by_page_config, seed, args.smoke)?,
    ];

    for arm in &arms {
        let report = &arm.report;
        println!(
            "  {:<11} quality {:.4}  upgraded {:>4}  delegated pages {:>4}/{:<4} ledger ${:.1}  ({:.2} s)",
            arm.name,
            composite_quality(report),
            report.choices.iter().filter(|c| c.upgrade.is_some()).count(),
            report.pages_delegated,
            report.pages_total,
            report.dollars.total(),
            arm.wall_seconds,
        );
        let breakdown: Vec<String> =
            report.parser_docs.iter().map(|&(kind, n)| format!("{}:{n}", kind.name())).collect();
        println!("              parser docs {{{}}}", breakdown.join(", "));
    }

    let quality_gap = composite_quality(&arms[1].report) - composite_quality(&arms[0].report);
    println!("  k4 − binary composite quality gap at equal upgrade budget: {quality_gap:+.4}");
    if quality_gap <= 0.0 {
        return Err(format!(
            "acceptance violated: k=4 must capture strictly more quality than binary (gap {quality_gap:+.6})"
        ));
    }

    let entry = JsonValue::object(vec![
        ("timestamp", JsonValue::U64(unix_timestamp())),
        ("label", JsonValue::Str(args.label.clone())),
        ("docs", JsonValue::U64(args.docs as u64)),
        ("seed", JsonValue::U64(args.seed)),
        ("window", JsonValue::U64(args.window as u64)),
        ("alpha", JsonValue::F64(args.alpha)),
        ("smoke", JsonValue::Bool(args.smoke)),
        ("quality_gap_k4_vs_binary", JsonValue::F64(quality_gap)),
        ("arms", JsonValue::Array(arms.iter().map(arm_json).collect())),
    ]);
    append_entry(&args.out, "cascade", entry).map_err(|e| e.to_string())?;
    let entries = validate_trajectory(&args.out, "cascade", REQUIRED_FIELDS)?;
    println!("  appended to {} ({entries} entries)", args.out.display());
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("bench_cascade: {message}");
            ExitCode::FAILURE
        }
    }
}
