//! Million-task hot-path macro-benchmark with a tracked perf trajectory.
//!
//! Runs one deterministic closed-loop campaign at (by default) 10⁶
//! documents — 2·10⁶ executor tasks — through the same circuit the paper's
//! throughput claims rest on: a seeded `scicorpus` corpus scored by the
//! trained router, the streaming [`WindowedSelector`], and the causal
//! [`hpcsim`] `ExecutorSession` closed loop. It measures wall-clock,
//! tasks/second, allocation counters (a peak-RSS proxy from a counting
//! global allocator), and per-phase timings, then appends a
//! schema-versioned entry to `BENCH_hotpath.json` at the repo root so every
//! future PR extends the performance trajectory instead of asserting a
//! one-off number.
//!
//! Corpus scaling: router scores are *measured* on a seeded base sample
//! (≤ 2048 generated documents, extracted and routed for real) and then
//! deterministically tiled with seeded jitter up to the requested document
//! count. The executor and selector therefore run at full scale on a
//! realistic score distribution without the benchmark spending its budget
//! generating text no hot path ever reads.
//!
//! Everything downstream of the seed is a pure function of the CLI
//! arguments: `--smoke` runs the selection + closed-loop phases twice and
//! asserts the two campaign fingerprints are bitwise identical.
//!
//! ```text
//! cargo run --release --bin bench_million                    # full 1M-doc entry
//! cargo run --release --bin bench_million -- --docs 2000 --smoke
//! cargo run --release --bin bench_million -- --placement cost-aware --smoke
//! cargo run --release --bin bench_million -- --validate      # check BENCH_hotpath.json
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use adaparse::{
    run_closed_loop, AdaParseConfig, AdaParseEngine, ControllerConfig, SimLoopConfig, SimLoopReport,
    WindowedSelector, WorkloadSpec,
};
use bench::trajectory::{append_entry, unix_timestamp, validate_trajectory, JsonValue};
use hpcsim::{CausalityMode, ExecutorConfig, PlacementPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scicorpus::generator::{DocumentGenerator, GeneratorConfig};

/// Counting wrapper over the system allocator: total allocations, total
/// bytes, and the high-water mark of live bytes (a deterministic-enough
/// peak-RSS proxy that needs no OS support).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            let live = LIVE_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed) + layout.size() as u64;
            PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Snapshot of the allocation counters at one instant.
#[derive(Clone, Copy)]
struct AllocSnapshot {
    allocations: u64,
    allocated_bytes: u64,
}

fn alloc_snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocations: ALLOCATIONS.load(Ordering::Relaxed),
        allocated_bytes: ALLOCATED_BYTES.load(Ordering::Relaxed),
    }
}

/// FNV-1a over a byte stream, for order-sensitive output fingerprints.
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Bit-exact digest of one campaign run; two runs with the same seed must
/// produce identical fingerprints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Fingerprint {
    makespan_bits: u64,
    mask_fnv: u64,
    selected: u64,
    co_located_pairs: u64,
    warm_hits: u64,
}

impl Fingerprint {
    fn new(mask: &[bool], report: &SimLoopReport) -> Fingerprint {
        Fingerprint {
            makespan_bits: report.makespan_seconds.to_bits(),
            mask_fnv: fnv1a(mask.iter().map(|&b| b as u8)),
            selected: report.selected as u64,
            co_located_pairs: report.co_located_pairs as u64,
            warm_hits: report.executor_report.warm_hits as u64,
        }
    }
}

struct Args {
    docs: usize,
    seed: u64,
    window: usize,
    nodes: usize,
    label: String,
    out: PathBuf,
    placement: PlacementPolicy,
    smoke: bool,
    validate: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        docs: 1_000_000,
        seed: 42,
        window: 256,
        nodes: 4,
        label: "hotpath".to_string(),
        out: PathBuf::from("BENCH_hotpath.json"),
        placement: PlacementPolicy::EarliestSlot,
        smoke: false,
        validate: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--docs" => args.docs = value("--docs")?.parse().map_err(|e| format!("--docs: {e}"))?,
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--window" => args.window = value("--window")?.parse().map_err(|e| format!("--window: {e}"))?,
            "--nodes" => args.nodes = value("--nodes")?.parse().map_err(|e| format!("--nodes: {e}"))?,
            "--label" => args.label = value("--label")?,
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--placement" => {
                args.placement = match value("--placement")?.as_str() {
                    "earliest" => PlacementPolicy::EarliestSlot,
                    "cost-aware" => PlacementPolicy::CostAware,
                    other => return Err(format!("--placement: expected earliest|cost-aware, got {other:?}")),
                }
            }
            "--smoke" => args.smoke = true,
            "--validate" => args.validate = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.docs == 0 || args.window == 0 || args.nodes == 0 {
        return Err("--docs, --window, and --nodes must be positive".to_string());
    }
    Ok(args)
}

/// Fields every `BENCH_hotpath.json` entry must carry (shared with the CI
/// `--validate` step).
const REQUIRED_FIELDS: &[&str] = &[
    "label",
    "docs",
    "seed",
    "window",
    "nodes",
    "smoke",
    "tasks_completed",
    "wall_seconds_total",
    "tasks_per_second",
    "phases",
    "alloc",
    "fingerprint",
];

/// Phase 1: seeded corpus + router → a score per document. Scores are
/// measured on the base sample and tiled with seeded jitter to `docs`
/// (sentinel scores — CLS I overrides at ±`f64::MAX / 4` — tile unjittered
/// so their routing semantics survive).
fn build_scores(docs: usize, seed: u64) -> (AdaParseEngine, Vec<f64>) {
    let base_n = docs.min(2048);
    let corpus = DocumentGenerator::new(GeneratorConfig {
        n_documents: base_n,
        seed,
        min_pages: 1,
        max_pages: 3,
        scanned_fraction: 0.3,
        ..Default::default()
    })
    .generate_many(base_n);
    let mut engine = AdaParseEngine::new(AdaParseConfig { alpha: 0.1, ..Default::default() });
    engine.train_on_corpus(&corpus[..20.min(base_n)], 5);
    let routed = engine.route_documents(&corpus, seed ^ 0xBE7C);
    let base: Vec<f64> = routed.iter().map(|r| r.predicted_improvement).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x711E);
    let scores = (0..docs)
        .map(|i| {
            let score = base[i % base.len()];
            if score.is_finite() && score.abs() < 1e9 {
                score * (1.0 + 1e-3 * rng.gen_range(-1.0..1.0))
            } else {
                score
            }
        })
        .collect();
    (engine, scores)
}

/// Phases 2+3: isolated streaming selection, then the causal closed loop.
/// Returns the mask, the loop report, and the two phase durations.
fn run_campaign(
    engine: &AdaParseEngine,
    scores: &[f64],
    args: &Args,
) -> (Vec<bool>, SimLoopReport, f64, f64) {
    let selection_start = Instant::now();
    let mask = WindowedSelector::new(args.window, engine.config().alpha).select_all(scores);
    let selection_seconds = selection_start.elapsed().as_secs_f64();

    let workload = WorkloadSpec { documents: scores.len(), pages_per_doc: 8, mb_per_doc: 20.0 };
    let sim = SimLoopConfig {
        window: args.window,
        nodes: args.nodes,
        controller: ControllerConfig { total_workers: 8, patience: 1, ..Default::default() },
        executor: ExecutorConfig {
            causality: CausalityMode::Causal,
            placement: args.placement,
            ..Default::default()
        },
        ..Default::default()
    };
    let loop_start = Instant::now();
    let report = run_closed_loop(engine.config(), scores, &workload, &sim);
    let loop_seconds = loop_start.elapsed().as_secs_f64();
    (mask, report, selection_seconds, loop_seconds)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    if args.validate {
        let entries = validate_trajectory(&args.out, "hotpath", REQUIRED_FIELDS)?;
        println!("{}: valid ({entries} entries)", args.out.display());
        return Ok(());
    }

    let total_start = Instant::now();
    println!(
        "bench_million: {} documents, seed {}, window {}, {} nodes{}",
        args.docs,
        args.seed,
        args.window,
        args.nodes,
        if args.smoke { " (smoke: double run + determinism check)" } else { "" }
    );

    let corpus_start = Instant::now();
    let (engine, scores) = build_scores(args.docs, args.seed);
    let corpus_seconds = corpus_start.elapsed().as_secs_f64();
    println!("  corpus + router scores: {corpus_seconds:.2} s");

    let before = alloc_snapshot();
    let (mask, report, selection_seconds, loop_seconds) = run_campaign(&engine, &scores, &args);
    let after = alloc_snapshot();
    let fingerprint = Fingerprint::new(&mask, &report);
    println!("  streaming selection:    {selection_seconds:.2} s ({} selected)", report.selected);
    println!(
        "  causal closed loop:     {loop_seconds:.2} s ({} epochs, makespan {:.1} sim-s)",
        report.waves.len(),
        report.makespan_seconds
    );

    if args.smoke {
        let (mask2, report2, _, _) = run_campaign(&engine, &scores, &args);
        if report2 != report || mask2 != mask {
            return Err("smoke determinism check failed: same seed produced different outputs".into());
        }
        println!("  replay: bitwise identical (fingerprint {:#018x})", fingerprint.makespan_bits);
    }

    let tasks_completed = report.executor_report.tasks_completed as u64;
    let wall_seconds_total = total_start.elapsed().as_secs_f64();
    let tasks_per_second = tasks_completed as f64 / loop_seconds.max(f64::MIN_POSITIVE);
    let allocations = after.allocations - before.allocations;
    let allocated_mb = (after.allocated_bytes - before.allocated_bytes) as f64 / (1024.0 * 1024.0);
    let peak_mb = PEAK_BYTES.load(Ordering::Relaxed) as f64 / (1024.0 * 1024.0);
    println!(
        "  {tasks_completed} tasks in {loop_seconds:.2} s → {tasks_per_second:.0} tasks/s; \
         {allocations} allocations ({allocated_mb:.1} MiB) in the campaign phases, peak {peak_mb:.1} MiB"
    );

    let entry = JsonValue::object(vec![
        ("timestamp", JsonValue::U64(unix_timestamp())),
        ("label", JsonValue::Str(args.label.clone())),
        ("docs", JsonValue::U64(args.docs as u64)),
        ("seed", JsonValue::U64(args.seed)),
        ("window", JsonValue::U64(args.window as u64)),
        ("nodes", JsonValue::U64(args.nodes as u64)),
        ("smoke", JsonValue::Bool(args.smoke)),
        // Optional fields (absent from pre-placement entries, so kept out
        // of REQUIRED_FIELDS): which slot-choice policy ran, and the herd
        // serialization cost it observed.
        (
            "placement",
            JsonValue::Str(
                match args.placement {
                    PlacementPolicy::EarliestSlot => "earliest-slot",
                    PlacementPolicy::CostAware => "cost-aware",
                }
                .to_string(),
            ),
        ),
        ("herd_queue_seconds", JsonValue::F64(report.executor_report.herd_queue_seconds)),
        ("tasks_completed", JsonValue::U64(tasks_completed)),
        ("wall_seconds_total", JsonValue::F64(wall_seconds_total)),
        ("tasks_per_second", JsonValue::F64(tasks_per_second)),
        (
            "phases",
            JsonValue::object(vec![
                ("corpus_seconds", JsonValue::F64(corpus_seconds)),
                ("selection_seconds", JsonValue::F64(selection_seconds)),
                ("closed_loop_seconds", JsonValue::F64(loop_seconds)),
            ]),
        ),
        (
            "alloc",
            JsonValue::object(vec![
                ("allocations", JsonValue::U64(allocations)),
                ("allocated_mb", JsonValue::F64(allocated_mb)),
                ("peak_mb", JsonValue::F64(peak_mb)),
            ]),
        ),
        (
            "fingerprint",
            JsonValue::object(vec![
                ("makespan_bits", JsonValue::hex(fingerprint.makespan_bits)),
                ("mask_fnv", JsonValue::hex(fingerprint.mask_fnv)),
                ("selected", JsonValue::U64(fingerprint.selected)),
                ("co_located_pairs", JsonValue::U64(fingerprint.co_located_pairs)),
                ("warm_hits", JsonValue::U64(fingerprint.warm_hits)),
            ]),
        ),
    ]);
    append_entry(&args.out, "hotpath", entry).map_err(|e| e.to_string())?;
    let entries = validate_trajectory(&args.out, "hotpath", REQUIRED_FIELDS)?;
    println!("  appended to {} ({entries} entries)", args.out.display());
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("bench_million: {message}");
            ExitCode::FAILURE
        }
    }
}
