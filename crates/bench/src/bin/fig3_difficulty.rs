//! Figure 3: per-document BLEU of every parser against the document
//! difficulty rank (difficulty = mean BLEU across parsers, descending), plus
//! the single-node throughput legend.
//!
//! Usage: `cargo run -p bench --bin fig3_difficulty --release`

use bench::{bench_doc_count, benchmark_corpus};
use parsersim::cost::{node_throughput_table, NodeSpec};
use parsersim::evaluate::evaluate_corpus;
use parsersim::ParserKind;

fn main() {
    let n = bench_doc_count(150);
    let corpus = benchmark_corpus(n, 33);
    let evaluations = evaluate_corpus(corpus.documents(), 77);

    // Rank documents by estimated difficulty (descending mean BLEU = easy first).
    let mut ranked: Vec<usize> = (0..evaluations.len()).collect();
    ranked.sort_by(|&a, &b| {
        evaluations[b]
            .mean_bleu()
            .partial_cmp(&evaluations[a].mean_bleu())
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    println!("Figure 3 — parser BLEU by difficulty rank (n = {n})");
    println!("Legend (single-node throughput, PDFs/s, 10-page documents):");
    for (kind, rate) in node_throughput_table(&NodeSpec::default(), 10.0) {
        println!("  {:<10} {:>9.2}", kind.name(), rate);
    }
    println!();
    print!("{:>6}", "rank");
    for kind in ParserKind::ALL {
        print!(" {:>10}", kind.name());
    }
    println!(" {:>10}", "mean");
    // Print a decimated series so the output stays readable at any scale.
    let step = (ranked.len() / 50).max(1);
    for (rank, &doc_index) in ranked.iter().enumerate().step_by(step) {
        let eval = &evaluations[doc_index];
        print!("{rank:>6}");
        for kind in ParserKind::ALL {
            let bleu = eval.for_parser(kind).map(|p| p.report.bleu).unwrap_or(0.0);
            print!(" {:>10.3}", bleu);
        }
        println!(" {:>10.3}", eval.mean_bleu());
    }
}
