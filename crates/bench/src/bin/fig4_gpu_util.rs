//! Figure 4: per-GPU utilization of the Nougat workload on one node, with and
//! without the warm-start optimization (§5.2).
//!
//! Usage: `cargo run -p bench --bin fig4_gpu_util --release`

use adaparse::hpc::{tasks_for_parser, WorkloadSpec};
use hpcsim::{ClusterConfig, ExecutorConfig, LustreModel, WorkflowExecutor};
use parsersim::ParserKind;

fn main() {
    let workload =
        WorkloadSpec { documents: bench::bench_doc_count(200), pages_per_doc: 10, mb_per_doc: 1.5 };
    let tasks = tasks_for_parser(ParserKind::Nougat, &workload);
    let cluster = ClusterConfig::polaris(1);
    let fs = LustreModel::default();

    for (label, warm) in
        [("warm-start workers (paper configuration)", true), ("cold start per task (ablation)", false)]
    {
        let report = WorkflowExecutor::new(ExecutorConfig { warm_start: warm, ..Default::default() })
            .run(&tasks, &cluster, &fs);
        println!("Figure 4 — GPU utilization, {label}");
        println!(
            "  makespan = {:.1} s, throughput = {:.2} PDF/s, cold starts = {}",
            report.makespan_seconds, report.throughput_per_second, report.cold_starts
        );
        let bins = 20;
        for gpu in 0..report.gpu_trace.gpus() {
            let series = report.gpu_trace.utilization_series(gpu, report.makespan_seconds, bins);
            let bars: String = series
                .iter()
                .map(|&u| match (u * 4.0).round() as usize {
                    0 => ' ',
                    1 => '░',
                    2 => '▒',
                    3 => '▓',
                    _ => '█',
                })
                .collect();
            println!(
                "  GPU {gpu}: [{bars}] util = {:>5.1} %  (model load {:>5.1} s)",
                100.0 * report.gpu_trace.utilization(gpu, report.makespan_seconds),
                report.gpu_trace.model_load_seconds(gpu)
            );
        }
        println!();
    }
}
