//! Figure 5: throughput scalability of every parser and AdaParse from 1 to
//! 128 nodes. Pass `--no-staging` to ablate node-local ZIP staging.
//!
//! Usage: `cargo run -p bench --bin fig5_scaling --release [-- --no-staging]`

use adaparse::hpc::{adaparse_throughput_at_scale, parser_throughput_at_scale, WorkloadSpec};
use adaparse::AdaParseConfig;
use hpcsim::ExecutorConfig;
use parsersim::ParserKind;

fn main() {
    let no_staging = std::env::args().any(|a| a == "--no-staging");
    let executor = ExecutorConfig { node_local_staging: !no_staging, ..Default::default() };
    let workload =
        WorkloadSpec { documents: bench::bench_doc_count(4_000), pages_per_doc: 10, mb_per_doc: 1.5 };
    let node_counts = [1usize, 2, 4, 8, 16, 32, 64, 128];

    println!(
        "Figure 5 — throughput scaling (PDFs/s), {} documents/point, staging = {}",
        workload.documents, !no_staging
    );
    print!("{:>6}", "nodes");
    for kind in ParserKind::ALL {
        print!(" {:>10}", kind.name());
    }
    println!(" {:>12}", "AdaParse");
    for &nodes in &node_counts {
        print!("{nodes:>6}");
        for kind in ParserKind::ALL {
            let rate = parser_throughput_at_scale(kind, &workload, nodes, &executor);
            print!(" {:>10.2}", rate);
        }
        let ada = adaparse_throughput_at_scale(
            &AdaParseConfig { alpha: 0.05, ..Default::default() },
            &workload,
            nodes,
            &executor,
        );
        println!(" {:>12.2}", ada);
    }
}
