//! Wall-clock scaling of the campaign pipeline: one identical ≥200-document
//! campaign at 1, 2, 4, and 8 workers, with the speedup over the 1-worker
//! run and a bitwise determinism check across all runs.
//!
//! Run with: `cargo run --release --bin pipeline_scaling`
//! (`ADAPARSE_BENCH_DOCS` overrides the corpus size.)

use std::time::Instant;

use adaparse::{AdaParseConfig, AdaParseEngine, CampaignPipeline, PipelineConfig};
use bench::bench_doc_count;
use scicorpus::generator::{DocumentGenerator, GeneratorConfig};

fn main() {
    let n_docs = bench_doc_count(240).max(200);
    let docs = DocumentGenerator::new(GeneratorConfig {
        n_documents: n_docs,
        seed: 42,
        min_pages: 1,
        max_pages: 3,
        scanned_fraction: 0.3,
        ..Default::default()
    })
    .generate_many(n_docs);
    let mut engine = AdaParseEngine::new(AdaParseConfig { alpha: 0.1, ..Default::default() });
    engine.train_on_corpus(&docs[..20.min(n_docs)], 5);

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("Campaign pipeline wall-clock scaling — {n_docs} documents, {cores} core(s) available");
    println!("{:>8} {:>12} {:>9}  result", "workers", "wall-clock", "speedup");

    let mut baseline_seconds = None;
    let mut baseline_result = None;
    for workers in [1usize, 2, 4, 8] {
        let pipeline = CampaignPipeline::new(PipelineConfig { workers, shard_size: 16 });
        let start = Instant::now();
        let result = pipeline.run(&engine, &docs, 7);
        let elapsed = start.elapsed().as_secs_f64();
        let baseline = *baseline_seconds.get_or_insert(elapsed);
        let identical = match &baseline_result {
            None => {
                baseline_result = Some(result);
                true
            }
            Some(expected) => *expected == result,
        };
        println!(
            "{workers:>8} {:>10.3} s {:>8.2}x  {}",
            elapsed,
            baseline / elapsed,
            if identical { "identical to 1-worker run" } else { "DIVERGED (bug!)" }
        );
        assert!(identical, "pipeline output diverged at {workers} workers");
    }

    if cores == 1 {
        println!("\nnote: single-core host — speedups ≈1x here; run on a multi-core");
        println!("      machine to observe the ≥2x 8-worker speedup.");
    }
}
