//! Wall-clock scaling of the campaign pipeline: one identical ≥200-document
//! campaign at 1, 2, 4, and 8 workers, with the speedup over the 1-worker
//! run and a bitwise determinism check across all runs. On hosts with ≥ 2
//! cores the ≥2× 8-worker speedup is asserted; single-core hosts (e.g. CI
//! containers) skip the assertion with a message.
//!
//! Every run appends an entry to `BENCH_pipeline_scaling.json` (same
//! schema-versioned trajectory format as `BENCH_hotpath.json`). Sub-2-core
//! hosts append a stub entry (`"skipped": true` plus the core count) so the
//! trajectory records *why* there is no speedup figure for that commit
//! instead of leaving a silent gap.
//!
//! Run with: `cargo run --release --bin pipeline_scaling`
//! (`ADAPARSE_BENCH_DOCS` overrides the corpus size.)

use std::path::Path;
use std::time::Instant;

use adaparse::{AdaParseConfig, AdaParseEngine, CampaignPipeline, PipelineConfig};
use bench::bench_doc_count;
use bench::trajectory::{append_entry, unix_timestamp, JsonValue};
use scicorpus::generator::{DocumentGenerator, GeneratorConfig};

/// Append one entry to the pipeline-scaling trajectory file, warning (not
/// failing) on I/O errors so a read-only checkout can't fail the benchmark.
fn record(entry: JsonValue) {
    let path = Path::new("BENCH_pipeline_scaling.json");
    match append_entry(path, "pipeline_scaling", entry) {
        Ok(()) => println!("appended to {}", path.display()),
        Err(e) => eprintln!("warning: could not append to {}: {e}", path.display()),
    }
}

fn main() {
    let n_docs = bench_doc_count(240).max(200);
    let docs = DocumentGenerator::new(GeneratorConfig {
        n_documents: n_docs,
        seed: 42,
        min_pages: 1,
        max_pages: 3,
        scanned_fraction: 0.3,
        ..Default::default()
    })
    .generate_many(n_docs);
    let mut engine = AdaParseEngine::new(AdaParseConfig { alpha: 0.1, ..Default::default() });
    engine.train_on_corpus(&docs[..20.min(n_docs)], 5);

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("Campaign pipeline wall-clock scaling — {n_docs} documents, {cores} core(s) available");
    println!("{:>8} {:>12} {:>9}  result", "workers", "wall-clock", "speedup");

    let mut baseline_seconds = None;
    let mut baseline_result = None;
    let mut speedup_at_8 = 1.0;
    let mut wall_seconds = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let pipeline =
            CampaignPipeline::new(PipelineConfig { workers, shard_size: 16, ..Default::default() });
        let start = Instant::now();
        let result = pipeline.run(&engine, &docs, 7);
        let elapsed = start.elapsed().as_secs_f64();
        let baseline = *baseline_seconds.get_or_insert(elapsed);
        let identical = match &baseline_result {
            None => {
                baseline_result = Some(result);
                true
            }
            Some(expected) => *expected == result,
        };
        let speedup = baseline / elapsed;
        wall_seconds.push(JsonValue::object(vec![
            ("workers", JsonValue::U64(workers as u64)),
            ("wall_seconds", JsonValue::F64(elapsed)),
            ("speedup", JsonValue::F64(speedup)),
        ]));
        if workers == 8 {
            speedup_at_8 = speedup;
        }
        println!(
            "{workers:>8} {:>10.3} s {:>8.2}x  {}",
            elapsed,
            speedup,
            if identical { "identical to 1-worker run" } else { "DIVERGED (bug!)" }
        );
        assert!(identical, "pipeline output diverged at {workers} workers");
    }

    if cores < 2 {
        println!("\nnote: detected {cores} CPU core(s), below the 2-core threshold the");
        println!("      speedup assertion requires — skipping the ≥2x 8-worker speedup");
        println!("      assertion (observed {speedup_at_8:.2}x; speedups ≈1x are expected here; run");
        println!("      on a machine with ≥ 4 cores to observe the ≥2x parallel scaling).");
        record(JsonValue::object(vec![
            ("timestamp", JsonValue::U64(unix_timestamp())),
            ("skipped", JsonValue::Bool(true)),
            ("cores", JsonValue::U64(cores as u64)),
            ("docs", JsonValue::U64(n_docs as u64)),
        ]));
    } else {
        // ≥2x needs headroom over the 2-core theoretical ceiling of exactly
        // 2.0x; on 2–3 cores settle for clear-but-sublinear scaling.
        let bound = if cores >= 4 { 2.0 } else { 1.3 };
        assert!(
            speedup_at_8 >= bound,
            "8-worker speedup {speedup_at_8:.2}x < {bound}x on a {cores}-core host"
        );
        println!("\n8-worker speedup {speedup_at_8:.2}x ≥ {bound}x — parallel scaling holds.");
        record(JsonValue::object(vec![
            ("timestamp", JsonValue::U64(unix_timestamp())),
            ("skipped", JsonValue::Bool(false)),
            ("cores", JsonValue::U64(cores as u64)),
            ("docs", JsonValue::U64(n_docs as u64)),
            ("speedup_at_8", JsonValue::F64(speedup_at_8)),
            ("runs", JsonValue::Array(wall_seconds)),
        ]));
    }
}
