//! §7.1 statistics of the (simulated) user-preference study: per-parser win
//! rates, decisiveness, inter-annotator consensus, and the BLEU↔win-rate
//! correlation.
//!
//! Usage: `cargo run -p bench --bin pref_study --release`

use bench::{bench_doc_count, benchmark_corpus};
use parsersim::evaluate::evaluate_corpus;
use prefstudy::{PreferenceStudy, StudyAnalysis, StudyConfig};

fn main() {
    let n = bench_doc_count(60);
    let corpus = benchmark_corpus(n, 66);
    let evaluations = evaluate_corpus(corpus.documents(), 99);
    let study = PreferenceStudy::collect(
        &evaluations,
        &StudyConfig { annotators: 23, target_preferences: 2794, repeat_fraction: 0.3, seed: 11 },
    );
    let analysis = StudyAnalysis::compute(&study, &evaluations);

    println!("User preference study — {} preferences over {} documents", analysis.n_preferences, n);
    println!("  decisiveness (paper: 91.3 %): {:>5.1} %", 100.0 * analysis.decisiveness);
    println!("  consensus    (paper: 82.2 %): {:>5.1} %", 100.0 * analysis.consensus);
    println!(
        "  BLEU ↔ win-rate correlation (paper: 0.47): {:.2} (p = {:.2e})",
        analysis.bleu_winrate_correlation, analysis.correlation_p_value
    );
    println!("  normalized win rates:");
    for (name, rate) in &analysis.win_rates {
        println!("    {:<10} {:>5.1} %", name, 100.0 * rate);
    }
    println!(
        "  splits: train = {}, validation = {}, test = {}",
        study.train().len(),
        study.validation().len(),
        study.test().len()
    );
}
