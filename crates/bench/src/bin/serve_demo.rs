//! Multi-tenant serve demo: SLO attainment under autoscaling, with a
//! tracked trajectory.
//!
//! Drives `adaparse::serve::run_service` over a bursty multi-tenant
//! arrival mix — a herding heavy tenant, a steady interactive tenant, and
//! a budgeted batch tenant — twice:
//!
//! 1. **Autoscaled**: the `SloAutoscaler` breathes the fleet between
//!    `--min-nodes` and `--max-nodes` against the worst per-tenant
//!    p99/SLO ratio.
//! 2. **Fixed ablation**: the same traces on a pinned fleet of equal
//!    *average* capacity (the autoscaled run's epoch-mean active nodes,
//!    rounded) — same mean node-hours, none of the elasticity.
//! 3. **Placement ablation**: the autoscaled run again under
//!    `PlacementPolicy::CostAware` — warm-aware slot choice must replay
//!    bitwise, complete the same documents, and pay no more cold starts
//!    than the warm-blind default.
//!
//! The demo asserts that the service replays bitwise, that the autoscaled
//! run meets every tenant's p99 target, and that the equal-capacity fixed
//! fleet misses at least one — the elasticity, not the capacity, is what
//! buys the tail — then appends a schema-versioned entry (per-tenant
//! p50/p99, admitted/rejected counts, run fingerprint) to
//! `BENCH_serve.json` at the repo root.
//!
//! ```text
//! cargo run --release --bin serve_demo                  # full entry + ablation
//! cargo run --release --bin serve_demo -- --smoke       # scaled-down CI run
//! cargo run --release --bin serve_demo -- --validate    # check BENCH_serve.json
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use adaparse::{
    run_service, AdaParseConfig, AutoscaleConfig, CampaignBudget, DocArrival, ServeConfig, ServeReport,
    TenantSpec, TenantTrace, WorkloadSpec,
};
use bench::trajectory::{append_entry, unix_timestamp, validate_trajectory, JsonValue};
use hpcsim::PlacementPolicy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scicorpus::{generate_arrivals, ArrivalConfig, ArrivalPattern};

struct Args {
    seed: u64,
    scale: usize,
    min_nodes: usize,
    max_nodes: usize,
    slo_seconds: f64,
    label: String,
    out: PathBuf,
    smoke: bool,
    validate: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 42,
        scale: 6,
        min_nodes: 1,
        max_nodes: 6,
        slo_seconds: 130.0,
        label: "serve".to_string(),
        out: PathBuf::from("BENCH_serve.json"),
        smoke: false,
        validate: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--scale" => args.scale = value("--scale")?.parse().map_err(|e| format!("--scale: {e}"))?,
            "--min-nodes" => {
                args.min_nodes = value("--min-nodes")?.parse().map_err(|e| format!("--min-nodes: {e}"))?
            }
            "--max-nodes" => {
                args.max_nodes = value("--max-nodes")?.parse().map_err(|e| format!("--max-nodes: {e}"))?
            }
            "--slo-seconds" => {
                args.slo_seconds =
                    value("--slo-seconds")?.parse().map_err(|e| format!("--slo-seconds: {e}"))?
            }
            "--label" => args.label = value("--label")?,
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--smoke" => args.smoke = true,
            "--validate" => args.validate = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.scale == 0 || args.min_nodes == 0 || args.max_nodes < args.min_nodes {
        return Err("--scale must be positive and --max-nodes >= --min-nodes >= 1".to_string());
    }
    Ok(args)
}

/// Fields every `BENCH_serve.json` entry must carry (shared with the CI
/// `--validate` step).
const REQUIRED_FIELDS: &[&str] = &[
    "label",
    "seed",
    "scale",
    "smoke",
    "slo_seconds",
    "auto_worst_slo_ratio",
    "fixed_worst_slo_ratio",
    "mean_active_nodes",
    "fixed_nodes",
    "admitted",
    "rejected",
    "wall_seconds",
    "tenants",
    "fingerprint",
];

/// Zip seeded arrival timestamps with seeded improvement scores.
fn doc_arrivals(n: usize, seed: u64, rate: f64, pattern: ArrivalPattern) -> Vec<DocArrival> {
    let times =
        generate_arrivals(&ArrivalConfig { n_documents: n, seed, mean_rate_per_second: rate, pattern });
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    times
        .into_iter()
        .map(|arrival| DocArrival { at_seconds: arrival.at_seconds, score: rng.gen_range(0.0..1.0) })
        .collect()
}

/// The demo's tenant mix: a herding heavy tenant, a steady interactive
/// tenant, and a budgeted batch tenant, all sharing one p99 target.
fn traces(args: &Args) -> Vec<TenantTrace> {
    let workload = WorkloadSpec { documents: 0, pages_per_doc: 40, mb_per_doc: 80.0 };
    let s = args.scale;
    vec![
        TenantTrace {
            spec: TenantSpec {
                name: "bursty-heavy".to_string(),
                alpha: 0.35,
                weight: 2.0,
                slo_p99_seconds: args.slo_seconds,
                max_pending: 4096,
                workload,
                ..Default::default()
            },
            arrivals: doc_arrivals(
                120 * s,
                args.seed,
                0.5,
                ArrivalPattern::AdversarialHerd { herd_size: 40 * s },
            ),
        },
        TenantTrace {
            spec: TenantSpec {
                name: "steady-interactive".to_string(),
                alpha: 0.15,
                weight: 1.0,
                slo_p99_seconds: args.slo_seconds,
                max_pending: 4096,
                workload,
                ..Default::default()
            },
            arrivals: doc_arrivals(15 * s, args.seed ^ 0xA11CE, 0.1, ArrivalPattern::Steady),
        },
        TenantTrace {
            spec: TenantSpec {
                name: "budgeted-batch".to_string(),
                alpha: 0.4,
                budget: Some(CampaignBudget::seconds(2_000.0 * s as f64)),
                weight: 1.0,
                slo_p99_seconds: args.slo_seconds,
                max_pending: 4096,
                workload,
                ..Default::default()
            },
            arrivals: doc_arrivals(
                25 * s,
                args.seed ^ 0xBA7C4,
                0.2,
                ArrivalPattern::Bursty { burst_size: 8 * s },
            ),
        },
    ]
}

fn serve_config(args: &Args, autoscale: bool, fixed_nodes: usize) -> ServeConfig {
    ServeConfig {
        engine: AdaParseConfig::default(),
        epoch_seconds: 20.0,
        nodes: if autoscale { args.min_nodes } else { fixed_nodes },
        autoscale: autoscale.then_some(AutoscaleConfig {
            min_nodes: args.min_nodes,
            max_nodes: args.max_nodes,
            step_up: 3,
            step_down: 2,
            down_patience: 2,
            headroom: 0.6,
            backlog_per_slot_up: 1.0,
        }),
        // A short sliding window lets the SLO signal recover between
        // herds (with the default 64 samples, one herd's tail lingers in
        // view through the whole quiet period and the fleet never
        // breathes down).
        slo_window: 16,
        ..Default::default()
    }
}

fn print_report(title: &str, report: &ServeReport) {
    println!("{title}:");
    println!(
        "  epochs {}  makespan {:.1}s  mean fleet {:.2} nodes (max {})  fleet events {}",
        report.epochs,
        report.makespan_seconds,
        report.mean_active_nodes,
        report.max_active_nodes,
        report.fleet.len()
    );
    for tenant in &report.tenants {
        println!(
            "  {:<20} admitted {:>5}  rejected {:>4}  selected {:>4}  p50 {:>7.1}s  p99 {:>7.1}s  \
             slo-ratio {:.2}{}",
            tenant.name,
            tenant.admitted,
            tenant.rejected,
            tenant.selected,
            tenant.latency.p50_seconds,
            tenant.latency.p99_seconds,
            tenant.slo_ratio(),
            if tenant.slo_met() { "" } else { "  ** SLO MISSED **" }
        );
    }
}

fn run() -> Result<(), String> {
    let mut args = parse_args()?;
    if args.validate {
        let entries = validate_trajectory(&args.out, "serve", REQUIRED_FIELDS)?;
        println!("{}: valid ({entries} entries)", args.out.display());
        return Ok(());
    }
    if args.smoke {
        args.scale = args.scale.min(2);
    }

    let traces = traces(&args);
    let docs: usize = traces.iter().map(|t| t.arrivals.len()).sum();
    println!(
        "serve_demo: {docs} documents over {} tenants, seed {}, fleet {}..{} nodes{}",
        traces.len(),
        args.seed,
        args.min_nodes,
        args.max_nodes,
        if args.smoke { " (smoke)" } else { "" }
    );

    // Autoscaled run, twice: the service must replay bit for bit.
    let wall = Instant::now();
    let auto = run_service(&serve_config(&args, true, 0), &traces);
    let replay = run_service(&serve_config(&args, true, 0), &traces);
    if auto != replay {
        return Err("serve run failed to replay bitwise".to_string());
    }
    println!("replay: bitwise identical (fingerprint {:#018x})", auto.fingerprint);

    // Equal-average-capacity ablation: pin the fleet at the autoscaled
    // run's mean active nodes.
    let fixed_nodes = (auto.mean_active_nodes.round() as usize).clamp(1, args.max_nodes);
    let fixed = run_service(&serve_config(&args, false, fixed_nodes), &traces);

    // Placement ablation: the same autoscaled run with warm-aware slot
    // choice. Same service, no extra cold starts.
    let mut aware_config = serve_config(&args, true, 0);
    aware_config.executor.placement = PlacementPolicy::CostAware;
    let aware = run_service(&aware_config, &traces);
    let aware_replay = run_service(&aware_config, &traces);
    if aware != aware_replay {
        return Err("cost-aware serve run failed to replay bitwise".to_string());
    }
    let wall_seconds = wall.elapsed().as_secs_f64();
    println!(
        "placement ablation: cost-aware pays {} cold starts vs {} warm-blind ({} vs {} warm hits)",
        aware.executor_report.cold_starts,
        auto.executor_report.cold_starts,
        aware.executor_report.warm_hits,
        auto.executor_report.warm_hits
    );
    if aware.executor_report.cold_starts > auto.executor_report.cold_starts {
        return Err(format!(
            "cost-aware placement paid more cold starts than warm-blind ({} vs {})",
            aware.executor_report.cold_starts, auto.executor_report.cold_starts
        ));
    }
    let completed = |report: &ServeReport| report.tenants.iter().map(|t| t.completed).sum::<usize>();
    if completed(&aware) != completed(&auto) {
        return Err(format!(
            "cost-aware placement changed the completed-document count ({} vs {})",
            completed(&aware),
            completed(&auto)
        ));
    }

    print_report("autoscaled", &auto);
    print_report(&format!("fixed fleet ({fixed_nodes} nodes, equal average capacity)"), &fixed);

    if !auto.all_slos_met() {
        return Err(format!(
            "autoscaled run must meet every tenant's p99 target (worst ratio {:.3})",
            auto.worst_slo_ratio()
        ));
    }
    if !args.smoke && fixed.all_slos_met() {
        return Err(format!(
            "ablation lost its teeth: the equal-capacity fixed fleet also met every SLO \
             (worst ratio {:.3}) — retune the traces",
            fixed.worst_slo_ratio()
        ));
    }
    if !args.smoke {
        println!(
            "ablation: autoscaling met the p99 target (worst ratio {:.3}) that the {fixed_nodes}-node \
             fixed fleet missed (worst ratio {:.3})",
            auto.worst_slo_ratio(),
            fixed.worst_slo_ratio()
        );
    }

    let tenants_json = JsonValue::Array(
        auto.tenants
            .iter()
            .map(|t| {
                JsonValue::object(vec![
                    ("name", JsonValue::Str(t.name.clone())),
                    ("admitted", JsonValue::U64(t.admitted as u64)),
                    ("rejected", JsonValue::U64(t.rejected as u64)),
                    ("selected", JsonValue::U64(t.selected as u64)),
                    ("p50_seconds", JsonValue::F64(t.latency.p50_seconds)),
                    ("p99_seconds", JsonValue::F64(t.latency.p99_seconds)),
                    ("slo_ratio", JsonValue::F64(t.slo_ratio())),
                    ("herd_queue_seconds", JsonValue::F64(t.herd_queue_seconds)),
                ])
            })
            .collect(),
    );
    let entry = JsonValue::object(vec![
        ("timestamp", JsonValue::U64(unix_timestamp())),
        ("label", JsonValue::Str(args.label.clone())),
        ("seed", JsonValue::U64(args.seed)),
        ("scale", JsonValue::U64(args.scale as u64)),
        ("smoke", JsonValue::Bool(args.smoke)),
        ("slo_seconds", JsonValue::F64(args.slo_seconds)),
        ("auto_worst_slo_ratio", JsonValue::F64(auto.worst_slo_ratio())),
        ("fixed_worst_slo_ratio", JsonValue::F64(fixed.worst_slo_ratio())),
        ("mean_active_nodes", JsonValue::F64(auto.mean_active_nodes)),
        ("fixed_nodes", JsonValue::U64(fixed_nodes as u64)),
        ("admitted", JsonValue::U64(auto.admitted as u64)),
        ("rejected", JsonValue::U64(auto.rejected as u64)),
        ("wall_seconds", JsonValue::F64(wall_seconds)),
        ("tenants", tenants_json),
        ("fingerprint", JsonValue::hex(auto.fingerprint)),
        // Optional field (absent from pre-placement entries, so kept out of
        // REQUIRED_FIELDS): the warm-aware placement ablation's totals next
        // to the warm-blind default's.
        (
            "placement_ablation",
            JsonValue::object(vec![
                ("earliest_slot_cold_starts", JsonValue::U64(auto.executor_report.cold_starts as u64)),
                ("cost_aware_cold_starts", JsonValue::U64(aware.executor_report.cold_starts as u64)),
                ("cost_aware_fingerprint", JsonValue::hex(aware.fingerprint)),
            ]),
        ),
    ]);
    append_entry(&args.out, "serve", entry).map_err(|e| format!("append: {e}"))?;
    println!("appended entry to {}", args.out.display());
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("serve_demo: {message}");
            ExitCode::FAILURE
        }
    }
}
