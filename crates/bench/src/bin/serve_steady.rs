//! Steady-state serve soak: long-run epoch throughput and bounded memory.
//!
//! Drives `adaparse::serve::run_service_instrumented` over a long
//! multi-tenant arrival mix on a fixed fleet and measures what the
//! per-epoch retirement machinery is for:
//!
//! * **Steady throughput** — epochs/second over the *first* decile of
//!   epochs vs the *last* decile. Without retirement every epoch rescans
//!   a schedule that grows with run age and the loop decays; with it the
//!   per-epoch cost is O(work in flight) and the last decile must hold at
//!   least `--steady-floor` (default 0.8) of the first.
//! * **Bounded memory** — the peak retained schedule rows and
//!   completed-task records at any boundary stay proportional to work in
//!   flight (each in-flight document owns at most two tasks), not to the
//!   number of epochs survived.
//! * **Bitwise invisibility** — the same traces with retirement *off*
//!   produce the identical fingerprint, per-tenant reports, and makespan;
//!   and the retirement-on run replays bit for bit.
//!
//! Appends a schema-versioned entry to `BENCH_serve_steady.json` at the
//! repo root.
//!
//! ```text
//! cargo run --release --bin serve_steady                # full soak entry
//! cargo run --release --bin serve_steady -- --smoke     # scaled-down CI run
//! cargo run --release --bin serve_steady -- --validate  # check the trajectory
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use adaparse::{
    run_service_instrumented, AdaParseConfig, CampaignBudget, DocArrival, ServeConfig, ServeReport,
    SoakStats, TenantSpec, TenantTrace, WorkloadSpec,
};
use bench::trajectory::{append_entry, unix_timestamp, validate_trajectory, JsonValue};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scicorpus::{generate_arrivals, ArrivalConfig, ArrivalPattern};

/// Counting wrapper over the system allocator: total allocations and the
/// high-water mark of live bytes (a deterministic-enough peak-RSS proxy
/// that needs no OS support).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            let live = LIVE_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed) + layout.size() as u64;
            PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

struct Args {
    seed: u64,
    scale: usize,
    nodes: usize,
    epoch_seconds: f64,
    steady_floor: f64,
    label: String,
    out: PathBuf,
    smoke: bool,
    validate: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 42,
        scale: 8,
        nodes: 4,
        epoch_seconds: 10.0,
        steady_floor: 0.8,
        label: "serve_steady".to_string(),
        out: PathBuf::from("BENCH_serve_steady.json"),
        smoke: false,
        validate: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--scale" => args.scale = value("--scale")?.parse().map_err(|e| format!("--scale: {e}"))?,
            "--nodes" => args.nodes = value("--nodes")?.parse().map_err(|e| format!("--nodes: {e}"))?,
            "--epoch-seconds" => {
                args.epoch_seconds =
                    value("--epoch-seconds")?.parse().map_err(|e| format!("--epoch-seconds: {e}"))?
            }
            "--steady-floor" => {
                args.steady_floor =
                    value("--steady-floor")?.parse().map_err(|e| format!("--steady-floor: {e}"))?
            }
            "--label" => args.label = value("--label")?,
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--smoke" => args.smoke = true,
            "--validate" => args.validate = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.scale == 0 || args.nodes == 0 || args.epoch_seconds <= 0.0 {
        return Err("--scale and --nodes must be positive, --epoch-seconds > 0".to_string());
    }
    Ok(args)
}

/// Fields every `BENCH_serve_steady.json` entry must carry (shared with
/// the CI `--validate` step).
const REQUIRED_FIELDS: &[&str] = &[
    "label",
    "seed",
    "scale",
    "smoke",
    "docs",
    "epochs",
    "epoch_seconds",
    "first_decile_epochs_per_sec",
    "last_decile_epochs_per_sec",
    "steady_ratio",
    "peak_retained_rows",
    "retained_bound",
    "total_rows",
    "retirement_bitwise",
    "fingerprint",
    "wall_seconds",
    "allocations",
    "peak_mb",
];

/// Zip seeded arrival timestamps with seeded improvement scores.
fn doc_arrivals(n: usize, seed: u64, rate: f64, pattern: ArrivalPattern) -> Vec<DocArrival> {
    let times =
        generate_arrivals(&ArrivalConfig { n_documents: n, seed, mean_rate_per_second: rate, pattern });
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    times
        .into_iter()
        .map(|arrival| DocArrival { at_seconds: arrival.at_seconds, score: rng.gen_range(0.0..1.0) })
        .collect()
}

/// The soak mix: a long steady tenant carrying most of the volume, a
/// diurnal tenant, and a budgeted bursty tenant, so the loop sees queue
/// churn, budget reconciliation, and admission pressure for the entire
/// run — while arrivals stretch far enough that the epoch count is in
/// the hundreds and the deciles mean something.
fn traces(args: &Args) -> Vec<TenantTrace> {
    let workload = WorkloadSpec { documents: 0, pages_per_doc: 8, mb_per_doc: 50.0 };
    let s = args.scale;
    vec![
        TenantTrace {
            spec: TenantSpec {
                name: "steady-volume".to_string(),
                alpha: 0.25,
                weight: 2.0,
                max_pending: 4096,
                workload,
                ..Default::default()
            },
            arrivals: doc_arrivals(300 * s, args.seed, 0.8, ArrivalPattern::Steady),
        },
        TenantTrace {
            spec: TenantSpec {
                name: "diurnal".to_string(),
                alpha: 0.15,
                weight: 1.0,
                max_pending: 4096,
                workload,
                ..Default::default()
            },
            arrivals: doc_arrivals(
                120 * s,
                args.seed ^ 0xD1A1,
                0.35,
                ArrivalPattern::Diurnal { period_seconds: 600.0 },
            ),
        },
        TenantTrace {
            spec: TenantSpec {
                name: "budgeted-bursty".to_string(),
                alpha: 0.35,
                budget: Some(CampaignBudget::seconds(4_000.0 * s as f64)),
                weight: 1.0,
                max_pending: 4096,
                workload,
                ..Default::default()
            },
            arrivals: doc_arrivals(
                90 * s,
                args.seed ^ 0xB357,
                0.25,
                ArrivalPattern::Bursty { burst_size: 4 * s },
            ),
        },
    ]
}

fn serve_config(args: &Args, retirement: bool) -> ServeConfig {
    ServeConfig {
        engine: AdaParseConfig::default(),
        epoch_seconds: args.epoch_seconds,
        nodes: args.nodes,
        retirement,
        ..Default::default()
    }
}

/// Epochs per wall-clock second over one decile of the run.
fn decile_epochs_per_sec(walls: &[f64], last: bool) -> f64 {
    let n = walls.len();
    let d = (n / 10).max(1);
    let slice = if last { &walls[n - d..] } else { &walls[..d] };
    let total: f64 = slice.iter().sum();
    if total <= 0.0 {
        f64::INFINITY
    } else {
        slice.len() as f64 / total
    }
}

fn completed(report: &ServeReport) -> usize {
    report.tenants.iter().map(|t| t.completed).sum()
}

/// The resident-row bound the soak asserts: each in-flight document owns
/// at most two schedule rows, and nothing older survives a boundary.
fn retained_bound(soak: &SoakStats) -> usize {
    2 * soak.peak_in_flight.max(1)
}

fn run() -> Result<(), String> {
    let mut args = parse_args()?;
    if args.validate {
        let entries = validate_trajectory(&args.out, "serve_steady", REQUIRED_FIELDS)?;
        println!("{}: valid ({entries} entries)", args.out.display());
        return Ok(());
    }
    if args.smoke {
        args.scale = args.scale.min(1);
    }

    let traces = traces(&args);
    let docs: usize = traces.iter().map(|t| t.arrivals.len()).sum();
    println!(
        "serve_steady: {docs} documents over {} tenants, seed {}, {} nodes, {}s epochs{}",
        traces.len(),
        args.seed,
        args.nodes,
        args.epoch_seconds,
        if args.smoke { " (smoke)" } else { "" }
    );

    // The soak run proper, with retirement on (the default).
    let alloc_before = ALLOCATIONS.load(Ordering::Relaxed);
    let wall = Instant::now();
    let (report, soak) = run_service_instrumented(&serve_config(&args, true), &traces);
    let soak_wall = wall.elapsed().as_secs_f64();
    let allocations = ALLOCATIONS.load(Ordering::Relaxed) - alloc_before;
    let peak_mb = PEAK_BYTES.load(Ordering::Relaxed) as f64 / (1024.0 * 1024.0);

    // Replay: the instrumented run is the same pure function.
    let (replay, _) = run_service_instrumented(&serve_config(&args, true), &traces);
    if report != replay {
        return Err("retirement-on serve run failed to replay bitwise".to_string());
    }

    // Retirement invisibility: the unretired run must agree on every
    // observable (the GPU-trace span lists differ structurally — they are
    // memory, not observables — so compare the report's observable parts).
    let (unretired, unretired_soak) = run_service_instrumented(&serve_config(&args, false), &traces);
    let retirement_bitwise = report.fingerprint == unretired.fingerprint
        && report.tenants == unretired.tenants
        && report.latency == unretired.latency
        && report.makespan_seconds.to_bits() == unretired.makespan_seconds.to_bits()
        && report.executor_report.tasks_completed == unretired.executor_report.tasks_completed
        && (0..report.executor_report.gpu_trace.gpus()).all(|gpu| {
            report.executor_report.gpu_trace.busy_seconds(gpu).to_bits()
                == unretired.executor_report.gpu_trace.busy_seconds(gpu).to_bits()
        });
    if !retirement_bitwise {
        return Err(format!(
            "retirement changed an observable (fingerprints {:#018x} vs {:#018x})",
            report.fingerprint, unretired.fingerprint
        ));
    }

    let first_eps = decile_epochs_per_sec(&soak.epoch_wall_seconds, false);
    let last_eps = decile_epochs_per_sec(&soak.epoch_wall_seconds, true);
    let steady_ratio = if first_eps.is_finite() && first_eps > 0.0 { last_eps / first_eps } else { 1.0 };
    let total_rows = report.executor_report.tasks_completed;
    let bound = retained_bound(&soak);

    println!(
        "soak: {} epochs in {soak_wall:.2}s wall, makespan {:.0}s sim, {} docs completed",
        report.epochs,
        report.makespan_seconds,
        completed(&report)
    );
    println!(
        "throughput: first decile {first_eps:.0} epochs/s, last decile {last_eps:.0} epochs/s \
         (steady ratio {steady_ratio:.3})"
    );
    println!(
        "memory: peak retained rows {} (bound {bound}, {} rows total over the run), \
         peak completed records {}, {} allocations, peak {peak_mb:.1} MiB",
        soak.peak_retained_rows, total_rows, soak.peak_retained_completed, allocations
    );
    println!(
        "retirement: bitwise invisible (fingerprint {:#018x}); unretired run retained up to {} rows",
        report.fingerprint, unretired_soak.peak_retained_rows
    );

    if soak.peak_retained_rows > bound {
        return Err(format!(
            "retained rows escaped the in-flight bound ({} > {bound})",
            soak.peak_retained_rows
        ));
    }
    if soak.peak_retained_completed > bound {
        return Err(format!(
            "retained completed records escaped the in-flight bound ({} > {bound})",
            soak.peak_retained_completed
        ));
    }
    // The decile ratio is a wall-clock measurement: assert it only on the
    // full soak, where hundreds of epochs smooth host noise away.
    if !args.smoke && steady_ratio < args.steady_floor {
        return Err(format!(
            "steady-state throughput decayed: last decile at {steady_ratio:.3} of the first \
             (floor {})",
            args.steady_floor
        ));
    }
    if !args.smoke && soak.peak_retained_rows * 4 > total_rows {
        return Err(format!(
            "the soak is too short to exercise retirement: peak retained rows {} vs {} total",
            soak.peak_retained_rows, total_rows
        ));
    }

    let entry = JsonValue::object(vec![
        ("timestamp", JsonValue::U64(unix_timestamp())),
        ("label", JsonValue::Str(args.label.clone())),
        ("seed", JsonValue::U64(args.seed)),
        ("scale", JsonValue::U64(args.scale as u64)),
        ("smoke", JsonValue::Bool(args.smoke)),
        ("docs", JsonValue::U64(docs as u64)),
        ("epochs", JsonValue::U64(report.epochs as u64)),
        ("epoch_seconds", JsonValue::F64(args.epoch_seconds)),
        ("first_decile_epochs_per_sec", JsonValue::F64(first_eps)),
        ("last_decile_epochs_per_sec", JsonValue::F64(last_eps)),
        ("steady_ratio", JsonValue::F64(steady_ratio)),
        ("peak_retained_rows", JsonValue::U64(soak.peak_retained_rows as u64)),
        ("retained_bound", JsonValue::U64(bound as u64)),
        ("peak_retained_completed", JsonValue::U64(soak.peak_retained_completed as u64)),
        ("unretired_peak_rows", JsonValue::U64(unretired_soak.peak_retained_rows as u64)),
        ("total_rows", JsonValue::U64(total_rows as u64)),
        ("max_task_busy_seconds", JsonValue::F64(soak.max_task_busy_seconds)),
        ("retirement_bitwise", JsonValue::Bool(retirement_bitwise)),
        ("fingerprint", JsonValue::hex(report.fingerprint)),
        ("wall_seconds", JsonValue::F64(soak_wall)),
        ("allocations", JsonValue::U64(allocations)),
        ("peak_mb", JsonValue::F64(peak_mb)),
    ]);
    append_entry(&args.out, "serve_steady", entry).map_err(|e| format!("append: {e}"))?;
    println!("appended entry to {}", args.out.display());
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("serve_steady: {message}");
            ExitCode::FAILURE
        }
    }
}
