//! The resource-scaling engine end to end:
//!
//! 1. one identical streaming-mode campaign at 1, 2, 4, and 8 workers with a
//!    bitwise determinism check (the streaming analogue of
//!    `pipeline_scaling`) — run twice, with and without the observed-cost
//!    budget ledger,
//! 2. the windowed-vs-global optimality gap for k ∈ {8, 64, 512} on the
//!    campaign's own improvement scores,
//! 3. a synthetic `ScalingController` run showing the hysteresis-damped
//!    allocation trace on the controller's wall-free virtual clock,
//! 4. an `hpcsim` node-affinity ablation: the same routed campaign with
//!    pair co-scheduling on vs off, and against a single hot node,
//! 5. a warm-pool ablation: the same synthetic two-model GPU corpus under
//!    per-node pool capacities 0 / 1 / ∞, printing warm-hit rate,
//!    evictions, and the makespan delta (capacity ∞ must strictly dominate
//!    capacity 0),
//! 6. the fully closed loop: `run_closed_loop` drives selection, fleet
//!    allocation, and placement *wavelessly* through one persistent
//!    `hpcsim::ExecutorSession` (slots, warm pools, and pair anchors
//!    persist across decision epochs; parse tasks depend on their extract
//!    partners), twice, asserting a bitwise-identical replay,
//! 7. the causal-vs-retro-fill ablation: the same closed loop under
//!    `CausalityMode::Causal` (every window admitted at the dispatch
//!    frontier as a release floor, partial-window observation) against the
//!    legacy `RetroFill` placement — asserting the causal run admits zero
//!    causality violations, the retro-fill run audits its own, the causal
//!    makespan bounds the retro-fill makespan from above (the price of
//!    causality), and both modes replay bitwise,
//! 8. a placement-policy ablation: the warm-heavy two-model corpus under
//!    capacity-1 pools with warm-blind `EarliestSlot` vs warm-aware
//!    `CostAware` placement (cost-aware must pay no more cold starts and
//!    no more makespan), then a forced cold-start herd on one shared
//!    model-load channel vs unlimited — the serialized herd must accrue
//!    `herd_queue_seconds > 0` while the unlimited run accrues none.
//! 9. a cascade-routing ablation: the same streaming campaign as a binary
//!    (pair-frontier) cascade — asserting it reproduces the section-1
//!    campaign bitwise — then the full k = 4 frontier by document and by
//!    page, printing upgrades, per-class ledger dollars, and delegated
//!    pages (the k = 4 arm must never upgrade fewer documents than the
//!    binary arm at the same α).
//!
//! Run with: `cargo run --release --bin streaming_scaling`
//! (`ADAPARSE_BENCH_DOCS` overrides the corpus size.)

use std::time::Instant;

use adaparse::budget::windowed_optimality_gap;
use adaparse::{
    planned_costs, run_closed_loop, tasks_for_routing_with_affinity, AdaParseConfig, AdaParseEngine,
    CampaignBudget, CampaignPipeline, CascadeConfig, ControllerConfig, PipelineConfig, ScalingController,
    SimLoopConfig, StageSample, WaveStats, WorkloadSpec,
};
use bench::bench_doc_count;
use hpcsim::{CausalityMode, ClusterConfig, ExecutorConfig, LustreModel, PlacementPolicy, WorkflowExecutor};
use scicorpus::generator::{DocumentGenerator, GeneratorConfig};

fn main() {
    let n_docs = bench_doc_count(240).max(200);
    let docs = DocumentGenerator::new(GeneratorConfig {
        n_documents: n_docs,
        seed: 42,
        min_pages: 1,
        max_pages: 3,
        scanned_fraction: 0.3,
        ..Default::default()
    })
    .generate_many(n_docs);
    let mut engine = AdaParseEngine::new(AdaParseConfig { alpha: 0.1, ..Default::default() });
    engine.train_on_corpus(&docs[..20.min(n_docs)], 5);

    // Planned per-document costs, for sizing budgets below.
    let (planned_cheap, planned_expensive) = planned_costs(engine.config(), 2);

    // 1. Streaming-mode determinism across worker counts — plain, then with
    // the observed-cost budget ledger closing the cost loop.
    let budget = CampaignBudget {
        total_seconds: n_docs as f64 * planned_cheap
            + 0.08 * n_docs as f64 * (planned_expensive - planned_cheap),
        observed_feedback: true,
        prior_weight: 8.0,
    };
    let mut baseline_result = None;
    for (label, with_budget) in [("planned costs only", false), ("observed-cost ledger", true)] {
        println!("Streaming campaign (window = 64, {label}) — {n_docs} documents");
        println!("{:>8} {:>12}  result", "workers", "wall-clock");
        let mut reference = None;
        for workers in [1usize, 2, 4, 8] {
            let mut config = PipelineConfig::streaming(workers, 64);
            if with_budget {
                config = config.with_budget(budget);
            }
            let pipeline = CampaignPipeline::new(config);
            let start = Instant::now();
            let result = pipeline.run(&engine, &docs, 7);
            let elapsed = start.elapsed().as_secs_f64();
            let identical = match &reference {
                None => {
                    reference = Some(result);
                    true
                }
                Some(expected) => *expected == result,
            };
            println!(
                "{workers:>8} {:>10.3} s  {}",
                elapsed,
                if identical { "identical to 1-worker run" } else { "DIVERGED (bug!)" }
            );
            assert!(identical, "streaming output diverged at {workers} workers ({label})");
        }
        if !with_budget {
            baseline_result = reference;
        }
        println!();
    }

    // 2. Windowed-vs-global optimality gap on the campaign's real scores.
    let routed = baseline_result.as_ref().expect("campaign ran").routed.clone();
    let scores: Vec<f64> = routed.iter().map(|r| r.predicted_improvement).collect();
    println!("Windowed-vs-global optimality gap (α = 0.1)");
    for window in [8usize, 64, 512] {
        let gap = windowed_optimality_gap(&scores, 0.1, window);
        println!("  k = {window:>4}: {:>6.3} %", 100.0 * gap);
    }

    // 3. Controller trace on a synthetic parse-heavy → balanced workload.
    // The timestamps come from the controller's virtual clock (observed wave
    // seconds), never from the host clock.
    println!("\nScalingController trace (8 workers, parse-heavy start)");
    let mut controller = ScalingController::new(ControllerConfig::for_workers(8));
    for wave in 0..12 {
        let parse_seconds = if wave < 6 { 3.0 } else { 1.0 };
        let allocation = controller.observe(&WaveStats {
            wave_index: wave,
            extract: StageSample { busy_seconds: 1.0, items: 64 },
            parse: StageSample { busy_seconds: parse_seconds, items: 64 },
            queue_depth: 64 * (12 - wave),
        });
        println!(
            "  wave {wave:>2} (t = {:>5.1} s): extract {} / parse {} workers",
            controller.clock_seconds(),
            allocation.extract_workers,
            allocation.parse_workers
        );
    }
    assert!(!controller.history().is_empty(), "the parse-heavy phase must move workers");

    // 4. Node-affinity ablation in hpcsim. Large inputs over a modest NIC
    // make locality matter, and disabling prefetch keeps the off-node
    // re-fetch on the critical path (with prefetch it hides under compute).
    let workload = WorkloadSpec { documents: n_docs, pages_per_doc: 10, mb_per_doc: 100.0 };
    let cluster = ClusterConfig::polaris(4);
    let fs = LustreModel { per_node_bandwidth_mb_s: 200.0, ..Default::default() };
    let paired_executor = WorkflowExecutor::new(ExecutorConfig { prefetch: false, ..Default::default() });
    let unpaired_executor = WorkflowExecutor::new(ExecutorConfig {
        prefetch: false,
        co_schedule_pairs: false,
        ..Default::default()
    });
    let planned = controller.plan_nodes(cluster.nodes);
    let spread = tasks_for_routing_with_affinity(engine.config(), &routed, &workload, &planned);
    let hot = tasks_for_routing_with_affinity(
        engine.config(),
        &routed,
        &workload,
        &adaparse::NodePlan { extract_nodes: 1, parse_nodes: 1 },
    );
    let paired_report = paired_executor.run(&spread, &cluster, &fs);
    let unpaired_report = unpaired_executor.run(&spread, &cluster, &fs);
    let hot_report = paired_executor.run(&hot, &cluster, &fs);
    println!("\nNode-affinity ablation on {} nodes ({:?})", cluster.nodes, planned);
    for (label, report) in [
        ("controller plan + co-scheduled pairs", &paired_report),
        ("controller plan, pairs ignored", &unpaired_report),
        ("single hot node", &hot_report),
    ] {
        println!(
            "  {label:<37} makespan {:>8.2} s, {:>3} off-node tasks, {:>3} pairs co-located, {:.2} s penalty",
            report.makespan_seconds,
            report.non_local_tasks,
            report.co_located_pairs,
            report.locality_penalty_seconds
        );
    }
    assert!(paired_report.co_located_pairs > 0, "co-scheduling must reunite extract+parse pairs");
    assert!(
        paired_report.locality_penalty_seconds < unpaired_report.locality_penalty_seconds,
        "co-scheduling must reduce the locality penalty ({} vs {})",
        paired_report.locality_penalty_seconds,
        unpaired_report.locality_penalty_seconds
    );
    assert!(
        paired_report.makespan_seconds <= hot_report.makespan_seconds + 1e-9,
        "the controller's node plan must not lose to a hot-spotted one"
    );

    // 5. Warm-pool ablation: a synthetic two-model GPU corpus (alternating
    // Nougat/Marker tasks with real cold starts) under per-node pool
    // capacities 0, 1, and ∞. Unbounded pools load each model roughly once
    // per node; capacity 1 thrashes between the two models; capacity 0
    // re-pays every cold start.
    let ablation_tasks: Vec<hpcsim::Task> = (0..n_docs as u64)
        .map(|i| {
            hpcsim::Task::new(i, hpcsim::SlotKind::Gpu, 2.0)
                .with_input_mb(5.0)
                .with_cold_start(if i % 2 == 0 { 20.0 } else { 15.0 })
                .with_label(if i % 2 == 0 { "Nougat" } else { "Marker" })
        })
        .collect();
    let pool_cluster = ClusterConfig::polaris(2);
    println!("\nWarm-pool ablation ({n_docs} two-model GPU tasks on 2 nodes)");
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "capacity", "hits", "misses", "evictions", "makespan", "delta"
    );
    let mut by_capacity = Vec::new();
    for (label, capacity) in [("0", Some(0)), ("1", Some(1)), ("inf", None)] {
        let executor =
            WorkflowExecutor::new(ExecutorConfig { warm_pool_capacity: capacity, ..Default::default() });
        let report = executor.run(&ablation_tasks, &pool_cluster, &LustreModel::default());
        by_capacity.push((label, report));
    }
    let cold_makespan = by_capacity[0].1.makespan_seconds;
    for (label, report) in &by_capacity {
        let total = report.warm_hits + report.cold_starts;
        println!(
            "{label:>10} {:>10} {:>10} {:>10} {:>10.1} s {:>9.1} %",
            report.warm_hits,
            report.cold_starts,
            report.warm_evictions,
            report.makespan_seconds,
            100.0 * (report.makespan_seconds - cold_makespan) / cold_makespan.max(f64::MIN_POSITIVE),
        );
        assert_eq!(total, n_docs, "every task either hits the pool or pays its cold start");
    }
    let unbounded = &by_capacity[2].1;
    assert!(
        unbounded.makespan_seconds < cold_makespan,
        "capacity-∞ must strictly dominate capacity-0 ({} vs {cold_makespan})",
        unbounded.makespan_seconds
    );
    assert!(unbounded.warm_hits > by_capacity[0].1.warm_hits, "unbounded pools must hit");
    assert_eq!(unbounded.warm_evictions, 0, "unbounded pools never evict");
    assert!(
        by_capacity[1].1.makespan_seconds <= cold_makespan
            && by_capacity[1].1.makespan_seconds >= unbounded.makespan_seconds,
        "capacity 1 must land between the extremes"
    );

    // 6. The fully closed loop: simulated clock → controller → fleets →
    // observed costs → ledger, end to end inside hpcsim — wavelessly, on
    // one persistent executor session.
    let sim_workload = WorkloadSpec { documents: n_docs, pages_per_doc: 8, mb_per_doc: 20.0 };
    // First without a budget: the open-loop-α waveless run, where the
    // persistent session's overlap and cross-epoch warm reuse are visible.
    let sim = SimLoopConfig {
        window: 64,
        nodes: 4,
        controller: ControllerConfig { total_workers: 8, patience: 1, ..Default::default() },
        ..Default::default()
    };
    let report = run_closed_loop(engine.config(), &scores, &sim_workload, &sim);
    println!(
        "\nWaveless closed-loop simulated campaign ({} epochs of {} docs on 4 nodes)",
        report.waves.len(),
        64
    );
    println!(
        "{:>6} {:>16} {:>15} {:>7} {:>9} {:>11} {:>9}",
        "epoch", "sim time [s]", "extract/parse", "eff α", "selected", "co-located", "warm hits"
    );
    for wave in &report.waves {
        println!(
            "{:>6} {:>7.1} → {:>6.1} {:>11}/{:<3} {:>7.3} {:>9} {:>11} {:>9}",
            wave.wave_index,
            wave.started_at_seconds,
            wave.finished_at_seconds,
            wave.allocation.extract_workers,
            wave.allocation.parse_workers,
            wave.effective_alpha,
            wave.selected,
            wave.co_located_pairs,
            wave.warm_hits
        );
    }
    println!(
        "  {} docs, {} high-quality ({:.1} %), {:.1} s simulated makespan, {} pairs co-located",
        report.documents,
        report.selected,
        100.0 * report.selected_fraction(),
        report.makespan_seconds,
        report.co_located_pairs
    );
    let executor_report = &report.executor_report;
    println!(
        "  critical path {:.1} s, queue wait {:.1} s, {} warm hits / {} cold starts, epochs overlap: {}",
        executor_report.critical_path_seconds,
        executor_report.queue_wait_seconds,
        executor_report.warm_hits,
        executor_report.cold_starts,
        report.epochs_overlap()
    );
    assert!(report.co_located_pairs > 0, "the closed loop must co-locate pairs");
    assert!(report.epochs_overlap(), "the waveless loop must overlap decision epochs");
    assert!(executor_report.warm_hits > 0, "warm pools must persist across epochs");
    let replay = run_closed_loop(engine.config(), &scores, &sim_workload, &sim);
    assert_eq!(report, replay, "a closed-loop run must replay bitwise");
    println!("  replay: identical (closed loop is a pure function of its inputs)");

    // Then with the observed-cost budget ledger in the loop: the plan
    // affords exactly the configured α = 0.1, but simulated documents also
    // pay stage-in, cold starts, and contention, so measured costs run hot
    // and the ledger tightens selection.
    let (sim_cheap_s, sim_expensive_s) = planned_costs(engine.config(), sim_workload.pages_per_doc);
    let budgeted_sim = SimLoopConfig {
        total_budget_seconds: Some(
            n_docs as f64 * sim_cheap_s + 0.1 * n_docs as f64 * (sim_expensive_s - sim_cheap_s),
        ),
        prior_weight: 16.0,
        ..sim
    };
    let budgeted = run_closed_loop(engine.config(), &scores, &sim_workload, &budgeted_sim);
    println!(
        "  with budget ledger: {} high-quality ({:.1} %), α trace {}",
        budgeted.selected,
        100.0 * budgeted.selected_fraction(),
        budgeted.waves.iter().map(|w| format!("{:.3}", w.effective_alpha)).collect::<Vec<_>>().join(" → ")
    );
    if let Some(observed) = &budgeted.final_observed {
        println!(
            "  observed cost divergence: cheap ×{:.2}, expensive ×{:.2} over plan",
            observed.cheap_divergence(),
            observed.expensive_divergence()
        );
    }
    assert!(
        budgeted.selected < report.selected,
        "observed overruns must tighten selection ({} vs {})",
        budgeted.selected,
        report.selected
    );
    let budgeted_replay = run_closed_loop(engine.config(), &scores, &sim_workload, &budgeted_sim);
    assert_eq!(budgeted, budgeted_replay, "the budgeted closed loop must replay bitwise too");

    // 7. Causal vs retro-fill: the same campaign with decision causality
    // enforced. Each window is admitted at the session's dispatch frontier
    // (its release floor), the effective α only ingests observations that
    // exist at the decision time, and no task may start before its
    // window's decision — so the causal makespan is an achievable
    // schedule, bounding the optimistic retro-fill one from above.
    let causal_sim = SimLoopConfig {
        executor: ExecutorConfig { causality: CausalityMode::Causal, ..Default::default() },
        ..sim
    };
    let causal = run_closed_loop(engine.config(), &scores, &sim_workload, &causal_sim);
    println!("\nCausal-vs-retro-fill ablation (same corpus, same loop)");
    println!(
        "{:>10} {:>12} {:>14} {:>16} {:>10}",
        "mode", "makespan", "retro-filled", "decision lag", "overlap"
    );
    for (label, run) in [("retro-fill", &report), ("causal", &causal)] {
        println!(
            "{label:>10} {:>10.1} s {:>14} {:>14.1} s {:>10}",
            run.makespan_seconds,
            run.executor_report.retro_filled_tasks,
            run.executor_report.decision_lag_seconds,
            run.epochs_overlap()
        );
    }
    let causality_price =
        100.0 * (causal.makespan_seconds - report.makespan_seconds) / report.makespan_seconds;
    println!("  price of causality: +{causality_price:.2} % makespan");
    assert_eq!(
        causal.executor_report.retro_filled_tasks, 0,
        "causal mode must admit zero causality violations"
    );
    assert!(
        report.executor_report.retro_filled_tasks > 0,
        "the overlapping retro-fill loop must audit its violations"
    );
    assert!(
        causal.makespan_seconds >= report.makespan_seconds - 1e-9,
        "causal makespan must bound retro-fill from above ({} vs {})",
        causal.makespan_seconds,
        report.makespan_seconds
    );
    assert!(causal.epochs_overlap(), "causal admission must still overlap epochs, not barrier");
    for wave in &causal.waves {
        assert!(wave.started_at_seconds >= wave.decided_at_seconds, "no epoch precedes its decision");
    }
    let causal_replay = run_closed_loop(engine.config(), &scores, &sim_workload, &causal_sim);
    assert_eq!(causal, causal_replay, "the causal closed loop must replay bitwise");
    println!("  replay: identical in both modes");

    // 8. Placement-policy ablation. Capacity-1 pools on the alternating
    // two-model corpus make residency the whole game: warm-blind
    // EarliestSlot sprays Nougat and Marker over both nodes and thrashes
    // the pools, while CostAware's completion-time ranking (free-at +
    // cold-if-miss + locality) segregates the models onto the nodes that
    // already hold them.
    println!("\nPlacement-policy ablation ({n_docs} two-model GPU tasks, capacity-1 pools, 2 nodes)");
    println!("{:>15} {:>10} {:>10} {:>10} {:>12}", "policy", "hits", "misses", "evictions", "makespan");
    let mut by_policy = Vec::new();
    for (label, placement) in
        [("earliest-slot", PlacementPolicy::EarliestSlot), ("cost-aware", PlacementPolicy::CostAware)]
    {
        let executor = WorkflowExecutor::new(ExecutorConfig {
            warm_pool_capacity: Some(1),
            placement,
            ..Default::default()
        });
        let report = executor.run(&ablation_tasks, &pool_cluster, &LustreModel::default());
        println!(
            "{label:>15} {:>10} {:>10} {:>10} {:>10.1} s",
            report.warm_hits, report.cold_starts, report.warm_evictions, report.makespan_seconds
        );
        by_policy.push(report);
    }
    let (blind, aware) = (&by_policy[0], &by_policy[1]);
    assert!(
        aware.cold_starts <= blind.cold_starts,
        "warm-aware placement must not pay more cold starts ({} vs {})",
        aware.cold_starts,
        blind.cold_starts
    );
    assert!(
        aware.makespan_seconds <= blind.makespan_seconds + 1e-9,
        "warm-aware placement must not lengthen the warm-heavy corpus ({} vs {})",
        aware.makespan_seconds,
        blind.makespan_seconds
    );

    // Then the forced cold-start herd: warm starts off, so every task pays
    // its model load. One shared load channel serializes the herd;
    // unlimited channels (the legacy default) stream every load in
    // parallel and accrue zero herd wait.
    let herd_executor = WorkflowExecutor::new(ExecutorConfig { warm_start: false, ..Default::default() });
    println!("\nModel-load herd ablation (same corpus, warm starts off)");
    println!("{:>10} {:>12} {:>14} {:>12}", "channels", "makespan", "herd queue", "peak loads");
    let mut herd_reports = Vec::new();
    for (label, channels) in [("inf", 0usize), ("1", 1)] {
        let fs = LustreModel { model_load_channels: channels, ..Default::default() };
        let report = herd_executor.run(&ablation_tasks, &pool_cluster, &fs);
        println!(
            "{label:>10} {:>10.1} s {:>12.1} s {:>12}",
            report.makespan_seconds, report.herd_queue_seconds, report.concurrent_cold_starts_peak
        );
        herd_reports.push(report);
    }
    let (unserialized, serialized) = (&herd_reports[0], &herd_reports[1]);
    assert_eq!(
        unserialized.herd_queue_seconds.to_bits(),
        0.0f64.to_bits(),
        "unlimited channels must pay no herd wait"
    );
    assert!(
        serialized.herd_queue_seconds > 0.0,
        "one channel under a forced cold-start herd must queue loads"
    );
    assert!(serialized.concurrent_cold_starts_peak <= 1, "one channel caps loads in flight at one");
    assert!(
        unserialized.concurrent_cold_starts_peak > 1,
        "the unserialized herd must actually overlap loads"
    );
    assert!(
        serialized.makespan_seconds >= unserialized.makespan_seconds - 1e-9,
        "serializing the herd cannot shorten the campaign ({} vs {})",
        serialized.makespan_seconds,
        unserialized.makespan_seconds
    );

    // 9. Cascade-routing ablation on the same corpus: the binary cascade is
    // the pinned degenerate case (bitwise equal to the section-1 streaming
    // campaign), the k = 4 frontier spreads the same α across cheaper
    // upgrades, and by-page delegation sends only the hardest pages.
    let cascade_pipeline = CampaignPipeline::new(PipelineConfig::streaming(2, 64));
    let binary_cascade =
        cascade_pipeline.run_cascade(&engine, &docs, &CascadeConfig::binary(engine.config(), 64), 7);
    assert_eq!(
        &binary_cascade.result,
        baseline_result.as_ref().expect("campaign ran"),
        "the binary cascade must reproduce the streaming campaign bitwise"
    );
    let k4 = cascade_pipeline.run_cascade(&engine, &docs, &CascadeConfig::full(engine.config(), 64), 7);
    let by_page =
        cascade_pipeline.run_cascade(&engine, &docs, &CascadeConfig::full(engine.config(), 64).by_page(), 7);
    println!("\nCascade-routing ablation (α = 0.1, window = 64, {n_docs} documents)");
    println!("{:>12} {:>10} {:>16} {:>14}", "frontier", "upgraded", "delegated pages", "ledger");
    for (label, run) in [("binary", &binary_cascade), ("k4", &k4), ("k4 by-page", &by_page)] {
        println!(
            "{label:>12} {:>10} {:>11}/{:<4} {:>12.1} $",
            run.choices.iter().filter(|c| c.upgrade.is_some()).count(),
            run.pages_delegated,
            run.pages_total,
            run.dollars.total()
        );
    }
    let upgraded = |r: &adaparse::CascadeReport| r.choices.iter().filter(|c| c.is_upgraded()).count();
    assert!(
        upgraded(&k4) >= upgraded(&binary_cascade),
        "the k=4 frontier must not shrink upgrade coverage ({} vs {})",
        upgraded(&k4),
        upgraded(&binary_cascade)
    );
    assert!(by_page.pages_delegated > 0, "by-page routing must actually delegate pages");
    assert!(
        by_page.pages_delegated < by_page.pages_total,
        "by-page routing must not delegate the whole corpus"
    );
    assert!(
        by_page.dollars.total() <= k4.dollars.total() + 1e-9,
        "delegating pages cannot cost more than whole-document upgrades ({} vs {})",
        by_page.dollars.total(),
        k4.dollars.total()
    );
    let cascade_replay =
        cascade_pipeline.run_cascade(&engine, &docs, &CascadeConfig::full(engine.config(), 64), 7);
    assert_eq!(k4, cascade_replay, "the k=4 cascade must replay bitwise");
    println!("  replay: identical (cascade routing is a pure function of its inputs)");
}
