//! The resource-scaling engine end to end:
//!
//! 1. one identical streaming-mode campaign at 1, 2, 4, and 8 workers with a
//!    bitwise determinism check (the streaming analogue of
//!    `pipeline_scaling`),
//! 2. the windowed-vs-global optimality gap for k ∈ {8, 64, 512} on the
//!    campaign's own improvement scores,
//! 3. a synthetic `ScalingController` run showing the hysteresis-damped
//!    allocation trace,
//! 4. an `hpcsim` node-affinity ablation: the same routed campaign with
//!    locality-aware task placement vs a single hot node.
//!
//! Run with: `cargo run --release --bin streaming_scaling`
//! (`ADAPARSE_BENCH_DOCS` overrides the corpus size.)

use std::time::Instant;

use adaparse::budget::windowed_optimality_gap;
use adaparse::{
    tasks_for_routing_with_affinity, AdaParseConfig, AdaParseEngine, CampaignPipeline, ControllerConfig,
    PipelineConfig, ScalingController, StageSample, WaveStats, WorkloadSpec,
};
use bench::bench_doc_count;
use hpcsim::{ClusterConfig, ExecutorConfig, LustreModel, WorkflowExecutor};
use scicorpus::generator::{DocumentGenerator, GeneratorConfig};

fn main() {
    let n_docs = bench_doc_count(240).max(200);
    let docs = DocumentGenerator::new(GeneratorConfig {
        n_documents: n_docs,
        seed: 42,
        min_pages: 1,
        max_pages: 3,
        scanned_fraction: 0.3,
        ..Default::default()
    })
    .generate_many(n_docs);
    let mut engine = AdaParseEngine::new(AdaParseConfig { alpha: 0.1, ..Default::default() });
    engine.train_on_corpus(&docs[..20.min(n_docs)], 5);

    // 1. Streaming-mode determinism across worker counts.
    println!("Streaming campaign (window = 64) — {n_docs} documents");
    println!("{:>8} {:>12}  result", "workers", "wall-clock");
    let mut baseline_result = None;
    for workers in [1usize, 2, 4, 8] {
        let pipeline = CampaignPipeline::new(PipelineConfig::streaming(workers, 64));
        let start = Instant::now();
        let result = pipeline.run(&engine, &docs, 7);
        let elapsed = start.elapsed().as_secs_f64();
        let identical = match &baseline_result {
            None => {
                baseline_result = Some(result);
                true
            }
            Some(expected) => *expected == result,
        };
        println!(
            "{workers:>8} {:>10.3} s  {}",
            elapsed,
            if identical { "identical to 1-worker run" } else { "DIVERGED (bug!)" }
        );
        assert!(identical, "streaming output diverged at {workers} workers");
    }

    // 2. Windowed-vs-global optimality gap on the campaign's real scores.
    let routed = baseline_result.as_ref().expect("campaign ran").routed.clone();
    let scores: Vec<f64> = routed.iter().map(|r| r.predicted_improvement).collect();
    println!("\nWindowed-vs-global optimality gap (α = 0.1)");
    for window in [8usize, 64, 512] {
        let gap = windowed_optimality_gap(&scores, 0.1, window);
        println!("  k = {window:>4}: {:>6.3} %", 100.0 * gap);
    }

    // 3. Controller trace on a synthetic parse-heavy → balanced workload.
    println!("\nScalingController trace (8 workers, parse-heavy start)");
    let mut controller = ScalingController::new(ControllerConfig::for_workers(8));
    for wave in 0..12 {
        let parse_seconds = if wave < 6 { 3.0 } else { 1.0 };
        let allocation = controller.observe(&WaveStats {
            wave_index: wave,
            extract: StageSample { busy_seconds: 1.0, items: 64 },
            parse: StageSample { busy_seconds: parse_seconds, items: 64 },
            queue_depth: 64 * (12 - wave),
        });
        println!(
            "  wave {wave:>2}: extract {} / parse {} workers",
            allocation.extract_workers, allocation.parse_workers
        );
    }
    assert!(!controller.history().is_empty(), "the parse-heavy phase must move workers");

    // 4. Node-affinity ablation in hpcsim. Large inputs over a modest NIC
    // make locality matter, and disabling prefetch keeps the off-node
    // re-fetch on the critical path (with prefetch it hides under compute).
    let workload = WorkloadSpec { documents: n_docs, pages_per_doc: 10, mb_per_doc: 100.0 };
    let cluster = ClusterConfig::polaris(4);
    let fs = LustreModel { per_node_bandwidth_mb_s: 200.0, ..Default::default() };
    let executor = WorkflowExecutor::new(ExecutorConfig { prefetch: false, ..Default::default() });
    let planned = controller.plan_nodes(cluster.nodes);
    let spread = tasks_for_routing_with_affinity(engine.config(), &routed, &workload, &planned);
    let hot = tasks_for_routing_with_affinity(
        engine.config(),
        &routed,
        &workload,
        &adaparse::NodePlan { extract_nodes: 1, parse_nodes: 1 },
    );
    let spread_report = executor.run(&spread, &cluster, &fs);
    let hot_report = executor.run(&hot, &cluster, &fs);
    println!("\nNode-affinity ablation on {} nodes ({:?})", cluster.nodes, planned);
    println!(
        "  controller plan: makespan {:>8.2} s, {} off-node tasks, {:.2} s penalty",
        spread_report.makespan_seconds, spread_report.non_local_tasks, spread_report.locality_penalty_seconds
    );
    println!(
        "  single hot node: makespan {:>8.2} s, {} off-node tasks, {:.2} s penalty",
        hot_report.makespan_seconds, hot_report.non_local_tasks, hot_report.locality_penalty_seconds
    );
    assert!(
        spread_report.makespan_seconds <= hot_report.makespan_seconds + 1e-9,
        "the controller's node plan must not lose to a hot-spotted one"
    );
}
