//! Table 1: accuracy on born-digital PDFs (coverage, BLEU, ROUGE, CAR, AT)
//! for every fixed parser and AdaParse (α = 5 %).
//!
//! Usage: `cargo run -p bench --bin table1_born_digital --release`
//! Set `ADAPARSE_BENCH_DOCS` to scale the corpus (paper: 1000 test documents).

use bench::{bench_doc_count, format_table, run_quality_table, Regime};

fn main() {
    let docs = bench_doc_count(120);
    let rows = run_quality_table(Regime::BornDigital, docs, 1001);
    print!("{}", format_table(&format!("Table 1 — born-digital PDFs (n = {docs})"), &rows));
}
