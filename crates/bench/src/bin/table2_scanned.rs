//! Table 2: accuracy under simulated scan degradation (15 % of documents get
//! random rotation, contrast changes, blur and compression).
//!
//! Usage: `cargo run -p bench --bin table2_scanned --release`

use bench::{bench_doc_count, format_table, run_quality_table, Regime};

fn main() {
    let docs = bench_doc_count(120);
    let rows = run_quality_table(Regime::SimulatedScan, docs, 1002);
    print!("{}", format_table(&format!("Table 2 — simulated scanned PDFs (n = {docs})"), &rows));
}
