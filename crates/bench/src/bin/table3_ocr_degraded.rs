//! Table 3: accuracy when 15 % of embedded text layers are replaced with
//! simulated OCR output.
//!
//! Usage: `cargo run -p bench --bin table3_ocr_degraded --release`

use bench::{bench_doc_count, format_table, run_quality_table, Regime};

fn main() {
    let docs = bench_doc_count(120);
    let rows = run_quality_table(Regime::OcrDegradedText, docs, 1003);
    print!("{}", format_table(&format!("Table 3 — OCR-degraded text layers (n = {docs})"), &rows));
}
