//! Table 4: comparison of prediction models for parser selection (CLS III
//! text regressors ± DPO, CLS II title/metadata encoders, CLS I metadata
//! SVCs, and the reference selections).
//!
//! Usage: `cargo run -p bench --bin table4_models --release`

use bench::{bench_doc_count, benchmark_corpus};
use parsersim::evaluate::evaluate_corpus;
use prefstudy::{PreferenceStudy, StudyConfig};
use selector::cls3::ParserPreference;
use selector::dataset::AccuracyDataset;
use selector::modelzoo;

fn main() {
    let n = bench_doc_count(80);
    let corpus = benchmark_corpus(n, 44);
    let evaluations = evaluate_corpus(corpus.documents(), 55);
    let dataset = AccuracyDataset::from_evaluations(corpus.documents(), &evaluations, 0.7);

    // Preference pairs (train split of the simulated study) feed the DPO row.
    let study = PreferenceStudy::collect(
        &evaluations,
        &StudyConfig { target_preferences: 712, ..Default::default() },
    );
    let preferences: Vec<ParserPreference> = study
        .train()
        .iter()
        .filter_map(|record| {
            let preferred = record.preferred()?;
            let rejected = record.rejected()?;
            let eval = evaluations.iter().find(|e| e.doc_id.0 == record.doc_id)?;
            Some(ParserPreference {
                preferred,
                preferred_text: eval.for_parser(preferred)?.output.text.clone(),
                rejected,
                rejected_text: eval.for_parser(rejected)?.output.text.clone(),
            })
        })
        .collect();

    println!("Table 4 — prediction models (n = {n} documents, {} preference pairs)", preferences.len());
    println!("{:<34} {:>7} {:>7} {:>7} {:>7}", "Features (Model)", "BLEU", "ROUGE", "CAR", "ACC");
    for row in modelzoo::evaluate_all(&dataset, &evaluations, &preferences, 7) {
        println!(
            "{:<34} {:>7.1} {:>7.1} {:>7.1} {:>7.1}",
            row.name,
            100.0 * row.bleu,
            100.0 * row.rouge,
            100.0 * row.car,
            100.0 * row.selection_accuracy
        );
    }
}
