//! §5.1 throughput claims: single-node throughput of every parser and both
//! AdaParse variants, plus the headline ratios (PyMuPDF ≈ 135× Nougat,
//! ≈ 13× pypdf; AdaParse (LLM) ≈ 17× Nougat).
//!
//! Usage: `cargo run -p bench --bin throughput_ratios --release`

use adaparse::{AdaParseConfig, AdaParseEngine, Variant};
use parsersim::cost::{CostModel, NodeSpec};
use parsersim::ParserKind;

fn main() {
    let node = NodeSpec::default();
    let pages = 10.0;
    println!("Single-node throughput (PDFs/s, {}-page documents, Polaris-like node)", pages as usize);
    let mut rates = std::collections::BTreeMap::new();
    for kind in ParserKind::ALL {
        let rate = CostModel::for_parser(kind).node_throughput(&node, pages);
        rates.insert(kind.name().to_string(), rate);
        println!("  {:<14} {:>9.2}", kind.name(), rate);
    }
    for variant in [Variant::FastText, Variant::Llm] {
        let engine = AdaParseEngine::new(AdaParseConfig { variant, alpha: 0.05, ..Default::default() });
        let rate = engine.node_throughput(&node, pages);
        rates.insert(variant.name().to_string(), rate);
        println!("  {:<14} {:>9.2}", variant.name(), rate);
    }
    let ratio = |a: &str, b: &str| rates.get(a).unwrap_or(&0.0) / rates.get(b).unwrap_or(&1.0);
    println!();
    println!("Headline ratios (paper values in parentheses):");
    println!("  PyMuPDF / Nougat        = {:>7.1}x   (135x)", ratio("PyMuPDF", "Nougat"));
    println!("  PyMuPDF / pypdf         = {:>7.1}x   (13x)", ratio("PyMuPDF", "pypdf"));
    println!("  AdaParse (LLM) / Nougat = {:>7.1}x   (17x)", ratio("AdaParse (LLM)", "Nougat"));
    println!("  AdaParse (FT) / Nougat  = {:>7.1}x", ratio("AdaParse (FT)", "Nougat"));
}
