//! Shared harness code behind the benchmark binaries.
//!
//! Every table and figure of the paper has a dedicated binary in `src/bin/`;
//! they all build on the helpers here: corpus construction, the three
//! evaluation regimes (born-digital, simulated scans, OCR-degraded text
//! layers), table formatting, and an environment-variable override for the
//! corpus size (`ADAPARSE_BENCH_DOCS`) so CI runs stay fast while full runs
//! approach the paper's scale.

pub mod trajectory;

use adaparse::{AdaParseConfig, AdaParseEngine};
use docmodel::document::Document;
use parsersim::evaluate::{evaluate_corpus, DocumentEvaluation};
use parsersim::ParserKind;
use scicorpus::augment::{augment_image_layers, augment_text_layers, AugmentConfig};
use scicorpus::generator::GeneratorConfig;
use scicorpus::Corpus;
use textmetrics::accepted::{AcceptedTokens, DEFAULT_ACCEPTANCE_THRESHOLD};

/// Evaluation regime of Tables 1–3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// Table 1: unmodified born-digital documents.
    BornDigital,
    /// Table 2: 15 % of documents with degraded image layers.
    SimulatedScan,
    /// Table 3: 15 % of documents with OCR-replaced text layers.
    OcrDegradedText,
}

impl Regime {
    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Regime::BornDigital => "born-digital",
            Regime::SimulatedScan => "simulated scans",
            Regime::OcrDegradedText => "OCR-degraded text layers",
        }
    }
}

/// Number of benchmark documents: `ADAPARSE_BENCH_DOCS` or the default.
pub fn bench_doc_count(default: usize) -> usize {
    std::env::var("ADAPARSE_BENCH_DOCS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Build the benchmark corpus (training + held-out test documents).
pub fn benchmark_corpus(n_documents: usize, seed: u64) -> Corpus {
    Corpus::generate(&GeneratorConfig {
        n_documents,
        seed,
        min_pages: 1,
        max_pages: 4,
        scanned_fraction: 0.15,
        ..Default::default()
    })
}

/// Apply a regime's augmentation to a document set.
pub fn apply_regime(documents: &mut [Document], regime: Regime, seed: u64) {
    let config = AugmentConfig { fraction: 0.15, seed };
    match regime {
        Regime::BornDigital => {}
        Regime::SimulatedScan => {
            augment_image_layers(documents, &config);
        }
        Regime::OcrDegradedText => {
            augment_text_layers(documents, &config);
        }
    }
}

/// One row of a Tables 1–3 style report.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityRow {
    /// Parser (or meta-parser) name.
    pub name: String,
    /// Mean coverage (%).
    pub coverage: f64,
    /// Mean BLEU (%).
    pub bleu: f64,
    /// Mean ROUGE (%).
    pub rouge: f64,
    /// Mean CAR (%).
    pub car: f64,
    /// Accepted-token rate (%).
    pub accepted_tokens: f64,
}

/// Compute the per-parser quality rows for a set of evaluated documents.
pub fn parser_rows(evaluations: &[DocumentEvaluation]) -> Vec<QualityRow> {
    ParserKind::ALL
        .iter()
        .map(|&kind| {
            let mut coverage = 0.0;
            let mut bleu = 0.0;
            let mut rouge = 0.0;
            let mut car = 0.0;
            let mut accepted = AcceptedTokens::new();
            for eval in evaluations {
                if let Some(p) = eval.for_parser(kind) {
                    coverage += p.report.coverage;
                    bleu += p.report.bleu;
                    rouge += p.report.rouge;
                    car += p.report.car;
                    accepted.record(p.output.token_count(), p.report.bleu, DEFAULT_ACCEPTANCE_THRESHOLD);
                }
            }
            let n = evaluations.len().max(1) as f64;
            QualityRow {
                name: kind.name().to_string(),
                coverage: 100.0 * coverage / n,
                bleu: 100.0 * bleu / n,
                rouge: 100.0 * rouge / n,
                car: 100.0 * car / n,
                accepted_tokens: 100.0 * accepted.rate(),
            }
        })
        .collect()
}

/// Train an AdaParse engine on a training set and compute its quality row on
/// a test set.
pub fn adaparse_row(
    train_docs: &[Document],
    test_docs: &[Document],
    config: AdaParseConfig,
    seed: u64,
) -> QualityRow {
    let mut engine = AdaParseEngine::new(config);
    engine.train_on_corpus(train_docs, seed);
    let result = engine.parse_documents(test_docs, seed ^ 0xADA);
    QualityRow {
        name: "AdaParse".to_string(),
        coverage: 100.0 * result.quality.coverage,
        bleu: 100.0 * result.quality.bleu,
        rouge: 100.0 * result.quality.rouge,
        car: 100.0 * result.quality.car,
        accepted_tokens: 100.0 * result.quality.accepted_tokens,
    }
}

/// Run one full table regime: evaluate every fixed parser plus AdaParse.
pub fn run_quality_table(regime: Regime, n_documents: usize, seed: u64) -> Vec<QualityRow> {
    let corpus = benchmark_corpus(n_documents, seed);
    let mut train_docs: Vec<Document> = corpus.train().into_iter().cloned().collect();
    let mut test_docs: Vec<Document> = corpus.test().into_iter().cloned().collect();
    // Augmentations apply to the evaluation set only (the paper's training
    // data predates the perturbations); training documents stay unmodified.
    apply_regime(&mut test_docs, regime, seed ^ 0xA06);
    let evaluations = evaluate_corpus(&test_docs, seed ^ 0xE7A1);
    let mut rows = parser_rows(&evaluations);
    // Keep the training set modest: the engine only needs enough signal to fit
    // its routing heads.
    train_docs.truncate(60);
    rows.push(adaparse_row(&train_docs, &test_docs, AdaParseConfig::default(), seed));
    rows
}

/// Render rows as a fixed-width table matching the paper's column order.
pub fn format_table(title: &str, rows: &[QualityRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<12} {:>9} {:>7} {:>7} {:>7} {:>7}\n",
        "Parser", "Coverage", "BLEU", "ROUGE", "CAR", "AT"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<12} {:>9.1} {:>7.1} {:>7.1} {:>7.1} {:>7.1}\n",
            row.name, row.coverage, row.bleu, row.rouge, row.car, row.accepted_tokens
        ));
    }
    out
}

/// Format a generic two-column series (used by the figure binaries).
pub fn format_series(title: &str, x_label: &str, y_label: &str, points: &[(f64, f64)]) -> String {
    let mut out = format!("{title}\n{x_label:>12} {y_label:>14}\n");
    for (x, y) in points {
        out.push_str(&format!("{x:>12.2} {y:>14.3}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regimes_have_names_and_doc_count_override_works() {
        assert_eq!(Regime::BornDigital.name(), "born-digital");
        assert_eq!(Regime::SimulatedScan.name(), "simulated scans");
        assert!(bench_doc_count(12) >= 1);
    }

    #[test]
    fn quality_table_has_all_parsers_plus_adaparse() {
        let rows = run_quality_table(Regime::BornDigital, 16, 5);
        assert_eq!(rows.len(), ParserKind::ALL.len() + 1);
        assert_eq!(rows.last().unwrap().name, "AdaParse");
        for row in &rows {
            assert!((0.0..=100.0).contains(&row.bleu), "{}: {}", row.name, row.bleu);
            assert!((0.0..=100.0).contains(&row.coverage));
            assert!((0.0..=100.0).contains(&row.accepted_tokens));
        }
        let table = format_table("Table 1", &rows);
        assert!(table.contains("PyMuPDF"));
        assert!(table.contains("AdaParse"));
    }

    #[test]
    fn augmentation_regimes_modify_test_documents() {
        let corpus = benchmark_corpus(10, 9);
        let mut docs: Vec<Document> = corpus.documents().to_vec();
        let before = docs.clone();
        apply_regime(&mut docs, Regime::OcrDegradedText, 1);
        assert_ne!(before, docs);
        let mut unchanged = before.clone();
        apply_regime(&mut unchanged, Regime::BornDigital, 1);
        assert_eq!(before, unchanged);
    }

    #[test]
    fn series_formatting_is_stable() {
        let s = format_series("Figure 5", "nodes", "pdf/s", &[(1.0, 2.0), (2.0, 4.0)]);
        assert!(s.contains("Figure 5"));
        assert_eq!(s.lines().count(), 4);
    }
}
