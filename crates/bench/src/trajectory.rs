//! Append-only performance-trajectory files (`BENCH_*.json`).
//!
//! Every macro-benchmark binary appends one *entry* per run to a
//! schema-versioned JSON file at the repo root, so the repository carries its
//! own performance history: a PR that speeds up (or regresses) the hot path
//! lands next to the measurement that proves it. The format is deliberately
//! tiny —
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "benchmark": "hotpath",
//!   "entries": [ { "timestamp": 1754000000, "label": "…", … }, … ]
//! }
//! ```
//!
//! — one top-level object per file, one benchmark per file, entries in
//! append order with non-decreasing `timestamp`s. Writing is hand-rolled
//! (the vendored `serde_json` stub has no serializer); reading/validation
//! goes through the stub's strict parser, so a file that this module can't
//! round-trip fails CI instead of silently rotting.
//!
//! Float fields are emitted with Rust's shortest-round-trip `Display`, so a
//! parse → re-emit cycle is lossless. Fields that carry exact 64-bit
//! payloads (e.g. `f64::to_bits` fingerprints) must be emitted as hex
//! *strings*: the stub parses every JSON number as `f64`, which cannot
//! represent all of `u64`.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Version stamped into (and required of) every trajectory file.
pub const SCHEMA_VERSION: u64 = 1;

/// An owned JSON value for emitting trajectory records.
///
/// Objects preserve insertion order (entries read better when `timestamp`
/// and `label` lead), unlike the parser-side `serde_json::Value` which sorts
/// keys; validation therefore never compares raw file bytes, only structure.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (emitted without a fractional part).
    U64(u64),
    /// A finite float (non-finite values are emitted as `null`).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for object values.
    pub fn object(fields: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A `u64` emitted as a lossless hex string (`"0x…"`), for bit-exact
    /// payloads like `f64::to_bits` fingerprints.
    pub fn hex(bits: u64) -> JsonValue {
        JsonValue::Str(format!("{bits:#018x}"))
    }

    /// Serialize into `out` with two-space indentation at `depth`.
    fn write_into(&self, out: &mut String, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            JsonValue::U64(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::F64(x) if x.is_finite() => {
                let _ = write!(out, "{x}");
            }
            JsonValue::F64(_) => out.push_str("null"),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) if items.is_empty() => out.push_str("[]"),
            JsonValue::Array(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    indent(out, depth + 1);
                    item.write_into(out, depth + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                indent(out, depth);
                out.push(']');
            }
            JsonValue::Object(fields) if fields.is_empty() => out.push_str("{}"),
            JsonValue::Object(fields) => {
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_into(out, depth + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// The serialized document (with a trailing newline).
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, 0);
        out.push('\n');
        out
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Seconds since the Unix epoch (0 on clocks set before 1970).
pub fn unix_timestamp() -> u64 {
    std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0)
}

/// Convert a parsed `serde_json` value back into an emit-side [`JsonValue`]
/// (numbers become [`JsonValue::F64`]; Rust's shortest-round-trip float
/// `Display` keeps the re-emission lossless).
fn from_parsed(value: &serde_json::Value) -> JsonValue {
    match value {
        serde_json::Value::Null => JsonValue::Null,
        serde_json::Value::Bool(b) => JsonValue::Bool(*b),
        serde_json::Value::Number(n) => JsonValue::F64(*n),
        serde_json::Value::String(s) => JsonValue::Str(s.clone()),
        serde_json::Value::Array(items) => JsonValue::Array(items.iter().map(from_parsed).collect()),
        serde_json::Value::Object(map) => {
            JsonValue::Object(map.iter().map(|(k, v)| (k.clone(), from_parsed(v))).collect())
        }
    }
}

fn invalid(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Append one entry to the trajectory file for `benchmark`, creating the
/// file (with the current [`SCHEMA_VERSION`]) if it does not exist.
///
/// The existing file is parsed strictly first: a corrupt file, a schema
/// version from the future, or a file belonging to a different benchmark is
/// an error, never silently overwritten.
pub fn append_entry(path: &Path, benchmark: &str, entry: JsonValue) -> io::Result<()> {
    let mut entries: Vec<JsonValue> = Vec::new();
    if path.exists() {
        let text = fs::read_to_string(path)?;
        let parsed = serde_json::from_str(&text)
            .map_err(|e| invalid(format!("{}: not valid JSON: {e}", path.display())))?;
        let version = parsed
            .get("schema_version")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| invalid(format!("{}: missing schema_version", path.display())))?;
        if version != SCHEMA_VERSION {
            return Err(invalid(format!(
                "{}: schema_version {version} != supported {SCHEMA_VERSION}",
                path.display()
            )));
        }
        let name = parsed
            .get("benchmark")
            .and_then(|v| v.as_str())
            .ok_or_else(|| invalid(format!("{}: missing benchmark name", path.display())))?;
        if name != benchmark {
            return Err(invalid(format!(
                "{}: belongs to benchmark {name:?}, refusing to append {benchmark:?} entries",
                path.display()
            )));
        }
        match parsed.get("entries") {
            Some(serde_json::Value::Array(existing)) => {
                entries.extend(existing.iter().map(from_parsed));
            }
            _ => return Err(invalid(format!("{}: entries is not an array", path.display()))),
        }
    }
    entries.push(entry);
    let document = JsonValue::object(vec![
        ("schema_version", JsonValue::U64(SCHEMA_VERSION)),
        ("benchmark", JsonValue::Str(benchmark.to_string())),
        ("entries", JsonValue::Array(entries)),
    ]);
    fs::write(path, document.to_json_string())
}

/// Parse and structurally validate a trajectory file: correct schema
/// version and benchmark name, a non-empty `entries` array of objects, each
/// carrying every field in `required` plus a numeric `timestamp` that never
/// decreases across entries. Returns the entry count.
pub fn validate_trajectory(path: &Path, benchmark: &str, required: &[&str]) -> Result<usize, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let parsed =
        serde_json::from_str(&text).map_err(|e| format!("{}: not valid JSON: {e}", path.display()))?;
    match parsed.get("schema_version").and_then(|v| v.as_u64()) {
        Some(SCHEMA_VERSION) => {}
        other => return Err(format!("schema_version must be {SCHEMA_VERSION}, found {other:?}")),
    }
    match parsed.get("benchmark").and_then(|v| v.as_str()) {
        Some(name) if name == benchmark => {}
        other => return Err(format!("benchmark must be {benchmark:?}, found {other:?}")),
    }
    let entries = match parsed.get("entries") {
        Some(serde_json::Value::Array(entries)) => entries,
        _ => return Err("entries must be an array".to_string()),
    };
    if entries.is_empty() {
        return Err("entries must not be empty".to_string());
    }
    let mut last_timestamp = f64::NEG_INFINITY;
    for (i, entry) in entries.iter().enumerate() {
        if !entry.is_object() {
            return Err(format!("entry {i} is not an object"));
        }
        let timestamp = entry
            .get("timestamp")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("entry {i} has no numeric timestamp"))?;
        if timestamp < last_timestamp {
            return Err(format!(
                "entry {i} timestamp {timestamp} decreases (previous {last_timestamp}) — \
                 trajectory entries must be append-ordered"
            ));
        }
        last_timestamp = timestamp;
        for field in required {
            if entry.get(field).is_none() {
                return Err(format!("entry {i} is missing required field {field:?}"));
            }
        }
    }
    Ok(entries.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("adaparse_trajectory_{}_{name}.json", std::process::id()));
        let _ = fs::remove_file(&path);
        path
    }

    fn entry(timestamp: u64, label: &str) -> JsonValue {
        JsonValue::object(vec![
            ("timestamp", JsonValue::U64(timestamp)),
            ("label", JsonValue::Str(label.to_string())),
            ("tasks_per_second", JsonValue::F64(123.456)),
            ("makespan_bits", JsonValue::hex(0x3ff0000000000000)),
        ])
    }

    #[test]
    fn append_then_validate_round_trips() {
        let path = temp_path("roundtrip");
        append_entry(&path, "hotpath", entry(100, "first")).unwrap();
        append_entry(&path, "hotpath", entry(200, "second")).unwrap();
        let count =
            validate_trajectory(&path, "hotpath", &["label", "tasks_per_second", "makespan_bits"]).unwrap();
        assert_eq!(count, 2);
        // Bit payloads survive as hex strings and floats round-trip exactly.
        let parsed = serde_json::from_str(&fs::read_to_string(&path).unwrap()).unwrap();
        let entries = match parsed.get("entries") {
            Some(serde_json::Value::Array(entries)) => entries.clone(),
            _ => panic!("entries missing"),
        };
        assert_eq!(entries[0].get("makespan_bits").and_then(|v| v.as_str()), Some("0x3ff0000000000000"));
        assert_eq!(entries[1].get("tasks_per_second").and_then(|v| v.as_f64()), Some(123.456));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn decreasing_timestamps_and_missing_fields_fail_validation() {
        let path = temp_path("monotone");
        append_entry(&path, "hotpath", entry(200, "first")).unwrap();
        append_entry(&path, "hotpath", entry(100, "earlier")).unwrap();
        let err = validate_trajectory(&path, "hotpath", &[]).unwrap_err();
        assert!(err.contains("decreases"), "{err}");
        let path2 = temp_path("fields");
        append_entry(&path2, "hotpath", entry(1, "x")).unwrap();
        let err = validate_trajectory(&path2, "hotpath", &["no_such_field"]).unwrap_err();
        assert!(err.contains("no_such_field"), "{err}");
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(&path2);
    }

    #[test]
    fn files_refuse_foreign_benchmarks_and_bad_schemas() {
        let path = temp_path("foreign");
        append_entry(&path, "hotpath", entry(1, "x")).unwrap();
        let err = append_entry(&path, "other_bench", entry(2, "y")).unwrap_err();
        assert!(err.to_string().contains("refusing"), "{err}");
        fs::write(&path, "{\"schema_version\": 99, \"benchmark\": \"hotpath\", \"entries\": []}").unwrap();
        assert!(append_entry(&path, "hotpath", entry(3, "z")).is_err());
        assert!(validate_trajectory(&path, "hotpath", &[]).is_err());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn strings_escape_cleanly() {
        let value = JsonValue::object(vec![("label", JsonValue::Str("a \"b\"\n\\c\u{1}".to_string()))]);
        let text = value.to_json_string();
        let parsed = serde_json::from_str(&text).unwrap();
        assert_eq!(parsed.get("label").and_then(|v| v.as_str()), Some("a \"b\"\n\\c\u{1}"));
    }
}
