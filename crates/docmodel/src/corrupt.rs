//! Text-corruption primitives modelling the parser failure modes of the
//! paper's Figure 1: whitespace injection, word substitution, character
//! scrambling, character substitution, corrupted SMILES / identifiers,
//! LaTeX-to-plaintext conversion, and page drops (handled at the document
//! level by callers).
//!
//! These functions are shared between the embedded text-layer generator (a
//! low-quality OCR-attached text layer is "pre-corrupted") and the parser
//! simulators in `parsersim`, which apply them to model their own failure
//! modes.

use rand::Rng;

/// Inject spurious whitespace: each word boundary has probability `rate` of
/// receiving an extra space, and each word of being split in half.
pub fn inject_whitespace<R: Rng + ?Sized>(text: &str, rate: f64, rng: &mut R) -> String {
    let rate = rate.clamp(0.0, 1.0);
    let mut out = String::with_capacity(text.len() + 16);
    for (i, word) in text.split_whitespace().enumerate() {
        if i > 0 {
            out.push(' ');
            if rng.gen_bool(rate) {
                out.push(' ');
            }
        }
        if word.len() > 3 && rng.gen_bool(rate * 0.5) {
            let chars: Vec<char> = word.chars().collect();
            let split = chars.len() / 2;
            out.extend(chars[..split].iter());
            out.push(' ');
            out.extend(chars[split..].iter());
        } else {
            out.push_str(word);
        }
    }
    out
}

/// Scramble characters inside words: with probability `rate` per word, two
/// interior characters are transposed (classic extraction scrambling).
pub fn scramble_characters<R: Rng + ?Sized>(text: &str, rate: f64, rng: &mut R) -> String {
    let rate = rate.clamp(0.0, 1.0);
    let mut out = Vec::new();
    for word in text.split_whitespace() {
        let mut chars: Vec<char> = word.chars().collect();
        if chars.len() >= 4 && rng.gen_bool(rate) {
            let i = rng.gen_range(1..chars.len() - 2);
            chars.swap(i, i + 1);
        }
        out.push(chars.into_iter().collect::<String>());
    }
    out.join(" ")
}

/// Substitute visually-confusable characters, as OCR engines do on degraded
/// scans. `rate` is the per-character substitution probability.
pub fn substitute_confusable_chars<R: Rng + ?Sized>(text: &str, rate: f64, rng: &mut R) -> String {
    let rate = rate.clamp(0.0, 1.0);
    text.chars().map(|c| if rng.gen_bool(rate) { confuse(c, rng) } else { c }).collect()
}

fn confuse<R: Rng + ?Sized>(c: char, rng: &mut R) -> char {
    let table: &[(char, &[char])] = &[
        ('0', &['O', 'o']),
        ('O', &['0', 'Q']),
        ('1', &['l', 'I']),
        ('l', &['1', 'I']),
        ('I', &['l', '1']),
        ('5', &['S']),
        ('S', &['5']),
        ('8', &['B']),
        ('B', &['8']),
        ('m', &['n', 'w']),
        ('e', &['c', 'o']),
        ('a', &['o', 'e']),
        ('u', &['v', 'n']),
        ('h', &['b', 'n']),
        ('t', &['f', 'r']),
        ('g', &['q', '9']),
    ];
    for (from, to) in table {
        if *from == c {
            return to[rng.gen_range(0..to.len())];
        }
    }
    // Fall back to a neighbouring ASCII letter for alphabetic characters.
    if c.is_ascii_lowercase() {
        let shifted = ((c as u8 - b'a' + 1) % 26) + b'a';
        shifted as char
    } else if c.is_ascii_uppercase() {
        let shifted = ((c as u8 - b'A' + 1) % 26) + b'A';
        shifted as char
    } else {
        c
    }
}

/// Substitute whole words with probability `rate`, drawing replacements from
/// a small list of plausible-but-wrong scientific terms.
pub fn substitute_words<R: Rng + ?Sized>(text: &str, rate: f64, rng: &mut R) -> String {
    const REPLACEMENTS: [&str; 8] = [
        "hypothyroidism",
        "entropy",
        "gradient",
        "manifold",
        "catalyst",
        "isomorphism",
        "perturbation",
        "hysteresis",
    ];
    let rate = rate.clamp(0.0, 1.0);
    text.split_whitespace()
        .map(|w| {
            if w.len() > 4 && rng.gen_bool(rate) {
                REPLACEMENTS[rng.gen_range(0..REPLACEMENTS.len())].to_string()
            } else {
                w.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Convert LaTeX markup to the garbled plaintext that text extraction
/// produces: control sequences lose their backslashes, braces and math
/// delimiters vanish, superscripts/subscripts flatten.
pub fn mangle_latex(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\\' => {
                // Drop the backslash but keep the control word glued to the
                // following token (e.g. `\frac{a}{b}` -> `fracab`).
            }
            '{' | '}' | '$' | '^' | '_' => {}
            _ => out.push(c),
        }
        // Collapse the spacing LaTeX uses around operators.
        if c == ' ' && chars.peek() == Some(&' ') {
            while chars.peek() == Some(&' ') {
                chars.next();
            }
        }
    }
    out
}

/// Corrupt identifier-like strings (SMILES, accession numbers): ring-closure
/// digits and brackets are the characters most frequently lost.
pub fn corrupt_identifier<R: Rng + ?Sized>(code: &str, rate: f64, rng: &mut R) -> String {
    let rate = rate.clamp(0.0, 1.0);
    code.chars()
        .filter_map(|c| {
            if (c.is_ascii_digit() || c == '(' || c == ')' || c == '[' || c == ']' || c == '=')
                && rng.gen_bool(rate)
            {
                None
            } else if c.is_ascii_uppercase() && rng.gen_bool(rate * 0.5) {
                Some(c.to_ascii_lowercase())
            } else {
                Some(c)
            }
        })
        .collect()
}

/// Simulated OCR of a character sequence at a given legibility in `[0, 1]`:
/// per-character confusion probability grows as legibility drops; severely
/// degraded input also loses characters.
pub fn ocr_noise<R: Rng + ?Sized>(text: &str, legibility: f64, rng: &mut R) -> String {
    let legibility = legibility.clamp(0.0, 1.0);
    let confuse_rate = 0.12 * (1.0 - legibility);
    let drop_rate = 0.05 * (1.0 - legibility).powi(2);
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        if !c.is_whitespace() && rng.gen_bool(drop_rate) {
            continue;
        }
        if !c.is_whitespace() && rng.gen_bool(confuse_rate) {
            out.push(confuse(c, rng));
        } else {
            out.push(c);
        }
    }
    out
}

/// Scramble word order within a window, modelling column-order confusion in
/// multi-column layouts. `severity` in `[0, 1]` controls how far words move.
pub fn shuffle_word_order<R: Rng + ?Sized>(text: &str, severity: f64, rng: &mut R) -> String {
    let severity = severity.clamp(0.0, 1.0);
    let mut words: Vec<&str> = text.split_whitespace().collect();
    if words.len() < 4 || severity <= 0.0 {
        return words.join(" ");
    }
    let swaps = ((words.len() as f64) * severity * 0.5).ceil() as usize;
    for _ in 0..swaps {
        let i = rng.gen_range(0..words.len());
        let max_offset = ((words.len() as f64 * severity * 0.3).ceil() as usize).max(1);
        let j = (i + rng.gen_range(1..=max_offset)).min(words.len() - 1);
        words.swap(i, j);
    }
    words.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn zero_rate_is_identity_modulo_whitespace() {
        let text = "the quick brown fox jumps over the lazy dog";
        let mut r = rng();
        assert_eq!(inject_whitespace(text, 0.0, &mut r), text);
        assert_eq!(scramble_characters(text, 0.0, &mut r), text);
        assert_eq!(substitute_confusable_chars(text, 0.0, &mut r), text);
        assert_eq!(substitute_words(text, 0.0, &mut r), text);
        assert_eq!(corrupt_identifier("CC(=O)O", 0.0, &mut r), "CC(=O)O");
        assert_eq!(ocr_noise(text, 1.0, &mut r), text);
        assert_eq!(shuffle_word_order(text, 0.0, &mut r), text);
    }

    #[test]
    fn whitespace_injection_only_adds_whitespace() {
        let text = "alpha beta gamma delta epsilon zeta eta theta";
        let mut r = rng();
        let corrupted = inject_whitespace(text, 0.9, &mut r);
        let orig: String = text.split_whitespace().collect();
        let corr: String = corrupted.split_whitespace().collect();
        assert_eq!(orig, corr, "non-whitespace characters must be preserved");
        assert!(corrupted.len() >= text.len());
    }

    #[test]
    fn scrambling_preserves_character_multiset_per_word() {
        let text = "gravitational interactions between macromolecules";
        let mut r = rng();
        let corrupted = scramble_characters(text, 1.0, &mut r);
        for (orig, corr) in text.split_whitespace().zip(corrupted.split_whitespace()) {
            let mut a: Vec<char> = orig.chars().collect();
            let mut b: Vec<char> = corr.chars().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
        assert_ne!(text, corrupted);
    }

    #[test]
    fn char_substitution_changes_text_at_high_rate() {
        let text = "measurement of the 10 mOl concentration at pH 5";
        let mut r = rng();
        let corrupted = substitute_confusable_chars(text, 0.8, &mut r);
        assert_ne!(text, corrupted);
        assert_eq!(text.chars().count(), corrupted.chars().count());
    }

    #[test]
    fn latex_mangling_strips_markup() {
        let latex = "\\frac{\\partial u}{\\partial t} = \\alpha \\nabla^2 u";
        let mangled = mangle_latex(latex);
        assert!(!mangled.contains('\\'));
        assert!(!mangled.contains('{'));
        assert!(!mangled.contains('^'));
        assert!(mangled.contains("partial"));
    }

    #[test]
    fn identifier_corruption_shrinks_or_lowercases() {
        let smiles = "CC(=O)OC1=CC=CC=C1C(=O)O";
        let mut r = rng();
        let corrupted = corrupt_identifier(smiles, 0.7, &mut r);
        assert!(corrupted.len() <= smiles.len());
        assert_ne!(corrupted, smiles);
    }

    #[test]
    fn ocr_noise_grows_with_degradation() {
        let text = "the enzyme kinetics follow michaelis menten behaviour in vitro";
        let mut r1 = rng();
        let mut r2 = rng();
        let slightly = ocr_noise(text, 0.9, &mut r1);
        let heavily = ocr_noise(text, 0.1, &mut r2);
        let diff = |a: &str, b: &str| a.chars().zip(b.chars()).filter(|(x, y)| x != y).count();
        assert!(diff(text, &heavily) >= diff(text, &slightly));
    }

    #[test]
    fn shuffle_preserves_words() {
        let text = "one two three four five six seven eight nine ten";
        let mut r = rng();
        let shuffled = shuffle_word_order(text, 1.0, &mut r);
        let mut a: Vec<&str> = text.split_whitespace().collect();
        let mut b: Vec<&str> = shuffled.split_whitespace().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn short_text_never_panics() {
        let mut r = rng();
        for text in ["", "a", "ab cd"] {
            let _ = inject_whitespace(text, 1.0, &mut r);
            let _ = scramble_characters(text, 1.0, &mut r);
            let _ = substitute_confusable_chars(text, 1.0, &mut r);
            let _ = substitute_words(text, 1.0, &mut r);
            let _ = ocr_noise(text, 0.0, &mut r);
            let _ = shuffle_word_order(text, 1.0, &mut r);
            let _ = corrupt_identifier(text, 1.0, &mut r);
            let _ = mangle_latex(text);
        }
    }
}
