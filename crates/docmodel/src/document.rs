//! The document type tying pages, metadata, text layer and image layer
//! together.

use serde::{Deserialize, Serialize};

use crate::element::{Element, ElementKind};
use crate::imagelayer::ImageLayer;
use crate::metadata::DocMetadata;
use crate::textlayer::TextLayer;

/// Opaque document identifier, unique within a corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DocId(pub u64);

impl std::fmt::Display for DocId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "doc-{:08}", self.0)
    }
}

/// One page: an ordered list of structural elements.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Page {
    /// Elements in reading order.
    pub elements: Vec<Element>,
}

impl Page {
    /// Create a page from its elements.
    pub fn new(elements: Vec<Element>) -> Self {
        Page { elements }
    }

    /// Ground-truth text of the page (elements joined by newlines).
    pub fn ground_truth_text(&self) -> String {
        self.elements.iter().map(|e| e.ground_truth_text()).collect::<Vec<_>>().join("\n")
    }

    /// Number of ground-truth words on the page.
    pub fn word_count(&self) -> usize {
        self.elements.iter().map(|e| e.word_count()).sum()
    }

    /// Number of elements of a given kind.
    pub fn count_kind(&self, kind: ElementKind) -> usize {
        self.elements.iter().filter(|e| e.kind() == kind).count()
    }

    /// Mean extraction difficulty of the page's elements (0.0 for an empty page).
    pub fn extraction_difficulty(&self) -> f64 {
        if self.elements.is_empty() {
            return 0.0;
        }
        self.elements.iter().map(|e| e.extraction_difficulty()).sum::<f64>() / self.elements.len() as f64
    }
}

/// A scientific document: metadata, structured pages (the ground truth), the
/// embedded text layer and the raster image layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Document {
    /// Corpus-unique identifier.
    pub id: DocId,
    /// Publisher/domain/producer metadata.
    pub metadata: DocMetadata,
    /// Structured pages (the source of ground truth).
    pub pages: Vec<Page>,
    /// Embedded text layer (what extraction parsers see).
    pub text_layer: TextLayer,
    /// Raster image layer (what recognition parsers see).
    pub image_layer: ImageLayer,
}

impl Document {
    /// Assemble a document.
    ///
    /// # Panics
    ///
    /// Panics if the text layer or image layer page counts disagree with the
    /// number of structured pages — such a document could not exist as a real
    /// PDF and indicates a generator bug.
    pub fn new(
        id: DocId,
        metadata: DocMetadata,
        pages: Vec<Page>,
        text_layer: TextLayer,
        image_layer: ImageLayer,
    ) -> Self {
        assert_eq!(pages.len(), text_layer.page_count(), "text layer page count must match structured pages");
        assert_eq!(
            pages.len(),
            image_layer.page_count(),
            "image layer page count must match structured pages"
        );
        Document { id, metadata, pages, text_layer, image_layer }
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Ground-truth text of the whole document; pages separated by form feeds.
    pub fn ground_truth(&self) -> String {
        self.pages.iter().map(|p| p.ground_truth_text()).collect::<Vec<_>>().join("\u{c}")
    }

    /// Ground-truth text per page.
    pub fn ground_truth_pages(&self) -> Vec<String> {
        self.pages.iter().map(|p| p.ground_truth_text()).collect()
    }

    /// Total ground-truth word count.
    pub fn word_count(&self) -> usize {
        self.pages.iter().map(|p| p.word_count()).sum()
    }

    /// Number of elements of a given kind in the whole document.
    pub fn count_kind(&self, kind: ElementKind) -> usize {
        self.pages.iter().map(|p| p.count_kind(kind)).sum()
    }

    /// Whether the document is born-digital according to its metadata.
    pub fn is_born_digital(&self) -> bool {
        self.metadata.is_born_digital() && !self.image_layer.scanned
    }

    /// Intrinsic parsing difficulty in `[0, 1]`, combining structural
    /// difficulty (equations, tables, SMILES), text-layer fidelity and image
    /// legibility. Used by the corpus generator to produce the difficulty
    /// ranking of Figure 3 and by tests as a sanity signal; the *selector*
    /// never reads it (it only sees extracted text and metadata).
    pub fn intrinsic_difficulty(&self) -> f64 {
        let structural = if self.pages.is_empty() {
            0.0
        } else {
            self.pages.iter().map(|p| p.extraction_difficulty()).sum::<f64>() / self.pages.len() as f64
        };
        let text_penalty = 1.0 - self.text_layer.quality.expected_fidelity();
        let image_penalty = 1.0 - self.image_layer.mean_legibility();
        (0.45 * structural + 0.35 * text_penalty + 0.20 * image_penalty).clamp(0.0, 1.0)
    }

    /// Intrinsic parsing difficulty of one page in `[0, 1]` — the per-page
    /// analogue of [`Document::intrinsic_difficulty`], used by page-granular
    /// cascade routing to decide which pages of a document to delegate to an
    /// expensive parser. Combines the page's structural difficulty, the
    /// document-wide text-layer fidelity penalty, that page's raster
    /// legibility, and a tiny hash-seeded jitter keyed on `(doc id, page)` so
    /// equal-structure pages still order deterministically. Pure arithmetic —
    /// no RNG state is created or advanced.
    ///
    /// Returns `None` when `page` is out of range.
    pub fn page_difficulty(&self, page: usize) -> Option<f64> {
        let structured = self.pages.get(page)?;
        let structural = structured.extraction_difficulty();
        let text_penalty = 1.0 - self.text_layer.quality.expected_fidelity();
        let image_penalty = 1.0 - self.image_layer.pages.get(page).map(|p| p.legibility()).unwrap_or(0.0);
        // SplitMix64 of (id, page) → jitter in [0, 0.01): breaks ties between
        // structurally identical pages without perturbing the ranking of
        // genuinely different ones.
        let mut h = self.id.0 ^ (page as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        let jitter = (h >> 11) as f64 / (1u64 << 53) as f64 * 0.01;
        Some((0.45 * structural + 0.35 * text_penalty + 0.20 * image_penalty + jitter).clamp(0.0, 1.0))
    }

    /// Per-page intrinsic difficulties, in page order (see
    /// [`Document::page_difficulty`]).
    pub fn page_difficulties(&self) -> Vec<f64> {
        (0..self.pages.len()).map(|i| self.page_difficulty(i).unwrap_or(0.0)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::textlayer::TextLayerQuality;

    fn sample_pages() -> Vec<Page> {
        vec![
            Page::new(vec![
                Element::heading(1, "Introduction"),
                Element::paragraph("Large corpora of scientific text require accurate parsing."),
                Element::equation("\\mathcal{L} = -\\log p_\\theta(y|x)"),
            ]),
            Page::new(vec![
                Element::paragraph("We evaluate on a benchmark of one thousand documents."),
                Element::Table {
                    caption: "Throughput".to_string(),
                    rows: vec![vec!["parser".into(), "pdf/s".into()], vec!["pymupdf".into(), "315".into()]],
                },
            ]),
        ]
    }

    fn sample_doc() -> Document {
        let pages = sample_pages();
        let gt: Vec<String> = pages.iter().map(|p| p.ground_truth_text()).collect();
        Document::new(
            DocId(1),
            DocMetadata::default(),
            pages,
            TextLayer::clean(&gt),
            ImageLayer::born_digital(2),
        )
    }

    #[test]
    fn ground_truth_concatenates_pages() {
        let doc = sample_doc();
        let gt = doc.ground_truth();
        assert!(gt.contains("Introduction"));
        assert!(gt.contains("Throughput"));
        assert_eq!(gt.matches('\u{c}').count(), 1);
        assert_eq!(doc.ground_truth_pages().len(), 2);
    }

    #[test]
    fn counts_and_difficulty() {
        let doc = sample_doc();
        assert_eq!(doc.page_count(), 2);
        assert!(doc.word_count() > 10);
        assert_eq!(doc.count_kind(ElementKind::Equation), 1);
        assert_eq!(doc.count_kind(ElementKind::Table), 1);
        assert_eq!(doc.count_kind(ElementKind::Smiles), 0);
        let d = doc.intrinsic_difficulty();
        assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn difficulty_increases_with_degraded_layers() {
        let pages = sample_pages();
        let gt: Vec<String> = pages.iter().map(|p| p.ground_truth_text()).collect();
        let clean = Document::new(
            DocId(2),
            DocMetadata::default(),
            pages.clone(),
            TextLayer::clean(&gt),
            ImageLayer::born_digital(2),
        );
        let missing_layer = Document::new(
            DocId(3),
            DocMetadata::default(),
            pages,
            TextLayer::missing(2),
            ImageLayer::born_digital(2),
        );
        assert!(missing_layer.intrinsic_difficulty() > clean.intrinsic_difficulty());
    }

    #[test]
    fn born_digital_requires_clean_provenance() {
        let doc = sample_doc();
        assert!(doc.is_born_digital());
        let mut scanned = sample_doc();
        scanned.image_layer.scanned = true;
        assert!(!scanned.is_born_digital());
    }

    #[test]
    #[should_panic(expected = "text layer page count")]
    fn mismatched_text_layer_panics() {
        let pages = sample_pages();
        let _ = Document::new(
            DocId(4),
            DocMetadata::default(),
            pages,
            TextLayer::missing(5),
            ImageLayer::born_digital(2),
        );
    }

    #[test]
    #[should_panic(expected = "image layer page count")]
    fn mismatched_image_layer_panics() {
        let pages = sample_pages();
        let gt: Vec<String> = pages.iter().map(|p| p.ground_truth_text()).collect();
        let _ = Document::new(
            DocId(5),
            DocMetadata::default(),
            pages,
            TextLayer::clean(&gt),
            ImageLayer::born_digital(9),
        );
    }

    #[test]
    fn doc_id_display_is_stable() {
        assert_eq!(DocId(42).to_string(), "doc-00000042");
    }

    #[test]
    fn ocr_text_layer_lowers_expected_fidelity_not_structure() {
        let pages = sample_pages();
        let gt: Vec<String> = pages.iter().map(|p| p.ground_truth_text()).collect();
        let mut rng = rand::rngs::mock::StepRng::new(2, 1);
        let layer =
            TextLayer::from_ground_truth(&gt, TextLayerQuality::OcrGenerated { error_rate: 0.3 }, &mut rng);
        let doc = Document::new(DocId(6), DocMetadata::default(), pages, layer, ImageLayer::born_digital(2));
        assert_eq!(doc.page_count(), 2);
        assert!(doc.text_layer.quality.expected_fidelity() < 0.9);
    }

    #[test]
    fn page_difficulty_is_deterministic_bounded_and_total() {
        let doc = sample_doc();
        let first = doc.page_difficulties();
        let second = doc.page_difficulties();
        assert_eq!(first.len(), doc.page_count());
        assert_eq!(first, second, "per-page difficulty must be a pure function of the document");
        for (i, d) in first.iter().enumerate() {
            assert!((0.0..=1.0).contains(d));
            assert_eq!(doc.page_difficulty(i), Some(*d));
        }
        assert_eq!(doc.page_difficulty(doc.page_count()), None);
    }

    #[test]
    fn page_difficulty_tracks_page_legibility() {
        let mut doc = sample_doc();
        let clean = doc.page_difficulty(0).unwrap();
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        doc.image_layer.pages[0].degrade_scan(&mut rng);
        doc.image_layer.pages[0].degrade_scan(&mut rng);
        let degraded = doc.page_difficulty(0).unwrap();
        assert!(degraded > clean, "degraded page {degraded} must be harder than clean {clean}");
        // Page 1's raster was untouched; its difficulty moves not at all.
        assert_eq!(doc.page_difficulty(1), sample_doc().page_difficulty(1));
    }

    #[test]
    fn page_jitter_separates_identical_pages() {
        let page = Page::new(vec![Element::paragraph("identical content on every page")]);
        let pages = vec![page.clone(), page.clone(), page];
        let gt: Vec<String> = pages.iter().map(|p| p.ground_truth_text()).collect();
        let doc = Document::new(
            DocId(9),
            DocMetadata::default(),
            pages,
            TextLayer::clean(&gt),
            ImageLayer::born_digital(3),
        );
        let d = doc.page_difficulties();
        assert!(d[0] != d[1] || d[1] != d[2], "jitter must break structural ties");
        let spread = d.iter().cloned().fold(f64::MIN, f64::max) - d.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 0.01, "jitter must stay tiny, spread = {spread}");
    }

    #[test]
    fn empty_document_is_not_difficult() {
        let doc = Document::new(
            DocId(7),
            DocMetadata::default(),
            vec![],
            TextLayer::missing(0),
            ImageLayer::born_digital(0),
        );
        assert_eq!(doc.page_count(), 0);
        assert_eq!(doc.word_count(), 0);
        // No structure, but the missing text layer still registers as a penalty.
        assert!(doc.intrinsic_difficulty() <= 0.6);
    }
}
