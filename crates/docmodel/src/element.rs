//! Structural elements of a scientific document.
//!
//! Every element knows how to render itself into ground-truth text (the text
//! a perfect parse — like the paper's HTML-derived ground truth — would
//! contain) and exposes a *complexity* score capturing how hard it is for
//! lightweight extraction to reproduce that text faithfully.

use serde::{Deserialize, Serialize};

/// Discriminant of [`Element`], used for feature counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ElementKind {
    /// Section heading.
    Heading,
    /// Body paragraph.
    Paragraph,
    /// LaTeX equation (inline or display).
    Equation,
    /// Table with rows and columns.
    Table,
    /// Figure with a caption.
    Figure,
    /// Bibliographic reference entry.
    Reference,
    /// SMILES chemical identifier.
    Smiles,
    /// Bulleted or numbered list item.
    ListItem,
}

impl ElementKind {
    /// All element kinds.
    pub const ALL: [ElementKind; 8] = [
        ElementKind::Heading,
        ElementKind::Paragraph,
        ElementKind::Equation,
        ElementKind::Table,
        ElementKind::Figure,
        ElementKind::Reference,
        ElementKind::Smiles,
        ElementKind::ListItem,
    ];
}

/// One structural element on a document page.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Element {
    /// Section heading with a level (1 = section, 2 = subsection, ...).
    Heading {
        /// Heading depth, 1-based.
        level: u8,
        /// Heading text.
        text: String,
    },
    /// Body paragraph.
    Paragraph {
        /// Paragraph text.
        text: String,
    },
    /// LaTeX equation.
    Equation {
        /// LaTeX source, e.g. `\frac{\partial u}{\partial t} = \alpha \nabla^2 u`.
        latex: String,
        /// Whether this is a display equation (own line) or inline.
        display: bool,
    },
    /// Table with a caption and rectangular cell contents.
    Table {
        /// Table caption.
        caption: String,
        /// Row-major cell contents.
        rows: Vec<Vec<String>>,
    },
    /// Figure (the ground truth keeps only the caption; pixels are opaque).
    Figure {
        /// Figure caption.
        caption: String,
    },
    /// Bibliographic reference entry.
    Reference {
        /// Citation key, e.g. `smith2021scaling`.
        key: String,
        /// Formatted reference text.
        text: String,
    },
    /// SMILES chemical identifier (sensitive to character-level corruption).
    Smiles {
        /// The SMILES string, e.g. `CC(=O)OC1=CC=CC=C1C(=O)O`.
        code: String,
    },
    /// List item.
    ListItem {
        /// Item text.
        text: String,
    },
}

impl Element {
    /// Convenience constructor for a heading.
    pub fn heading(level: u8, text: &str) -> Element {
        Element::Heading { level, text: text.to_string() }
    }

    /// Convenience constructor for a paragraph.
    pub fn paragraph(text: &str) -> Element {
        Element::Paragraph { text: text.to_string() }
    }

    /// Convenience constructor for a display equation.
    pub fn equation(latex: &str) -> Element {
        Element::Equation { latex: latex.to_string(), display: true }
    }

    /// The element's kind.
    pub fn kind(&self) -> ElementKind {
        match self {
            Element::Heading { .. } => ElementKind::Heading,
            Element::Paragraph { .. } => ElementKind::Paragraph,
            Element::Equation { .. } => ElementKind::Equation,
            Element::Table { .. } => ElementKind::Table,
            Element::Figure { .. } => ElementKind::Figure,
            Element::Reference { .. } => ElementKind::Reference,
            Element::Smiles { .. } => ElementKind::Smiles,
            Element::ListItem { .. } => ElementKind::ListItem,
        }
    }

    /// Ground-truth textual rendering of the element (what a perfect parse
    /// contains). Matches the flavour of HTML-derived ground truth: equations
    /// keep their LaTeX source, tables are flattened row by row, figures keep
    /// only their captions.
    pub fn ground_truth_text(&self) -> String {
        match self {
            Element::Heading { text, .. } => text.clone(),
            Element::Paragraph { text } => text.clone(),
            Element::Equation { latex, display } => {
                if *display {
                    format!("$$ {latex} $$")
                } else {
                    format!("$ {latex} $")
                }
            }
            Element::Table { caption, rows } => {
                let mut out = format!("Table: {caption}");
                for row in rows {
                    out.push('\n');
                    out.push_str(&row.join(" | "));
                }
                out
            }
            Element::Figure { caption } => format!("Figure: {caption}"),
            Element::Reference { key, text } => format!("[{key}] {text}"),
            Element::Smiles { code } => code.clone(),
            Element::ListItem { text } => format!("- {text}"),
        }
    }

    /// Number of whitespace-separated words in the ground-truth rendering.
    pub fn word_count(&self) -> usize {
        self.ground_truth_text().split_whitespace().count()
    }

    /// How difficult the element is for lightweight text extraction, in
    /// `[0, 1]`. Equations, tables and SMILES strings are the elements whose
    /// extraction output tends to be mangled (paper Figure 1 failure modes).
    pub fn extraction_difficulty(&self) -> f64 {
        match self {
            Element::Heading { .. } => 0.05,
            Element::Paragraph { .. } => 0.05,
            Element::ListItem { .. } => 0.10,
            Element::Reference { .. } => 0.25,
            Element::Figure { .. } => 0.20,
            Element::Table { .. } => 0.55,
            Element::Smiles { .. } => 0.70,
            Element::Equation { display, .. } => {
                if *display {
                    0.85
                } else {
                    0.60
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_truth_rendering_per_kind() {
        assert_eq!(Element::heading(1, "Intro").ground_truth_text(), "Intro");
        assert_eq!(Element::paragraph("hello world").ground_truth_text(), "hello world");
        assert_eq!(Element::equation("E = mc^2").ground_truth_text(), "$$ E = mc^2 $$");
        let inline = Element::Equation { latex: "x".into(), display: false };
        assert_eq!(inline.ground_truth_text(), "$ x $");
        let table = Element::Table {
            caption: "Results".into(),
            rows: vec![vec!["a".into(), "b".into()], vec!["1".into(), "2".into()]],
        };
        assert_eq!(table.ground_truth_text(), "Table: Results\na | b\n1 | 2");
        let fig = Element::Figure { caption: "Scaling curve".into() };
        assert_eq!(fig.ground_truth_text(), "Figure: Scaling curve");
        let r = Element::Reference { key: "smith2021".into(), text: "Smith et al. 2021.".into() };
        assert_eq!(r.ground_truth_text(), "[smith2021] Smith et al. 2021.");
        let s = Element::Smiles { code: "CCO".into() };
        assert_eq!(s.ground_truth_text(), "CCO");
        let li = Element::ListItem { text: "first point".into() };
        assert_eq!(li.ground_truth_text(), "- first point");
    }

    #[test]
    fn word_count_counts_rendered_words() {
        assert_eq!(Element::paragraph("one two three").word_count(), 3);
        assert_eq!(Element::heading(2, "Related Work").word_count(), 2);
    }

    #[test]
    fn kind_discriminants_cover_all_variants() {
        let elements = [
            Element::heading(1, "h"),
            Element::paragraph("p"),
            Element::equation("e"),
            Element::Table { caption: "t".into(), rows: vec![] },
            Element::Figure { caption: "f".into() },
            Element::Reference { key: "k".into(), text: "t".into() },
            Element::Smiles { code: "C".into() },
            Element::ListItem { text: "l".into() },
        ];
        let kinds: Vec<ElementKind> = elements.iter().map(|e| e.kind()).collect();
        for k in ElementKind::ALL {
            assert!(kinds.contains(&k), "missing kind {k:?}");
        }
    }

    #[test]
    fn difficulty_ordering_matches_failure_modes() {
        let para = Element::paragraph("plain text").extraction_difficulty();
        let eq = Element::equation("\\int_0^1 f(x) dx").extraction_difficulty();
        let table = Element::Table { caption: "c".into(), rows: vec![] }.extraction_difficulty();
        let smiles = Element::Smiles { code: "CCO".into() }.extraction_difficulty();
        assert!(eq > table && table > para);
        assert!(smiles > para);
        for e in [para, eq, table, smiles] {
            assert!((0.0..=1.0).contains(&e));
        }
    }
}
