//! The raster (image) layer of a document.
//!
//! Text-recognition parsers (Tesseract, Nougat, Marker) operate on rendered
//! page images, so their accuracy depends on raster quality: resolution,
//! skew, contrast, blur, compression artifacts and sensor noise. The paper
//! simulates scan degradation with "random rotations, contrast adjustments,
//! Gaussian blurring, and compression" (§7.2); [`PageImage::degrade_scan`]
//! reproduces that augmentation pipeline.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Raster properties of a single rendered page.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PageImage {
    /// Rendering resolution in dots per inch.
    pub dpi: u16,
    /// Page skew in degrees (scanners introduce small rotations).
    pub skew_degrees: f64,
    /// Contrast in `[0, 1]` where 1 is nominal print contrast.
    pub contrast: f64,
    /// Gaussian blur sigma in pixels.
    pub blur_sigma: f64,
    /// JPEG quality factor in `[1, 100]`; 100 means lossless-like.
    pub jpeg_quality: u8,
    /// Additive sensor/film-grain noise level in `[0, 1]`.
    pub noise: f64,
}

impl Default for PageImage {
    fn default() -> Self {
        PageImage::born_digital()
    }
}

impl PageImage {
    /// Pristine render of a born-digital page.
    pub fn born_digital() -> Self {
        PageImage {
            dpi: 300,
            skew_degrees: 0.0,
            contrast: 1.0,
            blur_sigma: 0.0,
            jpeg_quality: 95,
            noise: 0.0,
        }
    }

    /// A typical flatbed scan with mild degradation drawn from `rng`.
    pub fn scanned<R: Rng + ?Sized>(rng: &mut R) -> Self {
        PageImage {
            dpi: *[150u16, 200, 300].get(rng.gen_range(0..3)).unwrap_or(&200),
            skew_degrees: rng.gen_range(-2.0..2.0),
            contrast: rng.gen_range(0.6..0.95),
            blur_sigma: rng.gen_range(0.0..1.2),
            jpeg_quality: rng.gen_range(55..90),
            noise: rng.gen_range(0.0..0.25),
        }
    }

    /// Apply the paper's scan-degradation augmentation (random rotation,
    /// contrast adjustment, Gaussian blur, stronger compression) on top of the
    /// current state.
    pub fn degrade_scan<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.skew_degrees += rng.gen_range(-4.0..4.0);
        self.contrast = (self.contrast * rng.gen_range(0.5..0.95)).clamp(0.05, 1.0);
        self.blur_sigma += rng.gen_range(0.3..1.8);
        self.jpeg_quality = self.jpeg_quality.saturating_sub(rng.gen_range(10..40)).max(10);
        self.noise = (self.noise + rng.gen_range(0.05..0.3)).clamp(0.0, 1.0);
    }

    /// Legibility score in `[0, 1]`: how much signal an OCR/ViT model can
    /// recover from this render. 1.0 for a pristine born-digital render.
    pub fn legibility(&self) -> f64 {
        let dpi_factor = (self.dpi as f64 / 300.0).min(1.0);
        let skew_factor = 1.0 - (self.skew_degrees.abs() / 20.0).min(0.5);
        let contrast_factor = self.contrast.clamp(0.0, 1.0);
        let blur_factor = 1.0 / (1.0 + 0.6 * self.blur_sigma.max(0.0));
        let jpeg_factor = 0.5 + 0.5 * (self.jpeg_quality as f64 / 100.0);
        let noise_factor = 1.0 - 0.7 * self.noise.clamp(0.0, 1.0);
        (dpi_factor * skew_factor * contrast_factor * blur_factor * jpeg_factor * noise_factor)
            .clamp(0.0, 1.0)
    }
}

/// Raster layer of a whole document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImageLayer {
    /// Per-page raster properties.
    pub pages: Vec<PageImage>,
    /// Whether the document originates from a scanner (as opposed to a
    /// born-digital render).
    pub scanned: bool,
}

impl ImageLayer {
    /// Pristine born-digital renders for `page_count` pages.
    pub fn born_digital(page_count: usize) -> Self {
        ImageLayer { pages: vec![PageImage::born_digital(); page_count], scanned: false }
    }

    /// Scanned renders with per-page random degradation.
    pub fn scanned<R: Rng + ?Sized>(page_count: usize, rng: &mut R) -> Self {
        ImageLayer { pages: (0..page_count).map(|_| PageImage::scanned(rng)).collect(), scanned: true }
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Mean legibility across pages; 0.0 for an empty layer.
    pub fn mean_legibility(&self) -> f64 {
        if self.pages.is_empty() {
            0.0
        } else {
            self.pages.iter().map(|p| p.legibility()).sum::<f64>() / self.pages.len() as f64
        }
    }

    /// Apply scan degradation to every page.
    pub fn degrade_all<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for page in &mut self.pages {
            page.degrade_scan(rng);
        }
        self.scanned = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn born_digital_is_fully_legible() {
        let img = PageImage::born_digital();
        assert!(img.legibility() > 0.95, "legibility = {}", img.legibility());
        let layer = ImageLayer::born_digital(4);
        assert_eq!(layer.page_count(), 4);
        assert!(!layer.scanned);
        assert!(layer.mean_legibility() > 0.95);
    }

    #[test]
    fn scanned_pages_are_less_legible_than_born_digital() {
        let mut rng = StdRng::seed_from_u64(3);
        let layer = ImageLayer::scanned(8, &mut rng);
        assert!(layer.scanned);
        assert!(layer.mean_legibility() < PageImage::born_digital().legibility());
        for p in &layer.pages {
            assert!((0.0..=1.0).contains(&p.legibility()));
        }
    }

    #[test]
    fn degradation_monotonically_reduces_legibility() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut img = PageImage::born_digital();
        let before = img.legibility();
        img.degrade_scan(&mut rng);
        let after_once = img.legibility();
        img.degrade_scan(&mut rng);
        let after_twice = img.legibility();
        assert!(after_once < before);
        assert!(after_twice <= after_once);
    }

    #[test]
    fn degrade_all_marks_layer_scanned() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut layer = ImageLayer::born_digital(2);
        let before = layer.mean_legibility();
        layer.degrade_all(&mut rng);
        assert!(layer.scanned);
        assert!(layer.mean_legibility() < before);
    }

    #[test]
    fn empty_layer_legibility_is_zero() {
        assert_eq!(ImageLayer::born_digital(0).mean_legibility(), 0.0);
    }

    #[test]
    fn legibility_always_bounded() {
        let extreme = PageImage {
            dpi: 72,
            skew_degrees: 45.0,
            contrast: 0.01,
            blur_sigma: 10.0,
            jpeg_quality: 1,
            noise: 1.0,
        };
        assert!((0.0..=1.0).contains(&extreme.legibility()));
        assert!(extreme.legibility() < 0.1);
    }
}
