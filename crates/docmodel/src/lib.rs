//! Scientific document model and the SPDF container format.
//!
//! The AdaParse paper operates on real scientific PDFs. This crate provides
//! the reproduction's stand-in: a structured [`Document`] model (paragraphs,
//! headings, LaTeX equations, tables, figures, references, SMILES strings)
//! with publisher/domain/producer [`metadata`], an embedded [`textlayer`]
//! whose quality can be degraded the same way real PDFs degrade, and an
//! [`imagelayer`] carrying the raster properties (DPI, skew, blur, contrast,
//! compression) that drive OCR difficulty.
//!
//! Documents serialize to **SPDF**, a from-scratch mini-PDF binary format
//! ([`spdf`]) with objects, dictionaries, content streams, an xref table and
//! a trailer — so the parser simulators in the `parsersim` crate do real
//! byte-level work (lexing, object resolution, stream decoding) rather than
//! being handed strings.
//!
//! # Example
//!
//! ```
//! use docmodel::{Document, DocId, metadata::DocMetadata, element::Element, document::Page};
//! use docmodel::textlayer::{TextLayer, TextLayerQuality};
//! use docmodel::imagelayer::ImageLayer;
//!
//! let pages = vec![Page::new(vec![
//!     Element::heading(1, "Introduction"),
//!     Element::paragraph("Parsing scientific PDFs at scale is a systems problem."),
//! ])];
//! let gt: Vec<String> = pages.iter().map(|p| p.ground_truth_text()).collect();
//! let doc = Document::new(
//!     DocId(7),
//!     DocMetadata::default(),
//!     pages,
//!     TextLayer::clean(&gt),
//!     ImageLayer::born_digital(1),
//! );
//! let bytes = docmodel::spdf::write_document(&doc);
//! let parsed = docmodel::spdf::SpdfFile::parse(&bytes).unwrap();
//! assert_eq!(parsed.pages.len(), 1);
//! ```

pub mod corrupt;
pub mod document;
pub mod element;
pub mod imagelayer;
pub mod metadata;
pub mod spdf;
pub mod textlayer;

pub use document::{DocId, Document, Page};
pub use element::{Element, ElementKind};
pub use imagelayer::{ImageLayer, PageImage};
pub use metadata::{DocCategory, DocMetadata, Domain, PdfFormat, ProducerTool, Publisher};
pub use textlayer::{TextLayer, TextLayerQuality};
