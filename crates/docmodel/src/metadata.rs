//! Document metadata: publisher, scientific domain, sub-category, year,
//! producing tool, and PDF format version.
//!
//! The paper's benchmark spans six publishers, eight domains and 67
//! sub-categories; metadata features (format, producer, year, publisher,
//! category) are the inputs of the CLS I / CLS II stages and of the SVC
//! baselines in Table 4.

use serde::{Deserialize, Serialize};

/// Source venue of a document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Publisher {
    /// arXiv preprint server.
    Arxiv,
    /// bioRxiv preprint server.
    BioRxiv,
    /// BioMed Central.
    Bmc,
    /// MDPI journals.
    Mdpi,
    /// medRxiv preprint server.
    MedRxiv,
    /// Nature portfolio journals.
    Nature,
}

impl Publisher {
    /// All publishers in the benchmark.
    pub const ALL: [Publisher; 6] = [
        Publisher::Arxiv,
        Publisher::BioRxiv,
        Publisher::Bmc,
        Publisher::Mdpi,
        Publisher::MedRxiv,
        Publisher::Nature,
    ];

    /// Stable display name (also used as the SPDF name token).
    pub fn name(&self) -> &'static str {
        match self {
            Publisher::Arxiv => "ArXiv",
            Publisher::BioRxiv => "BioRxiv",
            Publisher::Bmc => "BMC",
            Publisher::Mdpi => "MDPI",
            Publisher::MedRxiv => "MedRxiv",
            Publisher::Nature => "Nature",
        }
    }

    /// Parse a publisher from its display name.
    pub fn from_name(name: &str) -> Option<Publisher> {
        Publisher::ALL.into_iter().find(|p| p.name().eq_ignore_ascii_case(name))
    }

    /// Index into [`Publisher::ALL`] (used for one-hot feature encoding).
    pub fn index(&self) -> usize {
        Publisher::ALL.iter().position(|p| p == self).unwrap_or(0)
    }
}

impl std::fmt::Display for Publisher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Top-level scientific domain; each has a fixed list of sub-categories
/// totalling 67 across all domains (matching the paper's corpus description).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// Mathematics.
    Mathematics,
    /// Biology.
    Biology,
    /// Chemistry.
    Chemistry,
    /// Physics.
    Physics,
    /// Engineering.
    Engineering,
    /// Medicine.
    Medicine,
    /// Economics.
    Economics,
    /// Computer science.
    ComputerScience,
}

impl Domain {
    /// All eight domains.
    pub const ALL: [Domain; 8] = [
        Domain::Mathematics,
        Domain::Biology,
        Domain::Chemistry,
        Domain::Physics,
        Domain::Engineering,
        Domain::Medicine,
        Domain::Economics,
        Domain::ComputerScience,
    ];

    /// Stable display name (also used as the SPDF name token).
    pub fn name(&self) -> &'static str {
        match self {
            Domain::Mathematics => "Mathematics",
            Domain::Biology => "Biology",
            Domain::Chemistry => "Chemistry",
            Domain::Physics => "Physics",
            Domain::Engineering => "Engineering",
            Domain::Medicine => "Medicine",
            Domain::Economics => "Economics",
            Domain::ComputerScience => "ComputerScience",
        }
    }

    /// Parse a domain from its display name.
    pub fn from_name(name: &str) -> Option<Domain> {
        Domain::ALL.into_iter().find(|d| d.name().eq_ignore_ascii_case(name))
    }

    /// Index into [`Domain::ALL`] (used for one-hot feature encoding).
    pub fn index(&self) -> usize {
        Domain::ALL.iter().position(|d| d == self).unwrap_or(0)
    }

    /// Sub-categories of this domain. The union over all domains has exactly
    /// 67 entries, matching the corpus described in the paper (§6.2).
    pub fn subcategories(&self) -> &'static [&'static str] {
        match self {
            Domain::Mathematics => &[
                "algebra",
                "analysis",
                "combinatorics",
                "geometry",
                "number theory",
                "probability",
                "statistics",
                "topology",
            ],
            Domain::Biology => &[
                "biochemistry",
                "bioinformatics",
                "cell biology",
                "ecology",
                "genetics",
                "microbiology",
                "neuroscience",
                "structural biology",
                "zoology",
            ],
            Domain::Chemistry => &[
                "analytical chemistry",
                "catalysis",
                "electrochemistry",
                "inorganic chemistry",
                "organic chemistry",
                "physical chemistry",
                "polymer chemistry",
                "medicinal chemistry",
            ],
            Domain::Physics => &[
                "acoustics",
                "astrophysics",
                "condensed matter",
                "fluid dynamics",
                "high energy physics",
                "nuclear physics",
                "optics",
                "plasma physics",
                "quantum physics",
            ],
            Domain::Engineering => &[
                "aerospace engineering",
                "chemical engineering",
                "civil engineering",
                "electrical engineering",
                "materials science",
                "mechanical engineering",
                "robotics",
                "systems engineering",
            ],
            Domain::Medicine => &[
                "cardiology",
                "endocrinology",
                "epidemiology",
                "immunology",
                "oncology",
                "pharmacology",
                "public health",
                "radiology",
                "surgery",
            ],
            Domain::Economics => &[
                "behavioral economics",
                "development economics",
                "econometrics",
                "finance",
                "game theory",
                "labor economics",
                "macroeconomics",
                "microeconomics",
            ],
            Domain::ComputerScience => &[
                "artificial intelligence",
                "computer architecture",
                "databases",
                "distributed systems",
                "machine learning",
                "networking",
                "programming languages",
                "security",
            ],
        }
    }

    /// How equation-dense documents from this domain typically are, in `[0, 1]`.
    ///
    /// Drives the synthetic generator and — as the paper stresses — is only a
    /// *weak* predictor of per-document parsing difficulty.
    pub fn equation_density(&self) -> f64 {
        match self {
            Domain::Mathematics => 0.85,
            Domain::Physics => 0.70,
            Domain::Engineering => 0.45,
            Domain::ComputerScience => 0.40,
            Domain::Economics => 0.35,
            Domain::Chemistry => 0.30,
            Domain::Biology => 0.15,
            Domain::Medicine => 0.10,
        }
    }

    /// How likely documents from this domain are to contain SMILES strings.
    pub fn smiles_density(&self) -> f64 {
        match self {
            Domain::Chemistry => 0.6,
            Domain::Biology => 0.2,
            Domain::Medicine => 0.15,
            _ => 0.02,
        }
    }
}

impl std::fmt::Display for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Total number of sub-categories across all domains (the paper reports 67).
pub fn total_subcategories() -> usize {
    Domain::ALL.iter().map(|d| d.subcategories().len()).sum()
}

/// Coarse document *condition* category, orthogonal to [`Domain`]: what kind
/// of artifact the PDF is, which drives both how a corpus generator skews a
/// category's documents and which parsers a cascade should prefer for them.
/// Used by `scicorpus`' category-skewed generator presets and by
/// `parsersim`'s per-category parser-quality priors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DocCategory {
    /// Scanner output: raster pages, missing or OCR-attached text layer.
    Scanned,
    /// Born-digital but dense with tables (layout-sensitive extraction).
    TablesHeavy,
    /// Mixed-script documents whose embedded text layers come through
    /// mangled (modeled via scrambled/LaTeX-mangled layers).
    Multilingual,
    /// Clean born-digital documents with faithful text layers.
    CleanBornDigital,
}

impl DocCategory {
    /// Every category, in stable order.
    pub const ALL: [DocCategory; 4] = [
        DocCategory::Scanned,
        DocCategory::TablesHeavy,
        DocCategory::Multilingual,
        DocCategory::CleanBornDigital,
    ];

    /// Stable human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            DocCategory::Scanned => "scanned",
            DocCategory::TablesHeavy => "tables-heavy",
            DocCategory::Multilingual => "multilingual",
            DocCategory::CleanBornDigital => "clean-born-digital",
        }
    }

    /// Stable index into [`DocCategory::ALL`].
    pub fn index(&self) -> usize {
        match self {
            DocCategory::Scanned => 0,
            DocCategory::TablesHeavy => 1,
            DocCategory::Multilingual => 2,
            DocCategory::CleanBornDigital => 3,
        }
    }
}

impl std::fmt::Display for DocCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Software that produced the PDF; a strong CLS I / CLS II feature because it
/// correlates with text-layer quality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProducerTool {
    /// pdfTeX / pdfLaTeX (born-digital, clean text layer).
    PdfLatex,
    /// XeLaTeX / LuaLaTeX (born-digital, Unicode-heavy).
    XeLatex,
    /// Microsoft Word export.
    Word,
    /// Adobe InDesign (publisher typesetting).
    InDesign,
    /// Flatbed or sheet-fed scanner (no native text layer).
    Scanner,
    /// A scanner pipeline that attached an OCR text layer after the fact.
    OcrAttached,
    /// Producer string missing or unrecognized.
    Unknown,
}

impl ProducerTool {
    /// All producer tools.
    pub const ALL: [ProducerTool; 7] = [
        ProducerTool::PdfLatex,
        ProducerTool::XeLatex,
        ProducerTool::Word,
        ProducerTool::InDesign,
        ProducerTool::Scanner,
        ProducerTool::OcrAttached,
        ProducerTool::Unknown,
    ];

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            ProducerTool::PdfLatex => "pdfTeX",
            ProducerTool::XeLatex => "XeTeX",
            ProducerTool::Word => "Word",
            ProducerTool::InDesign => "InDesign",
            ProducerTool::Scanner => "Scanner",
            ProducerTool::OcrAttached => "OCRAttached",
            ProducerTool::Unknown => "Unknown",
        }
    }

    /// Parse from display name, defaulting to [`ProducerTool::Unknown`].
    pub fn from_name(name: &str) -> ProducerTool {
        ProducerTool::ALL
            .into_iter()
            .find(|p| p.name().eq_ignore_ascii_case(name))
            .unwrap_or(ProducerTool::Unknown)
    }

    /// Index into [`ProducerTool::ALL`].
    pub fn index(&self) -> usize {
        ProducerTool::ALL.iter().position(|p| p == self).unwrap_or(6)
    }

    /// Whether this producer implies a born-digital document.
    pub fn is_born_digital(&self) -> bool {
        !matches!(self, ProducerTool::Scanner | ProducerTool::OcrAttached)
    }
}

impl std::fmt::Display for ProducerTool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// PDF specification version recorded in the file header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PdfFormat {
    /// PDF 1.4 (older documents, frequently scanned).
    V1_4,
    /// PDF 1.5.
    V1_5,
    /// PDF 1.6.
    V1_6,
    /// PDF 1.7 (most common).
    V1_7,
    /// PDF 2.0.
    V2_0,
}

impl PdfFormat {
    /// All format versions.
    pub const ALL: [PdfFormat; 5] =
        [PdfFormat::V1_4, PdfFormat::V1_5, PdfFormat::V1_6, PdfFormat::V1_7, PdfFormat::V2_0];

    /// Version string as it appears in the file header, e.g. `"1.7"`.
    pub fn version_string(&self) -> &'static str {
        match self {
            PdfFormat::V1_4 => "1.4",
            PdfFormat::V1_5 => "1.5",
            PdfFormat::V1_6 => "1.6",
            PdfFormat::V1_7 => "1.7",
            PdfFormat::V2_0 => "2.0",
        }
    }

    /// Parse a version string such as `"1.7"`.
    pub fn from_version_string(s: &str) -> Option<PdfFormat> {
        PdfFormat::ALL.into_iter().find(|f| f.version_string() == s)
    }

    /// Index into [`PdfFormat::ALL`].
    pub fn index(&self) -> usize {
        PdfFormat::ALL.iter().position(|f| f == self).unwrap_or(3)
    }
}

impl std::fmt::Display for PdfFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.version_string())
    }
}

/// Metadata attached to every document in the corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DocMetadata {
    /// Document title.
    pub title: String,
    /// Source venue.
    pub publisher: Publisher,
    /// Scientific domain.
    pub domain: Domain,
    /// Sub-category within the domain (one of the domain's
    /// [`Domain::subcategories`]).
    pub subcategory: String,
    /// Publication year.
    pub year: u16,
    /// Software that produced the PDF.
    pub producer: ProducerTool,
    /// PDF specification version.
    pub format: PdfFormat,
}

impl Default for DocMetadata {
    fn default() -> Self {
        DocMetadata {
            title: "Untitled manuscript".to_string(),
            publisher: Publisher::Arxiv,
            domain: Domain::ComputerScience,
            subcategory: "machine learning".to_string(),
            year: 2024,
            producer: ProducerTool::PdfLatex,
            format: PdfFormat::V1_7,
        }
    }
}

impl DocMetadata {
    /// Whether the metadata indicates a born-digital document.
    pub fn is_born_digital(&self) -> bool {
        self.producer.is_born_digital()
    }

    /// Dense numeric feature vector used by the metadata-driven classifiers
    /// (CLS I / CLS II / the SVC rows of Table 4).
    ///
    /// Layout: one-hot publisher (6), one-hot domain (8), one-hot producer
    /// (7), one-hot format (5), normalized year (1) = 27 features.
    pub fn feature_vector(&self) -> Vec<f64> {
        let mut v = vec![0.0; 27];
        v[self.publisher.index()] = 1.0;
        v[6 + self.domain.index()] = 1.0;
        v[14 + self.producer.index()] = 1.0;
        v[21 + self.format.index()] = 1.0;
        v[26] = ((self.year as f64) - 1990.0) / 40.0;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_exactly_67_subcategories() {
        assert_eq!(total_subcategories(), 67);
    }

    #[test]
    fn subcategories_are_unique_within_and_across_domains() {
        let mut all: Vec<&str> = Domain::ALL.iter().flat_map(|d| d.subcategories().iter().copied()).collect();
        let before = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(before, all.len(), "duplicate subcategory names");
    }

    #[test]
    fn name_round_trips() {
        for p in Publisher::ALL {
            assert_eq!(Publisher::from_name(p.name()), Some(p));
        }
        for d in Domain::ALL {
            assert_eq!(Domain::from_name(d.name()), Some(d));
        }
        for f in PdfFormat::ALL {
            assert_eq!(PdfFormat::from_version_string(f.version_string()), Some(f));
        }
        for t in ProducerTool::ALL {
            assert_eq!(ProducerTool::from_name(t.name()), t);
        }
        assert_eq!(ProducerTool::from_name("garbage"), ProducerTool::Unknown);
        assert_eq!(Publisher::from_name("garbage"), None);
    }

    #[test]
    fn indices_are_dense_and_distinct() {
        let idx: Vec<usize> = Publisher::ALL.iter().map(|p| p.index()).collect();
        assert_eq!(idx, (0..6).collect::<Vec<_>>());
        let idx: Vec<usize> = Domain::ALL.iter().map(|d| d.index()).collect();
        assert_eq!(idx, (0..8).collect::<Vec<_>>());
        let idx: Vec<usize> = ProducerTool::ALL.iter().map(|p| p.index()).collect();
        assert_eq!(idx, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn feature_vector_shape_and_onehot() {
        let m = DocMetadata::default();
        let v = m.feature_vector();
        assert_eq!(v.len(), 27);
        let ones = v.iter().filter(|&&x| (x - 1.0).abs() < 1e-12).count();
        assert_eq!(ones, 4, "four one-hot groups must be active");
    }

    #[test]
    fn born_digital_flag_follows_producer() {
        let mut m = DocMetadata::default();
        assert!(m.is_born_digital());
        m.producer = ProducerTool::Scanner;
        assert!(!m.is_born_digital());
        m.producer = ProducerTool::OcrAttached;
        assert!(!m.is_born_digital());
    }

    #[test]
    fn equation_density_ordering_matches_intuition() {
        assert!(Domain::Mathematics.equation_density() > Domain::Medicine.equation_density());
        assert!(Domain::Chemistry.smiles_density() > Domain::Physics.smiles_density());
        for d in Domain::ALL {
            assert!((0.0..=1.0).contains(&d.equation_density()));
            assert!((0.0..=1.0).contains(&d.smiles_density()));
        }
    }

    #[test]
    fn display_impls_are_nonempty() {
        assert_eq!(Publisher::Nature.to_string(), "Nature");
        assert_eq!(Domain::Physics.to_string(), "Physics");
        assert_eq!(PdfFormat::V1_7.to_string(), "1.7");
        assert_eq!(ProducerTool::PdfLatex.to_string(), "pdfTeX");
    }
}
