//! SPDF: a from-scratch mini-PDF container format.
//!
//! SPDF mirrors the structural skeleton of real PDF files — a version header,
//! numbered objects holding dictionaries and streams, an xref table and a
//! trailer — without the full complexity of the ISO 32000 specification. It
//! exists so that the parser simulators in `parsersim` do genuine byte-level
//! parsing work (lexing, object resolution, stream decoding, error recovery
//! on truncated files) instead of being handed in-memory strings.
//!
//! Layout of a serialized document:
//!
//! ```text
//! %SPDF-1.7
//! 1 0 obj << /Type /Catalog /PageCount 2 /Info 2 0 R /DocId 7 >> endobj
//! 2 0 obj << /Type /Info /Title (..) /Publisher /ArXiv ... >> endobj
//! 3 0 obj << /Type /Page /Index 0 /Contents 4 0 R /Image 5 0 R >> endobj
//! 4 0 obj << /Type /Content /Quality /Clean /Length 123 >> stream ... endstream endobj
//! 5 0 obj << /Type /PageImage /DPI 300 ... /Length 456 >> stream ... endstream endobj
//! ...
//! xref
//! trailer << /Size 8 /Root 1 0 R >>
//! startxref
//! 1042
//! %%EOF
//! ```
//!
//! The `/Content` stream carries the embedded text layer (what extraction
//! parsers read); the `/PageImage` stream carries the page's glyph source —
//! the stand-in for rendered pixels — together with the raster quality
//! parameters that recognition parsers combine with their own noise models.

mod object;
mod reader;
mod writer;

pub use object::{Dict, Object};
pub use reader::{SpdfError, SpdfFile, SpdfInfo, SpdfPage};
pub use writer::write_document;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::{DocId, Document, Page};
    use crate::element::Element;
    use crate::imagelayer::ImageLayer;
    use crate::metadata::{DocMetadata, Domain, PdfFormat, ProducerTool, Publisher};
    use crate::textlayer::{TextLayer, TextLayerQuality};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_document() -> Document {
        let pages = vec![
            Page::new(vec![
                Element::heading(1, "Adaptive Parsing"),
                Element::paragraph("Throughput and accuracy trade off against each other (in practice)."),
                Element::equation("\\alpha \\le \\frac{T - n T_{p}}{n (T_{N} - T_{p})}"),
            ]),
            Page::new(vec![
                Element::paragraph("We parse documents with heterogeneous layouts."),
                Element::Smiles { code: "CC(=O)OC1=CC=CC=C1C(=O)O".to_string() },
            ]),
        ];
        let gt: Vec<String> = pages.iter().map(|p| p.ground_truth_text()).collect();
        let metadata = DocMetadata {
            title: "Parsing at (scale) \\ with backslashes".to_string(),
            publisher: Publisher::Nature,
            domain: Domain::Chemistry,
            subcategory: "catalysis".to_string(),
            year: 2023,
            producer: ProducerTool::XeLatex,
            format: PdfFormat::V1_5,
        };
        Document::new(DocId(99), metadata, pages, TextLayer::clean(&gt), ImageLayer::born_digital(2))
    }

    #[test]
    fn roundtrip_preserves_structure_and_metadata() {
        let doc = sample_document();
        let bytes = write_document(&doc);
        assert!(bytes.starts_with(b"%SPDF-1.5"));
        assert!(bytes.ends_with(b"%%EOF\n"));
        let parsed = SpdfFile::parse(&bytes).expect("roundtrip parse");
        assert_eq!(parsed.doc_id, 99);
        assert_eq!(parsed.info.title, doc.metadata.title);
        assert_eq!(parsed.info.publisher, "Nature");
        assert_eq!(parsed.info.domain, "Chemistry");
        assert_eq!(parsed.info.subcategory, "catalysis");
        assert_eq!(parsed.info.year, 2023);
        assert_eq!(parsed.info.producer, "XeTeX");
        assert_eq!(parsed.format_version, "1.5");
        assert_eq!(parsed.pages.len(), 2);
        // Embedded text layer must round-trip exactly.
        for (page, gt) in parsed.pages.iter().zip(doc.text_layer.pages.iter()) {
            assert_eq!(&page.embedded_text, gt);
        }
        // Glyph source must equal the ground truth pages.
        for (page, gt) in parsed.pages.iter().zip(doc.ground_truth_pages().iter()) {
            assert_eq!(&page.glyph_text, gt);
        }
        assert!(parsed.pages[0].image.legibility() > 0.9);
    }

    #[test]
    fn missing_text_layer_round_trips_as_empty() {
        let mut doc = sample_document();
        doc.text_layer = TextLayer::missing(2);
        let bytes = write_document(&doc);
        let parsed = SpdfFile::parse(&bytes).unwrap();
        assert!(parsed.pages.iter().all(|p| p.embedded_text.is_empty()));
        assert_eq!(parsed.pages[0].text_quality, "Missing");
    }

    #[test]
    fn scrambled_quality_is_recorded() {
        let mut doc = sample_document();
        let gt = doc.ground_truth_pages();
        let mut rng = StdRng::seed_from_u64(1);
        doc.text_layer = TextLayer::from_ground_truth(&gt, TextLayerQuality::Scrambled, &mut rng);
        let bytes = write_document(&doc);
        let parsed = SpdfFile::parse(&bytes).unwrap();
        assert_eq!(parsed.pages[0].text_quality, "Scrambled");
    }

    #[test]
    fn truncated_file_yields_error_not_panic() {
        let doc = sample_document();
        let bytes = write_document(&doc);
        for cut in [0, 5, 17, bytes.len() / 4, bytes.len() / 2, bytes.len() - 10] {
            let truncated = &bytes[..cut];
            assert!(SpdfFile::parse(truncated).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn corrupted_header_is_rejected() {
        let doc = sample_document();
        let mut bytes = write_document(&doc);
        bytes[1] = b'X';
        assert!(matches!(SpdfFile::parse(&bytes), Err(SpdfError::BadHeader)));
    }

    #[test]
    fn flipped_bytes_in_body_do_not_panic() {
        let doc = sample_document();
        let bytes = write_document(&doc);
        // Flip a byte every 97 positions; parsing must either succeed or fail
        // cleanly, never panic.
        for step in 0..(bytes.len() / 97) {
            let mut corrupted = bytes.clone();
            corrupted[step * 97] = corrupted[step * 97].wrapping_add(13);
            let _ = SpdfFile::parse(&corrupted);
        }
    }

    #[test]
    fn write_is_deterministic() {
        let doc = sample_document();
        assert_eq!(write_document(&doc), write_document(&doc));
    }

    #[test]
    fn file_size_scales_with_content() {
        let doc = sample_document();
        let small = write_document(&doc);
        let mut bigger = doc.clone();
        let extra = Page::new(vec![Element::paragraph(&"lorem ipsum dolor ".repeat(200))]);
        let gt = extra.ground_truth_text();
        bigger.pages.push(extra);
        bigger.text_layer.pages.push(gt);
        bigger.image_layer.pages.push(crate::imagelayer::PageImage::born_digital());
        let large = write_document(&bigger);
        assert!(large.len() > small.len() + 1000);
    }
}
