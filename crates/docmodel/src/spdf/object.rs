//! The SPDF object model: the value types that can appear in an SPDF body.

use std::collections::BTreeMap;

/// A dictionary mapping name keys (without the leading `/`) to objects.
///
/// `BTreeMap` keeps serialization deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dict(pub BTreeMap<String, Object>);

impl Dict {
    /// Create an empty dictionary.
    pub fn new() -> Self {
        Dict(BTreeMap::new())
    }

    /// Insert a key/value pair, returning `self` for chaining.
    pub fn with(mut self, key: &str, value: Object) -> Self {
        self.0.insert(key.to_string(), value);
        self
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Object> {
        self.0.get(key)
    }

    /// Integer value of a key, if present and numeric.
    pub fn get_int(&self, key: &str) -> Option<i64> {
        match self.get(key) {
            Some(Object::Int(v)) => Some(*v),
            Some(Object::Real(v)) => Some(*v as i64),
            _ => None,
        }
    }

    /// Real value of a key, if present and numeric.
    pub fn get_real(&self, key: &str) -> Option<f64> {
        match self.get(key) {
            Some(Object::Real(v)) => Some(*v),
            Some(Object::Int(v)) => Some(*v as f64),
            _ => None,
        }
    }

    /// String value of a key, if present and a literal string.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        match self.get(key) {
            Some(Object::Str(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Name value of a key, if present and a name.
    pub fn get_name(&self, key: &str) -> Option<&str> {
        match self.get(key) {
            Some(Object::Name(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Boolean value of a key, if present and boolean.
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        match self.get(key) {
            Some(Object::Bool(b)) => Some(*b),
            _ => None,
        }
    }

    /// Object-reference value of a key, if present and a reference.
    pub fn get_ref(&self, key: &str) -> Option<u32> {
        match self.get(key) {
            Some(Object::Ref(id)) => Some(*id),
            _ => None,
        }
    }
}

/// One SPDF value.
#[derive(Debug, Clone, PartialEq)]
pub enum Object {
    /// The null object.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Real number.
    Real(f64),
    /// Literal string `( ... )` with escapes resolved.
    Str(String),
    /// Name `/Foo` without the leading slash.
    Name(String),
    /// Array `[ ... ]`.
    Array(Vec<Object>),
    /// Dictionary `<< ... >>`.
    Dict(Dict),
    /// Stream: a dictionary followed by raw data.
    Stream {
        /// The stream's dictionary (must contain `/Length`).
        dict: Dict,
        /// Raw stream bytes.
        data: Vec<u8>,
    },
    /// Indirect reference `N 0 R` to object number `N`.
    Ref(u32),
}

impl Object {
    /// Serialize the object into the output buffer in SPDF syntax.
    pub fn serialize(&self, out: &mut Vec<u8>) {
        match self {
            Object::Null => out.extend_from_slice(b"null"),
            Object::Bool(true) => out.extend_from_slice(b"true"),
            Object::Bool(false) => out.extend_from_slice(b"false"),
            Object::Int(v) => out.extend_from_slice(v.to_string().as_bytes()),
            Object::Real(v) => {
                // Fixed precision keeps output deterministic across platforms.
                out.extend_from_slice(format!("{v:.6}").as_bytes());
            }
            Object::Str(s) => {
                out.push(b'(');
                out.extend_from_slice(escape_string(s).as_bytes());
                out.push(b')');
            }
            Object::Name(n) => {
                out.push(b'/');
                out.extend_from_slice(escape_name(n).as_bytes());
            }
            Object::Array(items) => {
                out.push(b'[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(b' ');
                    }
                    item.serialize(out);
                }
                out.push(b']');
            }
            Object::Dict(dict) => serialize_dict(dict, out),
            Object::Stream { dict, data } => {
                serialize_dict(dict, out);
                out.extend_from_slice(b"\nstream\n");
                out.extend_from_slice(data);
                out.extend_from_slice(b"\nendstream");
            }
            Object::Ref(id) => {
                out.extend_from_slice(format!("{id} 0 R").as_bytes());
            }
        }
    }
}

fn serialize_dict(dict: &Dict, out: &mut Vec<u8>) {
    out.extend_from_slice(b"<< ");
    for (key, value) in &dict.0 {
        out.push(b'/');
        out.extend_from_slice(escape_name(key).as_bytes());
        out.push(b' ');
        value.serialize(out);
        out.push(b' ');
    }
    out.extend_from_slice(b">>");
}

/// Escape a literal string body: backslash, parentheses and control newlines.
pub fn escape_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '(' => out.push_str("\\("),
            ')' => out.push_str("\\)"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out
}

/// Undo [`escape_string`].
pub fn unescape_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Escape a name token: whitespace and delimiter characters are replaced by
/// `#xx` hex escapes, as in real PDF.
pub fn escape_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.' {
            out.push(c);
        } else {
            let mut buf = [0u8; 4];
            for b in c.encode_utf8(&mut buf).as_bytes() {
                out.push('#');
                out.push_str(&format!("{b:02x}"));
            }
        }
    }
    out
}

/// Undo [`escape_name`]; invalid escapes are kept verbatim.
pub fn unescape_name(name: &str) -> String {
    let bytes = name.as_bytes();
    let mut out_bytes = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'#' && i + 2 < bytes.len() {
            if let Ok(v) = u8::from_str_radix(std::str::from_utf8(&bytes[i + 1..i + 3]).unwrap_or(""), 16) {
                out_bytes.push(v);
                i += 3;
                continue;
            }
        }
        out_bytes.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out_bytes).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_escaping_round_trips() {
        let cases = [
            "plain",
            "with (parens) inside",
            "back\\slash",
            "new\nline and \r carriage",
            "nested ((deep)) \\( mix",
            "",
        ];
        for case in cases {
            assert_eq!(unescape_string(&escape_string(case)), case, "case {case:?}");
        }
    }

    #[test]
    fn name_escaping_round_trips() {
        for case in ["Simple", "with space", "odd/chars#here", "naïve", "machine learning"] {
            assert_eq!(unescape_name(&escape_name(case)), case, "case {case:?}");
        }
    }

    #[test]
    fn dict_accessors() {
        let d = Dict::new()
            .with("Int", Object::Int(7))
            .with("Real", Object::Real(1.5))
            .with("Str", Object::Str("hello".into()))
            .with("Name", Object::Name("World".into()))
            .with("Bool", Object::Bool(true))
            .with("Ref", Object::Ref(3));
        assert_eq!(d.get_int("Int"), Some(7));
        assert_eq!(d.get_real("Int"), Some(7.0));
        assert_eq!(d.get_real("Real"), Some(1.5));
        assert_eq!(d.get_int("Real"), Some(1));
        assert_eq!(d.get_str("Str"), Some("hello"));
        assert_eq!(d.get_name("Name"), Some("World"));
        assert_eq!(d.get_bool("Bool"), Some(true));
        assert_eq!(d.get_ref("Ref"), Some(3));
        assert_eq!(d.get_int("Missing"), None);
        assert_eq!(d.get_str("Int"), None);
    }

    #[test]
    fn serialization_shapes() {
        let mut out = Vec::new();
        Object::Array(vec![Object::Int(1), Object::Name("X".into()), Object::Bool(false)])
            .serialize(&mut out);
        assert_eq!(String::from_utf8(out).unwrap(), "[1 /X false]");

        let mut out = Vec::new();
        Object::Dict(Dict::new().with("A", Object::Int(2))).serialize(&mut out);
        assert_eq!(String::from_utf8(out).unwrap(), "<< /A 2 >>");

        let mut out = Vec::new();
        Object::Ref(12).serialize(&mut out);
        assert_eq!(String::from_utf8(out).unwrap(), "12 0 R");

        let mut out = Vec::new();
        Object::Null.serialize(&mut out);
        assert_eq!(String::from_utf8(out).unwrap(), "null");
    }

    #[test]
    fn stream_serialization_contains_payload() {
        let mut out = Vec::new();
        let payload = b"raw bytes \x00\x01".to_vec();
        Object::Stream {
            dict: Dict::new().with("Length", Object::Int(payload.len() as i64)),
            data: payload.clone(),
        }
        .serialize(&mut out);
        let s = out.windows(payload.len()).any(|w| w == payload.as_slice());
        assert!(s, "stream payload must appear verbatim");
    }
}
