//! Parsing of SPDF bytes back into a structured [`SpdfFile`].
//!
//! The reader performs the same kind of work a real PDF library performs:
//! lexing delimiters, names, strings and numbers; resolving indirect object
//! references; decoding content streams; and failing cleanly (never
//! panicking) on truncated or corrupted input.

use std::collections::BTreeMap;

use crate::imagelayer::PageImage;

use super::object::{unescape_name, unescape_string, Dict, Object};
use super::writer::decode_content_stream;

/// Errors produced while parsing SPDF bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpdfError {
    /// The file does not begin with a `%SPDF-` header.
    BadHeader,
    /// The input ended before the structure was complete.
    UnexpectedEof,
    /// A syntax error at the given byte offset.
    Syntax {
        /// Byte offset of the error.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// A referenced object was not found in the body.
    MissingObject(u32),
    /// A required dictionary key was absent or had the wrong type.
    MissingKey(String),
    /// The trailer (xref/trailer/startxref/%%EOF) was malformed or absent.
    BadTrailer,
}

impl std::fmt::Display for SpdfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpdfError::BadHeader => write!(f, "missing or malformed %SPDF header"),
            SpdfError::UnexpectedEof => write!(f, "unexpected end of file"),
            SpdfError::Syntax { offset, message } => {
                write!(f, "syntax error at byte {offset}: {message}")
            }
            SpdfError::MissingObject(id) => write!(f, "referenced object {id} not found"),
            SpdfError::MissingKey(key) => write!(f, "required key /{key} missing or mistyped"),
            SpdfError::BadTrailer => write!(f, "malformed or missing trailer"),
        }
    }
}

impl std::error::Error for SpdfError {}

/// Document-level metadata recovered from the `/Info` dictionary.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpdfInfo {
    /// Document title.
    pub title: String,
    /// Publisher name, e.g. `"ArXiv"`.
    pub publisher: String,
    /// Domain name, e.g. `"Biology"`.
    pub domain: String,
    /// Sub-category, e.g. `"genetics"`.
    pub subcategory: String,
    /// Publication year.
    pub year: u16,
    /// Producer tool string, e.g. `"pdfTeX"`.
    pub producer: String,
    /// Whether the document was marked as scanned.
    pub scanned: bool,
}

/// One parsed page.
#[derive(Debug, Clone, PartialEq)]
pub struct SpdfPage {
    /// Zero-based page index.
    pub index: usize,
    /// Embedded text-layer content decoded from the `/Content` stream.
    pub embedded_text: String,
    /// Text-layer quality name recorded by the writer (e.g. `"Clean"`).
    pub text_quality: String,
    /// Raster parameters of the page image.
    pub image: PageImage,
    /// Glyph source carried by the `/PageImage` stream (stand-in for pixels).
    pub glyph_text: String,
}

/// A fully parsed SPDF file.
#[derive(Debug, Clone, PartialEq)]
pub struct SpdfFile {
    /// Format version from the header (e.g. `"1.7"`).
    pub format_version: String,
    /// Document identifier from the catalog.
    pub doc_id: u64,
    /// Info-dictionary metadata.
    pub info: SpdfInfo,
    /// Pages in order.
    pub pages: Vec<SpdfPage>,
    /// Total size of the parsed input in bytes.
    pub total_bytes: usize,
}

impl SpdfFile {
    /// Parse SPDF bytes.
    ///
    /// # Errors
    ///
    /// Returns an [`SpdfError`] when the header is missing, the input is
    /// truncated, the body contains a syntax error, or a referenced object is
    /// absent. Never panics on arbitrary input.
    pub fn parse(data: &[u8]) -> Result<SpdfFile, SpdfError> {
        let mut lexer = Lexer::new(data);
        let format_version = lexer.read_header()?;
        let mut objects: BTreeMap<u32, Object> = BTreeMap::new();

        loop {
            lexer.skip_whitespace_and_comments_stop_before_eof();
            match lexer.peek_token()? {
                Token::Keyword(ref k) if k == "xref" => {
                    lexer.next_token()?;
                    break;
                }
                Token::Int(_) => {
                    let (id, object) = lexer.read_indirect_object()?;
                    objects.insert(id, object);
                }
                other => {
                    return Err(
                        lexer.syntax_error(&format!("expected object definition or xref, found {other:?}"))
                    );
                }
            }
        }

        lexer.skip_xref_table()?;
        lexer.expect_keyword("trailer")?;
        let trailer = lexer.parse_value()?;
        let root_id = match &trailer {
            Object::Dict(d) => d.get_ref("Root").unwrap_or(1),
            _ => return Err(SpdfError::BadTrailer),
        };
        lexer.expect_keyword("startxref")?;
        match lexer.next_token()? {
            Token::Int(_) => {}
            _ => return Err(SpdfError::BadTrailer),
        }
        if !lexer.has_eof_marker() {
            return Err(SpdfError::BadTrailer);
        }

        Self::assemble(&objects, root_id, format_version, data.len())
    }

    fn assemble(
        objects: &BTreeMap<u32, Object>,
        root_id: u32,
        format_version: String,
        total_bytes: usize,
    ) -> Result<SpdfFile, SpdfError> {
        let catalog = dict_of(objects.get(&root_id).ok_or(SpdfError::MissingObject(root_id))?)
            .ok_or_else(|| SpdfError::MissingKey("Catalog".into()))?;
        let page_count =
            catalog.get_int("PageCount").ok_or_else(|| SpdfError::MissingKey("PageCount".into()))? as usize;
        let doc_id = catalog.get_int("DocId").ok_or_else(|| SpdfError::MissingKey("DocId".into()))? as u64;
        let info_id = catalog.get_ref("Info").ok_or_else(|| SpdfError::MissingKey("Info".into()))?;
        let info_dict = dict_of(objects.get(&info_id).ok_or(SpdfError::MissingObject(info_id))?)
            .ok_or_else(|| SpdfError::MissingKey("Info".into()))?;

        let info = SpdfInfo {
            title: info_dict.get_str("Title").unwrap_or("").to_string(),
            publisher: info_dict.get_name("Publisher").unwrap_or("").to_string(),
            domain: info_dict.get_name("Domain").unwrap_or("").to_string(),
            subcategory: info_dict.get_str("Subcategory").unwrap_or("").to_string(),
            year: info_dict.get_int("Year").unwrap_or(0).clamp(0, u16::MAX as i64) as u16,
            producer: info_dict.get_str("Producer").unwrap_or("").to_string(),
            scanned: info_dict.get_bool("Scanned").unwrap_or(false),
        };

        // Collect page objects by their /Index rather than relying on the
        // writer's numbering convention.
        let mut page_dicts: Vec<(usize, &Dict)> = Vec::new();
        for object in objects.values() {
            if let Some(d) = dict_of(object) {
                if d.get_name("Type") == Some("Page") {
                    let index = d.get_int("Index").unwrap_or(i64::MAX) as usize;
                    page_dicts.push((index, d));
                }
            }
        }
        page_dicts.sort_by_key(|(i, _)| *i);
        if page_dicts.len() != page_count {
            return Err(SpdfError::MissingKey(format!(
                "expected {page_count} pages, found {}",
                page_dicts.len()
            )));
        }

        let mut pages = Vec::with_capacity(page_count);
        for (index, page_dict) in page_dicts {
            let content_id =
                page_dict.get_ref("Contents").ok_or_else(|| SpdfError::MissingKey("Contents".into()))?;
            let image_id = page_dict.get_ref("Image").ok_or_else(|| SpdfError::MissingKey("Image".into()))?;
            let (content_dict, content_data) =
                stream_of(objects.get(&content_id).ok_or(SpdfError::MissingObject(content_id))?)
                    .ok_or_else(|| SpdfError::MissingKey("Content".into()))?;
            let (image_dict, image_data) =
                stream_of(objects.get(&image_id).ok_or(SpdfError::MissingObject(image_id))?)
                    .ok_or_else(|| SpdfError::MissingKey("PageImage".into()))?;

            let image = PageImage {
                dpi: image_dict.get_int("DPI").unwrap_or(300).clamp(1, u16::MAX as i64) as u16,
                skew_degrees: image_dict.get_real("Skew").unwrap_or(0.0),
                contrast: image_dict.get_real("Contrast").unwrap_or(1.0),
                blur_sigma: image_dict.get_real("Blur").unwrap_or(0.0),
                jpeg_quality: image_dict.get_int("JpegQuality").unwrap_or(95).clamp(1, 100) as u8,
                noise: image_dict.get_real("Noise").unwrap_or(0.0),
            };
            pages.push(SpdfPage {
                index,
                embedded_text: decode_content_stream(content_data),
                text_quality: content_dict.get_name("Quality").unwrap_or("Clean").to_string(),
                image,
                glyph_text: String::from_utf8_lossy(image_data).into_owned(),
            });
        }

        Ok(SpdfFile { format_version, doc_id, info, pages, total_bytes })
    }

    /// Concatenated embedded text of all pages (form-feed separated), i.e.
    /// what a perfect text-extraction tool would output.
    pub fn embedded_text(&self) -> String {
        self.pages.iter().map(|p| p.embedded_text.as_str()).collect::<Vec<_>>().join("\u{c}")
    }

    /// Mean raster legibility across pages.
    pub fn mean_legibility(&self) -> f64 {
        if self.pages.is_empty() {
            0.0
        } else {
            self.pages.iter().map(|p| p.image.legibility()).sum::<f64>() / self.pages.len() as f64
        }
    }
}

fn dict_of(object: &Object) -> Option<&Dict> {
    match object {
        Object::Dict(d) => Some(d),
        Object::Stream { dict, .. } => Some(dict),
        _ => None,
    }
}

fn stream_of(object: &Object) -> Option<(&Dict, &[u8])> {
    match object {
        Object::Stream { dict, data } => Some((dict, data.as_slice())),
        _ => None,
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    DictOpen,
    DictClose,
    ArrayOpen,
    ArrayClose,
    Name(String),
    Str(String),
    Int(i64),
    Real(f64),
    Keyword(String),
}

struct Lexer<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(data: &'a [u8]) -> Self {
        Lexer { data, pos: 0 }
    }

    fn syntax_error(&self, message: &str) -> SpdfError {
        SpdfError::Syntax { offset: self.pos, message: message.to_string() }
    }

    fn read_header(&mut self) -> Result<String, SpdfError> {
        let line_end = self.data.iter().position(|&b| b == b'\n').ok_or(SpdfError::BadHeader)?;
        let line = &self.data[..line_end];
        let text = std::str::from_utf8(line).map_err(|_| SpdfError::BadHeader)?;
        let version = text.strip_prefix("%SPDF-").ok_or(SpdfError::BadHeader)?;
        if version.is_empty() {
            return Err(SpdfError::BadHeader);
        }
        self.pos = line_end + 1;
        Ok(version.to_string())
    }

    fn skip_whitespace_and_comments_stop_before_eof(&mut self) {
        loop {
            while self.pos < self.data.len() && self.data[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            // Skip comments except the %%EOF marker, which the trailer check
            // wants to see.
            if self.pos < self.data.len()
                && self.data[self.pos] == b'%'
                && !self.data[self.pos..].starts_with(b"%%EOF")
            {
                while self.pos < self.data.len() && self.data[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn peek_token(&mut self) -> Result<Token, SpdfError> {
        let saved = self.pos;
        let token = self.next_token();
        self.pos = saved;
        token
    }

    fn next_token(&mut self) -> Result<Token, SpdfError> {
        self.skip_whitespace_and_comments_stop_before_eof();
        if self.pos >= self.data.len() {
            return Err(SpdfError::UnexpectedEof);
        }
        let b = self.data[self.pos];
        match b {
            b'<' => {
                if self.data.get(self.pos + 1) == Some(&b'<') {
                    self.pos += 2;
                    Ok(Token::DictOpen)
                } else {
                    Err(self.syntax_error("stray '<'"))
                }
            }
            b'>' => {
                if self.data.get(self.pos + 1) == Some(&b'>') {
                    self.pos += 2;
                    Ok(Token::DictClose)
                } else {
                    Err(self.syntax_error("stray '>'"))
                }
            }
            b'[' => {
                self.pos += 1;
                Ok(Token::ArrayOpen)
            }
            b']' => {
                self.pos += 1;
                Ok(Token::ArrayClose)
            }
            b'/' => {
                self.pos += 1;
                let start = self.pos;
                while self.pos < self.data.len() && is_name_char(self.data[self.pos]) {
                    self.pos += 1;
                }
                let raw = std::str::from_utf8(&self.data[start..self.pos])
                    .map_err(|_| self.syntax_error("non-UTF8 name"))?;
                Ok(Token::Name(unescape_name(raw)))
            }
            b'(' => {
                self.pos += 1;
                let start = self.pos;
                loop {
                    if self.pos >= self.data.len() {
                        return Err(SpdfError::UnexpectedEof);
                    }
                    match self.data[self.pos] {
                        b'\\' => {
                            self.pos = (self.pos + 2).min(self.data.len());
                        }
                        b')' => break,
                        _ => self.pos += 1,
                    }
                }
                let raw = String::from_utf8_lossy(&self.data[start..self.pos]).into_owned();
                self.pos += 1; // consume ')'
                Ok(Token::Str(unescape_string(&raw)))
            }
            b'+' | b'-' | b'0'..=b'9' | b'.' => {
                let start = self.pos;
                self.pos += 1;
                while self.pos < self.data.len()
                    && (self.data[self.pos].is_ascii_digit() || self.data[self.pos] == b'.')
                {
                    self.pos += 1;
                }
                let raw = std::str::from_utf8(&self.data[start..self.pos])
                    .map_err(|_| self.syntax_error("non-UTF8 number"))?;
                if raw.contains('.') {
                    raw.parse::<f64>()
                        .map(Token::Real)
                        .map_err(|_| self.syntax_error("malformed real number"))
                } else {
                    raw.parse::<i64>().map(Token::Int).map_err(|_| self.syntax_error("malformed integer"))
                }
            }
            _ if b.is_ascii_alphabetic() || b == b'%' => {
                let start = self.pos;
                while self.pos < self.data.len()
                    && (self.data[self.pos].is_ascii_alphanumeric()
                        || self.data[self.pos] == b'%'
                        || self.data[self.pos] == b'#')
                {
                    self.pos += 1;
                }
                let raw = String::from_utf8_lossy(&self.data[start..self.pos]).into_owned();
                Ok(Token::Keyword(raw))
            }
            _ => Err(self.syntax_error(&format!("unexpected byte 0x{b:02x}"))),
        }
    }

    fn expect_keyword(&mut self, keyword: &str) -> Result<(), SpdfError> {
        match self.next_token()? {
            Token::Keyword(k) if k == keyword => Ok(()),
            other => Err(self.syntax_error(&format!("expected '{keyword}', found {other:?}"))),
        }
    }

    /// Read `N 0 obj <value> [stream payload] endobj`.
    fn read_indirect_object(&mut self) -> Result<(u32, Object), SpdfError> {
        let id = match self.next_token()? {
            Token::Int(v) if v >= 0 => v as u32,
            other => return Err(self.syntax_error(&format!("expected object id, found {other:?}"))),
        };
        match self.next_token()? {
            Token::Int(_) => {}
            other => return Err(self.syntax_error(&format!("expected generation number, found {other:?}"))),
        }
        self.expect_keyword("obj")?;
        let mut value = self.parse_value()?;

        // A stream keyword may follow a dictionary value.
        let saved = self.pos;
        match self.next_token() {
            Ok(Token::Keyword(k)) if k == "stream" => {
                let dict = match value {
                    Object::Dict(d) => d,
                    _ => return Err(self.syntax_error("stream not preceded by dictionary")),
                };
                let length = dict.get_int("Length").ok_or_else(|| SpdfError::MissingKey("Length".into()))?;
                if length < 0 {
                    return Err(self.syntax_error("negative stream length"));
                }
                // Consume the single newline after the `stream` keyword.
                if self.data.get(self.pos) == Some(&b'\n') {
                    self.pos += 1;
                }
                let end = self
                    .pos
                    .checked_add(length as usize)
                    .filter(|&e| e <= self.data.len())
                    .ok_or(SpdfError::UnexpectedEof)?;
                let data = self.data[self.pos..end].to_vec();
                self.pos = end;
                self.expect_keyword("endstream")?;
                value = Object::Stream { dict, data };
            }
            _ => {
                self.pos = saved;
            }
        }
        self.expect_keyword("endobj")?;
        Ok((id, value))
    }

    fn parse_value(&mut self) -> Result<Object, SpdfError> {
        match self.next_token()? {
            Token::DictOpen => {
                let mut dict = Dict::new();
                loop {
                    match self.next_token()? {
                        Token::DictClose => break,
                        Token::Name(key) => {
                            let value = self.parse_value()?;
                            dict.0.insert(key, value);
                        }
                        other => {
                            return Err(
                                self.syntax_error(&format!("expected name key or '>>', found {other:?}"))
                            )
                        }
                    }
                }
                Ok(Object::Dict(dict))
            }
            Token::ArrayOpen => {
                let mut items = Vec::new();
                loop {
                    if matches!(self.peek_token()?, Token::ArrayClose) {
                        self.next_token()?;
                        break;
                    }
                    items.push(self.parse_value()?);
                }
                Ok(Object::Array(items))
            }
            Token::Name(n) => Ok(Object::Name(n)),
            Token::Str(s) => Ok(Object::Str(s)),
            Token::Real(v) => Ok(Object::Real(v)),
            Token::Int(v) => {
                // Look ahead for the `N 0 R` indirect-reference pattern.
                let saved = self.pos;
                if let Ok(Token::Int(_)) = self.next_token() {
                    if let Ok(Token::Keyword(k)) = self.next_token() {
                        if k == "R" && v >= 0 {
                            return Ok(Object::Ref(v as u32));
                        }
                    }
                }
                self.pos = saved;
                Ok(Object::Int(v))
            }
            Token::Keyword(k) => match k.as_str() {
                "true" => Ok(Object::Bool(true)),
                "false" => Ok(Object::Bool(false)),
                "null" => Ok(Object::Null),
                other => Err(self.syntax_error(&format!("unexpected keyword '{other}'"))),
            },
            Token::DictClose | Token::ArrayClose => Err(self.syntax_error("unexpected closer")),
        }
    }

    /// Skip the xref table body: `first count` followed by `count` entry lines.
    fn skip_xref_table(&mut self) -> Result<(), SpdfError> {
        // The xref keyword has already been consumed.
        let _first = match self.next_token()? {
            Token::Int(v) => v,
            other => return Err(self.syntax_error(&format!("expected xref start, found {other:?}"))),
        };
        let count = match self.next_token()? {
            Token::Int(v) if v >= 0 => v as usize,
            other => return Err(self.syntax_error(&format!("expected xref count, found {other:?}"))),
        };
        for _ in 0..count {
            // Each entry is `offset generation flag`.
            for _ in 0..2 {
                match self.next_token()? {
                    Token::Int(_) => {}
                    other => return Err(self.syntax_error(&format!("malformed xref entry: {other:?}"))),
                }
            }
            match self.next_token()? {
                Token::Keyword(flag) if flag == "n" || flag == "f" => {}
                other => return Err(self.syntax_error(&format!("malformed xref flag: {other:?}"))),
            }
        }
        Ok(())
    }

    fn has_eof_marker(&mut self) -> bool {
        self.skip_whitespace_and_comments_stop_before_eof();
        self.data[self.pos..].starts_with(b"%%EOF")
    }
}

fn is_name_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.' || b == b'#'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_handwritten_file_parses() {
        let content = b"BT /F1 10 Tf\n(hello world) Tj\nET";
        let glyph = b"hello world";
        let body = format!(
            "%SPDF-1.7\n\
             1 0 obj\n<< /Type /Catalog /PageCount 1 /Info 2 0 R /DocId 5 >>\nendobj\n\
             2 0 obj\n<< /Type /Info /Title (T) /Publisher /ArXiv /Domain /Physics /Subcategory (optics) /Year 2020 /Producer (pdfTeX) /Scanned false >>\nendobj\n\
             3 0 obj\n<< /Type /Page /Index 0 /Contents 4 0 R /Image 5 0 R >>\nendobj\n\
             4 0 obj\n<< /Type /Content /Quality /Clean /Length {} >>\nstream\n{}\nendstream\nendobj\n\
             5 0 obj\n<< /Type /PageImage /DPI 300 /Skew 0.000000 /Contrast 1.000000 /Blur 0.000000 /JpegQuality 95 /Noise 0.000000 /Length {} >>\nstream\n{}\nendstream\nendobj\n\
             xref\n0 6\n0000000000 65535 f \n0000000010 00000 n \n0000000020 00000 n \n0000000030 00000 n \n0000000040 00000 n \n0000000050 00000 n \n\
             trailer\n<< /Size 6 /Root 1 0 R >>\nstartxref\n700\n%%EOF\n",
            content.len(),
            String::from_utf8_lossy(content),
            glyph.len(),
            String::from_utf8_lossy(glyph),
        );
        let file = SpdfFile::parse(body.as_bytes()).expect("parse handwritten file");
        assert_eq!(file.doc_id, 5);
        assert_eq!(file.pages.len(), 1);
        assert_eq!(file.pages[0].embedded_text, "hello world");
        assert_eq!(file.pages[0].glyph_text, "hello world");
        assert_eq!(file.info.publisher, "ArXiv");
        assert_eq!(file.info.year, 2020);
        assert!(!file.info.scanned);
        assert_eq!(file.format_version, "1.7");
    }

    #[test]
    fn missing_header_is_bad_header() {
        assert_eq!(SpdfFile::parse(b"not a pdf at all\n"), Err(SpdfError::BadHeader));
        assert_eq!(SpdfFile::parse(b""), Err(SpdfError::BadHeader));
        assert_eq!(SpdfFile::parse(b"%SPDF-\nxref"), Err(SpdfError::BadHeader));
    }

    #[test]
    fn error_display_is_informative() {
        let e = SpdfError::Syntax { offset: 12, message: "oops".into() };
        assert!(e.to_string().contains("12"));
        assert!(SpdfError::MissingObject(4).to_string().contains('4'));
        assert!(SpdfError::MissingKey("Length".into()).to_string().contains("Length"));
    }

    #[test]
    fn lexer_tokenizes_primitives() {
        let mut lx = Lexer::new(b"<< /Key (value \\(x\\)) 3 1.5 true null [1 2] >>");
        assert_eq!(lx.next_token().unwrap(), Token::DictOpen);
        assert_eq!(lx.next_token().unwrap(), Token::Name("Key".into()));
        assert_eq!(lx.next_token().unwrap(), Token::Str("value (x)".into()));
        assert_eq!(lx.next_token().unwrap(), Token::Int(3));
        assert_eq!(lx.next_token().unwrap(), Token::Real(1.5));
        assert_eq!(lx.next_token().unwrap(), Token::Keyword("true".into()));
        assert_eq!(lx.next_token().unwrap(), Token::Keyword("null".into()));
        assert_eq!(lx.next_token().unwrap(), Token::ArrayOpen);
    }

    #[test]
    fn reference_pattern_is_distinguished_from_integers() {
        let mut lx = Lexer::new(b"<< /A 3 0 R /B 7 >>");
        let value = lx.parse_value().unwrap();
        match value {
            Object::Dict(d) => {
                assert_eq!(d.get_ref("A"), Some(3));
                assert_eq!(d.get_int("B"), Some(7));
            }
            other => panic!("expected dict, got {other:?}"),
        }
    }

    #[test]
    fn negative_stream_length_is_rejected() {
        let body = "%SPDF-1.7\n1 0 obj\n<< /Length -5 /Type /Content >>\nstream\nabc\nendstream\nendobj\nxref\n0 0\ntrailer\n<< /Root 1 0 R /Size 1 >>\nstartxref\n0\n%%EOF\n";
        assert!(SpdfFile::parse(body.as_bytes()).is_err());
    }
}
