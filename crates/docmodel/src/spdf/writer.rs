//! Serialization of a [`Document`](crate::document::Document) into SPDF bytes.

use crate::document::Document;
use crate::textlayer::TextLayerQuality;

use super::object::{Dict, Object};

/// Serialize a document into SPDF bytes.
///
/// Object numbering: `1` is the catalog, `2` is the info dictionary, and each
/// page `i` (0-based) owns three consecutive objects starting at `3 + 3*i`:
/// the page dictionary, its content stream, and its page-image stream.
pub fn write_document(doc: &Document) -> Vec<u8> {
    let mut out: Vec<u8> = Vec::with_capacity(4096);
    out.extend_from_slice(format!("%SPDF-{}\n", doc.metadata.format.version_string()).as_bytes());

    let page_count = doc.page_count();
    let total_objects = 2 + 3 * page_count;
    let mut offsets: Vec<usize> = Vec::with_capacity(total_objects + 1);

    // Object 1: catalog.
    let catalog = Object::Dict(
        Dict::new()
            .with("Type", Object::Name("Catalog".into()))
            .with("PageCount", Object::Int(page_count as i64))
            .with("Info", Object::Ref(2))
            .with("DocId", Object::Int(doc.id.0 as i64)),
    );
    write_object(&mut out, &mut offsets, 1, &catalog);

    // Object 2: info dictionary.
    let info = Object::Dict(
        Dict::new()
            .with("Type", Object::Name("Info".into()))
            .with("Title", Object::Str(doc.metadata.title.clone()))
            .with("Publisher", Object::Name(doc.metadata.publisher.name().into()))
            .with("Domain", Object::Name(doc.metadata.domain.name().into()))
            .with("Subcategory", Object::Str(doc.metadata.subcategory.clone()))
            .with("Year", Object::Int(doc.metadata.year as i64))
            .with("Producer", Object::Str(doc.metadata.producer.name().into()))
            .with("Scanned", Object::Bool(doc.image_layer.scanned)),
    );
    write_object(&mut out, &mut offsets, 2, &info);

    let quality_name = text_quality_name(&doc.text_layer.quality);
    for (i, _page) in doc.pages.iter().enumerate() {
        let page_obj_id = (3 + 3 * i) as u32;
        let content_obj_id = page_obj_id + 1;
        let image_obj_id = page_obj_id + 2;

        // Page dictionary.
        let page_dict = Object::Dict(
            Dict::new()
                .with("Type", Object::Name("Page".into()))
                .with("Index", Object::Int(i as i64))
                .with("Contents", Object::Ref(content_obj_id))
                .with("Image", Object::Ref(image_obj_id)),
        );
        write_object(&mut out, &mut offsets, page_obj_id, &page_dict);

        // Content stream: the embedded text layer, wrapped in text operators.
        let embedded = doc.text_layer.page(i).unwrap_or("");
        let content_payload = encode_content_stream(embedded);
        let content = Object::Stream {
            dict: Dict::new()
                .with("Type", Object::Name("Content".into()))
                .with("Quality", Object::Name(quality_name.into()))
                .with("Length", Object::Int(content_payload.len() as i64)),
            data: content_payload,
        };
        write_object(&mut out, &mut offsets, content_obj_id, &content);

        // Page-image stream: raster parameters + glyph source.
        let img =
            doc.image_layer.pages.get(i).copied().unwrap_or_else(crate::imagelayer::PageImage::born_digital);
        let glyph_payload = doc.pages[i].ground_truth_text().into_bytes();
        let image = Object::Stream {
            dict: Dict::new()
                .with("Type", Object::Name("PageImage".into()))
                .with("DPI", Object::Int(img.dpi as i64))
                .with("Skew", Object::Real(img.skew_degrees))
                .with("Contrast", Object::Real(img.contrast))
                .with("Blur", Object::Real(img.blur_sigma))
                .with("JpegQuality", Object::Int(img.jpeg_quality as i64))
                .with("Noise", Object::Real(img.noise))
                .with("Length", Object::Int(glyph_payload.len() as i64)),
            data: glyph_payload,
        };
        write_object(&mut out, &mut offsets, image_obj_id, &image);
    }

    // Cross-reference table.
    let xref_offset = out.len();
    out.extend_from_slice(b"xref\n");
    out.extend_from_slice(format!("0 {}\n", total_objects + 1).as_bytes());
    out.extend_from_slice(b"0000000000 65535 f \n");
    for offset in &offsets {
        out.extend_from_slice(format!("{offset:010} 00000 n \n").as_bytes());
    }

    // Trailer.
    out.extend_from_slice(b"trailer\n");
    let trailer = Object::Dict(
        Dict::new().with("Size", Object::Int((total_objects + 1) as i64)).with("Root", Object::Ref(1)),
    );
    trailer.serialize(&mut out);
    out.extend_from_slice(b"\nstartxref\n");
    out.extend_from_slice(format!("{xref_offset}\n").as_bytes());
    out.extend_from_slice(b"%%EOF\n");
    out
}

fn write_object(out: &mut Vec<u8>, offsets: &mut Vec<usize>, id: u32, object: &Object) {
    offsets.push(out.len());
    out.extend_from_slice(format!("{id} 0 obj\n").as_bytes());
    object.serialize(out);
    out.extend_from_slice(b"\nendobj\n");
}

/// Wrap embedded text into a PDF-flavoured content stream (`BT ... Tj ... ET`).
fn encode_content_stream(text: &str) -> Vec<u8> {
    let mut payload = String::with_capacity(text.len() + 32);
    payload.push_str("BT /F1 10 Tf\n");
    for line in text.split('\n') {
        payload.push('(');
        payload.push_str(&super::object::escape_string(line));
        payload.push_str(") Tj\n");
    }
    payload.push_str("ET");
    payload.into_bytes()
}

/// Decode a content stream produced by [`encode_content_stream`] back into
/// the embedded text. Exposed for the reader and for extraction parsers.
pub(crate) fn decode_content_stream(data: &[u8]) -> String {
    let text = String::from_utf8_lossy(data);
    let mut lines: Vec<String> = Vec::new();
    for line in text.lines() {
        let line = line.trim_end();
        if let Some(rest) = line.strip_suffix(") Tj") {
            if let Some(body) = rest.strip_prefix('(') {
                lines.push(super::object::unescape_string(body));
            }
        }
    }
    lines.join("\n")
}

fn text_quality_name(quality: &TextLayerQuality) -> &'static str {
    match quality {
        TextLayerQuality::Clean => "Clean",
        TextLayerQuality::LatexMangled => "LatexMangled",
        TextLayerQuality::OcrGenerated { .. } => "OcrGenerated",
        TextLayerQuality::Scrambled => "Scrambled",
        TextLayerQuality::Missing => "Missing",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_stream_round_trips() {
        for text in ["single line", "two\nlines", "with (parens) and \\ backslash", "", "trailing newline\n"]
        {
            let encoded = encode_content_stream(text);
            let decoded = decode_content_stream(&encoded);
            // A trailing newline produces a trailing empty segment that is
            // preserved by split/join, so equality must hold exactly.
            assert_eq!(decoded, text, "text {text:?}");
        }
    }

    #[test]
    fn content_stream_has_pdf_operators() {
        let encoded = String::from_utf8(encode_content_stream("hello")).unwrap();
        assert!(encoded.starts_with("BT"));
        assert!(encoded.ends_with("ET"));
        assert!(encoded.contains("(hello) Tj"));
    }
}
