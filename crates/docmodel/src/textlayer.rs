//! The embedded text layer of a document.
//!
//! Born-digital PDFs carry a text layer produced by the typesetting tool;
//! scanned PDFs either have none or carry one attached later by OCR software
//! of varying quality. Text-extraction parsers (PyMuPDF, pypdf) can only ever
//! return what this layer contains — which is exactly why they fail on
//! scanned or scrambled documents and why AdaParse predicts, from the
//! extracted text itself, whether a recognition parser is needed.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::corrupt;

/// Quality class of the embedded text layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TextLayerQuality {
    /// Faithful text layer written by the typesetting tool.
    Clean,
    /// LaTeX-heavy layer: equations are present but stored as the garbled
    /// plaintext extraction produces (paper failure mode f).
    LatexMangled,
    /// Text layer attached by an OCR pass with the given character error
    /// rate in `[0, 1]`.
    OcrGenerated {
        /// Character error rate of the OCR pass that produced the layer.
        error_rate: f64,
    },
    /// Author-scrambled or font-subset-damaged layer: word order and
    /// characters are shuffled (extraction-hostile documents).
    Scrambled,
    /// No embedded text at all (pure scan).
    Missing,
}

impl TextLayerQuality {
    /// Expected fidelity of extraction output against ground truth, in `[0, 1]`.
    pub fn expected_fidelity(&self) -> f64 {
        match self {
            TextLayerQuality::Clean => 0.97,
            TextLayerQuality::LatexMangled => 0.80,
            TextLayerQuality::OcrGenerated { error_rate } => (1.0 - error_rate).clamp(0.0, 1.0) * 0.9,
            TextLayerQuality::Scrambled => 0.35,
            TextLayerQuality::Missing => 0.0,
        }
    }
}

/// Per-page embedded text plus its quality class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TextLayer {
    /// Quality class describing how the layer was produced.
    pub quality: TextLayerQuality,
    /// Embedded text for each page; empty strings for missing layers.
    pub pages: Vec<String>,
}

impl TextLayer {
    /// A faithful text layer equal to the ground-truth page text.
    pub fn clean(ground_truth_pages: &[String]) -> Self {
        TextLayer { quality: TextLayerQuality::Clean, pages: ground_truth_pages.to_vec() }
    }

    /// An entirely missing text layer (pure scan) for `page_count` pages.
    pub fn missing(page_count: usize) -> Self {
        TextLayer { quality: TextLayerQuality::Missing, pages: vec![String::new(); page_count] }
    }

    /// Build a text layer of the requested quality from ground-truth page
    /// text, applying the corresponding corruption model.
    pub fn from_ground_truth<R: Rng + ?Sized>(
        ground_truth_pages: &[String],
        quality: TextLayerQuality,
        rng: &mut R,
    ) -> Self {
        let pages = ground_truth_pages
            .iter()
            .map(|gt| match quality {
                TextLayerQuality::Clean => gt.clone(),
                TextLayerQuality::LatexMangled => corrupt::mangle_latex(gt),
                TextLayerQuality::OcrGenerated { error_rate } => {
                    let legibility = (1.0 - error_rate).clamp(0.0, 1.0);
                    corrupt::ocr_noise(gt, legibility, rng)
                }
                TextLayerQuality::Scrambled => {
                    let shuffled = corrupt::shuffle_word_order(gt, 0.8, rng);
                    corrupt::scramble_characters(&shuffled, 0.6, rng)
                }
                TextLayerQuality::Missing => String::new(),
            })
            .collect();
        TextLayer { quality, pages }
    }

    /// Number of pages covered by the layer.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Whether the layer contains any non-whitespace text at all.
    pub fn has_text(&self) -> bool {
        self.pages.iter().any(|p| !p.trim().is_empty())
    }

    /// Concatenated embedded text of all pages, separated by form feeds.
    pub fn full_text(&self) -> String {
        self.pages.join("\u{c}")
    }

    /// Embedded text of one page, if it exists.
    pub fn page(&self, index: usize) -> Option<&str> {
        self.pages.get(index).map(|s| s.as_str())
    }

    /// Total number of characters across all pages.
    pub fn char_count(&self) -> usize {
        self.pages.iter().map(|p| p.chars().count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gt_pages() -> Vec<String> {
        vec![
            "The enzyme kinetics follow Michaelis Menten behaviour with $$ v = \\frac{V_m S}{K_m + S} $$ in vitro.".to_string(),
            "Scaling laws govern the throughput of parallel parsing campaigns on leadership class systems.".to_string(),
        ]
    }

    #[test]
    fn clean_layer_equals_ground_truth() {
        let gt = gt_pages();
        let layer = TextLayer::clean(&gt);
        assert_eq!(layer.pages, gt);
        assert!(layer.has_text());
        assert_eq!(layer.page_count(), 2);
        assert_eq!(layer.page(0).unwrap(), gt[0]);
        assert!(layer.page(5).is_none());
    }

    #[test]
    fn missing_layer_has_no_text() {
        let layer = TextLayer::missing(3);
        assert_eq!(layer.page_count(), 3);
        assert!(!layer.has_text());
        assert_eq!(layer.char_count(), 0);
        assert_eq!(layer.expected_fidelity_of_quality(), 0.0);
    }

    #[test]
    fn ocr_generated_layer_degrades_with_error_rate() {
        let gt = gt_pages();
        let mut rng = StdRng::seed_from_u64(7);
        let mild =
            TextLayer::from_ground_truth(&gt, TextLayerQuality::OcrGenerated { error_rate: 0.05 }, &mut rng);
        let mut rng = StdRng::seed_from_u64(7);
        let severe =
            TextLayer::from_ground_truth(&gt, TextLayerQuality::OcrGenerated { error_rate: 0.6 }, &mut rng);
        let dist = |a: &str, b: &str| a.chars().zip(b.chars()).filter(|(x, y)| x != y).count();
        assert!(dist(&gt[0], &severe.pages[0]) >= dist(&gt[0], &mild.pages[0]));
    }

    #[test]
    fn scrambled_layer_differs_from_ground_truth() {
        let gt = gt_pages();
        let mut rng = StdRng::seed_from_u64(11);
        let layer = TextLayer::from_ground_truth(&gt, TextLayerQuality::Scrambled, &mut rng);
        assert_ne!(layer.pages[0], gt[0]);
        assert!(layer.has_text());
    }

    #[test]
    fn latex_mangled_layer_strips_markup() {
        let gt = gt_pages();
        let mut rng = StdRng::seed_from_u64(13);
        let layer = TextLayer::from_ground_truth(&gt, TextLayerQuality::LatexMangled, &mut rng);
        assert!(!layer.pages[0].contains('\\'));
        assert!(!layer.pages[0].contains('$'));
    }

    #[test]
    fn expected_fidelity_ordering() {
        assert!(
            TextLayerQuality::Clean.expected_fidelity() > TextLayerQuality::LatexMangled.expected_fidelity()
        );
        assert!(
            TextLayerQuality::LatexMangled.expected_fidelity()
                > TextLayerQuality::Scrambled.expected_fidelity()
        );
        assert_eq!(TextLayerQuality::Missing.expected_fidelity(), 0.0);
        let o = TextLayerQuality::OcrGenerated { error_rate: 0.1 };
        assert!(o.expected_fidelity() > 0.5);
    }

    #[test]
    fn full_text_joins_pages_with_form_feed() {
        let layer = TextLayer::clean(&["a".to_string(), "b".to_string()]);
        assert_eq!(layer.full_text(), "a\u{c}b");
    }

    impl TextLayer {
        fn expected_fidelity_of_quality(&self) -> f64 {
            self.quality.expected_fidelity()
        }
    }
}
