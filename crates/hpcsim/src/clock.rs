//! Simulated time.
//!
//! The resource-scaling controller in `adaparse` is a feedback loop over
//! *time measurements*: each wave it compares how long the extraction and
//! parsing stages ran. Driving it from wall-clock time couples the control
//! trace to the host the code happens to run on; driving it from a
//! [`SimClock`] advanced by the executor's simulated makespans makes the
//! whole loop a pure function of the workload — the same campaign replays
//! the same trace on any machine, which is what lets closed-loop scaling be
//! tested (and ablated) deterministically.

use serde::{Deserialize, Serialize};

/// A monotonic simulated-time clock, denominated in seconds.
///
/// The clock never reads the host's time: it only moves when the caller
/// [`advance`](SimClock::advance)s it, typically by the
/// [`makespan_seconds`](crate::CampaignReport::makespan_seconds) of a
/// completed simulated wave. Two runs that advance a clock by the same
/// durations read the same timestamps, bit for bit.
///
/// # Example
///
/// ```
/// use hpcsim::SimClock;
///
/// let mut clock = SimClock::new();
/// assert_eq!(clock.now_seconds(), 0.0);
/// clock.advance(12.5);
/// clock.advance(2.5);
/// assert_eq!(clock.now_seconds(), 15.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SimClock {
    now_seconds: f64,
}

impl SimClock {
    /// A clock at simulated time zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// A clock starting at an arbitrary simulated time (e.g. to resume a
    /// campaign mid-stream).
    pub fn starting_at(seconds: f64) -> Self {
        SimClock { now_seconds: seconds.max(0.0) }
    }

    /// The current simulated time in seconds.
    pub fn now_seconds(&self) -> f64 {
        self.now_seconds
    }

    /// Advance the clock by `seconds` and return the new time. Negative or
    /// NaN durations are ignored (the clock is monotonic by construction).
    pub fn advance(&mut self, seconds: f64) -> f64 {
        if seconds.is_finite() && seconds > 0.0 {
            self.now_seconds += seconds;
        }
        self.now_seconds
    }

    /// Move the clock forward to an absolute time; earlier (or non-finite)
    /// targets leave it unchanged. Returns the new time.
    pub fn advance_to(&mut self, seconds: f64) -> f64 {
        if seconds.is_finite() && seconds > self.now_seconds {
            self.now_seconds = seconds;
        }
        self.now_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_accumulates_durations() {
        let mut clock = SimClock::new();
        assert_eq!(clock.advance(1.5), 1.5);
        assert_eq!(clock.advance(2.5), 4.0);
        assert_eq!(clock.now_seconds(), 4.0);
    }

    #[test]
    fn clock_is_monotonic_under_bad_inputs() {
        let mut clock = SimClock::starting_at(10.0);
        clock.advance(-5.0);
        clock.advance(f64::NAN);
        clock.advance_to(3.0);
        clock.advance_to(f64::INFINITY);
        assert_eq!(clock.now_seconds(), 10.0);
        clock.advance_to(12.0);
        assert_eq!(clock.now_seconds(), 12.0);
        assert_eq!(SimClock::starting_at(-1.0).now_seconds(), 0.0);
    }
}
