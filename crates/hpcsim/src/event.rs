//! The discrete-event ready queue.
//!
//! [`ReadyQueue`] is the ordering heart of the dependency-aware executor: a
//! time-ordered min-heap whose ties break by an explicit id (then insertion
//! order), so the engine's scheduling decisions are bitwise-independent of
//! the order work was submitted in. Since the executor became
//! event-interleaved it is also the *session-persistent* admission queue:
//! batches enqueued between drains push into one shared queue, so a later
//! batch's task released earlier (or tying on time with a smaller id) is
//! dispatched first, regardless of which `submit` call carried it.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry of a [`ReadyQueue`]: a payload released at a time, ordered by
/// `(time, id, insertion order)`.
#[derive(Debug, Clone)]
struct Ready<T> {
    time: f64,
    id: u64,
    sequence: u64,
    payload: T,
}

impl<T> PartialEq for Ready<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.id == other.id && self.sequence == other.sequence
    }
}

impl<T> Eq for Ready<T> {}

impl<T> Ord for Ready<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering for the max-heap: earliest time first, then the
        // smallest id, then insertion order (covers duplicate ids).
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.id.cmp(&self.id))
            .then_with(|| other.sequence.cmp(&self.sequence))
    }
}

impl<T> PartialOrd for Ready<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered queue whose ties break by an explicit id instead of
/// insertion order — the dependency-aware executor's *ready queue*.
///
/// Two tasks becoming ready at the same simulated time are released in task-id
/// order no matter when (or in what order) they were pushed, which is what
/// makes DAG schedules independent of task submission order. The same
/// structure doubles as the executor's free-slot index: keyed by
/// `(free-at time, slot index)` it always yields the lowest-indexed slot among
/// the earliest-free ones.
#[derive(Debug, Clone)]
pub struct ReadyQueue<T> {
    heap: BinaryHeap<Ready<T>>,
    sequence: u64,
}

impl<T> Default for ReadyQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ReadyQueue<T> {
    /// Empty queue.
    pub fn new() -> Self {
        ReadyQueue { heap: BinaryHeap::new(), sequence: 0 }
    }

    /// Release `payload` at `time`, tie-breaking by `id`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN.
    pub fn push(&mut self, time: f64, id: u64, payload: T) {
        assert!(!time.is_nan(), "ready time must not be NaN");
        self.heap.push(Ready { time, id, sequence: self.sequence, payload });
        self.sequence += 1;
    }

    /// Pop the earliest entry as `(time, id, payload)`.
    pub fn pop(&mut self) -> Option<(f64, u64, T)> {
        self.heap.pop().map(|r| (r.time, r.id, r.payload))
    }

    /// Time of the next entry without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|r| r.time)
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ready_queue_orders_by_time_then_id_not_insertion() {
        let mut q = ReadyQueue::new();
        q.push(2.0, 9, "late");
        q.push(1.0, 7, "b");
        q.push(1.0, 3, "a"); // same time, smaller id, inserted later
        assert_eq!(q.peek_time(), Some(1.0));
        assert_eq!(q.pop(), Some((1.0, 3, "a")));
        assert_eq!(q.pop(), Some((1.0, 7, "b")));
        assert_eq!(q.pop(), Some((2.0, 9, "late")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ready_queue_duplicate_ids_fall_back_to_insertion_order() {
        let mut q = ReadyQueue::new();
        q.push(1.0, 4, 1);
        q.push(1.0, 4, 2);
        assert_eq!(q.pop(), Some((1.0, 4, 1)));
        assert_eq!(q.pop(), Some((1.0, 4, 2)));
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn len_and_empty() {
        let mut q: ReadyQueue<()> = ReadyQueue::new();
        assert!(q.is_empty());
        q.push(0.0, 0, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn ready_queue_nan_time_panics() {
        ReadyQueue::new().push(f64::NAN, 0, ());
    }
}
