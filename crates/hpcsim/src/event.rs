//! A minimal discrete-event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a simulation time.
#[derive(Debug, Clone)]
struct Scheduled<T> {
    time: f64,
    sequence: u64,
    payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.sequence == other.sequence
    }
}

impl<T> Eq for Scheduled<T> {}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we need the earliest
        // event first; ties break by insertion order for determinism.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.sequence.cmp(&self.sequence))
    }
}

impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue with deterministic FIFO tie-breaking.
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    sequence: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), sequence: 0 }
    }

    /// Schedule a payload at an absolute simulation time.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN.
    pub fn push(&mut self, time: f64, payload: T) {
        assert!(!time.is_nan(), "event time must not be NaN");
        self.heap.push(Scheduled { time, sequence: self.sequence, payload });
        self.sequence += 1;
    }

    /// Pop the earliest event, returning `(time, payload)`.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        self.heap.pop().map(|s| (s.time, s.payload))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        assert_eq!(q.peek_time(), Some(1.0));
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(5.0, 1);
        q.push(5.0, 2);
        q.push(5.0, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.push(0.0, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_panics() {
        EventQueue::new().push(f64::NAN, ());
    }
}
