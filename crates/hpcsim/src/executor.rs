//! The Parsl-like workflow executor.
//!
//! Tasks are dispatched to per-node CPU and GPU worker slots as slots become
//! free (a deterministic discrete-event simulation over per-slot
//! availability times). The executor reproduces the orchestration
//! optimizations of the paper's §5.2 / §6.1 so they can be ablated:
//!
//! * **warm-start workers** — ML model weights persist on a worker across
//!   task boundaries instead of being reloaded per task,
//! * **node-local staging** — inputs arrive as aggregated archives instead of
//!   many small files, removing metadata pressure on the shared filesystem,
//! * **prefetching** — stage-in of the next batch overlaps with compute,
//! * **node affinity** — a task whose input was staged on a node
//!   ([`Task::preferred_node`]) runs there unless queueing makes an off-node
//!   slot worthwhile *after* paying the [`LustreModel`] data-locality
//!   penalty; the resource-scaling controller's node plans rely on this,
//! * **pair co-scheduling** — the extract and parse tasks of one document
//!   ([`Task::group`]) prefer the same node: the first member of a group
//!   anchors it to the node it ran on, and later members find their input
//!   there rather than where the original plan staged it.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::event::EventQueue;
use crate::lustre::LustreModel;
use crate::profiler::GpuTrace;
use crate::task::{ClusterConfig, GroupRole, SlotKind, Task};

/// Executor options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutorConfig {
    /// Keep ML models resident on workers across tasks (paper §5.2).
    pub warm_start: bool,
    /// Aggregate inputs into node-local archives (paper §6.1).
    pub node_local_staging: bool,
    /// Overlap stage-in with computation.
    pub prefetch: bool,
    /// Steer the later members of a [`Task::group`] pair toward the node
    /// where the pair's first member ran (its output — the pair's actual
    /// data location — lives there). When disabled the scheduler falls back
    /// to each task's own [`Task::preferred_node`] and pays the
    /// data-locality penalty for the re-fetch it didn't know it needed;
    /// that is the ablation baseline.
    pub co_schedule_pairs: bool,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig { warm_start: true, node_local_staging: true, prefetch: true, co_schedule_pairs: true }
    }
}

/// Aggregate timing of one pipeline stage over a (simulated) campaign or
/// wave. Only tasks carrying a [`Task::group`] are attributed to a stage;
/// ungrouped tasks contribute to the report's totals but not to this
/// breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StageTiming {
    /// Slot-busy seconds summed over the stage's tasks (compute, stage-in,
    /// locality re-fetches, and cold starts included).
    pub busy_seconds: f64,
    /// Number of completed tasks attributed to the stage.
    pub tasks: usize,
    /// Simulated time at which the stage's last task finished.
    pub finished_at_seconds: f64,
}

/// Per-stage timing breakdown of a campaign, keyed by [`GroupRole`]. This is
/// what the resource-scaling controller consumes as its per-wave stage
/// samples when it is driven from simulated time instead of wall time.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StageTimings {
    /// Tasks whose group role is [`GroupRole::Extract`].
    pub extract: StageTiming,
    /// Tasks whose group role is [`GroupRole::Parse`].
    pub parse: StageTiming,
}

impl StageTimings {
    fn record(&mut self, role: GroupRole, busy_seconds: f64, end: f64) {
        let timing = match role {
            GroupRole::Extract => &mut self.extract,
            GroupRole::Parse => &mut self.parse,
        };
        timing.busy_seconds += busy_seconds;
        timing.tasks += 1;
        timing.finished_at_seconds = timing.finished_at_seconds.max(end);
    }
}

/// Outcome of a simulated campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Number of tasks that ran.
    pub tasks_completed: usize,
    /// Number of tasks that could not run (no slot of the required kind).
    pub tasks_skipped: usize,
    /// Wall-clock length of the campaign in seconds.
    pub makespan_seconds: f64,
    /// Completed tasks per second.
    pub throughput_per_second: f64,
    /// Total busy CPU-slot seconds.
    pub cpu_busy_seconds: f64,
    /// Total busy GPU-slot seconds.
    pub gpu_busy_seconds: f64,
    /// Seconds spent staging input data, *including* any data-locality
    /// re-fetch seconds (which are also broken out separately in
    /// [`locality_penalty_seconds`](Self::locality_penalty_seconds) — do not
    /// sum the two fields).
    pub stage_in_seconds: f64,
    /// Number of cold starts (model loads) that were paid.
    pub cold_starts: usize,
    /// Tasks with a preferred node that ran elsewhere (each paid the
    /// data-locality penalty).
    pub non_local_tasks: usize,
    /// Total seconds of data-locality penalty paid by off-node placements
    /// (a breakdown of, not an addition to,
    /// [`stage_in_seconds`](Self::stage_in_seconds)).
    pub locality_penalty_seconds: f64,
    /// Task pairs ([`Task::group`]) whose members ran on the same node.
    /// Counted per later member, so a two-task pair contributes at most one.
    pub co_located_pairs: usize,
    /// Task pairs whose members were split across nodes (each later member
    /// paid the data-locality penalty to re-fetch its partner's output).
    pub split_pairs: usize,
    /// Per-stage busy-time breakdown of the grouped tasks — the wave stage
    /// timings the resource-scaling controller consumes under simulated
    /// time.
    pub stage_timings: StageTimings,
    /// Per-GPU busy trace (Figure 4).
    pub gpu_trace: GpuTrace,
}

impl CampaignReport {
    /// Mean GPU utilization over the campaign.
    pub fn mean_gpu_utilization(&self) -> f64 {
        self.gpu_trace.mean_utilization(self.makespan_seconds)
    }
}

#[derive(Debug, Clone)]
struct Slot {
    kind: SlotKind,
    /// Home node of the slot: tasks whose `preferred_node` differs pay the
    /// filesystem's data-locality penalty when scheduled here.
    node: usize,
    gpu_index: Option<usize>,
    warm: bool,
}

/// The workflow executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkflowExecutor {
    config: ExecutorConfig,
}

impl WorkflowExecutor {
    /// Create an executor with the given options.
    pub fn new(config: ExecutorConfig) -> Self {
        WorkflowExecutor { config }
    }

    /// The executor's configuration.
    pub fn config(&self) -> ExecutorConfig {
        self.config
    }

    /// Run a campaign: dispatch every task to the slot of its kind that
    /// finishes it earliest — a slot's availability time plus the *marginal*
    /// completion-time cost of the data-locality penalty the task would pay
    /// there (zero on its preferred node; elsewhere a [`LustreModel`]
    /// re-fetch, which prefetch can partly or fully hide under compute) —
    /// and report aggregate statistics. Ties prefer the task's own node
    /// (even a latency-free re-fetch burns shared-filesystem bandwidth),
    /// then the lowest slot index, so scheduling is fully deterministic;
    /// tasks without a preferred node see the classic
    /// earliest-available-slot policy.
    pub fn run(&self, tasks: &[Task], cluster: &ClusterConfig, filesystem: &LustreModel) -> CampaignReport {
        let mut slots = Vec::new();
        let mut gpu_count = 0usize;
        for node in 0..cluster.nodes {
            for _ in 0..cluster.cpu_slots_per_node {
                slots.push(Slot { kind: SlotKind::Cpu, node, gpu_index: None, warm: false });
            }
            for _ in 0..cluster.gpu_slots_per_node {
                slots.push(Slot { kind: SlotKind::Gpu, node, gpu_index: Some(gpu_count), warm: false });
                gpu_count += 1;
            }
        }
        let mut gpu_trace = GpuTrace::new(gpu_count);

        // Slot indices per kind (scan candidates in index order so the
        // strict `<` comparison below tie-breaks toward the lowest index)
        // and the time each slot becomes free again.
        let cpu_slots: Vec<usize> = (0..slots.len()).filter(|&i| slots[i].kind == SlotKind::Cpu).collect();
        let gpu_slots: Vec<usize> = (0..slots.len()).filter(|&i| slots[i].kind == SlotKind::Gpu).collect();
        let mut free_at = vec![0.0f64; slots.len()];

        // Affinity-oblivious campaigns (no task carries a preferred node or
        // a pair hint) pay no penalty anywhere, so earliest-free is optimal
        // and a per-kind event queue replaces the O(slots) scan per task.
        let mut queues = if tasks.iter().all(|t| t.preferred_node.is_none() && t.group.is_none()) {
            let mut free_cpu = EventQueue::new();
            let mut free_gpu = EventQueue::new();
            for (index, slot) in slots.iter().enumerate() {
                match slot.kind {
                    SlotKind::Cpu => free_cpu.push(0.0, index),
                    SlotKind::Gpu => free_gpu.push(0.0, index),
                }
            }
            Some((free_cpu, free_gpu))
        } else {
            None
        };

        let mut report = CampaignReport {
            tasks_completed: 0,
            tasks_skipped: 0,
            makespan_seconds: 0.0,
            throughput_per_second: 0.0,
            cpu_busy_seconds: 0.0,
            gpu_busy_seconds: 0.0,
            stage_in_seconds: 0.0,
            cold_starts: 0,
            non_local_tasks: 0,
            locality_penalty_seconds: 0.0,
            co_located_pairs: 0,
            split_pairs: 0,
            stage_timings: StageTimings::default(),
            gpu_trace: GpuTrace::new(gpu_count),
        };

        // Node each task group is anchored to: the first member of a group
        // to be scheduled leaves its output there, and that is where later
        // members of the same group find their input.
        let mut group_nodes: HashMap<u64, usize> = HashMap::new();

        // In steady state every node stages data concurrently; that is the
        // contention level the shared filesystem sees.
        let staging_concurrency = cluster.nodes;

        for task in tasks {
            let candidates = match task.slot {
                SlotKind::Cpu => &cpu_slots,
                SlotKind::Gpu => &gpu_slots,
            };
            if candidates.is_empty() {
                report.tasks_skipped += 1;
                continue;
            }
            let base_stage_in = filesystem.stage_in_seconds(
                task.input_mb,
                task.input_files,
                staging_concurrency,
                self.config.node_local_staging,
            );
            // Where the task's input actually lives: a pair's later members
            // find it on the node the pair was anchored to (the first
            // member's output is there); everyone else finds it where the
            // plan staged it. `believed_node` is what the *scheduler* acts
            // on — with co-scheduling disabled it naively trusts the static
            // plan and only discovers the re-fetch at accounting time.
            let anchor = task.group.as_ref().and_then(|g| group_nodes.get(&g.id).copied());
            let data_node = anchor.or(task.preferred_node);
            let believed_node = if self.config.co_schedule_pairs { data_node } else { task.preferred_node };
            let (slot_index, penalty) = if let Some((free_cpu, free_gpu)) = &mut queues {
                let queue = match task.slot {
                    SlotKind::Cpu => free_cpu,
                    SlotKind::Gpu => free_gpu,
                };
                let (_, index) = queue.pop().expect("candidates is non-empty, so the queue is too");
                (index, 0.0)
            } else {
                let off_node_penalty = match data_node {
                    Some(_) => filesystem.locality_penalty_seconds(task.input_mb, staging_concurrency),
                    None => 0.0,
                };
                // What the penalty costs in *completion time*: with prefetch
                // the re-fetch hides under compute, so only the part that
                // pushes stage-in past the compute time delays the task.
                let marginal_penalty = if self.config.prefetch {
                    task.compute_seconds.max(base_stage_in + off_node_penalty)
                        - task.compute_seconds.max(base_stage_in)
                } else {
                    off_node_penalty
                };
                // Pick the slot finishing the task earliest; ties prefer the
                // task's own node (a free local slot always beats an equally
                // free remote one, even when prefetch makes the re-fetch
                // latency-free — it still burns shared-filesystem bandwidth),
                // then the lowest slot index. Fully deterministic.
                let is_local = |slot: &Slot| match believed_node {
                    Some(node) => slot.node == node,
                    None => true,
                };
                let key_for = |index: usize| {
                    let local = is_local(&slots[index]);
                    (free_at[index] + if local { 0.0 } else { marginal_penalty }, !local)
                };
                let mut slot_index = candidates[0];
                let mut best_key = key_for(slot_index);
                for &candidate in &candidates[1..] {
                    let key = key_for(candidate);
                    if key < best_key {
                        best_key = key;
                        slot_index = candidate;
                    }
                }
                // The penalty actually *paid* is against the data's real
                // location, not the scheduler's belief: a scheduler that
                // ignored the pair anchor still re-fetches from the shared
                // filesystem when the data is elsewhere.
                let paid = match data_node {
                    Some(node) if slots[slot_index].node != node => off_node_penalty,
                    _ => 0.0,
                };
                (slot_index, paid)
            };
            // Anchor bookkeeping: the first member of a group claims the
            // node; later members are counted as co-located or split.
            if let Some(group) = &task.group {
                match group_nodes.get(&group.id) {
                    None => {
                        group_nodes.insert(group.id, slots[slot_index].node);
                    }
                    Some(&node) if node == slots[slot_index].node => report.co_located_pairs += 1,
                    Some(_) => report.split_pairs += 1,
                }
            }
            let slot = &mut slots[slot_index];
            if penalty > 0.0 {
                report.non_local_tasks += 1;
                report.locality_penalty_seconds += penalty;
            }

            let stage_in = base_stage_in + penalty;
            let cold = if slot.warm { 0.0 } else { task.cold_start_seconds };
            if cold > 0.0 {
                report.cold_starts += 1;
            }
            if self.config.warm_start && task.cold_start_seconds > 0.0 {
                slot.warm = true;
            }

            // Prefetching overlaps stage-in with compute; otherwise they are
            // serial. Model loading can never be overlapped.
            let busy = if self.config.prefetch {
                cold + task.compute_seconds.max(stage_in)
            } else {
                cold + stage_in + task.compute_seconds
            };
            let start = free_at[slot_index];
            let end = start + busy;
            report.stage_in_seconds += stage_in;
            match slot.kind {
                SlotKind::Cpu => report.cpu_busy_seconds += busy,
                SlotKind::Gpu => {
                    report.gpu_busy_seconds += busy;
                    if let Some(gpu) = slot.gpu_index {
                        if cold > 0.0 {
                            gpu_trace.record(gpu, start, start + cold, true);
                        }
                        gpu_trace.record(gpu, start + cold, end, false);
                    }
                }
            }
            if let Some(group) = &task.group {
                report.stage_timings.record(group.role, busy, end);
            }
            report.tasks_completed += 1;
            report.makespan_seconds = report.makespan_seconds.max(end);
            free_at[slot_index] = end;
            if let Some((free_cpu, free_gpu)) = &mut queues {
                match task.slot {
                    SlotKind::Cpu => free_cpu.push(end, slot_index),
                    SlotKind::Gpu => free_gpu.push(end, slot_index),
                }
            }
        }

        report.gpu_trace = gpu_trace;
        report.throughput_per_second = if report.makespan_seconds > 0.0 {
            report.tasks_completed as f64 / report.makespan_seconds
        } else {
            0.0
        };
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu_tasks(n: usize, seconds: f64) -> Vec<Task> {
        (0..n).map(|i| Task::new(i as u64, SlotKind::Cpu, seconds).with_input_mb(1.0)).collect()
    }

    fn gpu_tasks(n: usize, seconds: f64, cold: f64) -> Vec<Task> {
        (0..n)
            .map(|i| Task::new(i as u64, SlotKind::Gpu, seconds).with_input_mb(5.0).with_cold_start(cold))
            .collect()
    }

    #[test]
    fn all_tasks_complete_and_throughput_is_positive() {
        let report = WorkflowExecutor::new(ExecutorConfig::default()).run(
            &cpu_tasks(100, 0.2),
            &ClusterConfig::polaris(2),
            &LustreModel::default(),
        );
        assert_eq!(report.tasks_completed, 100);
        assert_eq!(report.tasks_skipped, 0);
        assert!(report.throughput_per_second > 0.0);
        assert!(report.makespan_seconds > 0.0);
    }

    #[test]
    fn more_nodes_mean_higher_throughput_until_fs_contention() {
        let tasks = cpu_tasks(4000, 0.05);
        let run = |nodes| {
            WorkflowExecutor::new(ExecutorConfig::default()).run(
                &tasks,
                &ClusterConfig::polaris(nodes),
                &LustreModel::default(),
            )
        };
        let one = run(1).throughput_per_second;
        let four = run(4).throughput_per_second;
        assert!(four > one * 2.0, "scaling 1→4 nodes should be near-linear ({one} vs {four})");
    }

    #[test]
    fn warm_start_pays_the_model_load_once_per_worker() {
        let tasks = gpu_tasks(40, 2.0, 15.0);
        let cluster = ClusterConfig::polaris(1);
        let fs = LustreModel::default();
        let warm = WorkflowExecutor::new(ExecutorConfig { warm_start: true, ..Default::default() })
            .run(&tasks, &cluster, &fs);
        let cold = WorkflowExecutor::new(ExecutorConfig { warm_start: false, ..Default::default() })
            .run(&tasks, &cluster, &fs);
        assert_eq!(warm.cold_starts, cluster.gpu_slots_per_node);
        assert_eq!(cold.cold_starts, 40);
        assert!(warm.makespan_seconds < cold.makespan_seconds);
        assert!(warm.throughput_per_second > cold.throughput_per_second * 1.5);
    }

    #[test]
    fn node_local_staging_helps_small_file_workloads() {
        let tasks: Vec<Task> = (0..200)
            .map(|i| Task::new(i, SlotKind::Cpu, 0.02).with_input_mb(2.0).with_input_files(50))
            .collect();
        let cluster = ClusterConfig::polaris(8);
        let fs = LustreModel::default();
        let staged = WorkflowExecutor::new(ExecutorConfig { node_local_staging: true, ..Default::default() })
            .run(&tasks, &cluster, &fs);
        let raw = WorkflowExecutor::new(ExecutorConfig { node_local_staging: false, ..Default::default() })
            .run(&tasks, &cluster, &fs);
        assert!(staged.makespan_seconds < raw.makespan_seconds);
    }

    #[test]
    fn gpu_trace_reflects_gpu_work_only() {
        let mut tasks = gpu_tasks(8, 3.0, 10.0);
        tasks.extend(cpu_tasks(8, 1.0));
        let report = WorkflowExecutor::new(ExecutorConfig::default()).run(
            &tasks,
            &ClusterConfig::polaris(1),
            &LustreModel::default(),
        );
        assert!(report.gpu_busy_seconds > 0.0);
        assert!(report.cpu_busy_seconds > 0.0);
        assert!(report.mean_gpu_utilization() > 0.0);
        assert!(report.mean_gpu_utilization() <= 1.0);
        let load: f64 = (0..report.gpu_trace.gpus()).map(|g| report.gpu_trace.model_load_seconds(g)).sum();
        assert!(load > 0.0, "model loads must appear in the trace");
    }

    #[test]
    fn missing_slot_kind_skips_tasks() {
        let cluster = ClusterConfig { nodes: 1, cpu_slots_per_node: 2, gpu_slots_per_node: 0 };
        let report = WorkflowExecutor::new(ExecutorConfig::default()).run(
            &gpu_tasks(5, 1.0, 0.0),
            &cluster,
            &LustreModel::default(),
        );
        assert_eq!(report.tasks_completed, 0);
        assert_eq!(report.tasks_skipped, 5);
        assert_eq!(report.throughput_per_second, 0.0);
    }

    #[test]
    fn affine_tasks_stay_on_their_node_when_it_is_free() {
        // Two nodes, plenty of slots: every task with a preferred node should
        // land there and pay no penalty.
        let cluster = ClusterConfig { nodes: 2, cpu_slots_per_node: 4, gpu_slots_per_node: 0 };
        let tasks: Vec<Task> = (0..8)
            .map(|i| {
                Task::new(i, SlotKind::Cpu, 0.5).with_input_mb(100.0).with_preferred_node((i % 2) as usize)
            })
            .collect();
        let report =
            WorkflowExecutor::new(ExecutorConfig::default()).run(&tasks, &cluster, &LustreModel::default());
        assert_eq!(report.tasks_completed, 8);
        assert_eq!(report.non_local_tasks, 0);
        assert_eq!(report.locality_penalty_seconds, 0.0);
    }

    #[test]
    fn off_node_placement_pays_the_locality_penalty() {
        // Every task prefers node 0, which has a single slot: the scheduler
        // spills onto node 1 only once the penalty beats the queueing delay,
        // and each spill is accounted.
        let cluster = ClusterConfig { nodes: 2, cpu_slots_per_node: 1, gpu_slots_per_node: 0 };
        let fs = LustreModel { per_node_bandwidth_mb_s: 100.0, ..Default::default() };
        let tasks: Vec<Task> = (0..16)
            .map(|i| Task::new(i, SlotKind::Cpu, 2.0).with_input_mb(50.0).with_preferred_node(0))
            .collect();
        let report = WorkflowExecutor::new(ExecutorConfig::default()).run(&tasks, &cluster, &fs);
        assert_eq!(report.tasks_completed, 16);
        assert!(report.non_local_tasks > 0, "a long node-0 queue must spill to node 1");
        assert!(report.non_local_tasks < 16, "node 0 must still serve its own tasks");
        assert!(report.locality_penalty_seconds > 0.0);
        // An affinity-oblivious workload (same shape, no preference) never
        // pays the penalty.
        let oblivious: Vec<Task> =
            (0..16).map(|i| Task::new(i, SlotKind::Cpu, 2.0).with_input_mb(50.0)).collect();
        let base = WorkflowExecutor::new(ExecutorConfig::default()).run(&oblivious, &cluster, &fs);
        assert_eq!(base.non_local_tasks, 0);
        assert!(report.makespan_seconds >= base.makespan_seconds);
    }

    #[test]
    fn good_node_plans_beat_hot_spotted_ones() {
        // All tasks pinned to one node serialize on its slots; spreading the
        // same tasks across both nodes halves the makespan (locality holds
        // in both cases — the penalty never fires).
        let cluster = ClusterConfig { nodes: 2, cpu_slots_per_node: 2, gpu_slots_per_node: 0 };
        let fs = LustreModel { per_node_bandwidth_mb_s: 10.0, ..Default::default() };
        let build = |spread: bool| -> Vec<Task> {
            (0..32)
                .map(|i| {
                    let node = if spread { (i % 2) as usize } else { 0 };
                    Task::new(i, SlotKind::Cpu, 1.0).with_input_mb(200.0).with_preferred_node(node)
                })
                .collect()
        };
        let executor = WorkflowExecutor::new(ExecutorConfig::default());
        let hot = executor.run(&build(false), &cluster, &fs);
        let spread = executor.run(&build(true), &cluster, &fs);
        assert!(
            spread.makespan_seconds < hot.makespan_seconds,
            "{} vs {}",
            spread.makespan_seconds,
            hot.makespan_seconds
        );
    }

    #[test]
    fn affinity_scheduling_is_deterministic() {
        let cluster = ClusterConfig::polaris(2);
        let tasks: Vec<Task> = (0..200)
            .map(|i| {
                Task::new(i, SlotKind::Cpu, 0.1 + (i % 7) as f64 * 0.03)
                    .with_input_mb(1.0 + (i % 3) as f64)
                    .with_preferred_node((i % 2) as usize)
            })
            .collect();
        let executor = WorkflowExecutor::new(ExecutorConfig::default());
        let a = executor.run(&tasks, &cluster, &LustreModel::default());
        let b = executor.run(&tasks, &cluster, &LustreModel::default());
        assert_eq!(a, b);
    }

    /// Extract+parse pairs: extraction on CPU staged per-plan, parse on CPU
    /// of the same document grouped under the doc id. `parse_node` is the
    /// node the *plan* would send the parse half to.
    fn paired_tasks(n: usize, extract_nodes: usize, parse_node: usize) -> Vec<Task> {
        let mut tasks = Vec::new();
        for i in 0..n as u64 {
            tasks.push(
                Task::new(i * 2, SlotKind::Cpu, 0.5)
                    .with_input_mb(200.0)
                    .with_preferred_node(i as usize % extract_nodes)
                    .with_group(i, GroupRole::Extract),
            );
            tasks.push(
                Task::new(i * 2 + 1, SlotKind::Cpu, 2.0)
                    .with_input_mb(200.0)
                    .with_preferred_node(parse_node)
                    .with_group(i, GroupRole::Parse),
            );
        }
        tasks
    }

    #[test]
    fn co_scheduling_keeps_pairs_together_and_avoids_the_penalty() {
        let cluster = ClusterConfig { nodes: 4, cpu_slots_per_node: 8, gpu_slots_per_node: 0 };
        let fs = LustreModel { per_node_bandwidth_mb_s: 100.0, ..Default::default() };
        // The plan sends every parse half to node 3, but each pair's data
        // ends up wherever its extract half ran (nodes 0–2). Eight pairs fit
        // node 3's slots, so the naive schedule never spills back by luck.
        let tasks = paired_tasks(8, 3, 3);
        let paired = WorkflowExecutor::new(ExecutorConfig::default()).run(&tasks, &cluster, &fs);
        assert_eq!(paired.tasks_completed, 16);
        assert_eq!(paired.co_located_pairs, 8, "every pair should reunite on its anchor node");
        assert_eq!(paired.split_pairs, 0);
        assert_eq!(paired.locality_penalty_seconds, 0.0);

        let naive = WorkflowExecutor::new(ExecutorConfig { co_schedule_pairs: false, ..Default::default() })
            .run(&tasks, &cluster, &fs);
        assert_eq!(naive.co_located_pairs, 0, "the plan separates every pair");
        assert_eq!(naive.split_pairs, 8);
        assert!(naive.locality_penalty_seconds > 0.0, "split pairs must pay the re-fetch");
        assert!(naive.non_local_tasks > 0);
        assert!(
            paired.locality_penalty_seconds < naive.locality_penalty_seconds,
            "co-scheduling must reduce the locality penalty"
        );
    }

    #[test]
    fn stage_timings_attribute_grouped_busy_time_per_role() {
        let cluster = ClusterConfig { nodes: 2, cpu_slots_per_node: 4, gpu_slots_per_node: 0 };
        let tasks = paired_tasks(8, 2, 1);
        let report =
            WorkflowExecutor::new(ExecutorConfig::default()).run(&tasks, &cluster, &LustreModel::default());
        assert_eq!(report.stage_timings.extract.tasks, 8);
        assert_eq!(report.stage_timings.parse.tasks, 8);
        assert!(report.stage_timings.extract.busy_seconds > 0.0);
        // Parse compute is 4× extract compute per task, so its busy time
        // dominates.
        assert!(report.stage_timings.parse.busy_seconds > report.stage_timings.extract.busy_seconds);
        assert!(report.stage_timings.parse.finished_at_seconds <= report.makespan_seconds + 1e-9);
        // Ungrouped tasks stay out of the breakdown.
        let plain = WorkflowExecutor::new(ExecutorConfig::default()).run(
            &cpu_tasks(5, 1.0),
            &cluster,
            &LustreModel::default(),
        );
        assert_eq!(plain.stage_timings, StageTimings::default());
    }

    #[test]
    fn paired_scheduling_is_deterministic() {
        let cluster = ClusterConfig::polaris(2);
        let tasks = paired_tasks(40, 2, 0);
        let executor = WorkflowExecutor::new(ExecutorConfig::default());
        let a = executor.run(&tasks, &cluster, &LustreModel::default());
        let b = executor.run(&tasks, &cluster, &LustreModel::default());
        assert_eq!(a, b);
    }

    #[test]
    fn empty_campaign_is_a_noop() {
        let report = WorkflowExecutor::new(ExecutorConfig::default()).run(
            &[],
            &ClusterConfig::polaris(1),
            &LustreModel::default(),
        );
        assert_eq!(report.tasks_completed, 0);
        assert_eq!(report.makespan_seconds, 0.0);
    }
}
