//! The Parsl-like workflow executor — an event-driven, dependency-aware
//! discrete-event engine.
//!
//! Tasks carry precedence edges ([`Task::depends_on`]) and are released by a
//! ready queue only once every dependency has finished; ready tasks are
//! dispatched to per-node CPU and GPU worker slots in deterministic
//! `(ready time, task id)` order. The engine is resumable *and
//! event-interleaved*: an [`ExecutorSession`] keeps slot availability,
//! per-node warm pools, pair anchors, a persistent pending set, and the
//! simulated clock alive across batches. [`ExecutorSession::submit_with`]
//! enqueues a batch under a *release floor* (the simulated time of the
//! decision that created it) without running the engine, and
//! [`ExecutorSession::advance_to_frontier`] drains everything pending in
//! global event order — so a closed-loop controller can admit window *i+1*
//! at an event boundary while window *i*'s stragglers are still in flight,
//! without ever barriering the cluster. [`CausalityMode`] selects whether
//! release floors are enforced (no task starts before the decision that
//! created it — achievable schedules) or merely audited (the legacy
//! retro-fill placement, an optimistic lower bound, with the violations
//! counted in [`CampaignReport::retro_filled_tasks`]). The executor
//! reproduces the orchestration optimizations of the paper's §5.2 / §6.1 so
//! they can be ablated:
//!
//! * **warm pools** — each node keeps a [`WarmPool`] of resident ML model
//!   weights keyed by the task's model label: reusing a resident model is
//!   free, loading an absent one pays the cold start, and exceeding the
//!   configurable pool capacity evicts the least-recently-used model (which
//!   then re-pays its cold start on return). Zero-cost models never occupy
//!   capacity,
//! * **node-local staging** — inputs arrive as aggregated archives instead of
//!   many small files, removing metadata pressure on the shared filesystem,
//! * **prefetching** — stage-in of the next batch overlaps with compute,
//! * **node affinity** — a task whose input was staged on a node
//!   ([`Task::preferred_node`]) runs there unless queueing makes an off-node
//!   slot worthwhile *after* paying the [`LustreModel`] data-locality
//!   penalty; the resource-scaling controller's node plans rely on this,
//! * **pair co-scheduling** — the extract and parse tasks of one document
//!   ([`Task::group`]) prefer the same node: the first member of a group
//!   anchors it to the node it ran on, and later members find their input
//!   there rather than where the original plan staged it,
//! * **dependency edges** — a parse task never starts before its extract
//!   partner finishes; cycles and dependents of skipped tasks are skipped
//!   (never deadlocked), and DAG schedules are bitwise-independent of task
//!   submission order thanks to the `(time, id)` ready-queue tie-break.
//!
//! [`submit`]: ExecutorSession::submit

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::clock::SimClock;
use crate::event::ReadyQueue;
use crate::intern::{ModelId, ModelInterner};
use crate::lustre::LustreModel;
use crate::profiler::GpuTrace;
use crate::slotindex::{FinishIndex, SlotIndex};
use crate::task::{ClusterConfig, GroupRole, SlotKind, Task};

/// When a batch's tasks may be placed relative to the decision that
/// created the batch (its *release floor* — see
/// [`SubmitOptions::release_seconds`]).
///
/// The two modes share one scheduling engine; they differ only in whether
/// the release floor is *enforced* as a lower bound on task readiness or
/// merely *recorded* for audit:
///
/// * [`RetroFill`](Self::RetroFill) (the legacy default) lets a batch's
///   tasks start on any slot that is free — including slots that freed at
///   simulated times *before* the batch was submitted. This retroactive
///   fill approximates a perfectly pipelined controller and yields an
///   optimistic makespan — a guaranteed lower bound on the causal one for
///   dependency-free batches, and an empirical one on DAG workloads
///   (greedy list scheduling admits rare anomalies where delaying a
///   release shortens the schedule); the violation is quantified per run
///   in [`CampaignReport::retro_filled_tasks`] and
///   [`CampaignReport::decision_lag_seconds`].
/// * [`Causal`](Self::Causal) clamps every task's ready time to its
///   batch's release floor, so no task starts before the decision that
///   created it existed. Closed-loop makespans under this mode are
///   achievable schedules, and every scheduled task satisfies
///   `start_seconds >= submitted_at_seconds`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CausalityMode {
    /// Legacy placement: batch tasks may retro-fill slots that freed
    /// before the batch's release floor (bitwise-identical to the pre-PR 5
    /// engine).
    RetroFill,
    /// Causal placement: no task starts before its batch's release floor.
    Causal,
}

/// Per-batch submission options for [`ExecutorSession::submit_with`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SubmitOptions {
    /// The simulated time the decision that created this batch was made —
    /// the batch's *release floor*. `None` uses the session clock at
    /// submission (the latest completion seen so far), which reproduces
    /// the plain [`ExecutorSession::submit`] baseline in both causality
    /// modes. Under [`CausalityMode::Causal`] no task of the batch may
    /// start before this floor; under [`CausalityMode::RetroFill`] the
    /// floor is recorded on each [`ScheduledTask::submitted_at_seconds`]
    /// and in the retro-fill audit counters, but placement ignores it.
    pub release_seconds: Option<f64>,
}

/// How the dispatcher ranks candidate slots for a ready task.
///
/// [`EarliestSlot`](PlacementPolicy::EarliestSlot) is the legacy policy and
/// the default — bitwise-identical to the engine before this enum existed.
/// [`CostAware`](PlacementPolicy::CostAware) additionally charges each
/// candidate node the cold start the task would pay there (probing the
/// node's [`WarmPool`] residency without mutating it), so a slightly later
/// slot on a node that already holds the task's model warm can beat an
/// earlier slot on a cold node. The two policies coincide bitwise whenever
/// every task's cold start is zero or warm starts are disabled — pinned by
/// `tests/placement_equivalence.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Rank slots by effective start time only (availability plus any
    /// locality penalty): the legacy earliest-effective-slot scan.
    EarliestSlot,
    /// Rank slots by expected completion: effective start plus locality
    /// penalty plus cold-start-if-miss on the candidate node, with
    /// deterministic (cost, locality, idle-time, node, slot) tie-breaks.
    CostAware,
}

/// Executor options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutorConfig {
    /// Keep ML models resident in per-node [`WarmPool`]s across tasks
    /// (paper §5.2). When disabled every task with a positive cold-start
    /// cost pays it and the pools are never consulted.
    pub warm_start: bool,
    /// Aggregate inputs into node-local archives (paper §6.1).
    pub node_local_staging: bool,
    /// Overlap stage-in with computation.
    pub prefetch: bool,
    /// Steer the later members of a [`Task::group`] pair toward the node
    /// where the pair's first member ran (its output — the pair's actual
    /// data location — lives there). When disabled the scheduler falls back
    /// to each task's own [`Task::preferred_node`] and pays the
    /// data-locality penalty for the re-fetch it didn't know it needed;
    /// that is the ablation baseline.
    pub co_schedule_pairs: bool,
    /// Resident-model capacity of each node's [`WarmPool`]: `None` is
    /// unbounded (every model loaded on a node stays warm), `Some(k)` keeps
    /// at most `k` models resident per node with least-recently-used
    /// eviction, and `Some(0)` disables residency entirely (every task
    /// re-pays its cold start, but per-model miss counts are still
    /// reported — unlike `warm_start: false`, which bypasses the pools).
    pub warm_pool_capacity: Option<usize>,
    /// Whether batch release floors are enforced
    /// ([`CausalityMode::Causal`]) or merely audited
    /// ([`CausalityMode::RetroFill`], the legacy default — placement is
    /// bitwise-identical to the pre-causality engine).
    pub causality: CausalityMode,
    /// How candidate slots are ranked for each ready task
    /// ([`PlacementPolicy::EarliestSlot`], the legacy default, or the
    /// warm-aware [`PlacementPolicy::CostAware`]).
    pub placement: PlacementPolicy,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            warm_start: true,
            node_local_staging: true,
            prefetch: true,
            co_schedule_pairs: true,
            warm_pool_capacity: None,
            causality: CausalityMode::RetroFill,
            placement: PlacementPolicy::EarliestSlot,
        }
    }
}

/// Aggregate timing of one pipeline stage over a (simulated) campaign or
/// wave. Only tasks carrying a [`Task::group`] are attributed to a stage;
/// ungrouped tasks contribute to the report's totals but not to this
/// breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StageTiming {
    /// Slot-busy seconds summed over the stage's tasks (compute, stage-in,
    /// locality re-fetches, and cold starts included).
    pub busy_seconds: f64,
    /// Number of completed tasks attributed to the stage.
    pub tasks: usize,
    /// Simulated time at which the stage's last task finished.
    pub finished_at_seconds: f64,
}

/// Per-stage timing breakdown of a campaign, keyed by [`GroupRole`]. This is
/// what the resource-scaling controller consumes as its per-wave stage
/// samples when it is driven from simulated time instead of wall time.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StageTimings {
    /// Tasks whose group role is [`GroupRole::Extract`].
    pub extract: StageTiming,
    /// Tasks whose group role is [`GroupRole::Parse`].
    pub parse: StageTiming,
}

impl StageTimings {
    fn record(&mut self, role: GroupRole, busy_seconds: f64, end: f64) {
        let timing = match role {
            GroupRole::Extract => &mut self.extract,
            GroupRole::Parse => &mut self.parse,
        };
        timing.busy_seconds += busy_seconds;
        timing.tasks += 1;
        timing.finished_at_seconds = timing.finished_at_seconds.max(end);
    }

    fn absorb(&mut self, other: &StageTimings) {
        for (mine, theirs) in [(&mut self.extract, &other.extract), (&mut self.parse, &other.parse)] {
            mine.busy_seconds += theirs.busy_seconds;
            mine.tasks += theirs.tasks;
            mine.finished_at_seconds = mine.finished_at_seconds.max(theirs.finished_at_seconds);
        }
    }
}

/// Warm-pool counters of one model kind over a batch or campaign.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ModelWarmStats {
    /// The model key (the scheduled tasks' [`Task::label`]).
    pub model: String,
    /// Tasks that found the model resident and ready — no cold start paid.
    pub hits: usize,
    /// Tasks that paid the model's cold start (the model was absent, or
    /// still loading for a concurrently scheduled task).
    pub misses: usize,
    /// Times the model was evicted from a node's pool to make room.
    pub evictions: usize,
}

/// Outcome of one simulated campaign (or one [`ExecutorSession::submit`]
/// batch — batch reports carry batch-local sums, with
/// [`makespan_seconds`](Self::makespan_seconds) as the absolute simulated
/// time of the batch's last completion).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Number of tasks that ran.
    pub tasks_completed: usize,
    /// Number of tasks that could not run: no slot of the required kind, a
    /// dependency cycle, or a dependency that was itself skipped.
    pub tasks_skipped: usize,
    /// Simulated time of the last completion (campaign wall-clock length
    /// when the session started at time zero). For a later
    /// [`ExecutorSession::submit`] batch this is the *absolute* session
    /// time of the batch's last completion, not the batch's span.
    pub makespan_seconds: f64,
    /// Completed tasks per second over the report's own span: first task
    /// start to last completion (zero to makespan for a whole campaign or
    /// a fresh session's first batch).
    pub throughput_per_second: f64,
    /// Total busy CPU-slot seconds.
    pub cpu_busy_seconds: f64,
    /// Total busy GPU-slot seconds.
    pub gpu_busy_seconds: f64,
    /// Seconds spent staging input data, *including* any data-locality
    /// re-fetch seconds (which are also broken out separately in
    /// [`locality_penalty_seconds`](Self::locality_penalty_seconds) — do not
    /// sum the two fields).
    pub stage_in_seconds: f64,
    /// Number of cold starts (model loads) that were paid.
    pub cold_starts: usize,
    /// Tasks with a preferred node that ran elsewhere (each paid the
    /// data-locality penalty).
    pub non_local_tasks: usize,
    /// Total seconds of data-locality penalty paid by off-node placements
    /// (a breakdown of, not an addition to,
    /// [`stage_in_seconds`](Self::stage_in_seconds)).
    pub locality_penalty_seconds: f64,
    /// Task pairs ([`Task::group`]) whose members ran on the same node.
    /// Counted per later member, so a two-task pair contributes at most one.
    pub co_located_pairs: usize,
    /// Task pairs whose members were split across nodes (each later member
    /// paid the data-locality penalty to re-fetch its partner's output).
    pub split_pairs: usize,
    /// Length of the longest dependency chain, weighted by slot-busy
    /// seconds: the lower bound on the makespan with unlimited slots. With
    /// no dependency edges this is simply the longest single task.
    pub critical_path_seconds: f64,
    /// Seconds tasks spent *ready but waiting for a slot*, summed over
    /// tasks: the slot-contention (not dependency-stall) share of latency.
    /// A task's wait is measured from when it could first have existed —
    /// the later of its dependencies' finish and its batch's submission
    /// time (the session clock when [`submit`](ExecutorSession::submit)
    /// was called) — so a later batch is never charged for the session
    /// time that elapsed before it was submitted.
    pub queue_wait_seconds: f64,
    /// Tasks that started at a simulated time *before* their batch's
    /// release floor ([`ScheduledTask::submitted_at_seconds`]) — the
    /// causality violations [`CausalityMode::RetroFill`] permits. Always
    /// zero under [`CausalityMode::Causal`].
    pub retro_filled_tasks: usize,
    /// Seconds by which task readiness preceded the batch's release floor,
    /// summed over completed tasks (`max(0, floor − dependency-only ready
    /// time)` per task). Under [`CausalityMode::Causal`] this is the delay
    /// the floor *injected* to respect decision causality; under
    /// [`CausalityMode::RetroFill`] it is the same quantity unenforced —
    /// the magnitude of the retro-fill approximation.
    pub decision_lag_seconds: f64,
    /// Warm-pool hits: tasks that reused resident model weights for free.
    pub warm_hits: usize,
    /// Models evicted from per-node warm pools to make room.
    pub warm_evictions: usize,
    /// Seconds paid cold starts spent queued for a free model-load channel
    /// ([`crate::LustreModel::model_load_channels`]), summed over tasks —
    /// the thundering-herd serialization cost. Zero with unlimited
    /// channels. Equals the sum of [`ScheduledTask::herd_wait_seconds`]
    /// over the report's tasks, bitwise (folded in schedule order).
    pub herd_queue_seconds: f64,
    /// Largest number of model loads in flight at any instant — the peak
    /// of the cold-start herd the load channels had to absorb (exact, via
    /// a sweep over the report's load intervals).
    pub concurrent_cold_starts_peak: usize,
    /// Per-model warm-pool counters, sorted by model key. Empty when
    /// [`ExecutorConfig::warm_start`] is off (the pools are bypassed).
    pub warm_models: Vec<ModelWarmStats>,
    /// Per-stage busy-time breakdown of the grouped tasks — the wave stage
    /// timings the resource-scaling controller consumes under simulated
    /// time.
    pub stage_timings: StageTimings,
    /// Per-GPU busy trace (Figure 4).
    pub gpu_trace: GpuTrace,
}

impl CampaignReport {
    fn blank(gpus: usize) -> Self {
        CampaignReport {
            tasks_completed: 0,
            tasks_skipped: 0,
            makespan_seconds: 0.0,
            throughput_per_second: 0.0,
            cpu_busy_seconds: 0.0,
            gpu_busy_seconds: 0.0,
            stage_in_seconds: 0.0,
            cold_starts: 0,
            non_local_tasks: 0,
            locality_penalty_seconds: 0.0,
            co_located_pairs: 0,
            split_pairs: 0,
            critical_path_seconds: 0.0,
            queue_wait_seconds: 0.0,
            retro_filled_tasks: 0,
            decision_lag_seconds: 0.0,
            warm_hits: 0,
            warm_evictions: 0,
            herd_queue_seconds: 0.0,
            concurrent_cold_starts_peak: 0,
            warm_models: Vec::new(),
            stage_timings: StageTimings::default(),
            gpu_trace: GpuTrace::new(gpus),
        }
    }

    /// Mean GPU utilization over `[0, makespan]`. Meaningful for whole
    /// campaigns and cumulative session reports; for a later batch report
    /// the horizon includes session time before the batch began, deflating
    /// the figure — use the cumulative [`ExecutorSession::report`] instead.
    pub fn mean_gpu_utilization(&self) -> f64 {
        self.gpu_trace.mean_utilization(self.makespan_seconds)
    }
}

/// Exact maximum number of half-open `[start, end)` load intervals
/// overlapping at any instant, by an event sweep (ends processed before
/// starts at equal times, so a load beginning exactly when another finishes
/// does not count as concurrent with it).
fn peak_concurrent_loads(intervals: &[(f64, f64)]) -> usize {
    peak_concurrent_loads_below(intervals, f64::INFINITY)
}

/// [`peak_concurrent_loads`], restricted to instants strictly before
/// `bound`: the same sweep, taking the maximum only at start events `< bound`
/// (overlap counts can only change at starts, so the supremum over `[0,
/// bound)` is attained at one). This is the retirement-watermark carry:
/// computed over the still-present intervals *at retirement time* it is the
/// exact peak over all history below the watermark, because every interval
/// open anywhere in `[0, bound)` either ends after the previous watermark
/// (still present) or was already folded into the previous carry.
fn peak_concurrent_loads_below(intervals: &[(f64, f64)], bound: f64) -> usize {
    let mut starts: Vec<f64> = intervals.iter().map(|&(s, _)| s).collect();
    let mut ends: Vec<f64> = intervals.iter().map(|&(_, e)| e).collect();
    starts.sort_by(f64::total_cmp);
    ends.sort_by(f64::total_cmp);
    let (mut peak, mut open, mut closed) = (0usize, 0usize, 0usize);
    for &start in &starts {
        if start >= bound {
            break;
        }
        while closed < ends.len() && ends[closed] <= start {
            closed += 1;
        }
        open += 1;
        peak = peak.max(open - closed);
    }
    peak
}

/// Outcome of a [`WarmPool::acquire`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WarmAccess {
    /// The model was resident and its weights were ready: the cold start is
    /// free. Zero-cost models always hit (they have nothing to load and
    /// never occupy pool capacity).
    Hit,
    /// The model is resident but its weights were still loading for an
    /// earlier-scheduled task when this one started, so this task pays the
    /// cold start too (and may pull the load-finish time earlier).
    Loading,
    /// The model was absent: the task pays the cold start and the model
    /// becomes resident, evicting the least-recently-used model when the
    /// pool is over capacity (`evicted` names it).
    Miss {
        /// Interned id of the model evicted to make room, if the pool was
        /// at capacity (resolve it with [`ModelInterner::resolve`]).
        evicted: Option<ModelId>,
    },
}

#[derive(Debug, Clone, Copy)]
struct Resident {
    model: ModelId,
    /// Simulated time the model's weights finish loading; tasks starting
    /// earlier must pay the cold start themselves.
    loaded_at_seconds: f64,
    last_use: u64,
}

/// A node's pool of resident ML model weights, keyed by *interned* model
/// id ([`ModelId`], assigned by the session's [`ModelInterner`] from each
/// task's label).
///
/// Reusing a resident model is free; loading an absent one pays the task's
/// cold start; exceeding the pool capacity evicts the least-recently-used
/// model, which re-pays its cold start if it ever returns. Models with a
/// zero cold-start cost are always warm and never occupy capacity — there
/// are no weights to keep resident. Working in dense integer ids keeps the
/// per-dispatch residency check free of string hashing and cloning; the
/// labels are materialized back only when a report is built.
///
/// # Example
///
/// ```
/// use hpcsim::{ModelInterner, WarmAccess, WarmPool};
///
/// let mut models = ModelInterner::new();
/// let nougat = models.intern("Nougat");
/// let marker = models.intern("Marker");
/// let pymupdf = models.intern("PyMuPDF");
/// let mut pool = WarmPool::new(Some(1));
/// // First Nougat task loads the weights (15 s), finishing at t = 15.
/// assert_eq!(pool.acquire(nougat, 15.0, 0.0), WarmAccess::Miss { evicted: None });
/// // A task starting after the load reuses them for free.
/// assert_eq!(pool.acquire(nougat, 15.0, 20.0), WarmAccess::Hit);
/// // A different model evicts Nougat from the capacity-1 pool.
/// assert_eq!(pool.acquire(marker, 12.0, 30.0), WarmAccess::Miss { evicted: Some(nougat) });
/// // Zero-cost models are always warm and never occupy capacity.
/// assert_eq!(pool.acquire(pymupdf, 0.0, 0.0), WarmAccess::Hit);
/// assert!(pool.is_resident(marker));
/// ```
#[derive(Debug, Clone, Default)]
pub struct WarmPool {
    capacity: Option<usize>,
    resident: Vec<Resident>,
    access_sequence: u64,
}

impl WarmPool {
    /// A pool holding at most `capacity` resident models (`None` is
    /// unbounded).
    pub fn new(capacity: Option<usize>) -> Self {
        WarmPool { capacity, resident: Vec::new(), access_sequence: 0 }
    }

    /// Number of models currently resident.
    pub fn resident_models(&self) -> usize {
        self.resident.len()
    }

    /// Whether `model` is currently resident (loading counts as resident).
    pub fn is_resident(&self, model: ModelId) -> bool {
        self.resident.iter().any(|r| r.model == model)
    }

    /// Request `model` for a task starting at `start_seconds` whose cold
    /// start costs `cold_start_seconds`. Updates residency and returns what
    /// the task pays: on [`WarmAccess::Hit`] nothing, otherwise the cold
    /// start. Zero-cost models always hit without touching the pool.
    ///
    /// Pool state evolves in *call* order (the executor's schedule order),
    /// which need not be monotone in `start_seconds`: a task acquired
    /// earlier but starting later is charged against the load-finish time
    /// known at acquire time, even if a later acquire's concurrent load
    /// would have made the weights resident sooner. The accounting is
    /// therefore conservative (never undercounts cold starts) and fully
    /// deterministic.
    pub fn acquire(&mut self, model: ModelId, cold_start_seconds: f64, start_seconds: f64) -> WarmAccess {
        if cold_start_seconds <= 0.0 {
            return WarmAccess::Hit;
        }
        self.access_sequence += 1;
        let sequence = self.access_sequence;
        if let Some(entry) = self.resident.iter_mut().find(|r| r.model == model) {
            entry.last_use = sequence;
            if start_seconds >= entry.loaded_at_seconds {
                return WarmAccess::Hit;
            }
            // Still loading for an earlier-scheduled task: this one loads
            // concurrently and the weights are ready at the earlier finish.
            entry.loaded_at_seconds = entry.loaded_at_seconds.min(start_seconds + cold_start_seconds);
            return WarmAccess::Loading;
        }
        if self.capacity == Some(0) {
            return WarmAccess::Miss { evicted: None };
        }
        let evicted = if self.capacity.is_some_and(|cap| self.resident.len() >= cap) {
            let lru = self
                .resident
                .iter()
                .enumerate()
                .min_by_key(|(_, r)| r.last_use)
                .map(|(index, _)| index)
                .expect("pool at positive capacity is non-empty");
            Some(self.resident.swap_remove(lru).model)
        } else {
            None
        };
        self.resident.push(Resident {
            model,
            loaded_at_seconds: start_seconds + cold_start_seconds,
            last_use: sequence,
        });
        WarmAccess::Miss { evicted }
    }

    /// Whether a task starting at `start_seconds` whose cold start costs
    /// `cold_start_seconds` would find `model` warm — a side-effect-free
    /// residency *probe* for placement ranking. Unlike
    /// [`acquire`](Self::acquire) it never touches LRU order, the access
    /// sequence, or residency, so ranking any number of candidate nodes
    /// cannot perturb which model a later acquire evicts. Returns `true`
    /// exactly when `acquire` with the same arguments would return
    /// [`WarmAccess::Hit`]: zero-cost models are always warm, and a
    /// resident model still loading at `start_seconds` counts as a miss
    /// (the task would pay the cold start concurrently).
    pub fn would_hit(&self, model: ModelId, cold_start_seconds: f64, start_seconds: f64) -> bool {
        if cold_start_seconds <= 0.0 {
            return true;
        }
        self.resident.iter().find(|r| r.model == model).is_some_and(|r| start_seconds >= r.loaded_at_seconds)
    }
}

/// One scheduled task as placed by an [`ExecutorSession`], in schedule
/// order. This is the ground truth dependency tests assert against: a
/// task's [`start_seconds`](Self::start_seconds) is never earlier than any
/// of its dependencies' [`finish_seconds`](Self::finish_seconds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledTask {
    /// The task's id.
    pub id: u64,
    /// The task's model label.
    pub label: String,
    /// Slot kind the task ran on.
    pub kind: SlotKind,
    /// Node the task ran on.
    pub node: usize,
    /// Simulated time the task's dependencies were all satisfied — zero
    /// for a dependency-free task, *regardless of when its batch was
    /// submitted*. This is the raw release time, so for a later batch it
    /// can precede both the batch's submission and the task's start;
    /// [`CampaignReport::queue_wait_seconds`] floors its wait baseline at
    /// the batch submission clock, so `start_seconds - ready_seconds`
    /// deliberately does not reproduce that figure. Under
    /// [`CausalityMode::Causal`] the release clamp is applied *before*
    /// this field is recorded, so it is never below
    /// [`submitted_at_seconds`](Self::submitted_at_seconds).
    pub ready_seconds: f64,
    /// The release floor the task's batch was submitted under — the
    /// simulated time of the decision that created it
    /// ([`SubmitOptions::release_seconds`], defaulting to the session
    /// clock at submission). Every schedule row carries it so a trace can
    /// be audited for causality: under [`CausalityMode::Causal`] the
    /// engine guarantees `start_seconds >= submitted_at_seconds`; under
    /// [`CausalityMode::RetroFill`] rows violating that inequality are the
    /// retro-filled tasks counted in
    /// [`CampaignReport::retro_filled_tasks`].
    pub submitted_at_seconds: f64,
    /// Simulated time the task started.
    pub start_seconds: f64,
    /// Simulated time the task finished.
    pub finish_seconds: f64,
    /// Cold-start seconds this task paid (zero on a warm hit).
    pub cold_start_paid_seconds: f64,
    /// Seconds this task's paid model load waited for a free model-load
    /// channel ([`crate::LustreModel::model_load_channels`]) before its
    /// weights could start streaming. Zero on warm hits and with unlimited
    /// channels. The task's compute begins only after
    /// `start_seconds + herd_wait_seconds + cold_start_paid_seconds`.
    pub herd_wait_seconds: f64,
}

#[derive(Debug, Clone)]
struct Slot {
    kind: SlotKind,
    /// Home node of the slot: tasks whose `preferred_node` differs pay the
    /// filesystem's data-locality penalty when scheduled here.
    node: usize,
    gpu_index: Option<usize>,
}

#[derive(Debug, Clone, Copy)]
struct Finished {
    finish_seconds: f64,
    critical_path_seconds: f64,
}

/// Dependency-graph bookkeeping for one submitted-but-not-yet-dispatched
/// task. The pending set is laid out struct-of-arrays — the `Task` payloads
/// ([`ExecutorSession::pending_tasks`]), this metadata, and the dependent
/// edges live in three parallel arenas — so the drain's seeding and
/// leftover-cycle sweeps scan this small `Copy` record without dragging the
/// task payloads through cache.
#[derive(Debug, Clone, Copy)]
struct PendingMeta {
    /// The batch's release floor (see [`SubmitOptions::release_seconds`]):
    /// the queue-wait baseline in both modes, and the ready-time clamp
    /// under [`CausalityMode::Causal`].
    floor: f64,
    /// Latest dependency finish seen so far — the task's *unclamped* ready
    /// time. The release-time clamp is applied on top of this when the
    /// task enters the ready queue, so the engine can report how much
    /// readiness the floor deferred ([`CampaignReport::decision_lag_seconds`]).
    raw_ready: f64,
    /// Busy-weighted critical-path length inherited from dependencies.
    chain: f64,
    /// Undispatched dependencies remaining.
    remaining: usize,
    /// A dependency was skipped (here or in an earlier batch): this task
    /// can never find its input and will be skipped too.
    poisoned: bool,
    /// Popped from the ready queue (run or skipped). Entries never popped
    /// by the end of an *unbounded* drain are dependency cycles; a bounded
    /// [`ExecutorSession::advance_until`] leaves them pending instead.
    dispatched: bool,
    /// Already pushed onto the session's ready queue. The queue persists
    /// across bounded drains, so the per-drain seeding sweep must not push
    /// an entry a previous drain (or a mid-drain dependency release)
    /// already queued.
    seeded: bool,
}

/// A small set of arena indices that avoids heap allocation for the
/// overwhelmingly common zero- and one-element cases: in a campaign DAG
/// almost every task has at most one dependent (a document's parse waits on
/// its extract) and almost every id names exactly one pending instance, so
/// a `Vec` per entry would be a million tiny allocations per drain.
#[derive(Debug, Clone, Default)]
enum IndexList {
    /// No indices.
    #[default]
    None,
    /// Exactly one index.
    One(usize),
    /// Two or more indices, in insertion order.
    Many(Vec<usize>),
}

impl IndexList {
    fn push(&mut self, index: usize) {
        match self {
            IndexList::None => *self = IndexList::One(index),
            IndexList::One(first) => *self = IndexList::Many(vec![*first, index]),
            IndexList::Many(list) => list.push(index),
        }
    }

    fn iter(&self) -> IndexListIter<'_> {
        match self {
            IndexList::None => IndexListIter::Slice([].iter()),
            IndexList::One(index) => IndexListIter::One(Some(*index)),
            IndexList::Many(list) => IndexListIter::Slice(list.iter()),
        }
    }
}

impl IntoIterator for IndexList {
    type Item = usize;
    type IntoIter = IndexListIntoIter;

    fn into_iter(self) -> Self::IntoIter {
        match self {
            IndexList::None => IndexListIntoIter::One(None),
            IndexList::One(index) => IndexListIntoIter::One(Some(index)),
            IndexList::Many(list) => IndexListIntoIter::Many(list.into_iter()),
        }
    }
}

enum IndexListIter<'a> {
    One(Option<usize>),
    Slice(std::slice::Iter<'a, usize>),
}

impl Iterator for IndexListIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            IndexListIter::One(index) => index.take(),
            IndexListIter::Slice(iter) => iter.next().copied(),
        }
    }
}

enum IndexListIntoIter {
    One(Option<usize>),
    Many(std::vec::IntoIter<usize>),
}

impl Iterator for IndexListIntoIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            IndexListIntoIter::One(index) => index.take(),
            IndexListIntoIter::Many(iter) => iter.next(),
        }
    }
}

/// Per-model warm-pool counters, indexed by [`ModelId`] in the session's
/// integer-keyed side tables and materialized into [`ModelWarmStats`] (with
/// the label string) only when a report is built.
#[derive(Debug, Clone, Copy, Default)]
struct WarmCounts {
    hits: usize,
    misses: usize,
    evictions: usize,
}

/// Batch-local warm counters plus a touched flag, so the per-drain scratch
/// table can be reset by walking only the touched ids instead of
/// reallocating (or zeroing) the whole table every drain.
#[derive(Debug, Clone, Copy, Default)]
struct BatchWarm {
    counts: WarmCounts,
    touched: bool,
}

/// The workflow executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkflowExecutor {
    config: ExecutorConfig,
}

impl WorkflowExecutor {
    /// Create an executor with the given options.
    pub fn new(config: ExecutorConfig) -> Self {
        WorkflowExecutor { config }
    }

    /// The executor's configuration.
    pub fn config(&self) -> ExecutorConfig {
        self.config
    }

    /// Open a resumable session on `cluster`: slots start free at simulated
    /// time zero and warm pools start empty. Feed it batches via
    /// [`ExecutorSession::submit`]; slot availability, warm-pool residency,
    /// pair anchors, and completed-task finish times persist between
    /// batches, which is what lets a closed-loop controller interleave
    /// decisions with execution without barriering the cluster.
    pub fn session(&self, cluster: &ClusterConfig) -> ExecutorSession {
        ExecutorSession::new(self.config, cluster)
    }

    /// Run a whole campaign in one fresh session and report aggregate
    /// statistics. Scheduling policy: tasks are released in
    /// `(ready time, task id)` order and each is dispatched to the slot of
    /// its kind that starts it earliest — a slot's availability plus the
    /// *marginal* completion-time cost of the data-locality penalty the
    /// task would pay there (zero on its preferred node; elsewhere a
    /// [`LustreModel`] re-fetch, which prefetch can partly or fully hide
    /// under compute). Ties prefer the task's own node (even a latency-free
    /// re-fetch burns shared-filesystem bandwidth), then the
    /// longest-idle slot, then the lowest slot index, so scheduling is
    /// fully deterministic; tasks without dependencies or a preferred node
    /// see the classic earliest-available-slot policy.
    pub fn run(&self, tasks: &[Task], cluster: &ClusterConfig, filesystem: &LustreModel) -> CampaignReport {
        let mut session = self.session(cluster);
        session.submit(tasks, filesystem)
    }
}

/// A resumable executor run: the cluster's slots, warm pools, pair anchors,
/// and clock, persisting across [`submit`](Self::submit) batches. Created by
/// [`WorkflowExecutor::session`].
#[derive(Debug, Clone)]
pub struct ExecutorSession {
    config: ExecutorConfig,
    cluster: ClusterConfig,
    slots: Vec<Slot>,
    cpu_slots: Vec<usize>,
    gpu_slots: Vec<usize>,
    free_at: Vec<f64>,
    /// One warm pool per node.
    pools: Vec<WarmPool>,
    /// Anchor of each task group: the first member of a group to be
    /// scheduled leaves its output on `node`, and that is where later
    /// members of the same group find their input. `last_finish` tracks
    /// the latest member completion so fully finished anchors can be
    /// retired ([`retire_before`](Self::retire_before)).
    group_nodes: HashMap<u64, GroupAnchor>,
    /// Finish time and critical path of every completed task, so precedence
    /// edges may span submit batches.
    completed: HashMap<u64, Finished>,
    schedule: Vec<ScheduledTask>,
    clock: SimClock,
    cumulative: CampaignReport,
    /// Session-level label interner: warm pools and warm statistics work in
    /// dense [`ModelId`]s, with label strings materialized only in reports.
    interner: ModelInterner,
    /// Session-cumulative warm counters, indexed by [`ModelId`] and updated
    /// incrementally at dispatch time (no per-batch rebuild-and-merge).
    warm_totals: Vec<WarmCounts>,
    /// Per-drain warm-counter scratch, indexed by [`ModelId`]; reset via
    /// `batch_warm_touched` after each drain and reused across drains.
    batch_warm: Vec<BatchWarm>,
    /// Ids touched in `batch_warm` this drain, in first-touch order.
    batch_warm_touched: Vec<ModelId>,
    /// Ids of tasks skipped in any batch (no slot, cycle, or poisoned
    /// dependency), so dependents submitted in *later* batches are skipped
    /// too — the skip cascade spans batch boundaries, like the completion
    /// map does. The value is the simulated time the skip was recorded,
    /// so [`retire_before`](Self::retire_before) can age entries out.
    skipped: HashMap<u64, f64>,
    /// The session-persistent pending set: tasks enqueued by
    /// [`submit_with`](Self::submit_with) that
    /// [`advance_to_frontier`](Self::advance_to_frontier) has not yet
    /// drained. Cleared after every unbounded drain (the engine dispatches
    /// eagerly, so nothing lingers) and compacted down to the undispatched
    /// backlog after every bounded [`advance_until`](Self::advance_until);
    /// batches enqueued *between* drains share this arena and interleave
    /// in `(ready time, task id)` event order.
    /// Struct-of-arrays: `pending_meta[i]` and `pending_dependents[i]`
    /// belong to `pending_tasks[i]`.
    pending_tasks: Vec<Task>,
    /// Dependency bookkeeping parallel to `pending_tasks`.
    pending_meta: Vec<PendingMeta>,
    /// Arena indices of the pending tasks waiting on each pending task,
    /// parallel to `pending_tasks`.
    pending_dependents: Vec<IndexList>,
    /// Undispatched arena indices by task id, for wiring dependency edges
    /// across batches enqueued into the same drain.
    pending_by_id: HashMap<u64, IndexList>,
    /// The session-persistent ready queue feeding the dispatch loop.
    ready: ReadyQueue<usize>,
    /// Per-(node, kind) ordered index of slot availability: the dispatch
    /// loop's earliest-effective-slot query without the O(slots) scan.
    slot_index: SlotIndex,
    /// Log-structured index of task finish times backing
    /// [`tasks_in_flight_at`](Self::tasks_in_flight_at).
    finish_index: FinishIndex,
    /// Latest task start so far — the *dispatch frontier*: the simulated
    /// time at which the engine last ran out of undispatched work, which
    /// is the natural event boundary for a closed loop to make its next
    /// admission decision at.
    frontier: f64,
    /// Nodes currently receiving new work: dispatch only targets nodes
    /// `< active_nodes`. Tasks already running on a node drained by
    /// [`set_active_nodes`](Self::set_active_nodes) run to completion, and
    /// the node's warm pools and slot availability stay indexed for when
    /// the fleet grows back.
    active_nodes: usize,
    gpu_count: usize,
    /// Free-at times of the shared model-load channels
    /// ([`LustreModel::model_load_channels`]), persisting across batches so
    /// a herd straddling a drain boundary still queues. Resized at each
    /// drain to the filesystem's channel count; empty means unlimited.
    load_channel_free: Vec<f64>,
    /// `(load_start, load_end)` of every paid cold start this session *not
    /// yet retired*, in dispatch order — the sweep input for the
    /// session-exact [`CampaignReport::concurrent_cold_starts_peak`],
    /// combined with [`retired_peak`](Self::retire_before) for history
    /// below the watermark.
    load_intervals: Vec<(f64, f64)>,
    /// Exclusive upper bound of retired history: every observable at or
    /// after it is bitwise identical to the unretired session (see
    /// [`retire_before`](Self::retire_before)). Starts at zero.
    retire_watermark: f64,
    /// Exact concurrent-cold-start peak over `[0, retire_watermark)`,
    /// carried across retirements so the cumulative peak never needs the
    /// retired intervals again.
    retired_peak: usize,
    /// Schedule rows dropped by [`retire_before`](Self::retire_before):
    /// the base offset of the retained `schedule` vector in global
    /// schedule-order coordinates (see [`schedule_since`](Self::schedule_since)).
    retired_rows: usize,
    /// Interned model ids sorted by resolved label — the report's
    /// `warm_models` row order, maintained incrementally as the interner
    /// grows so [`report`](Self::report) never re-sorts label strings.
    warm_order: Vec<ModelId>,
}

/// Where a task group's output lives and when its members last finished.
#[derive(Debug, Clone, Copy)]
struct GroupAnchor {
    node: usize,
    /// Latest finish among the group's dispatched members — the earliest
    /// watermark at which the anchor itself can retire.
    last_finish: f64,
}

impl ExecutorSession {
    fn new(config: ExecutorConfig, cluster: &ClusterConfig) -> Self {
        let mut slots = Vec::new();
        let mut gpu_count = 0usize;
        for node in 0..cluster.nodes {
            for _ in 0..cluster.cpu_slots_per_node {
                slots.push(Slot { kind: SlotKind::Cpu, node, gpu_index: None });
            }
            for _ in 0..cluster.gpu_slots_per_node {
                slots.push(Slot { kind: SlotKind::Gpu, node, gpu_index: Some(gpu_count) });
                gpu_count += 1;
            }
        }
        let cpu_slots: Vec<usize> = (0..slots.len()).filter(|&i| slots[i].kind == SlotKind::Cpu).collect();
        let gpu_slots: Vec<usize> = (0..slots.len()).filter(|&i| slots[i].kind == SlotKind::Gpu).collect();
        let free_at = vec![0.0f64; slots.len()];
        let pools = (0..cluster.nodes).map(|_| WarmPool::new(config.warm_pool_capacity)).collect();
        let mut slot_index = SlotIndex::new(cluster.nodes);
        for (index, slot) in slots.iter().enumerate() {
            slot_index.insert(slot.kind, slot.node, 0.0, index);
        }
        ExecutorSession {
            config,
            cluster: *cluster,
            slots,
            cpu_slots,
            gpu_slots,
            free_at,
            pools,
            group_nodes: HashMap::new(),
            completed: HashMap::new(),
            schedule: Vec::new(),
            clock: SimClock::new(),
            cumulative: CampaignReport::blank(gpu_count),
            interner: ModelInterner::new(),
            warm_totals: Vec::new(),
            batch_warm: Vec::new(),
            batch_warm_touched: Vec::new(),
            skipped: HashMap::new(),
            pending_tasks: Vec::new(),
            pending_meta: Vec::new(),
            pending_dependents: Vec::new(),
            pending_by_id: HashMap::new(),
            ready: ReadyQueue::new(),
            slot_index,
            finish_index: FinishIndex::new(),
            frontier: 0.0,
            active_nodes: cluster.nodes,
            gpu_count,
            load_channel_free: Vec::new(),
            load_intervals: Vec::new(),
            retire_watermark: 0.0,
            retired_peak: 0,
            retired_rows: 0,
            warm_order: Vec::new(),
        }
    }

    /// The session's simulated time: the latest completion seen so far.
    pub fn now_seconds(&self) -> f64 {
        self.clock.now_seconds()
    }

    /// The session's *dispatch frontier*: the latest task start so far —
    /// the simulated time at which the engine last ran out of
    /// undispatched work. This is the event boundary a closed loop should
    /// stamp its next admission decision with
    /// ([`SubmitOptions::release_seconds`]): at the frontier every
    /// submitted task has been dispatched (stragglers may still be
    /// *running*), so a live controller would be refilling the queue.
    pub fn frontier_seconds(&self) -> f64 {
        self.frontier
    }

    /// Tasks enqueued by [`submit_with`](Self::submit_with) but not yet
    /// drained by [`advance_to_frontier`](Self::advance_to_frontier) or
    /// [`advance_until`](Self::advance_until).
    pub fn pending_task_count(&self) -> usize {
        self.pending_meta.iter().filter(|m| !m.dispatched).count()
    }

    /// Nodes currently receiving new work (see
    /// [`set_active_nodes`](Self::set_active_nodes)).
    pub fn active_nodes(&self) -> usize {
        self.active_nodes
    }

    /// Resize the *active fleet*: dispatch from now on only targets nodes
    /// `< nodes` (clamped to `1..=cluster.nodes`). This is the
    /// fleet-autoscaling hook for a resident service: shrinking never
    /// preempts — tasks already dispatched to a drained node run to
    /// completion, and the node keeps its slot availability and warm-pool
    /// residency so growing the fleet back is instant (resident models on
    /// returning nodes are still warm). Fully deterministic: the active
    /// fleet is always the prefix of the node list, so two runs issuing the
    /// same `set_active_nodes` calls at the same event boundaries place
    /// every task identically.
    pub fn set_active_nodes(&mut self, nodes: usize) {
        self.active_nodes = nodes.clamp(1, self.cluster.nodes);
    }

    /// Number of *dispatched* tasks still in flight at simulated time
    /// `seconds`: scheduled tasks whose finish lies strictly after it.
    /// This is the session half of a controller's true backlog — work
    /// admitted but not yet done — alongside whatever upstream documents
    /// have not been windowed yet. Tasks merely enqueued (pending, not
    /// yet drained) are not counted; call this after a drain. Backed by a
    /// [`FinishIndex`] (O(log² schedule) per query), so a per-epoch caller
    /// stays cheap even over a million-task campaign; the query time need
    /// not be monotone across calls.
    pub fn tasks_in_flight_at(&self, seconds: f64) -> usize {
        debug_assert!(
            self.retired_rows == 0 || seconds >= self.retire_watermark,
            "tasks_in_flight_at({seconds}) below the retirement watermark {}",
            self.retire_watermark
        );
        self.finish_index.count_after(seconds)
    }

    /// Every *retained* scheduled task, in schedule order (ready-queue pop
    /// order), across all submitted batches. Without retirement this is
    /// the full session schedule; after [`retire_before`](Self::retire_before)
    /// the retained rows start [`retired_rows`](Self::retired_rows) deep
    /// into global schedule order — cursor-based harvesters should use
    /// [`schedule_since`](Self::schedule_since) /
    /// [`schedule_len`](Self::schedule_len) instead of indexing this slice.
    pub fn schedule(&self) -> &[ScheduledTask] {
        &self.schedule
    }

    /// Total schedule rows ever produced (retired rows included): the
    /// global-order cursor value a harvester holds after consuming
    /// everything. `schedule_len() - retired_rows()` rows are retained.
    pub fn schedule_len(&self) -> usize {
        self.retired_rows + self.schedule.len()
    }

    /// Schedule rows dropped by [`retire_before`](Self::retire_before) so
    /// far — the base offset of [`schedule`](Self::schedule) in global
    /// schedule order.
    pub fn retired_rows(&self) -> usize {
        self.retired_rows
    }

    /// The retained schedule rows from global cursor position `cursor`
    /// (0-based over all rows ever produced) to the end — the harvest API
    /// for resident loops: read `schedule_since(cursor)`, then set `cursor
    /// = schedule_len()`. Identical, row for row, to
    /// `&schedule()[cursor..]` on a never-retired session.
    ///
    /// # Panics
    ///
    /// Panics if `cursor` points below the retirement watermark (those
    /// rows are gone — the caller failed the harvest-before-retire
    /// contract) or past [`schedule_len`](Self::schedule_len).
    pub fn schedule_since(&self, cursor: usize) -> &[ScheduledTask] {
        assert!(
            cursor >= self.retired_rows,
            "schedule cursor {cursor} points below the retirement watermark ({} rows retired)",
            self.retired_rows
        );
        &self.schedule[cursor - self.retired_rows..]
    }

    /// Exclusive upper bound of retired history — zero until
    /// [`retire_before`](Self::retire_before) is first called.
    pub fn retire_watermark(&self) -> f64 {
        self.retire_watermark
    }

    /// Number of completed-task records currently retained (the
    /// cross-batch dependency map). Grows with work, shrinks at
    /// [`retire_before`](Self::retire_before) — a steady-state memory
    /// probe for soak benchmarks.
    pub fn retained_completed_tasks(&self) -> usize {
        self.completed.len()
    }

    /// Number of cold-start load intervals currently retained (the peak
    /// sweep's input). Same probe role as
    /// [`retained_completed_tasks`](Self::retained_completed_tasks).
    pub fn retained_load_intervals(&self) -> usize {
        self.load_intervals.len()
    }

    /// Drop session history that finished at or before `watermark_seconds`:
    /// schedule rows, completed-task records, skip records, fully-finished
    /// group anchors, cold-start load intervals (their exact peak is
    /// carried forward), [`FinishIndex`] entries, and the cumulative GPU
    /// trace's span prefix (its busy accounting is carried forward
    /// bitwise). Idempotent; watermarks must be finite and non-negative,
    /// and a watermark at or below the current one is a no-op.
    ///
    /// # Contract — when retirement is invisible
    ///
    /// Under the following caller obligations, **every subsequent
    /// observable is bitwise identical** to the unretired session:
    /// cumulative reports ([`report`](Self::report) /
    /// [`report_snapshot`](Self::report_snapshot) — all counters, warm
    /// stats, the concurrent-cold-start peak, and the trace's busy/load
    /// accounting; only the trace's raw span list and per-bin
    /// [`GpuTrace::utilization_series`] forget retired spans), batch
    /// reports, schedules read through
    /// [`schedule_since`](Self::schedule_since),
    /// [`tasks_in_flight_at`](Self::tasks_in_flight_at) at `t ≥ watermark`,
    /// dispatch order, placement, and every start/finish time.
    ///
    /// 1. Every future batch's release floor is ≥ the watermark (a causal
    ///    resident loop retiring at its last decision boundary satisfies
    ///    this by construction).
    /// 2. No future task depends on, or shares a group with, a task whose
    ///    finish is ≤ the watermark (otherwise its recorded finish /
    ///    critical path / skip poison / anchor node are forgotten, which
    ///    can change `decision_lag_seconds`, `critical_path_seconds`, the
    ///    skip cascade, or pair-locality accounting).
    /// 3. In-flight queries only ask about `t ≥ watermark` (earlier times
    ///    undercount by exactly the retired finishes above them).
    ///
    /// The serve ingest loop harvests every row up to the boundary, then
    /// retires at that boundary: its documents never reference prior
    /// batches, its extract→parse pairs always dispatch within the
    /// boundary their dependency finished under, and its floors are the
    /// boundaries themselves — all three obligations hold structurally.
    ///
    /// # Panics
    ///
    /// Panics if `watermark_seconds` is non-finite or negative.
    pub fn retire_before(&mut self, watermark_seconds: f64) {
        assert!(
            watermark_seconds.is_finite() && watermark_seconds >= 0.0,
            "retirement watermark must be finite and non-negative, got {watermark_seconds}"
        );
        if watermark_seconds <= self.retire_watermark {
            return;
        }
        let w = watermark_seconds;
        // Peak carry first, while the intervals open below `w` are still
        // present: after this, `retired_peak` is the exact sweep maximum
        // over all history in `[0, w)`.
        self.retired_peak = self.retired_peak.max(peak_concurrent_loads_below(&self.load_intervals, w));
        self.load_intervals.retain(|&(_, end)| end > w);
        // Schedule rows retire as the longest finished *prefix* (finishes
        // are not monotone in pop order), keeping the retained rows
        // contiguous in global schedule order for `schedule_since`.
        let cut = self.schedule.iter().position(|row| row.finish_seconds > w).unwrap_or(self.schedule.len());
        self.schedule.drain(..cut);
        self.retired_rows += cut;
        self.completed.retain(|_, done| done.finish_seconds > w);
        self.skipped.retain(|_, &mut at| at > w);
        self.group_nodes.retain(|_, anchor| anchor.last_finish > w);
        self.finish_index.retire(w);
        self.cumulative.gpu_trace.retire_before(w);
        self.retire_watermark = w;
    }

    /// The session-cumulative report over every batch submitted so far.
    ///
    /// O(models + retained load intervals) plus one clone of the
    /// cumulative GPU trace: the warm-model rows come pre-sorted from the
    /// incrementally maintained label order, and the concurrent-cold-start
    /// peak sweeps only the intervals above the retirement watermark (the
    /// carried [`retire_before`](Self::retire_before) prefix peak covers
    /// the rest exactly). Per-epoch callers that do not need the trace
    /// should use [`report_snapshot`](Self::report_snapshot), which skips
    /// the trace clone too.
    pub fn report(&self) -> CampaignReport {
        let mut report = self.cumulative.clone();
        self.finish_report(&mut report);
        report
    }

    /// [`report`](Self::report) without the per-GPU trace: every other
    /// field is bitwise identical, but `gpu_trace` is a blank
    /// [`GpuTrace`] over the session's GPU count — O(models + retained
    /// load intervals) with no O(session-history) clone. This is the
    /// per-wave/per-epoch reporting path for resident loops; take the full
    /// [`report`](Self::report) once at close when the trace is wanted.
    pub fn report_snapshot(&self) -> CampaignReport {
        let c = &self.cumulative;
        let mut report = CampaignReport {
            tasks_completed: c.tasks_completed,
            tasks_skipped: c.tasks_skipped,
            makespan_seconds: c.makespan_seconds,
            throughput_per_second: c.throughput_per_second,
            cpu_busy_seconds: c.cpu_busy_seconds,
            gpu_busy_seconds: c.gpu_busy_seconds,
            stage_in_seconds: c.stage_in_seconds,
            cold_starts: c.cold_starts,
            non_local_tasks: c.non_local_tasks,
            locality_penalty_seconds: c.locality_penalty_seconds,
            co_located_pairs: c.co_located_pairs,
            split_pairs: c.split_pairs,
            critical_path_seconds: c.critical_path_seconds,
            queue_wait_seconds: c.queue_wait_seconds,
            retro_filled_tasks: c.retro_filled_tasks,
            decision_lag_seconds: c.decision_lag_seconds,
            warm_hits: c.warm_hits,
            warm_evictions: c.warm_evictions,
            herd_queue_seconds: c.herd_queue_seconds,
            concurrent_cold_starts_peak: c.concurrent_cold_starts_peak,
            warm_models: Vec::new(),
            stage_timings: c.stage_timings,
            gpu_trace: GpuTrace::new(self.gpu_count),
        };
        self.finish_report(&mut report);
        report
    }

    /// The derived fields shared by [`report`](Self::report) and
    /// [`report_snapshot`](Self::report_snapshot): throughput, the
    /// label-ordered warm rows, and the watermark-carried exact peak.
    fn finish_report(&self, report: &mut CampaignReport) {
        report.throughput_per_second = if report.makespan_seconds > 0.0 {
            report.tasks_completed as f64 / report.makespan_seconds
        } else {
            0.0
        };
        // `warm_order` holds every interned id sorted by label, so this is
        // the same row set and order `materialize_warm_models` would build
        // from scratch — without the per-call sort.
        report.warm_models = self
            .warm_order
            .iter()
            .map(|&id| {
                let counts = self.warm_totals[id as usize];
                ModelWarmStats {
                    model: self.interner.resolve(id).to_string(),
                    hits: counts.hits,
                    misses: counts.misses,
                    evictions: counts.evictions,
                }
            })
            .collect();
        // The cumulative peak is exact over the whole session: the carried
        // prefix peak covers `[0, watermark)` and the sweep covers the
        // retained intervals (the per-batch maximum `absorb` keeps is only
        // a lower bound when a herd straddles a drain boundary).
        report.concurrent_cold_starts_peak =
            self.retired_peak.max(peak_concurrent_loads(&self.load_intervals));
    }

    /// Build report-facing [`ModelWarmStats`] rows from integer-keyed
    /// counters, resolving ids back to label strings and sorting by label
    /// (the order the old `BTreeMap<String, _>` bookkeeping produced).
    fn materialize_warm_models(
        &self,
        counts: impl Iterator<Item = (ModelId, WarmCounts)>,
    ) -> Vec<ModelWarmStats> {
        let mut models: Vec<ModelWarmStats> = counts
            .map(|(id, counts)| ModelWarmStats {
                model: self.interner.resolve(id).to_string(),
                hits: counts.hits,
                misses: counts.misses,
                evictions: counts.evictions,
            })
            .collect();
        models.sort_by(|a, b| a.model.cmp(&b.model));
        models
    }

    /// Submit a batch of tasks and simulate until all of them (and nothing
    /// else — there is nothing else pending between calls) have completed,
    /// returning the batch-local report. The batch schedules against the
    /// session's *persistent* state: slots already busy from earlier
    /// batches delay it, earlier batches' warm models are still resident,
    /// and new tasks may start earlier than a previous batch's last
    /// completion whenever a slot is free — submitting window i+1 after
    /// observing window i does not barrier the cluster.
    ///
    /// Dependency edges may point at tasks completed in earlier batches
    /// (satisfied at their recorded finish time) or at ids this session has
    /// never seen (vacuously satisfied at time zero). Tasks in a dependency
    /// cycle, tasks whose slot kind has no slots, and dependents of skipped
    /// tasks — whether the dependency was skipped in this batch or any
    /// earlier one — are counted in
    /// [`tasks_skipped`](CampaignReport::tasks_skipped).
    pub fn submit(&mut self, tasks: &[Task], filesystem: &LustreModel) -> CampaignReport {
        self.submit_with(tasks, SubmitOptions::default());
        self.advance_to_frontier(filesystem)
    }

    /// Enqueue a batch of tasks *without* running the engine: the batch
    /// joins the session's persistent pending set and ready queue, to be
    /// dispatched by the next [`advance_to_frontier`](Self::advance_to_frontier).
    /// Batches enqueued between drains interleave in global
    /// `(ready time, task id)` event order — a later batch's task released
    /// earlier is dispatched first — which is what lets a closed loop
    /// admit window *i+1* at an event boundary while window *i*'s
    /// stragglers are still in flight. Dependency edges bind across every
    /// batch sharing the drain, in either enqueue direction: a task naming
    /// an id that only arrives in a *later* `submit_with` call waits for
    /// it all the same (ids the session never sees by the time the drain
    /// runs remain vacuously satisfied).
    ///
    /// The batch carries a *release floor*
    /// ([`SubmitOptions::release_seconds`], defaulting to the session
    /// clock): the simulated time of the decision that created it. It is
    /// the queue-wait baseline in both causality modes, is recorded on
    /// every [`ScheduledTask::submitted_at_seconds`], and under
    /// [`CausalityMode::Causal`] clamps every task's ready time so nothing
    /// starts before the decision existed.
    ///
    /// # Panics
    ///
    /// Panics if `options.release_seconds` is non-finite.
    pub fn submit_with(&mut self, tasks: &[Task], options: SubmitOptions) {
        self.enqueue_batch(tasks.iter().cloned(), options);
    }

    /// [`submit_with`](Self::submit_with), but taking the batch by value:
    /// each task's label string and dependency list move straight into the
    /// pending arena instead of being cloned. At million-task scale that
    /// per-task clone is the dominant allocation cost of submission, so
    /// hot-loop callers that build their batches fresh every epoch (the
    /// closed-loop simulation does) should hand them over.
    ///
    /// # Panics
    ///
    /// Panics if `options.release_seconds` is non-finite.
    pub fn submit_owned(&mut self, tasks: Vec<Task>, options: SubmitOptions) {
        self.enqueue_batch(tasks, options);
    }

    fn enqueue_batch<I>(&mut self, tasks: I, options: SubmitOptions)
    where
        I: IntoIterator<Item = Task>,
    {
        // Default floor: a task in this batch cannot have existed before
        // the batch was submitted (= the session clock, the previous
        // drain's last completion) — zero for the session's first batch,
        // preserving one-shot `run` semantics.
        let floor = match options.release_seconds {
            Some(seconds) => {
                assert!(seconds.is_finite(), "release floor must be finite");
                seconds.max(0.0)
            }
            None => self.clock.now_seconds(),
        };
        // --- Dependency graph over the session's pending set. Insert the
        // whole batch first so in-batch forward references resolve. ---
        let base = self.pending_tasks.len();
        let tasks = tasks.into_iter();
        let (lower, _) = tasks.size_hint();
        self.pending_tasks.reserve(lower);
        self.pending_meta.reserve(lower);
        self.pending_dependents.reserve(lower);
        self.pending_by_id.reserve(lower);
        for task in tasks {
            let index = self.pending_tasks.len();
            self.pending_by_id.entry(task.id).or_default().push(index);
            self.pending_tasks.push(task);
            self.pending_meta.push(PendingMeta {
                floor,
                raw_ready: 0.0,
                chain: 0.0,
                remaining: 0,
                poisoned: false,
                dispatched: false,
                seeded: false,
            });
            self.pending_dependents.push(IndexList::None);
        }
        for index in base..self.pending_tasks.len() {
            let deps = std::mem::take(&mut self.pending_tasks[index].depends_on);
            for dep in &deps {
                if let Some(instances) = self.pending_by_id.get(dep).cloned() {
                    // A pending dependency — in this batch or an earlier
                    // batch enqueued into the same drain (a self-edge
                    // joins the cycle leftovers: its count never drains).
                    for instance in instances {
                        self.pending_meta[index].remaining += 1;
                        self.pending_dependents[instance].push(index);
                    }
                } else if let Some(done) = self.completed.get(dep) {
                    let meta = &mut self.pending_meta[index];
                    meta.raw_ready = meta.raw_ready.max(done.finish_seconds);
                    meta.chain = meta.chain.max(done.critical_path_seconds);
                } else if self.skipped.contains_key(dep) {
                    // The dependency was skipped in an earlier batch: its
                    // output never materialized, so this task is skipped
                    // too (same cascade as within a batch).
                    self.pending_meta[index].poisoned = true;
                }
                // Unknown ids are vacuously satisfied at time zero.
            }
            self.pending_tasks[index].depends_on = deps;
        }
        // Forward edges: an *earlier* undrained batch may depend on ids
        // this batch introduces — same-drain edges are real in either
        // enqueue direction, so wire the new instances in. (Instances
        // enqueued before the dependent were wired above or at its own
        // enqueue; only indices >= base are new.) Ready-queue population
        // is deferred to the drain, so a task that loses its
        // released-vacuously status here was never prematurely queued.
        let mut fresh: Vec<usize> = Vec::new();
        for earlier in 0..base {
            let deps = std::mem::take(&mut self.pending_tasks[earlier].depends_on);
            for dep in &deps {
                if let Some(instances) = self.pending_by_id.get(dep) {
                    fresh.clear();
                    fresh.extend(instances.iter().filter(|&i| i >= base));
                    for &instance in &fresh {
                        self.pending_meta[earlier].remaining += 1;
                        self.pending_dependents[instance].push(earlier);
                    }
                }
            }
            self.pending_tasks[earlier].depends_on = deps;
        }
    }

    /// A pending task's ready-queue release time: its latest dependency
    /// finish, clamped to its batch's release floor under
    /// [`CausalityMode::Causal`] (the floor is audit-only in
    /// [`CausalityMode::RetroFill`]).
    fn release_time(&self, index: usize) -> f64 {
        let meta = &self.pending_meta[index];
        match self.config.causality {
            CausalityMode::RetroFill => meta.raw_ready,
            CausalityMode::Causal => meta.raw_ready.max(meta.floor),
        }
    }

    /// Mark `id` touched in the per-drain warm scratch, growing the
    /// integer-keyed side tables if the interner has grown. New ids are
    /// also spliced into `warm_order` at their label's sorted position, so
    /// reports read the rows off in label order without ever re-sorting.
    fn touch_warm(&mut self, id: ModelId) {
        let needed = self.interner.len();
        if self.batch_warm.len() < needed {
            let grown = self.batch_warm.len()..needed;
            self.batch_warm.resize(needed, BatchWarm::default());
            self.warm_totals.resize(needed, WarmCounts::default());
            for new_id in grown {
                let new_id = new_id as ModelId;
                let label = self.interner.resolve(new_id);
                let pos = self
                    .warm_order
                    .binary_search_by(|&seen| self.interner.resolve(seen).cmp(label))
                    .unwrap_err();
                self.warm_order.insert(pos, new_id);
            }
        }
        let entry = &mut self.batch_warm[id as usize];
        if !entry.touched {
            entry.touched = true;
            self.batch_warm_touched.push(id);
        }
    }

    /// Drain the session's pending set: dispatch every enqueued task in
    /// `(ready time, task id)` event order against the persistent cluster
    /// state, and return a report over the tasks dispatched by *this*
    /// call (the batch-local report when one batch was enqueued). After
    /// this returns, the dispatch frontier
    /// ([`frontier_seconds`](Self::frontier_seconds)) is the event
    /// boundary at which the engine ran out of undispatched work — the
    /// time a closed loop should stamp its next
    /// [`submit_with`](Self::submit_with) decision with, while the tasks
    /// counted by [`tasks_in_flight_at`](Self::tasks_in_flight_at) are
    /// still running past it.
    ///
    /// With nothing pending this is a no-op returning an empty report
    /// whose makespan is the current session clock.
    pub fn advance_to_frontier(&mut self, filesystem: &LustreModel) -> CampaignReport {
        self.drain(filesystem, None)
    }

    /// Bounded drain: dispatch, in the same global `(release time, task
    /// id)` event order as [`advance_to_frontier`](Self::advance_to_frontier),
    /// exactly the pending tasks whose release time is at or before
    /// `until_seconds` — including tasks whose dependencies finish within
    /// the bound mid-drain — and leave everything released later pending
    /// for a future advance. This is what lets a resident service
    /// interleave admission decisions with dispatch: advance to the next
    /// decision tick, observe what completed, admit the next arrivals with
    /// a release floor at the tick, repeat.
    ///
    /// A task released at or before the bound may still *finish* after it;
    /// the session clock tracks the latest completion as usual. Dependency
    /// cycles are never resolved by a bounded drain (their members simply
    /// stay pending); only `advance_to_frontier` sweeps them out as
    /// skipped.
    ///
    /// Interleaving bounded drains is *schedule-transparent*: any sequence
    /// of `advance_until` calls followed by a final `advance_to_frontier`
    /// yields bitwise the same schedule (every placement, start, and
    /// finish), frontier, and clock as one big `advance_to_frontier` over
    /// the same submissions — the event order is merely consumed in
    /// segments. The cumulative report's *summed* aggregates (busy
    /// seconds, queue wait, …) accumulate per segment, so they may differ
    /// from the one-drain sums in the last ulp — floating-point addition
    /// is not associative; replaying the same segmentation is still
    /// bitwise-deterministic. (Transparency holds when submissions are the
    /// same; the point of the bound is of course to let *later*
    /// submissions depend on what completed early.)
    ///
    /// # Panics
    ///
    /// Panics if `until_seconds` is NaN.
    pub fn advance_until(&mut self, until_seconds: f64, filesystem: &LustreModel) -> CampaignReport {
        assert!(!until_seconds.is_nan(), "advance_until bound must not be NaN");
        self.drain(filesystem, Some(until_seconds))
    }

    /// The shared drain behind [`advance_to_frontier`](Self::advance_to_frontier)
    /// (`until: None`) and [`advance_until`](Self::advance_until)
    /// (`until: Some(bound)`).
    fn drain(&mut self, filesystem: &LustreModel, until: Option<f64>) -> CampaignReport {
        // Enqueueing never advances the clock, so this is also the
        // session clock at the time the drained batches were submitted.
        let advance_floor = self.clock.now_seconds();
        let mut report = CampaignReport::blank(self.gpu_count);
        let mut batch_trace = GpuTrace::new(self.gpu_count);
        let causal = self.config.causality == CausalityMode::Causal;

        // In steady state every node stages data concurrently; that is the
        // contention level the shared filesystem sees.
        let staging_concurrency = self.cluster.nodes;
        let mut batch_first_start = f64::INFINITY;
        // Shared model-load channels: paid cold starts queue on these.
        // Resynced per drain so the filesystem parameter may change between
        // batches; an empty vector (0 channels) is unlimited — the legacy
        // free-parallel-load behavior, bitwise.
        if self.load_channel_free.len() != filesystem.model_load_channels {
            self.load_channel_free.resize(filesystem.model_load_channels, 0.0);
        }
        // This drain's paid-load intervals, for the batch-exact
        // `concurrent_cold_starts_peak` sweep.
        let mut batch_load_intervals: Vec<(f64, f64)> = Vec::new();

        // Seed the ready queue with every pending task whose dependencies
        // are already satisfied. Deferred to the drain (rather than done
        // at enqueue) so that batches enqueued later into the same drain
        // may still add forward edges to earlier ones. The queue persists
        // across bounded drains, so entries it already holds (seeded by an
        // earlier drain, released after its bound) must not be re-pushed.
        for index in 0..self.pending_meta.len() {
            let meta = self.pending_meta[index];
            if meta.remaining == 0 && !meta.seeded {
                self.pending_meta[index].seeded = true;
                let release = self.release_time(index);
                self.ready.push(release, self.pending_tasks[index].id, index);
            }
        }

        loop {
            if let Some(limit) = until {
                match self.ready.peek_time() {
                    Some(next) if next <= limit => {}
                    _ => break,
                }
            }
            let Some((time, _, index)) = self.ready.pop() else { break };
            self.pending_meta[index].dispatched = true;
            // Move the task out of the arena (it is dispatched exactly
            // once and the arena clears at the end of the drain) — no
            // per-dispatch clone of its label and dependency list.
            let task = std::mem::replace(&mut self.pending_tasks[index], Task::new(0, SlotKind::Cpu, 0.0));
            let PendingMeta { floor, raw_ready, chain, poisoned, .. } = self.pending_meta[index];
            let no_slots = match task.slot {
                SlotKind::Cpu => self.cpu_slots.is_empty(),
                SlotKind::Gpu => self.gpu_slots.is_empty(),
            };
            if poisoned || no_slots {
                report.tasks_skipped += 1;
                self.skipped.insert(task.id, time);
                // Dependents of a skipped task can never find their input.
                for dependent in std::mem::take(&mut self.pending_dependents[index]) {
                    let meta = &mut self.pending_meta[dependent];
                    meta.poisoned = true;
                    meta.remaining -= 1;
                    if meta.remaining == 0 {
                        meta.seeded = true;
                        let release = self.release_time(dependent).max(time);
                        self.ready.push(release, self.pending_tasks[dependent].id, dependent);
                    }
                }
                continue;
            }

            let base_stage_in = filesystem.stage_in_seconds(
                task.input_mb,
                task.input_files,
                staging_concurrency,
                self.config.node_local_staging,
            );
            // Where the task's input actually lives: a pair's later members
            // find it on the node the pair was anchored to (the first
            // member's output is there); everyone else finds it where the
            // plan staged it. `believed_node` is what the *scheduler* acts
            // on — with co-scheduling disabled it naively trusts the static
            // plan and only discovers the re-fetch at accounting time.
            let anchor = task.group.as_ref().and_then(|g| self.group_nodes.get(&g.id)).map(|a| a.node);
            let data_node = anchor.or(task.preferred_node);
            let believed_node = if self.config.co_schedule_pairs { data_node } else { task.preferred_node };
            let off_node_penalty = match data_node {
                Some(_) => filesystem.locality_penalty_seconds(task.input_mb, staging_concurrency),
                None => 0.0,
            };
            // What the penalty costs in *completion time*: with prefetch
            // the re-fetch hides under compute, so only the part that
            // pushes stage-in past the compute time delays the task.
            let marginal_penalty = if self.config.prefetch {
                task.compute_seconds.max(base_stage_in + off_node_penalty)
                    - task.compute_seconds.max(base_stage_in)
            } else {
                off_node_penalty
            };
            // Pick the slot starting the task earliest (its free time or
            // the task's ready time, whichever is later, plus the
            // marginal penalty off-node); ties prefer the task's own
            // node (a free local slot always beats an equally free
            // remote one, even when prefetch makes the re-fetch
            // latency-free — it still burns shared-filesystem
            // bandwidth), then the longest-idle slot, then the lowest
            // slot index. Fully deterministic, and answered by the
            // per-(node, kind) [`SlotIndex`] in O(nodes + log slots)
            // instead of a scan over every slot of the kind.
            //
            // Under `CostAware` the ranking additionally charges each
            // candidate node the cold start the task would pay there — a
            // side-effect-free `would_hit` probe of the node's warm pool,
            // so ranking cannot perturb LRU order. The probe only runs
            // when the cold addend can differ across nodes (warm starts
            // on, positive cold start); otherwise it would be a uniform
            // addend, which float rounding could collapse into spurious
            // ties, so the plain earliest-slot scan — to which the policy
            // is then exactly equivalent — answers instead.
            let cost_probe = if self.config.placement == PlacementPolicy::CostAware
                && self.config.warm_start
                && task.cold_start_seconds > 0.0
            {
                Some(self.interner.intern(&task.label))
            } else {
                None
            };
            let slot_index = match cost_probe {
                Some(label_id) => {
                    let pools = &self.pools;
                    let cold_cost = task.cold_start_seconds;
                    self.slot_index.best_slot_cost_aware(
                        task.slot,
                        time,
                        marginal_penalty,
                        believed_node,
                        self.active_nodes,
                        |node, projected_start| {
                            if pools[node].would_hit(label_id, cold_cost, projected_start) {
                                0.0
                            } else {
                                cold_cost
                            }
                        },
                    )
                }
                None => self.slot_index.best_slot(
                    task.slot,
                    time,
                    marginal_penalty,
                    believed_node,
                    self.active_nodes,
                ),
            }
            .expect("slots of this kind exist, so the index has a champion");
            // The penalty actually *paid* is against the data's real
            // location, not the scheduler's belief: a scheduler that
            // ignored the pair anchor still re-fetches from the shared
            // filesystem when the data is elsewhere.
            let penalty = match data_node {
                Some(node) if self.slots[slot_index].node != node => off_node_penalty,
                _ => 0.0,
            };
            // Anchor bookkeeping: the first member of a group claims the
            // node; later members are counted as co-located or split.
            if let Some(group) = &task.group {
                match self.group_nodes.get(&group.id) {
                    None => {
                        // `last_finish` is stamped once `end` is known below.
                        self.group_nodes.insert(
                            group.id,
                            GroupAnchor { node: self.slots[slot_index].node, last_finish: 0.0 },
                        );
                    }
                    Some(anchor) if anchor.node == self.slots[slot_index].node => {
                        report.co_located_pairs += 1
                    }
                    Some(_) => report.split_pairs += 1,
                }
            }
            if penalty > 0.0 {
                report.non_local_tasks += 1;
                report.locality_penalty_seconds += penalty;
            }

            let start = self.free_at[slot_index].max(time);
            batch_first_start = batch_first_start.min(start);
            let node = self.slots[slot_index].node;
            // Warm pools: resident models are free, absent or still-loading
            // ones pay the cold start; zero-cost models bypass the pool
            // entirely (nothing to load, no capacity occupied, no stats).
            let cold = if task.cold_start_seconds <= 0.0 {
                0.0
            } else if !self.config.warm_start {
                task.cold_start_seconds
            } else {
                // One interner lookup per task; the pool and both counter
                // tables (per-drain scratch and session totals) work in the
                // dense id. Session totals accumulate right here — there is
                // no per-batch map rebuilt and re-merged at absorb time.
                let label_id = self.interner.intern(&task.label);
                self.touch_warm(label_id);
                match self.pools[node].acquire(label_id, task.cold_start_seconds, start) {
                    WarmAccess::Hit => {
                        self.batch_warm[label_id as usize].counts.hits += 1;
                        self.warm_totals[label_id as usize].hits += 1;
                        report.warm_hits += 1;
                        0.0
                    }
                    WarmAccess::Loading => {
                        self.batch_warm[label_id as usize].counts.misses += 1;
                        self.warm_totals[label_id as usize].misses += 1;
                        task.cold_start_seconds
                    }
                    WarmAccess::Miss { evicted } => {
                        self.batch_warm[label_id as usize].counts.misses += 1;
                        self.warm_totals[label_id as usize].misses += 1;
                        if let Some(victim) = evicted {
                            report.warm_evictions += 1;
                            self.touch_warm(victim);
                            self.batch_warm[victim as usize].counts.evictions += 1;
                            self.warm_totals[victim as usize].evictions += 1;
                        }
                        task.cold_start_seconds
                    }
                }
            };
            // A paid cold start must claim a model-load channel before its
            // weights can stream; with none free it queues behind the
            // earliest-finishing load (lowest channel index on ties). The
            // wait is the herd-serialization cost: compute begins only once
            // the channel frees *and* the load completes.
            let herd_wait = if cold > 0.0 && !self.load_channel_free.is_empty() {
                let channel = self
                    .load_channel_free
                    .iter()
                    .enumerate()
                    .min_by_key(|&(index, &free)| (free.to_bits(), index))
                    .map(|(index, _)| index)
                    .expect("checked non-empty");
                let load_start = self.load_channel_free[channel].max(start);
                self.load_channel_free[channel] = load_start + cold;
                load_start - start
            } else {
                0.0
            };
            if cold > 0.0 {
                report.cold_starts += 1;
                report.herd_queue_seconds += herd_wait;
                let load_start = start + herd_wait;
                batch_load_intervals.push((load_start, load_start + cold));
                self.load_intervals.push((load_start, load_start + cold));
            }

            // Prefetching overlaps stage-in with compute; otherwise they are
            // serial. Model loading (queueing included) can never be
            // overlapped. `stall` is bitwise `cold` when no herd wait was
            // paid, so unlimited channels reproduce the legacy arithmetic
            // exactly.
            let stall = herd_wait + cold;
            let stage_in = base_stage_in + penalty;
            let busy = if self.config.prefetch {
                stall + task.compute_seconds.max(stage_in)
            } else {
                stall + stage_in + task.compute_seconds
            };
            let end = start + busy;
            report.stage_in_seconds += stage_in;
            report.queue_wait_seconds += (start - time.max(floor)).max(0.0);
            // Causality accounting. `decision_lag_seconds` measures, in
            // both modes, how far the task's dependency-only readiness
            // preceded the decision that released it; `retro_filled_tasks`
            // counts the starts RetroFill actually placed before that
            // decision (impossible under Causal — the floor clamps the
            // ready time, and start >= ready).
            report.decision_lag_seconds += (floor - raw_ready).max(0.0);
            if start < floor {
                report.retro_filled_tasks += 1;
            }
            debug_assert!(!causal || start >= floor, "causal mode must never start a task before its floor");
            match self.slots[slot_index].kind {
                SlotKind::Cpu => report.cpu_busy_seconds += busy,
                SlotKind::Gpu => {
                    report.gpu_busy_seconds += busy;
                    if let Some(gpu) = self.slots[slot_index].gpu_index {
                        if cold > 0.0 {
                            batch_trace.record(gpu, start, start + stall, true);
                        }
                        batch_trace.record(gpu, start + stall, end, false);
                    }
                }
            }
            if let Some(group) = &task.group {
                report.stage_timings.record(group.role, busy, end);
                // The anchor exists: this member either claimed it above or
                // found it claimed. Its retirement horizon is the latest
                // member finish.
                if let Some(anchor) = self.group_nodes.get_mut(&group.id) {
                    anchor.last_finish = anchor.last_finish.max(end);
                }
            }
            report.tasks_completed += 1;
            report.makespan_seconds = report.makespan_seconds.max(end);
            let critical_path = chain + busy;
            report.critical_path_seconds = report.critical_path_seconds.max(critical_path);
            let old_free = self.free_at[slot_index];
            self.free_at[slot_index] = end;
            self.slot_index.update(task.slot, node, old_free, end, slot_index);
            self.finish_index.insert(end);
            self.frontier = self.frontier.max(start);
            self.completed
                .insert(task.id, Finished { finish_seconds: end, critical_path_seconds: critical_path });
            self.schedule.push(ScheduledTask {
                id: task.id,
                label: task.label,
                kind: task.slot,
                node,
                ready_seconds: time,
                submitted_at_seconds: floor,
                start_seconds: start,
                finish_seconds: end,
                cold_start_paid_seconds: cold,
                herd_wait_seconds: herd_wait,
            });
            // Release dependents whose last dependency just finished.
            for dependent in std::mem::take(&mut self.pending_dependents[index]) {
                let meta = &mut self.pending_meta[dependent];
                meta.raw_ready = meta.raw_ready.max(end);
                meta.chain = meta.chain.max(critical_path);
                meta.remaining -= 1;
                if meta.remaining == 0 {
                    meta.seeded = true;
                    let release = self.release_time(dependent);
                    self.ready.push(release, self.pending_tasks[dependent].id, dependent);
                }
            }
        }
        if until.is_none() {
            // Tasks never released: dependency cycles (including
            // self-edges). They count as skipped, and — like every other
            // skip — poison their dependents in later batches.
            let swept_at = advance_floor.max(report.makespan_seconds);
            for (index, meta) in self.pending_meta.iter().enumerate() {
                if !meta.dispatched {
                    self.skipped.insert(self.pending_tasks[index].id, swept_at);
                    report.tasks_skipped += 1;
                }
            }
            // Everything pending has now been dispatched or skipped; later
            // batches resolve dependencies through the completion and skip
            // maps, so the arenas empty between drains (keeping their
            // capacity for the next batch).
            self.pending_tasks.clear();
            self.pending_meta.clear();
            self.pending_dependents.clear();
            self.pending_by_id.clear();
        } else {
            // A bounded drain leaves later-released tasks pending; evict
            // only the dispatched entries so the arenas stay proportional
            // to the live backlog over a long-running service.
            self.compact_pending();
        }

        // A drain that completed nothing (every task skipped, or no tasks
        // at all) ends where the session already was — `makespan_seconds`
        // is documented as absolute session time, never the blank report's
        // t = 0, which for a later batch would precede its own submission.
        if report.tasks_completed == 0 {
            report.makespan_seconds = advance_floor;
        }

        // Batch throughput is measured over the batch's own span (first
        // start to last finish); for the first batch of a session that span
        // starts at zero, matching the one-shot `run` semantics.
        let batch_span = report.makespan_seconds - batch_first_start.min(report.makespan_seconds);
        report.throughput_per_second =
            if batch_span > 0.0 { report.tasks_completed as f64 / batch_span } else { 0.0 };
        report.gpu_trace = batch_trace;
        report.concurrent_cold_starts_peak = peak_concurrent_loads(&batch_load_intervals);
        // Materialize the batch's warm rows from the touched scratch slots,
        // then reset exactly those slots for the next drain.
        report.warm_models = self.materialize_warm_models(
            self.batch_warm_touched.iter().map(|&id| (id, self.batch_warm[id as usize].counts)),
        );
        for &touched in &self.batch_warm_touched {
            self.batch_warm[touched as usize] = BatchWarm::default();
        }
        self.batch_warm_touched.clear();
        self.absorb(&report);
        report
    }

    /// Evict dispatched entries from the pending arenas after a bounded
    /// drain, compacting the live (undispatched) remainder in place so the
    /// arenas — and the forward-edge sweep each later
    /// [`enqueue_batch`](Self::submit_with) runs over them — stay
    /// proportional to the live backlog instead of growing with everything
    /// a resident service ever admitted.
    ///
    /// Dependent edges only ever point at live entries (a task with an
    /// undispatched dependency has `remaining > 0`, so it was never popped;
    /// a dispatched entry's dependent list was taken at dispatch), so the
    /// order-preserving remap rewrites only live lists. Ready-queue
    /// payloads are remapped by re-pushing in pop order, which preserves
    /// the deterministic `(time, id, insertion)` order exactly.
    fn compact_pending(&mut self) {
        if !self.pending_meta.iter().any(|meta| meta.dispatched) {
            return;
        }
        // Ready entries always reference undispatched tasks (each entry is
        // pushed once, and popping it is what dispatches the task), so if
        // everything is dispatched the queue is empty and a plain clear
        // suffices.
        if self.pending_meta.iter().all(|meta| meta.dispatched) {
            debug_assert!(self.ready.is_empty(), "ready queue must not outlive a fully dispatched arena");
            self.pending_tasks.clear();
            self.pending_meta.clear();
            self.pending_dependents.clear();
            self.pending_by_id.clear();
            return;
        }
        let len = self.pending_meta.len();
        let mut remap = vec![usize::MAX; len];
        let mut live = 0usize;
        for (old, slot) in remap.iter_mut().enumerate() {
            if !self.pending_meta[old].dispatched {
                *slot = live;
                if live != old {
                    self.pending_tasks.swap(live, old);
                    self.pending_meta[live] = self.pending_meta[old];
                    self.pending_dependents[live] = std::mem::take(&mut self.pending_dependents[old]);
                }
                live += 1;
            }
        }
        self.pending_tasks.truncate(live);
        self.pending_meta.truncate(live);
        self.pending_dependents.truncate(live);
        for list in &mut self.pending_dependents {
            match list {
                IndexList::None => {}
                IndexList::One(index) => *index = remap[*index],
                IndexList::Many(indices) => {
                    for index in indices {
                        *index = remap[*index];
                    }
                }
            }
        }
        self.pending_by_id.clear();
        for (index, task) in self.pending_tasks.iter().enumerate() {
            self.pending_by_id.entry(task.id).or_default().push(index);
        }
        if !self.ready.is_empty() {
            let mut entries = Vec::with_capacity(self.ready.len());
            while let Some(entry) = self.ready.pop() {
                entries.push(entry);
            }
            for (time, id, index) in entries {
                debug_assert!(remap[index] != usize::MAX, "queued entries reference live tasks");
                self.ready.push(time, id, remap[index]);
            }
        }
    }

    /// Fold a batch report into the session-cumulative one. (Warm-model
    /// counters are *not* folded here — they accumulate incrementally in
    /// `warm_totals` at dispatch time.)
    fn absorb(&mut self, batch: &CampaignReport) {
        let total = &mut self.cumulative;
        total.tasks_completed += batch.tasks_completed;
        total.tasks_skipped += batch.tasks_skipped;
        total.makespan_seconds = total.makespan_seconds.max(batch.makespan_seconds);
        total.cpu_busy_seconds += batch.cpu_busy_seconds;
        total.gpu_busy_seconds += batch.gpu_busy_seconds;
        total.stage_in_seconds += batch.stage_in_seconds;
        total.cold_starts += batch.cold_starts;
        total.non_local_tasks += batch.non_local_tasks;
        total.locality_penalty_seconds += batch.locality_penalty_seconds;
        total.co_located_pairs += batch.co_located_pairs;
        total.split_pairs += batch.split_pairs;
        total.critical_path_seconds = total.critical_path_seconds.max(batch.critical_path_seconds);
        total.queue_wait_seconds += batch.queue_wait_seconds;
        total.retro_filled_tasks += batch.retro_filled_tasks;
        total.decision_lag_seconds += batch.decision_lag_seconds;
        total.warm_hits += batch.warm_hits;
        total.warm_evictions += batch.warm_evictions;
        total.herd_queue_seconds += batch.herd_queue_seconds;
        // A per-batch max is a lower bound on the session-wide peak when a
        // herd straddles a drain boundary; `report()` recomputes the exact
        // figure over every session load interval.
        total.concurrent_cold_starts_peak =
            total.concurrent_cold_starts_peak.max(batch.concurrent_cold_starts_peak);
        total.stage_timings.absorb(&batch.stage_timings);
        total.gpu_trace.merge(&batch.gpu_trace);
        self.clock.advance_to(batch.makespan_seconds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu_tasks(n: usize, seconds: f64) -> Vec<Task> {
        (0..n).map(|i| Task::new(i as u64, SlotKind::Cpu, seconds).with_input_mb(1.0)).collect()
    }

    fn gpu_tasks(n: usize, seconds: f64, cold: f64) -> Vec<Task> {
        (0..n)
            .map(|i| Task::new(i as u64, SlotKind::Gpu, seconds).with_input_mb(5.0).with_cold_start(cold))
            .collect()
    }

    #[test]
    fn all_tasks_complete_and_throughput_is_positive() {
        let report = WorkflowExecutor::new(ExecutorConfig::default()).run(
            &cpu_tasks(100, 0.2),
            &ClusterConfig::polaris(2),
            &LustreModel::default(),
        );
        assert_eq!(report.tasks_completed, 100);
        assert_eq!(report.tasks_skipped, 0);
        assert!(report.throughput_per_second > 0.0);
        assert!(report.makespan_seconds > 0.0);
        // Order-free tasks never wait on dependencies, so the critical path
        // is one task's busy time and queue waits cover the rest.
        assert!(report.critical_path_seconds < report.makespan_seconds);
        assert!(report.queue_wait_seconds > 0.0);
    }

    #[test]
    fn more_nodes_mean_higher_throughput_until_fs_contention() {
        let tasks = cpu_tasks(4000, 0.05);
        let run = |nodes| {
            WorkflowExecutor::new(ExecutorConfig::default()).run(
                &tasks,
                &ClusterConfig::polaris(nodes),
                &LustreModel::default(),
            )
        };
        let one = run(1).throughput_per_second;
        let four = run(4).throughput_per_second;
        assert!(four > one * 2.0, "scaling 1→4 nodes should be near-linear ({one} vs {four})");
    }

    #[test]
    fn warm_start_pays_the_model_load_once_per_concurrent_loader() {
        let tasks = gpu_tasks(40, 2.0, 15.0);
        let cluster = ClusterConfig::polaris(1);
        let fs = LustreModel::default();
        let warm = WorkflowExecutor::new(ExecutorConfig { warm_start: true, ..Default::default() })
            .run(&tasks, &cluster, &fs);
        let cold = WorkflowExecutor::new(ExecutorConfig { warm_start: false, ..Default::default() })
            .run(&tasks, &cluster, &fs);
        // All four GPU slots start a task at t = 0, before any load finishes,
        // so each pays the cold start; every later task reuses the weights.
        assert_eq!(warm.cold_starts, cluster.gpu_slots_per_node);
        assert_eq!(warm.warm_hits, 40 - cluster.gpu_slots_per_node);
        assert_eq!(warm.warm_evictions, 0);
        assert_eq!(warm.warm_models.len(), 1);
        assert_eq!(warm.warm_models[0].misses, warm.cold_starts);
        assert_eq!(cold.cold_starts, 40);
        assert!(cold.warm_models.is_empty(), "warm_start: false bypasses the pools");
        assert!(warm.makespan_seconds < cold.makespan_seconds);
        assert!(warm.throughput_per_second > cold.throughput_per_second * 1.5);
    }

    #[test]
    fn warm_pool_capacity_zero_disables_reuse_but_counts_misses() {
        let tasks = gpu_tasks(12, 1.0, 10.0);
        let report =
            WorkflowExecutor::new(ExecutorConfig { warm_pool_capacity: Some(0), ..Default::default() }).run(
                &tasks,
                &ClusterConfig::polaris(1),
                &LustreModel::default(),
            );
        assert_eq!(report.cold_starts, 12);
        assert_eq!(report.warm_hits, 0);
        assert_eq!(report.warm_evictions, 0);
        assert_eq!(report.warm_models.len(), 1);
        assert_eq!(report.warm_models[0].misses, 12);
    }

    #[test]
    fn switching_models_evicts_under_a_capacity_one_pool() {
        // Two models alternating on a single GPU slot: a capacity-1 pool
        // thrashes (every task evicts the other model), an unbounded pool
        // loads each model once.
        let tasks: Vec<Task> = (0..8)
            .map(|i| {
                Task::new(i, SlotKind::Gpu, 1.0).with_cold_start(10.0).with_label(if i % 2 == 0 {
                    "Nougat"
                } else {
                    "Marker"
                })
            })
            .collect();
        let cluster = ClusterConfig { nodes: 1, cpu_slots_per_node: 0, gpu_slots_per_node: 1 };
        let fs = LustreModel::default();
        let tight =
            WorkflowExecutor::new(ExecutorConfig { warm_pool_capacity: Some(1), ..Default::default() })
                .run(&tasks, &cluster, &fs);
        assert_eq!(tight.cold_starts, 8, "alternating models thrash a capacity-1 pool");
        assert_eq!(tight.warm_evictions, 7);
        let unbounded = WorkflowExecutor::new(ExecutorConfig::default()).run(&tasks, &cluster, &fs);
        assert_eq!(unbounded.cold_starts, 2, "each model loads once");
        assert_eq!(unbounded.warm_hits, 6);
        assert_eq!(unbounded.warm_evictions, 0);
        assert!(unbounded.makespan_seconds < tight.makespan_seconds);
    }

    #[test]
    fn zero_cost_models_never_occupy_pool_capacity() {
        // A capacity-1 pool, one real model, and a flood of zero-cost tasks:
        // the real model must stay resident (zero-cost models have no
        // weights to keep warm and must not evict anything).
        let mut tasks = vec![Task::new(0, SlotKind::Cpu, 1.0).with_cold_start(5.0).with_label("Nougat")];
        for i in 1..10 {
            tasks.push(Task::new(i, SlotKind::Cpu, 0.1).with_label("PyMuPDF"));
        }
        tasks.push(Task::new(10, SlotKind::Cpu, 1.0).with_cold_start(5.0).with_label("Nougat"));
        let cluster = ClusterConfig { nodes: 1, cpu_slots_per_node: 1, gpu_slots_per_node: 0 };
        let report =
            WorkflowExecutor::new(ExecutorConfig { warm_pool_capacity: Some(1), ..Default::default() }).run(
                &tasks,
                &cluster,
                &LustreModel::default(),
            );
        assert_eq!(report.cold_starts, 1, "the second Nougat task must still be warm");
        assert_eq!(report.warm_hits, 1);
        assert_eq!(report.warm_evictions, 0);
        // The pool API itself also guards directly.
        let mut models = ModelInterner::new();
        let nougat = models.intern("Nougat");
        let pymupdf = models.intern("PyMuPDF");
        let mut pool = WarmPool::new(Some(1));
        assert_eq!(pool.acquire(nougat, 5.0, 0.0), WarmAccess::Miss { evicted: None });
        assert_eq!(pool.acquire(pymupdf, 0.0, 1.0), WarmAccess::Hit);
        assert_eq!(pool.resident_models(), 1);
        assert!(pool.is_resident(nougat));
    }

    #[test]
    fn node_local_staging_helps_small_file_workloads() {
        let tasks: Vec<Task> = (0..200)
            .map(|i| Task::new(i, SlotKind::Cpu, 0.02).with_input_mb(2.0).with_input_files(50))
            .collect();
        let cluster = ClusterConfig::polaris(8);
        let fs = LustreModel::default();
        let staged = WorkflowExecutor::new(ExecutorConfig { node_local_staging: true, ..Default::default() })
            .run(&tasks, &cluster, &fs);
        let raw = WorkflowExecutor::new(ExecutorConfig { node_local_staging: false, ..Default::default() })
            .run(&tasks, &cluster, &fs);
        assert!(staged.makespan_seconds < raw.makespan_seconds);
    }

    #[test]
    fn gpu_trace_reflects_gpu_work_only() {
        let mut tasks = gpu_tasks(8, 3.0, 10.0);
        tasks.extend(cpu_tasks(8, 1.0));
        let report = WorkflowExecutor::new(ExecutorConfig::default()).run(
            &tasks,
            &ClusterConfig::polaris(1),
            &LustreModel::default(),
        );
        assert!(report.gpu_busy_seconds > 0.0);
        assert!(report.cpu_busy_seconds > 0.0);
        assert!(report.mean_gpu_utilization() > 0.0);
        assert!(report.mean_gpu_utilization() <= 1.0);
        let load: f64 = (0..report.gpu_trace.gpus()).map(|g| report.gpu_trace.model_load_seconds(g)).sum();
        assert!(load > 0.0, "model loads must appear in the trace");
    }

    #[test]
    fn missing_slot_kind_skips_tasks() {
        let cluster = ClusterConfig { nodes: 1, cpu_slots_per_node: 2, gpu_slots_per_node: 0 };
        let report = WorkflowExecutor::new(ExecutorConfig::default()).run(
            &gpu_tasks(5, 1.0, 0.0),
            &cluster,
            &LustreModel::default(),
        );
        assert_eq!(report.tasks_completed, 0);
        assert_eq!(report.tasks_skipped, 5);
        assert_eq!(report.throughput_per_second, 0.0);
    }

    #[test]
    fn dependencies_serialize_a_chain_onto_idle_slots() {
        // A 3-task chain on a 4-slot node: plenty of slots, so the makespan
        // is exactly the chain's busy time and equals the critical path.
        let tasks = vec![
            Task::new(0, SlotKind::Cpu, 2.0),
            Task::new(1, SlotKind::Cpu, 3.0).with_dependency(0),
            Task::new(2, SlotKind::Cpu, 4.0).with_dependency(1),
        ];
        let cluster = ClusterConfig { nodes: 1, cpu_slots_per_node: 4, gpu_slots_per_node: 0 };
        let executor = WorkflowExecutor::new(ExecutorConfig::default());
        let mut session = executor.session(&cluster);
        let report = session.submit(&tasks, &LustreModel::default());
        assert_eq!(report.tasks_completed, 3);
        assert!((report.makespan_seconds - 9.0).abs() < 1e-12);
        assert_eq!(report.critical_path_seconds, report.makespan_seconds);
        let schedule = session.schedule();
        assert_eq!(schedule.len(), 3);
        for pair in schedule.windows(2) {
            assert!(pair[1].start_seconds >= pair[0].finish_seconds);
        }
    }

    #[test]
    fn diamond_dependencies_join_on_the_slower_branch() {
        //      0
        //    /   \
        //   1     2      1 is slow, 2 is fast; 3 waits for both.
        //    \   /
        //      3
        let tasks = vec![
            Task::new(0, SlotKind::Cpu, 1.0),
            Task::new(1, SlotKind::Cpu, 5.0).with_dependency(0),
            Task::new(2, SlotKind::Cpu, 1.0).with_dependency(0),
            Task::new(3, SlotKind::Cpu, 1.0).with_depends_on(vec![1, 2]),
        ];
        let cluster = ClusterConfig { nodes: 1, cpu_slots_per_node: 4, gpu_slots_per_node: 0 };
        let executor = WorkflowExecutor::new(ExecutorConfig::default());
        let mut session = executor.session(&cluster);
        let report = session.submit(&tasks, &LustreModel::default());
        assert_eq!(report.tasks_completed, 4);
        let join = session.schedule().iter().find(|s| s.id == 3).unwrap().clone();
        let slow = session.schedule().iter().find(|s| s.id == 1).unwrap().clone();
        assert!(join.start_seconds >= slow.finish_seconds);
        assert_eq!(report.critical_path_seconds, report.makespan_seconds);
    }

    #[test]
    fn dependency_cycles_are_skipped_not_deadlocked() {
        let tasks = vec![
            Task::new(0, SlotKind::Cpu, 1.0).with_dependency(1),
            Task::new(1, SlotKind::Cpu, 1.0).with_dependency(0),
            Task::new(2, SlotKind::Cpu, 1.0),
            Task::new(3, SlotKind::Cpu, 1.0).with_dependency(3), // self-edge
        ];
        let report = WorkflowExecutor::new(ExecutorConfig::default()).run(
            &tasks,
            &ClusterConfig::polaris(1),
            &LustreModel::default(),
        );
        assert_eq!(report.tasks_completed, 1);
        assert_eq!(report.tasks_skipped, 3);
    }

    #[test]
    fn dependents_of_skipped_tasks_are_skipped() {
        // Task 0 needs a GPU on a CPU-only cluster; 1 depends on it; 2 is
        // independent and must still run.
        let tasks = vec![
            Task::new(0, SlotKind::Gpu, 1.0),
            Task::new(1, SlotKind::Cpu, 1.0).with_dependency(0),
            Task::new(2, SlotKind::Cpu, 1.0),
        ];
        let cluster = ClusterConfig { nodes: 1, cpu_slots_per_node: 2, gpu_slots_per_node: 0 };
        let report =
            WorkflowExecutor::new(ExecutorConfig::default()).run(&tasks, &cluster, &LustreModel::default());
        assert_eq!(report.tasks_completed, 1);
        assert_eq!(report.tasks_skipped, 2);
    }

    #[test]
    fn skip_cascades_span_batch_boundaries() {
        // Task 0 needs a GPU on a CPU-only cluster and is skipped in batch
        // 1; its dependent arrives in batch 2 and must be skipped too — the
        // same cascade the single-batch test asserts.
        let cluster = ClusterConfig { nodes: 1, cpu_slots_per_node: 2, gpu_slots_per_node: 0 };
        let executor = WorkflowExecutor::new(ExecutorConfig::default());
        let mut session = executor.session(&cluster);
        let first = session.submit(&[Task::new(0, SlotKind::Gpu, 1.0)], &LustreModel::default());
        assert_eq!(first.tasks_skipped, 1);
        let second = session.submit(
            &[
                Task::new(1, SlotKind::Cpu, 1.0).with_dependency(0),
                // Transitive: 2 depends on 1, which is poisoned.
                Task::new(2, SlotKind::Cpu, 1.0).with_dependency(1),
                Task::new(3, SlotKind::Cpu, 1.0),
            ],
            &LustreModel::default(),
        );
        assert_eq!(second.tasks_completed, 1);
        assert_eq!(second.tasks_skipped, 2);
        // Cycle members are skip-poisonous across batches too.
        let mut cyclic = executor.session(&cluster);
        cyclic.submit(
            &[
                Task::new(0, SlotKind::Cpu, 1.0).with_dependency(1),
                Task::new(1, SlotKind::Cpu, 1.0).with_dependency(0),
            ],
            &LustreModel::default(),
        );
        let after =
            cyclic.submit(&[Task::new(2, SlotKind::Cpu, 1.0).with_dependency(0)], &LustreModel::default());
        assert_eq!(after.tasks_completed, 0);
        assert_eq!(after.tasks_skipped, 1);
    }

    #[test]
    fn batch_throughput_is_measured_over_the_batch_span() {
        // One slot: batch 1 occupies [0, 10], batch 2 occupies [10, 15].
        let cluster = ClusterConfig { nodes: 1, cpu_slots_per_node: 1, gpu_slots_per_node: 0 };
        let executor = WorkflowExecutor::new(ExecutorConfig::default());
        let mut session = executor.session(&cluster);
        let first = session.submit(&[Task::new(0, SlotKind::Cpu, 10.0)], &LustreModel::default());
        assert!((first.throughput_per_second - 0.1).abs() < 1e-6);
        let second = session.submit(
            &[Task::new(1, SlotKind::Cpu, 2.5), Task::new(2, SlotKind::Cpu, 2.5)],
            &LustreModel::default(),
        );
        // 2 tasks over the batch's own [10, 15] span, not over [0, 15].
        assert!((second.throughput_per_second - 0.4).abs() < 1e-6, "{}", second.throughput_per_second);
        assert!((second.makespan_seconds - 15.0).abs() < 1e-9, "makespan stays absolute");
        // The cumulative report keeps whole-campaign throughput.
        assert!((session.report().throughput_per_second - 0.2).abs() < 1e-6);
    }

    #[test]
    fn queue_wait_is_measured_from_batch_submission_not_session_start() {
        // One slot: batch 1 occupies [0, 10]. Batch 2's two dependency-free
        // tasks are submitted at t = 10, so the first starts immediately
        // (zero wait) and the second queues only for its sibling's 2.5 s —
        // not for the 10 s of session time before the batch existed.
        let cluster = ClusterConfig { nodes: 1, cpu_slots_per_node: 1, gpu_slots_per_node: 0 };
        let executor = WorkflowExecutor::new(ExecutorConfig::default());
        let mut session = executor.session(&cluster);
        let first = session.submit(&[Task::new(0, SlotKind::Cpu, 10.0)], &LustreModel::default());
        assert_eq!(first.queue_wait_seconds, 0.0);
        let second = session.submit(
            &[Task::new(1, SlotKind::Cpu, 2.5), Task::new(2, SlotKind::Cpu, 2.5)],
            &LustreModel::default(),
        );
        assert!(
            (second.queue_wait_seconds - 2.5).abs() < 1e-9,
            "expected 2.5 s of sibling contention, got {}",
            second.queue_wait_seconds
        );
        // A slot that frees *before* the next batch is submitted is used
        // without any wait being charged: the task never queued for it.
        let cluster = ClusterConfig { nodes: 1, cpu_slots_per_node: 2, gpu_slots_per_node: 0 };
        let mut session = executor.session(&cluster);
        session.submit(
            &[Task::new(0, SlotKind::Cpu, 10.0), Task::new(1, SlotKind::Cpu, 2.0)],
            &LustreModel::default(),
        );
        let overlap = session.submit(&[Task::new(2, SlotKind::Cpu, 1.0)], &LustreModel::default());
        assert_eq!(overlap.queue_wait_seconds, 0.0, "starts at t = 2 on the early-freed slot");
    }

    #[test]
    fn all_skipped_batch_ends_at_its_submission_time_not_zero() {
        // CPU-only cluster, session advanced to t = 10 by batch 1; batch 2
        // is all GPU tasks, so everything is skipped and nothing completes.
        // The batch's makespan is absolute session time, which cannot
        // rewind to 0 — an event boundary fed to a controller must not
        // precede the batch's own submission.
        let cluster = ClusterConfig { nodes: 1, cpu_slots_per_node: 1, gpu_slots_per_node: 0 };
        let executor = WorkflowExecutor::new(ExecutorConfig::default());
        let mut session = executor.session(&cluster);
        session.submit(&[Task::new(0, SlotKind::Cpu, 10.0)], &LustreModel::default());
        let skipped = session.submit(
            &[Task::new(1, SlotKind::Gpu, 1.0), Task::new(2, SlotKind::Gpu, 1.0)],
            &LustreModel::default(),
        );
        assert_eq!(skipped.tasks_completed, 0);
        assert_eq!(skipped.tasks_skipped, 2);
        assert_eq!(skipped.makespan_seconds, 10.0);
        assert_eq!(skipped.throughput_per_second, 0.0);
        assert_eq!(session.now_seconds(), 10.0, "the clock never rewinds");
    }

    #[test]
    fn cross_batch_dependencies_resolve_at_recorded_finish_times() {
        let executor = WorkflowExecutor::new(ExecutorConfig::default());
        let cluster = ClusterConfig { nodes: 1, cpu_slots_per_node: 4, gpu_slots_per_node: 0 };
        let mut session = executor.session(&cluster);
        session.submit(&[Task::new(0, SlotKind::Cpu, 5.0)], &LustreModel::default());
        let second = session.submit(
            &[
                Task::new(1, SlotKind::Cpu, 1.0).with_dependency(0),
                // Unknown ids are vacuously satisfied.
                Task::new(2, SlotKind::Cpu, 1.0).with_dependency(999),
            ],
            &LustreModel::default(),
        );
        assert_eq!(second.tasks_completed, 2);
        let chained = session.schedule().iter().find(|s| s.id == 1).unwrap();
        let free = session.schedule().iter().find(|s| s.id == 2).unwrap();
        assert!(chained.start_seconds >= 5.0, "dependency spans the batch boundary");
        assert!(free.start_seconds < 5.0, "independent tasks overlap the earlier batch");
        // Critical path spans batches too.
        assert!(session.report().critical_path_seconds >= 6.0);
    }

    #[test]
    fn sessions_keep_slots_and_warm_pools_across_batches() {
        let executor = WorkflowExecutor::new(ExecutorConfig::default());
        let cluster = ClusterConfig { nodes: 1, cpu_slots_per_node: 0, gpu_slots_per_node: 2 };
        let fs = LustreModel::default();
        let mut session = executor.session(&cluster);
        let first = session.submit(&gpu_tasks(4, 1.0, 10.0), &fs);
        assert_eq!(first.cold_starts, 2, "both slots load concurrently");
        let second = session.submit(&gpu_tasks(4, 1.0, 10.0), &fs);
        assert_eq!(second.cold_starts, 0, "the model is still resident across batches");
        assert_eq!(second.warm_hits, 4);
        // Cumulative report folds both batches.
        let total = session.report();
        assert_eq!(total.tasks_completed, 8);
        assert_eq!(total.cold_starts, 2);
        assert_eq!(total.warm_hits, 6);
        assert_eq!(total.warm_models.len(), 1);
        assert_eq!(total.warm_models[0].misses + total.warm_models[0].hits, 8);
        // A fresh campaign over the same 8 tasks pays the same colds but the
        // split submission must not barrier: makespans agree.
        let mut tasks = gpu_tasks(4, 1.0, 10.0);
        tasks.extend(gpu_tasks(4, 1.0, 10.0));
        let oneshot = executor.run(&tasks, &cluster, &fs);
        assert_eq!(total.makespan_seconds, oneshot.makespan_seconds);
    }

    #[test]
    fn affine_tasks_stay_on_their_node_when_it_is_free() {
        // Two nodes, plenty of slots: every task with a preferred node should
        // land there and pay no penalty.
        let cluster = ClusterConfig { nodes: 2, cpu_slots_per_node: 4, gpu_slots_per_node: 0 };
        let tasks: Vec<Task> = (0..8)
            .map(|i| {
                Task::new(i, SlotKind::Cpu, 0.5).with_input_mb(100.0).with_preferred_node((i % 2) as usize)
            })
            .collect();
        let report =
            WorkflowExecutor::new(ExecutorConfig::default()).run(&tasks, &cluster, &LustreModel::default());
        assert_eq!(report.tasks_completed, 8);
        assert_eq!(report.non_local_tasks, 0);
        assert_eq!(report.locality_penalty_seconds, 0.0);
    }

    #[test]
    fn off_node_placement_pays_the_locality_penalty() {
        // Every task prefers node 0, which has a single slot: the scheduler
        // spills onto node 1 only once the penalty beats the queueing delay,
        // and each spill is accounted.
        let cluster = ClusterConfig { nodes: 2, cpu_slots_per_node: 1, gpu_slots_per_node: 0 };
        let fs = LustreModel { per_node_bandwidth_mb_s: 100.0, ..Default::default() };
        let tasks: Vec<Task> = (0..16)
            .map(|i| Task::new(i, SlotKind::Cpu, 2.0).with_input_mb(50.0).with_preferred_node(0))
            .collect();
        let report = WorkflowExecutor::new(ExecutorConfig::default()).run(&tasks, &cluster, &fs);
        assert_eq!(report.tasks_completed, 16);
        assert!(report.non_local_tasks > 0, "a long node-0 queue must spill to node 1");
        assert!(report.non_local_tasks < 16, "node 0 must still serve its own tasks");
        assert!(report.locality_penalty_seconds > 0.0);
        // An affinity-oblivious workload (same shape, no preference) never
        // pays the penalty.
        let oblivious: Vec<Task> =
            (0..16).map(|i| Task::new(i, SlotKind::Cpu, 2.0).with_input_mb(50.0)).collect();
        let base = WorkflowExecutor::new(ExecutorConfig::default()).run(&oblivious, &cluster, &fs);
        assert_eq!(base.non_local_tasks, 0);
        assert!(report.makespan_seconds >= base.makespan_seconds);
    }

    #[test]
    fn good_node_plans_beat_hot_spotted_ones() {
        // All tasks pinned to one node serialize on its slots; spreading the
        // same tasks across both nodes halves the makespan (locality holds
        // in both cases — the penalty never fires).
        let cluster = ClusterConfig { nodes: 2, cpu_slots_per_node: 2, gpu_slots_per_node: 0 };
        let fs = LustreModel { per_node_bandwidth_mb_s: 10.0, ..Default::default() };
        let build = |spread: bool| -> Vec<Task> {
            (0..32)
                .map(|i| {
                    let node = if spread { (i % 2) as usize } else { 0 };
                    Task::new(i, SlotKind::Cpu, 1.0).with_input_mb(200.0).with_preferred_node(node)
                })
                .collect()
        };
        let executor = WorkflowExecutor::new(ExecutorConfig::default());
        let hot = executor.run(&build(false), &cluster, &fs);
        let spread = executor.run(&build(true), &cluster, &fs);
        assert!(
            spread.makespan_seconds < hot.makespan_seconds,
            "{} vs {}",
            spread.makespan_seconds,
            hot.makespan_seconds
        );
    }

    #[test]
    fn affinity_scheduling_is_deterministic() {
        let cluster = ClusterConfig::polaris(2);
        let tasks: Vec<Task> = (0..200)
            .map(|i| {
                Task::new(i, SlotKind::Cpu, 0.1 + (i % 7) as f64 * 0.03)
                    .with_input_mb(1.0 + (i % 3) as f64)
                    .with_preferred_node((i % 2) as usize)
            })
            .collect();
        let executor = WorkflowExecutor::new(ExecutorConfig::default());
        let a = executor.run(&tasks, &cluster, &LustreModel::default());
        let b = executor.run(&tasks, &cluster, &LustreModel::default());
        assert_eq!(a, b);
    }

    /// Extract+parse pairs: extraction on CPU staged per-plan, parse on CPU
    /// of the same document grouped under the doc id. `parse_node` is the
    /// node the *plan* would send the parse half to.
    fn paired_tasks(n: usize, extract_nodes: usize, parse_node: usize) -> Vec<Task> {
        let mut tasks = Vec::new();
        for i in 0..n as u64 {
            tasks.push(
                Task::new(i * 2, SlotKind::Cpu, 0.5)
                    .with_input_mb(200.0)
                    .with_preferred_node(i as usize % extract_nodes)
                    .with_group(i, GroupRole::Extract),
            );
            tasks.push(
                Task::new(i * 2 + 1, SlotKind::Cpu, 2.0)
                    .with_input_mb(200.0)
                    .with_preferred_node(parse_node)
                    .with_group(i, GroupRole::Parse),
            );
        }
        tasks
    }

    #[test]
    fn co_scheduling_keeps_pairs_together_and_avoids_the_penalty() {
        let cluster = ClusterConfig { nodes: 4, cpu_slots_per_node: 8, gpu_slots_per_node: 0 };
        let fs = LustreModel { per_node_bandwidth_mb_s: 100.0, ..Default::default() };
        // The plan sends every parse half to node 3, but each pair's data
        // ends up wherever its extract half ran (nodes 0–2). Eight pairs fit
        // node 3's slots, so the naive schedule never spills back by luck.
        let tasks = paired_tasks(8, 3, 3);
        let paired = WorkflowExecutor::new(ExecutorConfig::default()).run(&tasks, &cluster, &fs);
        assert_eq!(paired.tasks_completed, 16);
        assert_eq!(paired.co_located_pairs, 8, "every pair should reunite on its anchor node");
        assert_eq!(paired.split_pairs, 0);
        assert_eq!(paired.locality_penalty_seconds, 0.0);

        let naive = WorkflowExecutor::new(ExecutorConfig { co_schedule_pairs: false, ..Default::default() })
            .run(&tasks, &cluster, &fs);
        assert_eq!(naive.co_located_pairs, 0, "the plan separates every pair");
        assert_eq!(naive.split_pairs, 8);
        assert!(naive.locality_penalty_seconds > 0.0, "split pairs must pay the re-fetch");
        assert!(naive.non_local_tasks > 0);
        assert!(
            paired.locality_penalty_seconds < naive.locality_penalty_seconds,
            "co-scheduling must reduce the locality penalty"
        );
    }

    #[test]
    fn stage_timings_attribute_grouped_busy_time_per_role() {
        let cluster = ClusterConfig { nodes: 2, cpu_slots_per_node: 4, gpu_slots_per_node: 0 };
        let tasks = paired_tasks(8, 2, 1);
        let report =
            WorkflowExecutor::new(ExecutorConfig::default()).run(&tasks, &cluster, &LustreModel::default());
        assert_eq!(report.stage_timings.extract.tasks, 8);
        assert_eq!(report.stage_timings.parse.tasks, 8);
        assert!(report.stage_timings.extract.busy_seconds > 0.0);
        // Parse compute is 4× extract compute per task, so its busy time
        // dominates.
        assert!(report.stage_timings.parse.busy_seconds > report.stage_timings.extract.busy_seconds);
        assert!(report.stage_timings.parse.finished_at_seconds <= report.makespan_seconds + 1e-9);
        // Ungrouped tasks stay out of the breakdown.
        let plain = WorkflowExecutor::new(ExecutorConfig::default()).run(
            &cpu_tasks(5, 1.0),
            &cluster,
            &LustreModel::default(),
        );
        assert_eq!(plain.stage_timings, StageTimings::default());
    }

    #[test]
    fn paired_scheduling_is_deterministic() {
        let cluster = ClusterConfig::polaris(2);
        let tasks = paired_tasks(40, 2, 0);
        let executor = WorkflowExecutor::new(ExecutorConfig::default());
        let a = executor.run(&tasks, &cluster, &LustreModel::default());
        let b = executor.run(&tasks, &cluster, &LustreModel::default());
        assert_eq!(a, b);
    }

    #[test]
    fn submit_with_enqueues_without_draining() {
        let cluster = ClusterConfig { nodes: 1, cpu_slots_per_node: 2, gpu_slots_per_node: 0 };
        let executor = WorkflowExecutor::new(ExecutorConfig::default());
        let mut session = executor.session(&cluster);
        session.submit_with(&cpu_tasks(3, 1.0), SubmitOptions::default());
        assert_eq!(session.pending_task_count(), 3, "submit_with must not run the engine");
        assert!(session.schedule().is_empty());
        let report = session.advance_to_frontier(&LustreModel::default());
        assert_eq!(report.tasks_completed, 3);
        assert_eq!(session.pending_task_count(), 0);
        assert_eq!(session.schedule().len(), 3);
        // A second advance with nothing pending is a no-op at the clock.
        let idle = session.advance_to_frontier(&LustreModel::default());
        assert_eq!(idle.tasks_completed, 0);
        assert_eq!(idle.makespan_seconds, session.now_seconds());
    }

    #[test]
    fn batches_enqueued_together_interleave_in_event_order() {
        // Two batches drained at once: the later batch's earlier-ready task
        // (smaller id, same ready time) dispatches first — submission order
        // does not bias the interleaving.
        let cluster = ClusterConfig { nodes: 1, cpu_slots_per_node: 1, gpu_slots_per_node: 0 };
        let executor = WorkflowExecutor::new(ExecutorConfig::default());
        let mut session = executor.session(&cluster);
        session.submit_with(&[Task::new(5, SlotKind::Cpu, 1.0)], SubmitOptions::default());
        session.submit_with(&[Task::new(2, SlotKind::Cpu, 1.0)], SubmitOptions::default());
        session.advance_to_frontier(&LustreModel::default());
        let order: Vec<u64> = session.schedule().iter().map(|s| s.id).collect();
        assert_eq!(order, vec![2, 5], "the (time, id) ready order must span batches");
        // Dependencies wire across batches enqueued into the same drain —
        // in either enqueue direction.
        for dependent_first in [false, true] {
            let mut chained = executor.session(&cluster);
            let producer = [Task::new(0, SlotKind::Cpu, 2.0)];
            let consumer = [Task::new(1, SlotKind::Cpu, 1.0).with_dependency(0)];
            if dependent_first {
                chained.submit_with(&consumer, SubmitOptions::default());
                chained.submit_with(&producer, SubmitOptions::default());
            } else {
                chained.submit_with(&producer, SubmitOptions::default());
                chained.submit_with(&consumer, SubmitOptions::default());
            }
            let report = chained.advance_to_frontier(&LustreModel::default());
            assert_eq!(report.tasks_completed, 2);
            let dependent = chained.schedule().iter().find(|s| s.id == 1).unwrap();
            assert!(
                dependent.start_seconds >= 2.0,
                "the edge must hold with dependent_first = {dependent_first}"
            );
        }
    }

    #[test]
    fn causal_mode_never_starts_a_task_before_its_release_floor() {
        let cluster = ClusterConfig { nodes: 1, cpu_slots_per_node: 2, gpu_slots_per_node: 0 };
        let causal =
            WorkflowExecutor::new(ExecutorConfig { causality: CausalityMode::Causal, ..Default::default() });
        let mut session = causal.session(&cluster);
        // Batch 1: one long task and one short — a slot frees at t = 1.
        session.submit(
            &[Task::new(0, SlotKind::Cpu, 10.0), Task::new(1, SlotKind::Cpu, 1.0)],
            &LustreModel::default(),
        );
        // Batch 2 released at t = 4: the idle slot may not run it earlier.
        session
            .submit_with(&[Task::new(2, SlotKind::Cpu, 1.0)], SubmitOptions { release_seconds: Some(4.0) });
        let report = session.advance_to_frontier(&LustreModel::default());
        assert_eq!(report.retro_filled_tasks, 0, "causal mode admits no retro-fill");
        let late = session.schedule().iter().find(|s| s.id == 2).unwrap();
        assert_eq!(late.submitted_at_seconds, 4.0);
        assert!(late.start_seconds >= 4.0, "started at {} before its floor", late.start_seconds);
        assert!(late.ready_seconds >= 4.0, "ready time must be clamped to the floor");
        // The floor deferred 4 s of readiness (the task had no deps).
        assert_eq!(report.decision_lag_seconds, 4.0);
        for row in session.schedule() {
            assert!(row.start_seconds >= row.submitted_at_seconds);
        }
    }

    #[test]
    fn retro_fill_mode_counts_the_causality_violations_it_permits() {
        // Same shape as the causal test, via plain submit: batch 2 is
        // submitted at the session clock (t = 10) but retro-fills the slot
        // that freed at t = 1.
        let cluster = ClusterConfig { nodes: 1, cpu_slots_per_node: 2, gpu_slots_per_node: 0 };
        let executor = WorkflowExecutor::new(ExecutorConfig::default());
        let mut session = executor.session(&cluster);
        session.submit(
            &[Task::new(0, SlotKind::Cpu, 10.0), Task::new(1, SlotKind::Cpu, 1.0)],
            &LustreModel::default(),
        );
        let second = session.submit(&[Task::new(2, SlotKind::Cpu, 1.0)], &LustreModel::default());
        assert_eq!(second.retro_filled_tasks, 1, "the retro-fill must be audited");
        assert_eq!(second.decision_lag_seconds, 10.0);
        let late = session.schedule().iter().find(|s| s.id == 2).unwrap();
        assert_eq!(late.submitted_at_seconds, 10.0);
        assert!(late.start_seconds < late.submitted_at_seconds, "retro-fill starts before the floor");
        assert_eq!(session.report().retro_filled_tasks, 1, "the session total folds batches");
    }

    #[test]
    fn causal_makespan_dominates_retro_fill_on_a_split_submission() {
        let cluster = ClusterConfig { nodes: 1, cpu_slots_per_node: 2, gpu_slots_per_node: 0 };
        let batches: [Vec<Task>; 2] = [
            vec![Task::new(0, SlotKind::Cpu, 8.0), Task::new(1, SlotKind::Cpu, 1.0)],
            vec![Task::new(2, SlotKind::Cpu, 2.0), Task::new(3, SlotKind::Cpu, 2.0)],
        ];
        let run = |causality| {
            let executor = WorkflowExecutor::new(ExecutorConfig { causality, ..Default::default() });
            let mut session = executor.session(&cluster);
            for batch in &batches {
                // Release each batch at the dispatch frontier, the way the
                // closed loop does.
                let floor = session.frontier_seconds();
                session.submit_with(batch, SubmitOptions { release_seconds: Some(floor) });
                session.advance_to_frontier(&LustreModel::default());
            }
            session.report()
        };
        let retro = run(CausalityMode::RetroFill);
        let causal = run(CausalityMode::Causal);
        assert!(
            causal.makespan_seconds >= retro.makespan_seconds,
            "respecting decision causality cannot beat retro-fill ({} vs {})",
            causal.makespan_seconds,
            retro.makespan_seconds
        );
        assert_eq!(causal.retro_filled_tasks, 0);
    }

    #[test]
    fn tasks_in_flight_counts_unfinished_work() {
        let cluster = ClusterConfig { nodes: 1, cpu_slots_per_node: 2, gpu_slots_per_node: 0 };
        let executor = WorkflowExecutor::new(ExecutorConfig::default());
        let mut session = executor.session(&cluster);
        session.submit(
            &[Task::new(0, SlotKind::Cpu, 10.0), Task::new(1, SlotKind::Cpu, 2.0)],
            &LustreModel::default(),
        );
        assert_eq!(session.tasks_in_flight_at(1.0), 2);
        assert_eq!(session.tasks_in_flight_at(5.0), 1, "the short task finished at t = 2");
        assert_eq!(session.tasks_in_flight_at(10.0), 0, "finish is exclusive");
        assert_eq!(session.frontier_seconds(), 0.0, "both tasks started at t = 0");
    }

    #[test]
    fn empty_campaign_is_a_noop() {
        let report = WorkflowExecutor::new(ExecutorConfig::default()).run(
            &[],
            &ClusterConfig::polaris(1),
            &LustreModel::default(),
        );
        assert_eq!(report.tasks_completed, 0);
        assert_eq!(report.makespan_seconds, 0.0);
        assert_eq!(report.critical_path_seconds, 0.0);
    }
}
