//! The Parsl-like workflow executor.
//!
//! Tasks are dispatched to per-node CPU and GPU worker slots as slots become
//! free (a discrete-event simulation driven by [`EventQueue`]). The executor
//! reproduces the orchestration optimizations of the paper's §5.2 / §6.1 so
//! they can be ablated:
//!
//! * **warm-start workers** — ML model weights persist on a worker across
//!   task boundaries instead of being reloaded per task,
//! * **node-local staging** — inputs arrive as aggregated archives instead of
//!   many small files, removing metadata pressure on the shared filesystem,
//! * **prefetching** — stage-in of the next batch overlaps with compute.

use serde::{Deserialize, Serialize};

use crate::event::EventQueue;
use crate::lustre::LustreModel;
use crate::profiler::GpuTrace;
use crate::task::{ClusterConfig, SlotKind, Task};

/// Executor options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutorConfig {
    /// Keep ML models resident on workers across tasks (paper §5.2).
    pub warm_start: bool,
    /// Aggregate inputs into node-local archives (paper §6.1).
    pub node_local_staging: bool,
    /// Overlap stage-in with computation.
    pub prefetch: bool,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig { warm_start: true, node_local_staging: true, prefetch: true }
    }
}

/// Outcome of a simulated campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Number of tasks that ran.
    pub tasks_completed: usize,
    /// Number of tasks that could not run (no slot of the required kind).
    pub tasks_skipped: usize,
    /// Wall-clock length of the campaign in seconds.
    pub makespan_seconds: f64,
    /// Completed tasks per second.
    pub throughput_per_second: f64,
    /// Total busy CPU-slot seconds.
    pub cpu_busy_seconds: f64,
    /// Total busy GPU-slot seconds.
    pub gpu_busy_seconds: f64,
    /// Seconds spent staging input data.
    pub stage_in_seconds: f64,
    /// Number of cold starts (model loads) that were paid.
    pub cold_starts: usize,
    /// Per-GPU busy trace (Figure 4).
    pub gpu_trace: GpuTrace,
}

impl CampaignReport {
    /// Mean GPU utilization over the campaign.
    pub fn mean_gpu_utilization(&self) -> f64 {
        self.gpu_trace.mean_utilization(self.makespan_seconds)
    }
}

#[derive(Debug, Clone)]
struct Slot {
    kind: SlotKind,
    /// Home node of the slot. Not consulted by the scheduler yet (slots are
    /// interchangeable within a kind) but kept for node-affinity policies.
    #[allow(dead_code)]
    node: usize,
    gpu_index: Option<usize>,
    warm: bool,
}

/// The workflow executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkflowExecutor {
    config: ExecutorConfig,
}

impl WorkflowExecutor {
    /// Create an executor with the given options.
    pub fn new(config: ExecutorConfig) -> Self {
        WorkflowExecutor { config }
    }

    /// The executor's configuration.
    pub fn config(&self) -> ExecutorConfig {
        self.config
    }

    /// Run a campaign: dispatch every task to the earliest-available slot of
    /// its kind and report aggregate statistics.
    pub fn run(&self, tasks: &[Task], cluster: &ClusterConfig, filesystem: &LustreModel) -> CampaignReport {
        let mut slots = Vec::new();
        let mut gpu_count = 0usize;
        for node in 0..cluster.nodes {
            for _ in 0..cluster.cpu_slots_per_node {
                slots.push(Slot { kind: SlotKind::Cpu, node, gpu_index: None, warm: false });
            }
            for _ in 0..cluster.gpu_slots_per_node {
                slots.push(Slot { kind: SlotKind::Gpu, node, gpu_index: Some(gpu_count), warm: false });
                gpu_count += 1;
            }
        }
        let mut gpu_trace = GpuTrace::new(gpu_count);

        // One event queue per slot kind holding (free_at, slot_index).
        let mut free_cpu = EventQueue::new();
        let mut free_gpu = EventQueue::new();
        for (index, slot) in slots.iter().enumerate() {
            match slot.kind {
                SlotKind::Cpu => free_cpu.push(0.0, index),
                SlotKind::Gpu => free_gpu.push(0.0, index),
            }
        }

        let mut report = CampaignReport {
            tasks_completed: 0,
            tasks_skipped: 0,
            makespan_seconds: 0.0,
            throughput_per_second: 0.0,
            cpu_busy_seconds: 0.0,
            gpu_busy_seconds: 0.0,
            stage_in_seconds: 0.0,
            cold_starts: 0,
            gpu_trace: GpuTrace::new(gpu_count),
        };

        // In steady state every node stages data concurrently; that is the
        // contention level the shared filesystem sees.
        let staging_concurrency = cluster.nodes;

        for task in tasks {
            let queue = match task.slot {
                SlotKind::Cpu => &mut free_cpu,
                SlotKind::Gpu => &mut free_gpu,
            };
            let Some((free_at, slot_index)) = queue.pop() else {
                report.tasks_skipped += 1;
                continue;
            };
            let slot = &mut slots[slot_index];

            let stage_in = filesystem.stage_in_seconds(
                task.input_mb,
                task.input_files,
                staging_concurrency,
                self.config.node_local_staging,
            );
            let cold = if slot.warm { 0.0 } else { task.cold_start_seconds };
            if cold > 0.0 {
                report.cold_starts += 1;
            }
            if self.config.warm_start && task.cold_start_seconds > 0.0 {
                slot.warm = true;
            }

            // Prefetching overlaps stage-in with compute; otherwise they are
            // serial. Model loading can never be overlapped.
            let busy = if self.config.prefetch {
                cold + task.compute_seconds.max(stage_in)
            } else {
                cold + stage_in + task.compute_seconds
            };
            let start = free_at;
            let end = start + busy;
            report.stage_in_seconds += stage_in;
            match slot.kind {
                SlotKind::Cpu => report.cpu_busy_seconds += busy,
                SlotKind::Gpu => {
                    report.gpu_busy_seconds += busy;
                    if let Some(gpu) = slot.gpu_index {
                        if cold > 0.0 {
                            gpu_trace.record(gpu, start, start + cold, true);
                        }
                        gpu_trace.record(gpu, start + cold, end, false);
                    }
                }
            }
            report.tasks_completed += 1;
            report.makespan_seconds = report.makespan_seconds.max(end);
            match slot.kind {
                SlotKind::Cpu => free_cpu.push(end, slot_index),
                SlotKind::Gpu => free_gpu.push(end, slot_index),
            }
        }

        report.gpu_trace = gpu_trace;
        report.throughput_per_second = if report.makespan_seconds > 0.0 {
            report.tasks_completed as f64 / report.makespan_seconds
        } else {
            0.0
        };
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu_tasks(n: usize, seconds: f64) -> Vec<Task> {
        (0..n).map(|i| Task::new(i as u64, SlotKind::Cpu, seconds).with_input_mb(1.0)).collect()
    }

    fn gpu_tasks(n: usize, seconds: f64, cold: f64) -> Vec<Task> {
        (0..n)
            .map(|i| Task::new(i as u64, SlotKind::Gpu, seconds).with_input_mb(5.0).with_cold_start(cold))
            .collect()
    }

    #[test]
    fn all_tasks_complete_and_throughput_is_positive() {
        let report = WorkflowExecutor::new(ExecutorConfig::default()).run(
            &cpu_tasks(100, 0.2),
            &ClusterConfig::polaris(2),
            &LustreModel::default(),
        );
        assert_eq!(report.tasks_completed, 100);
        assert_eq!(report.tasks_skipped, 0);
        assert!(report.throughput_per_second > 0.0);
        assert!(report.makespan_seconds > 0.0);
    }

    #[test]
    fn more_nodes_mean_higher_throughput_until_fs_contention() {
        let tasks = cpu_tasks(4000, 0.05);
        let run = |nodes| {
            WorkflowExecutor::new(ExecutorConfig::default()).run(
                &tasks,
                &ClusterConfig::polaris(nodes),
                &LustreModel::default(),
            )
        };
        let one = run(1).throughput_per_second;
        let four = run(4).throughput_per_second;
        assert!(four > one * 2.0, "scaling 1→4 nodes should be near-linear ({one} vs {four})");
    }

    #[test]
    fn warm_start_pays_the_model_load_once_per_worker() {
        let tasks = gpu_tasks(40, 2.0, 15.0);
        let cluster = ClusterConfig::polaris(1);
        let fs = LustreModel::default();
        let warm = WorkflowExecutor::new(ExecutorConfig { warm_start: true, ..Default::default() })
            .run(&tasks, &cluster, &fs);
        let cold = WorkflowExecutor::new(ExecutorConfig { warm_start: false, ..Default::default() })
            .run(&tasks, &cluster, &fs);
        assert_eq!(warm.cold_starts, cluster.gpu_slots_per_node);
        assert_eq!(cold.cold_starts, 40);
        assert!(warm.makespan_seconds < cold.makespan_seconds);
        assert!(warm.throughput_per_second > cold.throughput_per_second * 1.5);
    }

    #[test]
    fn node_local_staging_helps_small_file_workloads() {
        let tasks: Vec<Task> = (0..200)
            .map(|i| Task::new(i, SlotKind::Cpu, 0.02).with_input_mb(2.0).with_input_files(50))
            .collect();
        let cluster = ClusterConfig::polaris(8);
        let fs = LustreModel::default();
        let staged = WorkflowExecutor::new(ExecutorConfig { node_local_staging: true, ..Default::default() })
            .run(&tasks, &cluster, &fs);
        let raw = WorkflowExecutor::new(ExecutorConfig { node_local_staging: false, ..Default::default() })
            .run(&tasks, &cluster, &fs);
        assert!(staged.makespan_seconds < raw.makespan_seconds);
    }

    #[test]
    fn gpu_trace_reflects_gpu_work_only() {
        let mut tasks = gpu_tasks(8, 3.0, 10.0);
        tasks.extend(cpu_tasks(8, 1.0));
        let report = WorkflowExecutor::new(ExecutorConfig::default()).run(
            &tasks,
            &ClusterConfig::polaris(1),
            &LustreModel::default(),
        );
        assert!(report.gpu_busy_seconds > 0.0);
        assert!(report.cpu_busy_seconds > 0.0);
        assert!(report.mean_gpu_utilization() > 0.0);
        assert!(report.mean_gpu_utilization() <= 1.0);
        let load: f64 = (0..report.gpu_trace.gpus()).map(|g| report.gpu_trace.model_load_seconds(g)).sum();
        assert!(load > 0.0, "model loads must appear in the trace");
    }

    #[test]
    fn missing_slot_kind_skips_tasks() {
        let cluster = ClusterConfig { nodes: 1, cpu_slots_per_node: 2, gpu_slots_per_node: 0 };
        let report = WorkflowExecutor::new(ExecutorConfig::default()).run(
            &gpu_tasks(5, 1.0, 0.0),
            &cluster,
            &LustreModel::default(),
        );
        assert_eq!(report.tasks_completed, 0);
        assert_eq!(report.tasks_skipped, 5);
        assert_eq!(report.throughput_per_second, 0.0);
    }

    #[test]
    fn empty_campaign_is_a_noop() {
        let report = WorkflowExecutor::new(ExecutorConfig::default()).run(
            &[],
            &ClusterConfig::polaris(1),
            &LustreModel::default(),
        );
        assert_eq!(report.tasks_completed, 0);
        assert_eq!(report.makespan_seconds, 0.0);
    }
}
