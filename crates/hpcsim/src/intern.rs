//! String interning for hot-path model labels.
//!
//! Every task carries a model label ([`crate::Task::label`], a `String`), and
//! the executor's warm-pool and warm-statistics bookkeeping used to compare
//! and clone those strings once per dispatched task. At million-task scale
//! that is millions of string hashes, compares, and allocations for what is
//! a handful of distinct models. [`ModelInterner`] maps each distinct label
//! to a dense `u32` id exactly once per session; the hot loop then works in
//! integer ids and the strings are materialized only when a report is built.

use std::collections::HashMap;

/// Dense integer id of an interned model label (see [`ModelInterner`]).
pub type ModelId = u32;

/// A session-level string interner mapping model labels to dense `u32` ids.
///
/// Ids are assigned in first-appearance order starting at zero, so they are
/// valid indexes into id-ordered side tables. Interning the same label twice
/// returns the same id; resolving an id returns the original label.
///
/// # Example
///
/// ```
/// use hpcsim::ModelInterner;
///
/// let mut models = ModelInterner::new();
/// let nougat = models.intern("Nougat");
/// assert_eq!(models.intern("Nougat"), nougat);
/// assert_eq!(models.resolve(nougat), "Nougat");
/// assert_eq!(models.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ModelInterner {
    ids: HashMap<String, ModelId>,
    names: Vec<String>,
}

impl ModelInterner {
    /// An empty interner.
    pub fn new() -> Self {
        ModelInterner::default()
    }

    /// Id of `name`, interning it if it has not been seen before.
    pub fn intern(&mut self, name: &str) -> ModelId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = ModelId::try_from(self.names.len()).expect("more than u32::MAX distinct model labels");
        self.ids.insert(name.to_string(), id);
        self.names.push(name.to_string());
        id
    }

    /// The label interned as `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: ModelId) -> &str {
        &self.names[id as usize]
    }

    /// Number of distinct labels interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no labels have been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut interner = ModelInterner::new();
        assert!(interner.is_empty());
        let a = interner.intern("PyMuPDF");
        let b = interner.intern("Nougat");
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(interner.intern("PyMuPDF"), a);
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.resolve(a), "PyMuPDF");
        assert_eq!(interner.resolve(b), "Nougat");
    }
}
