//! Discrete-event simulator of a leadership-class HPC system running a
//! Parsl-style parsing campaign.
//!
//! The paper's throughput results (Figures 4 and 5) are not properties of the
//! parsers alone — they come from how the workflow engine schedules
//! heterogeneous tasks over CPU cores and GPUs, whether ML models stay warm
//! across task boundaries, and how the shared Lustre filesystem behaves when
//! hundreds of nodes read many small files at once. This crate implements
//! that orchestration layer for real and drives it with simulated task
//! durations:
//!
//! * [`event`] — the dependency engine's `(time, task id)`-ordered ready
//!   queue,
//! * [`clock`] — the monotonic simulated-time clock that closed-loop
//!   scaling controllers sample instead of wall time,
//! * [`task`] — the task/cluster description (CPU vs GPU slots, stage-in
//!   bytes, cold-start model-load costs, co-scheduling pair hints, and
//!   [`Task::depends_on`] precedence edges),
//! * [`lustre`] — a shared-filesystem contention model (aggregate bandwidth,
//!   metadata pressure from small files, node-local staging),
//! * [`executor`] — the event-driven, dependency-aware Parsl-like engine:
//!   per-node [`WarmPool`]s of resident model weights, node affinity, pair
//!   co-scheduling, a per-stage timing breakdown, and resumable
//!   [`ExecutorSession`]s whose slot, warm-pool, and pending-set state
//!   persists across submit batches — with causal, event-interleaved batch
//!   admission under release floors ([`CausalityMode`], [`SubmitOptions`];
//!   the waveless closed loop builds on this),
//! * [`profiler`] — per-GPU utilization traces (the Nsight view of Figure 4).
//!
//! # Example
//!
//! ```
//! use hpcsim::{ClusterConfig, ExecutorConfig, LustreModel, Task, SlotKind, WorkflowExecutor};
//!
//! let tasks: Vec<Task> = (0..64).map(|i| Task::new(i, SlotKind::Cpu, 0.5).with_input_mb(2.0)).collect();
//! let cluster = ClusterConfig { nodes: 2, cpu_slots_per_node: 8, gpu_slots_per_node: 4 };
//! let report = WorkflowExecutor::new(ExecutorConfig::default())
//!     .run(&tasks, &cluster, &LustreModel::default());
//! assert!(report.makespan_seconds > 0.0);
//! assert_eq!(report.tasks_completed, 64);
//! ```

#![deny(missing_docs)]

pub mod clock;
pub mod event;
pub mod executor;
pub mod intern;
pub mod lustre;
pub mod profiler;
pub mod slotindex;
pub mod task;

pub use clock::SimClock;
pub use event::ReadyQueue;
pub use executor::{
    CampaignReport, CausalityMode, ExecutorConfig, ExecutorSession, ModelWarmStats, PlacementPolicy,
    ScheduledTask, StageTiming, StageTimings, SubmitOptions, WarmAccess, WarmPool, WorkflowExecutor,
};
pub use intern::{ModelId, ModelInterner};
pub use lustre::LustreModel;
pub use profiler::GpuTrace;
pub use slotindex::{FinishIndex, SlotIndex};
pub use task::{ClusterConfig, GroupRole, SlotKind, Task, TaskGroup};
