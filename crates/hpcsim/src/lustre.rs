//! Shared-filesystem (Lustre-like) contention model.
//!
//! The paper observes that PyMuPDF's scaling plateaus around 100–128 nodes
//! because extraction is so fast that the shared filesystem becomes the
//! bottleneck, and that aggregating many small PDFs into node-local ZIP
//! archives is necessary to keep metadata pressure off the Lustre servers.
//! This model captures exactly those two effects: an aggregate bandwidth cap
//! shared by all concurrent readers, and a per-file metadata cost that
//! node-local staging amortizes away.

use serde::{Deserialize, Serialize};

/// Parameters of the shared filesystem.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LustreModel {
    /// Aggregate read bandwidth of the filesystem in MiB/s (Eagle: ~650 GB/s).
    pub aggregate_bandwidth_mb_s: f64,
    /// Maximum bandwidth a single node can draw in MiB/s (2×25 GB/s NICs,
    /// realistically a few GiB/s of file traffic).
    pub per_node_bandwidth_mb_s: f64,
    /// Metadata operation latency per file open in seconds.
    pub metadata_latency_s: f64,
    /// Maximum metadata operations per second the metadata servers sustain.
    pub metadata_ops_per_s: f64,
    /// Number of model-load channels the filesystem sustains at once: paid
    /// cold starts queue on these channels, so a thundering herd of
    /// concurrent model loads serializes instead of streaming weights for
    /// free in parallel. `0` means unlimited channels — the legacy behavior,
    /// bitwise-identical to the model before this field existed.
    pub model_load_channels: usize,
}

impl Default for LustreModel {
    fn default() -> Self {
        LustreModel {
            aggregate_bandwidth_mb_s: 650_000.0,
            per_node_bandwidth_mb_s: 3_000.0,
            metadata_latency_s: 0.002,
            metadata_ops_per_s: 40_000.0,
            model_load_channels: 0,
        }
    }
}

impl LustreModel {
    /// Effective per-node read bandwidth when `concurrent_nodes` nodes read
    /// simultaneously: the aggregate cap is shared fairly, and no node can
    /// exceed its NIC limit.
    pub fn effective_node_bandwidth(&self, concurrent_nodes: usize) -> f64 {
        let nodes = concurrent_nodes.max(1) as f64;
        (self.aggregate_bandwidth_mb_s / nodes).min(self.per_node_bandwidth_mb_s)
    }

    /// Time to stage `input_mb` MiB arriving as `files` files onto a node,
    /// with `concurrent_nodes` nodes staging at once. `aggregated` models the
    /// paper's ZIP/node-local staging optimization: file count collapses to
    /// one archive per batch, removing metadata pressure.
    pub fn stage_in_seconds(
        &self,
        input_mb: f64,
        files: usize,
        concurrent_nodes: usize,
        aggregated: bool,
    ) -> f64 {
        let bandwidth = self.effective_node_bandwidth(concurrent_nodes);
        let transfer = if bandwidth > 0.0 { input_mb.max(0.0) / bandwidth } else { f64::INFINITY };
        let effective_files = if aggregated { 1 } else { files.max(1) };
        // Metadata servers are shared too: under heavy concurrency each open
        // takes longer than its nominal latency.
        let metadata_rate_share = (self.metadata_ops_per_s / concurrent_nodes.max(1) as f64).max(1.0);
        let metadata = effective_files as f64 * self.metadata_latency_s.max(1.0 / metadata_rate_share);
        transfer + metadata
    }

    /// Data-locality penalty: extra seconds to run a task on a node other
    /// than the one where its input was staged. The node-local copy
    /// (NVMe/ramdisk archive) is useless remotely, so the input transits the
    /// shared filesystem again — one more bandwidth-shared transfer plus one
    /// metadata open for the archive.
    pub fn locality_penalty_seconds(&self, input_mb: f64, concurrent_nodes: usize) -> f64 {
        let bandwidth = self.effective_node_bandwidth(concurrent_nodes);
        let transfer = if bandwidth > 0.0 { input_mb.max(0.0) / bandwidth } else { f64::INFINITY };
        transfer + self.metadata_latency_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_is_shared_and_capped() {
        let fs = LustreModel::default();
        assert_eq!(fs.effective_node_bandwidth(1), fs.per_node_bandwidth_mb_s);
        let many = fs.effective_node_bandwidth(1000);
        assert!(many < fs.per_node_bandwidth_mb_s);
        assert!((many - 650.0).abs() < 1.0);
    }

    #[test]
    fn stage_in_grows_with_contention() {
        let fs = LustreModel::default();
        let alone = fs.stage_in_seconds(500.0, 1, 1, true);
        let crowded = fs.stage_in_seconds(500.0, 1, 2000, true);
        assert!(crowded > alone);
    }

    #[test]
    fn aggregation_removes_small_file_penalty() {
        let fs = LustreModel::default();
        let many_small = fs.stage_in_seconds(100.0, 5_000, 64, false);
        let aggregated = fs.stage_in_seconds(100.0, 5_000, 64, true);
        assert!(many_small > aggregated * 2.0, "{many_small} vs {aggregated}");
    }

    #[test]
    fn locality_penalty_scales_with_input_and_contention() {
        let fs = LustreModel::default();
        let small = fs.locality_penalty_seconds(1.0, 1);
        let large = fs.locality_penalty_seconds(1000.0, 1);
        assert!(large > small);
        let crowded = fs.locality_penalty_seconds(1000.0, 2000);
        assert!(crowded > large, "contention amplifies the off-node cost");
        assert!(fs.locality_penalty_seconds(0.0, 1) > 0.0, "still one metadata open");
    }

    #[test]
    fn zero_input_still_pays_metadata() {
        let fs = LustreModel::default();
        let t = fs.stage_in_seconds(0.0, 1, 1, true);
        assert!(t > 0.0);
        assert!(t < 0.1);
    }
}
