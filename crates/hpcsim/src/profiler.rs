//! GPU-utilization traces (the Nsight-style view of the paper's Figure 4).

use serde::{Deserialize, Serialize};

/// Busy intervals recorded per GPU during a campaign.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct GpuTrace {
    /// `intervals[g]` holds `(start, end, is_model_load)` busy spans of GPU `g`.
    intervals: Vec<Vec<(f64, f64, bool)>>,
    /// Left-fold busy-seconds partial sum over spans retired from each GPU
    /// by [`retire_before`](Self::retire_before); sized lazily (missing
    /// entries are zero). Folding the retained spans *starting from* this
    /// partial reproduces the full-history fold bitwise — left-to-right
    /// float summation composes over any prefix split.
    retired_busy: Vec<f64>,
    /// Same partial sum restricted to model-load spans.
    retired_load: Vec<f64>,
}

impl GpuTrace {
    /// Trace for `gpus` devices.
    pub fn new(gpus: usize) -> Self {
        GpuTrace { intervals: vec![Vec::new(); gpus], retired_busy: Vec::new(), retired_load: Vec::new() }
    }

    /// Number of GPUs tracked.
    pub fn gpus(&self) -> usize {
        self.intervals.len()
    }

    /// Record a busy span on a GPU. Spans outside the tracked range are ignored.
    pub fn record(&mut self, gpu: usize, start: f64, end: f64, is_model_load: bool) {
        if let Some(spans) = self.intervals.get_mut(gpu) {
            if end > start {
                spans.push((start, end, is_model_load));
            }
        }
    }

    /// Append every span of `other` onto this trace, growing the device
    /// range if `other` tracks more GPUs. Used by executor sessions to fold
    /// per-batch traces into the campaign-cumulative one; span order is
    /// batch order then schedule order, so merged traces are deterministic.
    pub fn merge(&mut self, other: &GpuTrace) {
        if other.intervals.len() > self.intervals.len() {
            self.intervals.resize(other.intervals.len(), Vec::new());
        }
        for (gpu, spans) in other.intervals.iter().enumerate() {
            self.intervals[gpu].extend_from_slice(spans);
        }
    }

    /// Drop the longest *prefix* of each GPU's span list that ends at or
    /// before `watermark_seconds`, folding the dropped spans into the
    /// retired partial sums. [`busy_seconds`](Self::busy_seconds),
    /// [`model_load_seconds`](Self::model_load_seconds), and everything
    /// derived from them ([`utilization`](Self::utilization),
    /// [`mean_utilization`](Self::mean_utilization)) stay **bitwise
    /// identical** to the unretired trace: summation is the same
    /// left-to-right fold, merely resumed from the retired partial.
    /// Only [`utilization_series`](Self::utilization_series) loses
    /// information — retired spans no longer appear in per-bin breakdowns.
    ///
    /// Prefix-only (rather than filtering every early span) keeps the fold
    /// order intact; spans are recorded in batch-then-schedule order, so in
    /// steady state the un-retired suffix is bounded by work in flight.
    pub fn retire_before(&mut self, watermark_seconds: f64) {
        if self.retired_busy.len() < self.intervals.len() {
            self.retired_busy.resize(self.intervals.len(), 0.0);
            self.retired_load.resize(self.intervals.len(), 0.0);
        }
        for (gpu, spans) in self.intervals.iter_mut().enumerate() {
            let cut = spans.iter().position(|&(_, end, _)| end > watermark_seconds).unwrap_or(spans.len());
            for &(start, end, load) in &spans[..cut] {
                self.retired_busy[gpu] += end - start;
                if load {
                    self.retired_load[gpu] += end - start;
                }
            }
            spans.drain(..cut);
        }
    }

    /// Total busy seconds of one GPU (compute + model load), retired spans
    /// included (bitwise, see [`retire_before`](Self::retire_before)).
    pub fn busy_seconds(&self, gpu: usize) -> f64 {
        let retired = self.retired_busy.get(gpu).copied().unwrap_or(0.0);
        self.intervals
            .get(gpu)
            .map(|spans| spans.iter().fold(retired, |acc, (s, e, _)| acc + (e - s)))
            .unwrap_or(retired)
    }

    /// Seconds one GPU spent loading models rather than computing, retired
    /// spans included (bitwise, see [`retire_before`](Self::retire_before)).
    pub fn model_load_seconds(&self, gpu: usize) -> f64 {
        let retired = self.retired_load.get(gpu).copied().unwrap_or(0.0);
        self.intervals
            .get(gpu)
            .map(|spans| {
                spans.iter().filter(|(_, _, load)| *load).fold(retired, |acc, (s, e, _)| acc + (e - s))
            })
            .unwrap_or(retired)
    }

    /// Utilization of one GPU over `[0, horizon]` in `[0, 1]`.
    pub fn utilization(&self, gpu: usize, horizon: f64) -> f64 {
        if horizon <= 0.0 {
            return 0.0;
        }
        (self.busy_seconds(gpu) / horizon).clamp(0.0, 1.0)
    }

    /// Mean utilization across all GPUs.
    pub fn mean_utilization(&self, horizon: f64) -> f64 {
        if self.intervals.is_empty() {
            return 0.0;
        }
        (0..self.intervals.len()).map(|g| self.utilization(g, horizon)).sum::<f64>()
            / self.intervals.len() as f64
    }

    /// Utilization time series of one GPU: `bins` equal windows over
    /// `[0, horizon]`, each reporting the busy fraction within the window.
    /// This is the per-GPU series plotted in Figure 4.
    pub fn utilization_series(&self, gpu: usize, horizon: f64, bins: usize) -> Vec<f64> {
        if horizon <= 0.0 || bins == 0 {
            return vec![0.0; bins];
        }
        let bin_width = horizon / bins as f64;
        let mut series = vec![0.0; bins];
        if let Some(spans) = self.intervals.get(gpu) {
            for &(start, end, _) in spans {
                let first_bin = ((start / bin_width).floor() as usize).min(bins.saturating_sub(1));
                let last_bin = ((end / bin_width).ceil() as usize).min(bins);
                for (b, slot) in series.iter_mut().enumerate().take(last_bin).skip(first_bin) {
                    let bin_start = b as f64 * bin_width;
                    let bin_end = bin_start + bin_width;
                    let overlap = (end.min(bin_end) - start.max(bin_start)).max(0.0);
                    *slot += overlap / bin_width;
                }
            }
        }
        for v in &mut series {
            *v = v.clamp(0.0, 1.0);
        }
        series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_seconds_and_utilization() {
        let mut trace = GpuTrace::new(2);
        trace.record(0, 0.0, 5.0, false);
        trace.record(0, 10.0, 12.0, true);
        trace.record(1, 0.0, 1.0, false);
        assert_eq!(trace.gpus(), 2);
        assert!((trace.busy_seconds(0) - 7.0).abs() < 1e-12);
        assert!((trace.model_load_seconds(0) - 2.0).abs() < 1e-12);
        assert!((trace.utilization(0, 14.0) - 0.5).abs() < 1e-12);
        assert!((trace.mean_utilization(14.0) - (0.5 + 1.0 / 14.0) / 2.0).abs() < 1e-9);
        assert_eq!(trace.busy_seconds(7), 0.0);
    }

    #[test]
    fn merge_appends_spans_and_grows_the_device_range() {
        let mut a = GpuTrace::new(1);
        a.record(0, 0.0, 1.0, false);
        let mut b = GpuTrace::new(2);
        b.record(0, 1.0, 2.0, true);
        b.record(1, 0.0, 3.0, false);
        a.merge(&b);
        assert_eq!(a.gpus(), 2);
        assert!((a.busy_seconds(0) - 2.0).abs() < 1e-12);
        assert!((a.model_load_seconds(0) - 1.0).abs() < 1e-12);
        assert!((a.busy_seconds(1) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_spans_are_ignored() {
        let mut trace = GpuTrace::new(1);
        trace.record(0, 5.0, 5.0, false);
        trace.record(0, 6.0, 4.0, false);
        trace.record(9, 0.0, 1.0, false);
        assert_eq!(trace.busy_seconds(0), 0.0);
    }

    #[test]
    fn retire_before_preserves_busy_accounting_bitwise() {
        let mut full = GpuTrace::new(2);
        let mut retired = GpuTrace::new(2);
        // Irrational-ish durations so any fold-order change would show.
        let spans = [
            (0usize, 0.1, 1.3, false),
            (0, 1.7, 2.9, true),
            (1, 0.3, 0.7, false),
            (0, 3.1, 4.3, false),
            (1, 2.9, 6.1, true),
            (0, 5.0, 7.7, false),
        ];
        for &(gpu, s, e, load) in &spans {
            full.record(gpu, s, e, load);
            retired.record(gpu, s, e, load);
        }
        retired.retire_before(3.0);
        retired.retire_before(5.0); // repeated retirement composes
        for gpu in 0..2 {
            assert_eq!(full.busy_seconds(gpu).to_bits(), retired.busy_seconds(gpu).to_bits());
            assert_eq!(full.model_load_seconds(gpu).to_bits(), retired.model_load_seconds(gpu).to_bits());
            assert_eq!(full.utilization(gpu, 7.7).to_bits(), retired.utilization(gpu, 7.7).to_bits());
        }
        assert_eq!(full.mean_utilization(7.7).to_bits(), retired.mean_utilization(7.7).to_bits());
        // GPU 1's long span straddles the watermark: it must not retire.
        // (Prefix rule: GPU 0 retired its first two spans only — span 3
        // ends at 4.3 > 3.0 at the first call, then <= 5.0 at the second.)
        assert!(retired.busy_seconds(1) > 0.0);
    }

    #[test]
    fn utilization_series_localizes_activity() {
        let mut trace = GpuTrace::new(1);
        trace.record(0, 0.0, 5.0, false);
        let series = trace.utilization_series(0, 10.0, 10);
        assert_eq!(series.len(), 10);
        assert!(series[..5].iter().all(|&v| v > 0.99));
        assert!(series[5..].iter().all(|&v| v < 0.01));
        assert!(trace.utilization_series(0, 0.0, 4).iter().all(|&v| v == 0.0));
    }
}
