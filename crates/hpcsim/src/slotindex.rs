//! Hot-path index structures behind [`crate::ExecutorSession`].
//!
//! The executor's dispatch loop answers two questions once per task: *which
//! slot starts this task earliest?* and (from the closed-loop controller,
//! once per epoch) *how many tasks are still in flight at time t?* The naive
//! answers — a linear scan over every slot and a linear scan over the whole
//! schedule — are O(slots) and O(schedule length) respectively, and the
//! second one made epoch cost grow with campaign length: at a million
//! documents the controller spent more time counting in-flight work than
//! scheduling it.
//!
//! [`SlotIndex`] keeps one ordered set of `(free_at, slot)` per (node, kind)
//! so the per-node best slot is a `first()` lookup and the global winner is
//! a comparison over at most one champion per node. [`FinishIndex`] keeps
//! task finish times as log-structured sorted runs (a binary-counter merge
//! on insert, amortized O(log n)), answering "how many finishes exceed t?"
//! by binary search per run in O(log² n) — while still allowing the
//! non-monotone query times that retro-fill mode produces.
//!
//! Both structures reproduce the scan results *bitwise* — the equivalence is
//! pinned by proptests in `tests/hotpath_equivalence.rs`.

use std::collections::BTreeSet;

use crate::task::SlotKind;

/// Order-preserving bit pattern of a non-negative finite time.
///
/// For non-negative finite floats, IEEE-754 bit patterns sort identically to
/// the values themselves, so times can live in integer-keyed ordered sets
/// with exact (no-epsilon) semantics. `-0.0` normalizes to `+0.0` first —
/// its sign bit would otherwise sort it above every positive time.
fn order_bits(seconds: f64) -> u64 {
    debug_assert!(seconds.is_finite() && seconds >= 0.0, "time out of domain: {seconds}");
    if seconds == 0.0 {
        0
    } else {
        seconds.to_bits()
    }
}

/// Per-(node, kind) index of slot availability, answering *earliest
/// effective start* queries without scanning every slot.
///
/// Each node×kind bucket is a [`BTreeSet`] of `(free_at_bits, slot_index)`.
/// Within one bucket the dispatch key — effective start, locality flag,
/// idle time — is monotone in `(free_at, slot_index)`, so the bucket's
/// first element is always that node's champion; the global winner is the
/// minimum over champions under the executor's full comparison key with the
/// slot index as the final tiebreak, which reproduces the linear scan's
/// keep-first-on-tie (lowest slot index) behavior exactly.
#[derive(Debug, Clone, Default)]
pub struct SlotIndex {
    cpu: Vec<BTreeSet<(u64, usize)>>,
    gpu: Vec<BTreeSet<(u64, usize)>>,
}

impl SlotIndex {
    /// An empty index over `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        SlotIndex { cpu: vec![BTreeSet::new(); nodes], gpu: vec![BTreeSet::new(); nodes] }
    }

    fn buckets(&self, kind: SlotKind) -> &[BTreeSet<(u64, usize)>] {
        match kind {
            SlotKind::Cpu => &self.cpu,
            SlotKind::Gpu => &self.gpu,
        }
    }

    fn buckets_mut(&mut self, kind: SlotKind) -> &mut [BTreeSet<(u64, usize)>] {
        match kind {
            SlotKind::Cpu => &mut self.cpu,
            SlotKind::Gpu => &mut self.gpu,
        }
    }

    /// Register slot `slot` of `kind` on `node`, free at `free_at`.
    pub fn insert(&mut self, kind: SlotKind, node: usize, free_at: f64, slot: usize) {
        let bits = order_bits(free_at);
        self.buckets_mut(kind)[node].insert((bits, slot));
    }

    /// Move slot `slot` of `kind` on `node` from availability `old_free_at`
    /// to `new_free_at` (after dispatching a task onto it).
    pub fn update(&mut self, kind: SlotKind, node: usize, old_free_at: f64, new_free_at: f64, slot: usize) {
        let bucket = &mut self.buckets_mut(kind)[node];
        let removed = bucket.remove(&(order_bits(old_free_at), slot));
        debug_assert!(removed, "slot {slot} was not indexed at free_at {old_free_at}");
        bucket.insert((order_bits(new_free_at), slot));
    }

    /// The slot of `kind` minimizing the executor's dispatch key for a task
    /// ready at `ready_at`: effective start (availability, or availability
    /// plus `marginal_penalty` off `believed_node`), preferring local slots,
    /// then the longest-idle slot, then the lowest slot index. Only nodes
    /// `< active_nodes` are considered — the executor's fleet-autoscaling
    /// hook: a drained node keeps its slots (and their queued busy times)
    /// indexed but receives no new work while outside the active prefix.
    /// Returns `None` when no slot of `kind` exists on an active node.
    pub fn best_slot(
        &self,
        kind: SlotKind,
        ready_at: f64,
        marginal_penalty: f64,
        believed_node: Option<usize>,
        active_nodes: usize,
    ) -> Option<usize> {
        let mut best: Option<(f64, bool, f64, usize)> = None;
        for (node, bucket) in self.buckets(kind).iter().take(active_nodes).enumerate() {
            let Some(&(bits, slot)) = bucket.first() else { continue };
            let free = f64::from_bits(bits);
            let local = believed_node.is_none_or(|n| n == node);
            let penalty = if local { 0.0 } else { marginal_penalty };
            let key = (free.max(ready_at) + penalty, !local, free, slot);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        best.map(|(_, _, _, slot)| slot)
    }

    /// The slot of `kind` minimizing the *cost-aware* dispatch key for a
    /// task ready at `ready_at`: expected completion — effective start plus
    /// any locality penalty off `believed_node` plus `cold_if_miss(node,
    /// projected_start)` (the cold-start seconds the task would pay on that
    /// node, zero when its model is already warm there) — preferring local
    /// slots, then the longest-idle slot, then the lowest slot index (slots
    /// are numbered node-by-node, so the final slot tiebreak orders by node
    /// first). The per-node additions are constant across a node's slots,
    /// so each bucket's `first()` champion still prunes the scan exactly as
    /// in [`SlotIndex::best_slot`]. Returns `None` when no slot of `kind`
    /// exists on an active node.
    pub fn best_slot_cost_aware(
        &self,
        kind: SlotKind,
        ready_at: f64,
        marginal_penalty: f64,
        believed_node: Option<usize>,
        active_nodes: usize,
        cold_if_miss: impl Fn(usize, f64) -> f64,
    ) -> Option<usize> {
        let mut best: Option<(f64, bool, f64, usize)> = None;
        for (node, bucket) in self.buckets(kind).iter().take(active_nodes).enumerate() {
            let Some(&(bits, slot)) = bucket.first() else { continue };
            let free = f64::from_bits(bits);
            let local = believed_node.is_none_or(|n| n == node);
            let penalty = if local { 0.0 } else { marginal_penalty };
            let start = free.max(ready_at);
            let key = (start + penalty + cold_if_miss(node, start), !local, free, slot);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        best.map(|(_, _, _, slot)| slot)
    }
}

/// Log-structured index of task finish times, counting in-flight work at an
/// arbitrary query time in O(log² n) without scanning the schedule.
///
/// Finish times arrive in schedule order (not sorted) and queries are not
/// monotone — retro-fill mode observes epochs at wave makespans that can
/// move backwards — so neither a sorted insert nor a pop-based heap works.
/// Instead finishes accumulate as sorted runs merged binary-counter style:
/// each insert starts a singleton run and merges equal-or-shorter ones,
/// keeping O(log n) runs with amortized O(log n) insert cost.
#[derive(Debug, Clone, Default)]
pub struct FinishIndex {
    /// Sorted runs of order-preserving finish bits, lengths strictly
    /// decreasing (powers of two) from front to back.
    runs: Vec<Vec<u64>>,
    total: usize,
}

impl FinishIndex {
    /// An empty index.
    pub fn new() -> Self {
        FinishIndex::default()
    }

    /// Number of finish times recorded.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether no finish times have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Record a task finishing at `finish_seconds`.
    pub fn insert(&mut self, finish_seconds: f64) {
        let mut run = vec![order_bits(finish_seconds)];
        while let Some(last) = self.runs.last() {
            if last.len() > run.len() {
                break;
            }
            let last = self.runs.pop().expect("checked non-empty");
            run = merge_sorted(&last, &run);
        }
        self.runs.push(run);
        self.total += 1;
    }

    /// Drop every recorded finish at or before `watermark_seconds` and
    /// re-pack the survivors into runs that restore the binary-counter
    /// invariant (lengths strictly decreasing powers of two, front to
    /// back), so subsequent [`insert`](Self::insert)s amortize exactly as
    /// on a fresh index.
    ///
    /// Retiring is *query-transparent above the watermark*:
    /// [`count_after`](Self::count_after) answers bitwise identically for
    /// every `seconds >= watermark_seconds` — the dropped finishes are all
    /// `<= watermark <= seconds` and were never counted by those queries.
    /// Queries *below* the watermark undercount by exactly the retired
    /// finishes that exceeded them; [`crate::ExecutorSession`] documents
    /// the corresponding caller contract.
    ///
    /// Cost is O(retained · log n) — a k-way merge of the per-run
    /// suffixes — which a steady-state caller pays on a bounded working
    /// set, not on session history.
    pub fn retire(&mut self, watermark_seconds: f64) {
        let bits = order_bits(watermark_seconds);
        let mut retained: Vec<u64> = Vec::new();
        for run in &self.runs {
            let keep = &run[run.partition_point(|&b| b <= bits)..];
            if !keep.is_empty() {
                retained = if retained.is_empty() { keep.to_vec() } else { merge_sorted(&retained, keep) };
            }
        }
        self.total = retained.len();
        self.runs.clear();
        // Split the sorted survivors by the binary representation of their
        // count: one run per set bit, largest first — the exact state a
        // binary-counter insertion sequence of `total` elements leaves.
        let mut offset = 0usize;
        for shift in (0..usize::BITS).rev() {
            let size = 1usize << shift;
            if self.total & size != 0 {
                self.runs.push(retained[offset..offset + size].to_vec());
                offset += size;
            }
        }
    }

    /// Number of recorded finishes strictly greater than `seconds`.
    ///
    /// Matches `schedule.iter().filter(|s| s.finish_seconds > seconds)`
    /// exactly, including for out-of-domain queries: a NaN query counts
    /// nothing, a negative query counts everything.
    pub fn count_after(&self, seconds: f64) -> usize {
        if seconds.is_nan() {
            return 0;
        }
        if seconds < 0.0 {
            return self.total;
        }
        let bits = if seconds == 0.0 {
            0
        } else if seconds.is_infinite() {
            f64::MAX.to_bits()
        } else {
            seconds.to_bits()
        };
        let not_after: usize = self.runs.iter().map(|run| run.partition_point(|&b| b <= bits)).sum();
        self.total - not_after
    }
}

fn merge_sorted(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_index_picks_earliest_then_lowest_index() {
        let mut index = SlotIndex::new(2);
        index.insert(SlotKind::Cpu, 0, 0.0, 0);
        index.insert(SlotKind::Cpu, 0, 0.0, 1);
        index.insert(SlotKind::Cpu, 1, 0.0, 2);
        // All free at 0: lowest slot index wins.
        assert_eq!(index.best_slot(SlotKind::Cpu, 5.0, 0.0, None, 2), Some(0));
        index.update(SlotKind::Cpu, 0, 0.0, 10.0, 0);
        // Slot 0 busy until 10: next-lowest free slot wins.
        assert_eq!(index.best_slot(SlotKind::Cpu, 5.0, 0.0, None, 2), Some(1));
        // A locality penalty off node 1 makes slot 2 the only local choice.
        assert_eq!(index.best_slot(SlotKind::Cpu, 5.0, 100.0, Some(1), 2), Some(2));
        // No GPU slots registered at all.
        assert_eq!(index.best_slot(SlotKind::Gpu, 0.0, 0.0, None, 2), None);
    }

    #[test]
    fn slot_index_prefers_longest_idle_on_equal_start() {
        let mut index = SlotIndex::new(1);
        index.insert(SlotKind::Gpu, 0, 0.0, 0);
        index.insert(SlotKind::Gpu, 0, 0.0, 1);
        index.update(SlotKind::Gpu, 0, 0.0, 3.0, 0);
        // Both start the task at t = 7, but slot 1 has been idle longer.
        assert_eq!(index.best_slot(SlotKind::Gpu, 7.0, 0.0, None, 1), Some(1));
    }

    #[test]
    fn slot_index_active_prefix_excludes_drained_nodes() {
        let mut index = SlotIndex::new(3);
        index.insert(SlotKind::Cpu, 0, 0.0, 0);
        index.insert(SlotKind::Cpu, 1, 0.0, 1);
        index.insert(SlotKind::Cpu, 2, 0.0, 2);
        index.update(SlotKind::Cpu, 0, 0.0, 50.0, 0);
        // Full fleet: node 1's free slot wins over node 0's busy one.
        assert_eq!(index.best_slot(SlotKind::Cpu, 0.0, 0.0, None, 3), Some(1));
        // Shrunk to one active node: only node 0 is eligible, busy or not,
        // even though nodes 1 and 2 have idle slots.
        assert_eq!(index.best_slot(SlotKind::Cpu, 0.0, 0.0, None, 1), Some(0));
        // An active count of zero has no eligible slot at all.
        assert_eq!(index.best_slot(SlotKind::Cpu, 0.0, 0.0, None, 0), None);
    }

    #[test]
    fn finish_index_matches_naive_count() {
        // Deterministic LCG so the test needs no external RNG.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / ((1u64 << 31) as f64) * 50.0
        };
        let mut index = FinishIndex::new();
        let mut naive: Vec<f64> = Vec::new();
        for step in 0..500 {
            let finish = next();
            index.insert(finish);
            naive.push(finish);
            if step % 7 == 0 {
                let t = next();
                let expected = naive.iter().filter(|&&f| f > t).count();
                assert_eq!(index.count_after(t), expected, "t = {t}");
            }
        }
        assert_eq!(index.len(), 500);
        assert_eq!(index.count_after(-1.0), 500);
        assert_eq!(index.count_after(f64::NAN), 0);
        assert_eq!(index.count_after(f64::INFINITY), 0);
        assert_eq!(index.count_after(1e9), 0);
    }

    #[test]
    fn finish_index_retire_restores_run_invariant_and_counts() {
        // Deterministic LCG, as above.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / ((1u64 << 31) as f64) * 100.0
        };
        let mut index = FinishIndex::new();
        let mut naive: Vec<f64> = Vec::new();
        for _ in 0..300 {
            let finish = next();
            index.insert(finish);
            naive.push(finish);
        }
        for watermark in [10.0, 25.0, 25.0, 60.0] {
            index.retire(watermark);
            naive.retain(|&f| f > watermark);
            assert_eq!(index.len(), naive.len(), "w = {watermark}");
            // Binary-counter invariant: strictly decreasing powers of two.
            let lengths: Vec<usize> = index.runs.iter().map(Vec::len).collect();
            for len in &lengths {
                assert!(len.is_power_of_two(), "run length {len} after retire({watermark})");
            }
            for pair in lengths.windows(2) {
                assert!(pair[0] > pair[1], "run lengths not strictly decreasing: {lengths:?}");
            }
            assert_eq!(lengths.iter().sum::<usize>(), index.len());
            // Non-monotone queries straddling the watermark: above it the
            // answers match the naive filter bitwise; inserts after a
            // retire keep amortizing on the restored invariant.
            for t in [watermark, watermark + 1.0, 95.0, watermark + 0.5, f64::INFINITY] {
                let expected = naive.iter().filter(|&&f| f > t).count();
                assert_eq!(index.count_after(t), expected, "t = {t} after retire({watermark})");
            }
            for _ in 0..17 {
                let finish = next().max(watermark);
                index.insert(finish);
                naive.push(finish);
            }
        }
        // Retiring everything empties the index; it remains usable.
        index.retire(1e9);
        assert!(index.is_empty());
        assert_eq!(index.count_after(0.0), 0);
        index.insert(3.0);
        assert_eq!(index.count_after(2.0), 1);
    }

    #[test]
    fn finish_index_handles_zero_and_ties() {
        let mut index = FinishIndex::new();
        for f in [0.0, 0.0, 1.0, 1.0, 2.0] {
            index.insert(f);
        }
        assert_eq!(index.count_after(-0.0), 3); // strict: the two zeros are excluded
        assert_eq!(index.count_after(0.0), 3);
        assert_eq!(index.count_after(1.0), 1);
        assert_eq!(index.count_after(2.0), 0);
        assert!(!index.is_empty());
    }
}
