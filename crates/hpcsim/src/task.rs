//! Task and cluster descriptions.

use serde::{Deserialize, Serialize};

/// The kind of worker slot a task needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SlotKind {
    /// A CPU-core worker.
    Cpu,
    /// A GPU worker.
    Gpu,
}

/// The pipeline stage a grouped task belongs to, used to attribute its busy
/// time in the executor's per-stage timing breakdown
/// ([`crate::StageTimings`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GroupRole {
    /// The cheap extraction half of a document's task pair.
    Extract,
    /// The (optional) high-quality parse half of a document's task pair.
    Parse,
}

/// Co-scheduling hint: tasks sharing a group id belong to the same document.
///
/// The first member of a group to be scheduled *anchors* the group to the
/// node it runs on — its output (the extracted text, the staged archive) now
/// lives there. Later members of the same group find their input on the
/// anchor node, so the executor prefers to place them there
/// ([`crate::ExecutorConfig::co_schedule_pairs`]) and charges the
/// data-locality penalty when they run anywhere else. Typical use is an
/// extract+parse pair: `TaskGroup { id: doc_id, role: Extract }` on the
/// extraction task and `TaskGroup { id: doc_id, role: Parse }` on the parse
/// task of the same document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TaskGroup {
    /// Shared identifier of the pair (typically the document id).
    pub id: u64,
    /// Which stage of the pair this task is.
    pub role: GroupRole,
}

/// One schedulable parsing task (typically: parse one document, or one batch
/// of documents, with a particular parser).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Caller-assigned identifier.
    pub id: u64,
    /// Which slot kind the task occupies.
    pub slot: SlotKind,
    /// Pure compute time in seconds (excluding stage-in and model load).
    pub compute_seconds: f64,
    /// Bytes staged in from the shared filesystem, in MiB.
    pub input_mb: f64,
    /// Number of files the input arrives as (drives metadata pressure when
    /// node-local ZIP staging is disabled).
    pub input_files: usize,
    /// Model-load seconds paid when the task starts on a cold worker.
    pub cold_start_seconds: f64,
    /// Node where the task's input was staged (node-local archives live
    /// there). `None` means the task is placement-indifferent; `Some(n)`
    /// means running anywhere but node `n` pays the filesystem's
    /// data-locality penalty (the input must be re-fetched through the
    /// shared filesystem instead of read from the node-local copy).
    pub preferred_node: Option<usize>,
    /// Co-scheduling pair hint: the extract and parse tasks of one document
    /// share a [`TaskGroup`] id and prefer to land on the same node. `None`
    /// means the task is not part of a pair.
    pub group: Option<TaskGroup>,
    /// Ids of tasks that must *finish* before this task may start. The
    /// executor's ready queue releases a task only once every dependency has
    /// completed (dependencies resolved in earlier
    /// [`crate::ExecutorSession::submit`] batches count as satisfied at
    /// their recorded finish time; dependencies on tasks enqueued into the
    /// same drain — even by a different
    /// [`crate::ExecutorSession::submit_with`] call — are real edges; ids
    /// never seen by the session are vacuously satisfied at time zero).
    /// Under [`crate::CausalityMode::Causal`] the release is additionally
    /// clamped to the batch's release floor. An empty list reproduces the
    /// order-free throughput model. Tasks caught in a dependency cycle — or
    /// depending on a task that was skipped — are skipped, never deadlocked.
    pub depends_on: Vec<u64>,
    /// Label used for grouping in reports (e.g. the parser name). Doubles as
    /// the *model key* of the executor's per-node [`crate::WarmPool`]: tasks
    /// with the same label and a positive
    /// [`cold_start_seconds`](Self::cold_start_seconds) share resident
    /// weights on a node.
    pub label: String,
}

impl Task {
    /// A task with the given compute time and no I/O or cold-start cost.
    pub fn new(id: u64, slot: SlotKind, compute_seconds: f64) -> Self {
        Task {
            id,
            slot,
            compute_seconds: compute_seconds.max(0.0),
            input_mb: 0.0,
            input_files: 1,
            cold_start_seconds: 0.0,
            preferred_node: None,
            group: None,
            depends_on: Vec::new(),
            label: String::new(),
        }
    }

    /// Set the staged input size in MiB.
    pub fn with_input_mb(mut self, input_mb: f64) -> Self {
        self.input_mb = input_mb.max(0.0);
        self
    }

    /// Set the number of input files.
    pub fn with_input_files(mut self, files: usize) -> Self {
        self.input_files = files.max(1);
        self
    }

    /// Set the cold-start (model-load) cost.
    pub fn with_cold_start(mut self, seconds: f64) -> Self {
        self.cold_start_seconds = seconds.max(0.0);
        self
    }

    /// Pin the task's staged input to a node (node-affinity scheduling).
    pub fn with_preferred_node(mut self, node: usize) -> Self {
        self.preferred_node = Some(node);
        self
    }

    /// Mark the task as one half of a co-scheduled pair (see [`TaskGroup`]).
    pub fn with_group(mut self, id: u64, role: GroupRole) -> Self {
        self.group = Some(TaskGroup { id, role });
        self
    }

    /// Add a precedence edge: this task may not start before the task with
    /// id `task_id` has finished.
    pub fn with_dependency(mut self, task_id: u64) -> Self {
        self.depends_on.push(task_id);
        self
    }

    /// Replace the full dependency list (see
    /// [`depends_on`](Self::depends_on)).
    pub fn with_depends_on(mut self, task_ids: Vec<u64>) -> Self {
        self.depends_on = task_ids;
        self
    }

    /// Set the report label.
    pub fn with_label(mut self, label: &str) -> Self {
        self.label = label.to_string();
        self
    }
}

/// Shape of the cluster running the campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// CPU worker slots per node (Polaris: 32 cores, a few reserved).
    pub cpu_slots_per_node: usize,
    /// GPU worker slots per node (Polaris: 4 A100s).
    pub gpu_slots_per_node: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig { nodes: 1, cpu_slots_per_node: 30, gpu_slots_per_node: 4 }
    }
}

impl ClusterConfig {
    /// A cluster of `nodes` Polaris-like nodes.
    pub fn polaris(nodes: usize) -> Self {
        ClusterConfig { nodes: nodes.max(1), ..Default::default() }
    }

    /// Total number of slots of a kind across the cluster.
    pub fn total_slots(&self, kind: SlotKind) -> usize {
        match kind {
            SlotKind::Cpu => self.nodes * self.cpu_slots_per_node,
            SlotKind::Gpu => self.nodes * self.gpu_slots_per_node,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_builder_clamps_and_sets() {
        let t = Task::new(1, SlotKind::Gpu, -2.0)
            .with_input_mb(-1.0)
            .with_input_files(0)
            .with_cold_start(15.0)
            .with_label("Nougat");
        assert_eq!(t.compute_seconds, 0.0);
        assert_eq!(t.input_mb, 0.0);
        assert_eq!(t.input_files, 1);
        assert_eq!(t.cold_start_seconds, 15.0);
        assert_eq!(t.label, "Nougat");
        assert_eq!(t.slot, SlotKind::Gpu);
        assert_eq!(t.preferred_node, None);
        assert_eq!(t.group, None);
        assert!(t.depends_on.is_empty());
        assert_eq!(t.with_preferred_node(3).preferred_node, Some(3));
    }

    #[test]
    fn group_builder_sets_id_and_role() {
        let t = Task::new(1, SlotKind::Cpu, 1.0).with_group(42, GroupRole::Parse);
        assert_eq!(t.group, Some(TaskGroup { id: 42, role: GroupRole::Parse }));
    }

    #[test]
    fn dependency_builders_accumulate_and_replace() {
        let t = Task::new(5, SlotKind::Cpu, 1.0).with_dependency(1).with_dependency(2);
        assert_eq!(t.depends_on, vec![1, 2]);
        let t = t.with_depends_on(vec![7]);
        assert_eq!(t.depends_on, vec![7]);
    }

    #[test]
    fn cluster_slot_counts() {
        let c = ClusterConfig::polaris(4);
        assert_eq!(c.nodes, 4);
        assert_eq!(c.total_slots(SlotKind::Cpu), 120);
        assert_eq!(c.total_slots(SlotKind::Gpu), 16);
        assert_eq!(ClusterConfig::polaris(0).nodes, 1);
    }
}
