//! Property tests for the bounded drain (`ExecutorSession::advance_until`)
//! and the active-fleet cap (`ExecutorSession::set_active_nodes`) — the two
//! engine extensions the resident serve layer is built on.
//!
//! The load-bearing property is *schedule transparency*: slicing one
//! submission's drain into arbitrary `advance_until` segments (followed by
//! a final `advance_to_frontier`) must reproduce the single unbounded
//! drain's schedule bitwise — every placement, start, and finish — along
//! with the frontier and clock. The bounded drain consumes the same global
//! `(release time, task id)` event order, merely in pieces, so nothing
//! about placement may change. (The cumulative report's *summed*
//! aggregates accumulate per segment and may differ in the last ulp;
//! counts and max-based fields must match exactly.)

use hpcsim::{
    CausalityMode, ClusterConfig, ExecutorConfig, ExecutorSession, LustreModel, SlotKind, SubmitOptions,
    Task, WorkflowExecutor,
};
use proptest::prelude::*;

const MAX_TASKS: usize = 24;

/// A random DAG over `n` CPU tasks (edges only point backwards, so it is
/// acyclic by construction), plus random drain-tick spacings.
fn dag_with_ticks() -> impl Strategy<Value = (Vec<Task>, Vec<f64>)> {
    (
        (
            2usize..MAX_TASKS,
            prop::collection::vec(0u64..u64::MAX, MAX_TASKS..MAX_TASKS + 1),
            prop::collection::vec(1u32..40, MAX_TASKS..MAX_TASKS + 1),
        ),
        prop::collection::vec(0.05f64..1.5, 1..12),
    )
        .prop_map(|((n, edges, durations), ticks)| {
            let tasks = (0..n)
                .map(|i| {
                    let deps: Vec<u64> =
                        (0..i).filter(|&j| (edges[i] >> (j % 64)) & 3 == 0).map(|j| j as u64).collect();
                    Task::new(i as u64, SlotKind::Cpu, durations[i] as f64 * 0.1)
                        .with_input_mb(1.0)
                        .with_depends_on(deps)
                })
                .collect();
            (tasks, ticks)
        })
}

fn session(causality: CausalityMode, cluster: &ClusterConfig) -> ExecutorSession {
    WorkflowExecutor::new(ExecutorConfig { causality, ..Default::default() }).session(cluster)
}

type Snapshot = (hpcsim::CampaignReport, Vec<hpcsim::ScheduledTask>, f64, f64);

fn snapshot(session: &ExecutorSession) -> Snapshot {
    (session.report(), session.schedule().to_vec(), session.frontier_seconds(), session.now_seconds())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn segmented_drain_is_schedule_transparent(
        input in dag_with_ticks(),
        causal in 0u8..2,
    ) {
        let (tasks, ticks) = input;
        let causality = if causal == 1 { CausalityMode::Causal } else { CausalityMode::RetroFill };
        let cluster = ClusterConfig { nodes: 1, cpu_slots_per_node: 3, gpu_slots_per_node: 0 };
        let fs = LustreModel::default();

        let mut whole = session(causality, &cluster);
        whole.submit_with(&tasks, SubmitOptions { release_seconds: Some(0.0) });
        whole.advance_to_frontier(&fs);

        let mut sliced = session(causality, &cluster);
        sliced.submit_with(&tasks, SubmitOptions { release_seconds: Some(0.0) });
        let mut bound = 0.0;
        let mut dispatched_so_far = 0;
        for tick in ticks {
            bound += tick;
            let report = sliced.advance_until(bound, &fs);
            // A bounded drain dispatches exactly the events due by the
            // bound: every row it appended was released at or before it,
            // and bounded drains never sweep cycles out as skipped.
            for row in &sliced.schedule()[dispatched_so_far..] {
                prop_assert!(row.ready_seconds <= bound);
            }
            dispatched_so_far = sliced.schedule().len();
            prop_assert_eq!(report.tasks_skipped, 0);
        }
        sliced.advance_to_frontier(&fs);
        // Placement is bitwise identical; so are the clock and frontier.
        prop_assert_eq!(whole.schedule(), sliced.schedule());
        prop_assert_eq!(whole.frontier_seconds(), sliced.frontier_seconds());
        prop_assert_eq!(whole.now_seconds(), sliced.now_seconds());
        prop_assert_eq!(sliced.pending_task_count(), 0);
        // Count and max-based report fields match exactly; summed
        // aggregates accumulate per segment, so compare up to summation
        // reassociation error.
        let (a, b) = (whole.report(), sliced.report());
        prop_assert_eq!(a.tasks_completed, b.tasks_completed);
        prop_assert_eq!(a.tasks_skipped, b.tasks_skipped);
        prop_assert_eq!(a.retro_filled_tasks, b.retro_filled_tasks);
        prop_assert_eq!(a.makespan_seconds, b.makespan_seconds);
        prop_assert_eq!(a.critical_path_seconds, b.critical_path_seconds);
        for (x, y, what) in [
            (a.cpu_busy_seconds, b.cpu_busy_seconds, "cpu busy"),
            (a.stage_in_seconds, b.stage_in_seconds, "stage-in"),
            (a.queue_wait_seconds, b.queue_wait_seconds, "queue wait"),
            (a.decision_lag_seconds, b.decision_lag_seconds, "decision lag"),
        ] {
            prop_assert!((x - y).abs() <= 1e-9 * x.abs().max(1.0), "{}: {} vs {}", what, x, y);
        }
    }

    #[test]
    fn bounded_drain_leaves_later_events_pending(input in dag_with_ticks()) {
        // Dependency-free tasks released strictly after the bound must
        // stay pending (and queued) until an advance covers them.
        let (mut tasks, _) = input;
        for task in &mut tasks {
            task.depends_on.clear();
        }
        let cluster = ClusterConfig { nodes: 1, cpu_slots_per_node: 2, gpu_slots_per_node: 0 };
        let fs = LustreModel::default();
        let mut s = session(CausalityMode::Causal, &cluster);
        s.submit_with(&tasks, SubmitOptions { release_seconds: Some(10.0) });
        let early = s.advance_until(9.9, &fs);
        prop_assert_eq!(early.tasks_completed, 0);
        prop_assert_eq!(s.pending_task_count(), tasks.len());
        prop_assert_eq!(s.schedule().len(), 0);
        let late = s.advance_until(10.0, &fs);
        prop_assert_eq!(late.tasks_completed, tasks.len());
        prop_assert_eq!(s.pending_task_count(), 0);
        for row in s.schedule() {
            prop_assert!(row.start_seconds >= 10.0);
        }
    }

    #[test]
    fn admission_between_bounded_drains_replays_bitwise(input in dag_with_ticks()) {
        // The serve layer's pattern: admit a batch at each tick with the
        // tick as its release floor, draining up to the tick first.
        // Dependency edges point at tasks completed in earlier ticks via
        // the completion map. Two identical runs must match bitwise.
        let (tasks, ticks) = input;
        let cluster = ClusterConfig { nodes: 2, cpu_slots_per_node: 2, gpu_slots_per_node: 0 };
        let fs = LustreModel::default();
        let run = || {
            let mut s = session(CausalityMode::Causal, &cluster);
            let mut bound = 0.0;
            let mut windows = tasks.chunks(1 + tasks.len() / ticks.len().max(1));
            for tick in &ticks {
                bound += tick;
                s.advance_until(bound, &fs);
                if let Some(window) = windows.next() {
                    s.submit_with(window, SubmitOptions { release_seconds: Some(bound) });
                }
            }
            for window in windows {
                s.submit_with(window, SubmitOptions { release_seconds: Some(bound) });
            }
            s.advance_to_frontier(&fs);
            snapshot(&s)
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.1.len(), tasks.len());
        prop_assert_eq!(a, b);
        // Causal floors held across every tick boundary.
    }

    #[test]
    fn active_node_cap_confines_new_work_to_the_prefix(
        input in dag_with_ticks(),
        cap in 1usize..4,
    ) {
        let (mut tasks, _) = input;
        for task in &mut tasks {
            task.depends_on.clear();
        }
        let cluster = ClusterConfig { nodes: 4, cpu_slots_per_node: 2, gpu_slots_per_node: 0 };
        let fs = LustreModel::default();
        let mut s = session(CausalityMode::Causal, &cluster);
        s.set_active_nodes(cap);
        prop_assert_eq!(s.active_nodes(), cap);
        s.submit_with(&tasks, SubmitOptions { release_seconds: Some(0.0) });
        s.advance_to_frontier(&fs);
        for row in s.schedule() {
            prop_assert!(row.node < cap, "task {} placed on drained node {}", row.id, row.node);
        }
    }
}

#[test]
fn shrinking_the_fleet_never_preempts_running_tasks() {
    let cluster = ClusterConfig { nodes: 2, cpu_slots_per_node: 1, gpu_slots_per_node: 0 };
    let fs = LustreModel::default();
    let mut s =
        WorkflowExecutor::new(ExecutorConfig { causality: CausalityMode::Causal, ..Default::default() })
            .session(&cluster);
    // Two long tasks saturate both single-slot nodes.
    s.submit_with(
        &[Task::new(0, SlotKind::Cpu, 100.0), Task::new(1, SlotKind::Cpu, 100.0)],
        SubmitOptions { release_seconds: Some(0.0) },
    );
    s.advance_until(0.0, &fs);
    assert_eq!(s.schedule().len(), 2);
    let nodes_used: Vec<usize> = s.schedule().iter().map(|row| row.node).collect();
    assert!(nodes_used.contains(&0) && nodes_used.contains(&1));
    // Shrink to one node mid-flight: the node-1 task keeps running (its
    // finish stands), but all new work lands on node 0 — even though
    // node 1's slot frees at the same time as node 0's.
    s.set_active_nodes(1);
    s.submit_with(
        &[Task::new(2, SlotKind::Cpu, 1.0), Task::new(3, SlotKind::Cpu, 1.0)],
        SubmitOptions { release_seconds: Some(50.0) },
    );
    s.advance_to_frontier(&fs);
    for row in s.schedule().iter().filter(|row| row.id >= 2) {
        assert_eq!(row.node, 0, "new work must avoid the drained node");
    }
    let long_tasks: Vec<_> = s.schedule().iter().filter(|row| row.id < 2).collect();
    assert!(long_tasks.iter().all(|row| (row.finish_seconds - 100.0).abs() < 1e-9));
    // Growing back re-enables node 1 immediately.
    s.set_active_nodes(2);
    s.submit_with(&[Task::new(4, SlotKind::Cpu, 1.0)], SubmitOptions { release_seconds: None });
    s.advance_to_frontier(&fs);
    let last = s.schedule().last().unwrap();
    assert_eq!(last.id, 4);
}

#[test]
fn pending_arena_compacts_between_bounded_drains() {
    // A service that always has one straggler pending must not accumulate
    // dispatched entries: the arena stays proportional to the backlog.
    let cluster = ClusterConfig { nodes: 1, cpu_slots_per_node: 4, gpu_slots_per_node: 0 };
    let fs = LustreModel::default();
    let mut s =
        WorkflowExecutor::new(ExecutorConfig { causality: CausalityMode::Causal, ..Default::default() })
            .session(&cluster);
    let mut next_id = 0u64;
    for epoch in 0..200 {
        let t = epoch as f64;
        // One task due now, one due far in the future (the straggler pool).
        s.submit_with(&[Task::new(next_id, SlotKind::Cpu, 0.1)], SubmitOptions { release_seconds: Some(t) });
        next_id += 1;
        s.submit_with(
            &[Task::new(next_id, SlotKind::Cpu, 0.1)],
            SubmitOptions { release_seconds: Some(1_000.0 + t) },
        );
        next_id += 1;
        s.advance_until(t, &fs);
        // Only the stragglers remain pending — dispatched entries are
        // evicted, so the arena cannot grow with the epoch count.
        assert_eq!(s.pending_task_count(), epoch + 1);
    }
    let report = s.advance_to_frontier(&fs);
    assert_eq!(report.tasks_skipped, 0);
    assert_eq!(s.pending_task_count(), 0);
    assert_eq!(s.schedule().len(), 400);
}
