//! Property tests for causal, event-interleaved batch admission.
//!
//! Random DAGs are split into random windows and fed to an
//! `ExecutorSession` the way the closed loop feeds it: each window is
//! released at the session's dispatch frontier. The properties:
//!
//! * under `CausalityMode::Causal` **no task ever starts before its
//!   window's release floor** (the decision that created it), across
//!   random DAG shapes and window sizes;
//! * under `CausalityMode::RetroFill` the same floors are audited, not
//!   enforced: `retro_filled_tasks` counts exactly the schedule rows with
//!   `start < submitted_at`;
//! * `causal makespan ≥ retro-fill makespan` on identical windowed input —
//!   respecting the arrow of decision time can only cost time;
//! * windowed causal admission replays bitwise, and batches enqueued into
//!   one drain interleave independently of enqueue order.

use hpcsim::{
    CampaignReport, CausalityMode, ClusterConfig, ExecutorConfig, LustreModel, SlotKind, SubmitOptions, Task,
    WorkflowExecutor,
};
use proptest::prelude::*;

const MAX_TASKS: usize = 20;

/// A random DAG over `n` CPU tasks (edges only point backwards, so it is
/// acyclic by construction) plus a window size to split the submission by.
fn windowed_dag() -> impl Strategy<Value = (Vec<Task>, usize)> {
    (
        (
            2usize..MAX_TASKS,
            prop::collection::vec(0u64..u64::MAX, MAX_TASKS..MAX_TASKS + 1),
            prop::collection::vec(1u32..40, MAX_TASKS..MAX_TASKS + 1),
        ),
        1usize..8,
    )
        .prop_map(|((n, edges, durations), window)| {
            let tasks = (0..n)
                .map(|i| {
                    let deps: Vec<u64> =
                        (0..i).filter(|&j| (edges[i] >> (j % 64)) & 3 == 0).map(|j| j as u64).collect();
                    Task::new(i as u64, SlotKind::Cpu, durations[i] as f64 * 0.1)
                        .with_input_mb(1.0)
                        .with_depends_on(deps)
                })
                .collect();
            (tasks, window)
        })
}

/// Feed `tasks` to a session window by window, releasing each window at
/// the dispatch frontier — the closed loop's admission pattern. Dependency
/// edges pointing at earlier windows resolve through the completion map.
fn run_windowed(
    causality: CausalityMode,
    tasks: &[Task],
    window: usize,
    cluster: &ClusterConfig,
) -> (CampaignReport, Vec<hpcsim::ScheduledTask>) {
    let executor = WorkflowExecutor::new(ExecutorConfig { causality, ..Default::default() });
    let mut session = executor.session(cluster);
    for batch in tasks.chunks(window) {
        let floor = session.frontier_seconds();
        session.submit_with(batch, SubmitOptions { release_seconds: Some(floor) });
        session.advance_to_frontier(&LustreModel::default());
    }
    (session.report(), session.schedule().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn causal_mode_never_starts_a_task_before_its_release_floor(input in windowed_dag()) {
        let (tasks, window) = input;
        let cluster = ClusterConfig { nodes: 1, cpu_slots_per_node: 3, gpu_slots_per_node: 0 };
        let (report, schedule) = run_windowed(CausalityMode::Causal, &tasks, window, &cluster);
        prop_assert_eq!(report.tasks_completed, tasks.len());
        prop_assert_eq!(report.retro_filled_tasks, 0);
        for row in &schedule {
            prop_assert!(
                row.start_seconds >= row.submitted_at_seconds,
                "task {} started at {} before its window's floor {}",
                row.id,
                row.start_seconds,
                row.submitted_at_seconds
            );
            prop_assert!(row.ready_seconds >= row.submitted_at_seconds);
        }
        // Floors are the dispatch frontier, which is monotone, so the
        // recorded decision times are too.
        for pair in schedule.windows(2) {
            prop_assert!(pair[1].submitted_at_seconds >= pair[0].submitted_at_seconds);
        }
    }

    #[test]
    fn retro_fill_audit_matches_the_schedule(input in windowed_dag()) {
        let (tasks, window) = input;
        let cluster = ClusterConfig { nodes: 1, cpu_slots_per_node: 3, gpu_slots_per_node: 0 };
        let (report, schedule) = run_windowed(CausalityMode::RetroFill, &tasks, window, &cluster);
        prop_assert_eq!(report.tasks_completed, tasks.len());
        let violations =
            schedule.iter().filter(|row| row.start_seconds < row.submitted_at_seconds).count();
        prop_assert_eq!(
            report.retro_filled_tasks,
            violations,
            "retro_filled_tasks must count exactly the rows violating their floor"
        );
    }

    #[test]
    fn causal_makespan_dominates_retro_fill_without_edges(input in windowed_dag()) {
        // Makespan domination is a *theorem* only for dependency-free
        // windows: both modes then dispatch each window in the same
        // (id) order and the floor can only raise ready times, so the
        // slot-availability profile dominates pointwise by exchange.
        // With precedence edges, greedy list scheduling admits the
        // classic anomaly where delaying a release *shortens* the
        // schedule, so the DAG-shaped ordering is asserted empirically on
        // the pipeline workloads (`adaparse/tests/causal_loop.rs` and the
        // `streaming_scaling` ablation), not universally here.
        let (mut tasks, window) = input;
        for task in &mut tasks {
            task.depends_on.clear();
        }
        let cluster = ClusterConfig { nodes: 1, cpu_slots_per_node: 3, gpu_slots_per_node: 0 };
        let (causal, _) = run_windowed(CausalityMode::Causal, &tasks, window, &cluster);
        let (retro, _) = run_windowed(CausalityMode::RetroFill, &tasks, window, &cluster);
        prop_assert!(
            causal.makespan_seconds >= retro.makespan_seconds - 1e-9,
            "respecting decision causality cannot beat retro-fill ({} vs {})",
            causal.makespan_seconds,
            retro.makespan_seconds
        );
        // Both modes run the same work; only placement timing may differ.
        prop_assert_eq!(causal.tasks_completed, retro.tasks_completed);
    }

    #[test]
    fn windowed_causal_admission_replays_bitwise(input in windowed_dag()) {
        let (tasks, window) = input;
        let cluster = ClusterConfig { nodes: 1, cpu_slots_per_node: 3, gpu_slots_per_node: 0 };
        let a = run_windowed(CausalityMode::Causal, &tasks, window, &cluster);
        let b = run_windowed(CausalityMode::Causal, &tasks, window, &cluster);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn batches_enqueued_into_one_drain_interleave_independently_of_order(input in windowed_dag()) {
        // Enqueue every window with the same floor, forward vs reversed,
        // then drain once: the (ready time, task id) event order must
        // erase the enqueue order entirely — including the dependency
        // edges, which bind across the whole undrained pending set in
        // either enqueue direction.
        let (tasks, window) = input;
        let cluster = ClusterConfig { nodes: 1, cpu_slots_per_node: 3, gpu_slots_per_node: 0 };
        let run = |reverse: bool| {
            let executor = WorkflowExecutor::new(ExecutorConfig {
                causality: CausalityMode::Causal,
                ..Default::default()
            });
            let mut session = executor.session(&cluster);
            let batches: Vec<&[Task]> = tasks.chunks(window).collect();
            let ordered: Vec<&[Task]> =
                if reverse { batches.iter().rev().copied().collect() } else { batches };
            for batch in ordered {
                session.submit_with(batch, SubmitOptions { release_seconds: Some(0.0) });
            }
            let report = session.advance_to_frontier(&LustreModel::default());
            (report, session.schedule().to_vec())
        };
        prop_assert_eq!(run(false), run(true));
    }
}
