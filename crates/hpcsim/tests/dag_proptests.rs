//! Property tests for the dependency-aware executor: random DAGs (chains,
//! diamonds, and dense random shapes) always schedule topologically, never
//! deadlock, and produce bitwise-identical reports across task submission
//! orders — and, with enough slots that no task ever queues, bitwise
//! identical makespans across slot counts (equal to the critical path).

use hpcsim::{ClusterConfig, ExecutorConfig, LustreModel, SlotKind, Task, WorkflowExecutor};
use proptest::prelude::*;
use std::collections::HashMap;

const MAX_TASKS: usize = 24;

/// A random DAG over `n` CPU tasks: task `i` depends on each `j < i` whose
/// edge bits come up, so the graph is acyclic by construction and covers
/// chains, diamonds, and fan-in/fan-out shapes as special cases.
fn dag_tasks() -> impl Strategy<Value = Vec<Task>> {
    (
        2usize..MAX_TASKS,
        prop::collection::vec(0u64..u64::MAX, MAX_TASKS..MAX_TASKS + 1),
        prop::collection::vec(1u32..40, MAX_TASKS..MAX_TASKS + 1),
    )
        .prop_map(|(n, edges, durations)| {
            (0..n)
                .map(|i| {
                    let deps: Vec<u64> = (0..i)
                        // Keep roughly one-in-four candidate edges.
                        .filter(|&j| (edges[i] >> (j % 64)) & 3 == 0)
                        .map(|j| j as u64)
                        .collect();
                    Task::new(i as u64, SlotKind::Cpu, durations[i] as f64 * 0.1)
                        .with_input_mb(1.0)
                        .with_depends_on(deps)
                })
                .collect()
        })
}

fn schedule_by_id(
    tasks: &[Task],
    cluster: &ClusterConfig,
) -> (hpcsim::CampaignReport, HashMap<u64, (f64, f64)>) {
    let executor = WorkflowExecutor::new(ExecutorConfig::default());
    let mut session = executor.session(cluster);
    let report = session.submit(tasks, &LustreModel::default());
    let times = session.schedule().iter().map(|s| (s.id, (s.start_seconds, s.finish_seconds))).collect();
    (report, times)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_dags_schedule_topologically_and_never_deadlock(tasks in dag_tasks()) {
        let cluster = ClusterConfig { nodes: 1, cpu_slots_per_node: 3, gpu_slots_per_node: 0 };
        let (report, times) = schedule_by_id(&tasks, &cluster);
        // Acyclic by construction: nothing may deadlock or be skipped.
        prop_assert_eq!(report.tasks_completed, tasks.len());
        prop_assert_eq!(report.tasks_skipped, 0);
        for task in &tasks {
            let (start, _) = times[&task.id];
            for dep in &task.depends_on {
                let (_, dep_finish) = times[dep];
                prop_assert!(
                    start >= dep_finish,
                    "task {} started at {start} before dependency {dep} finished at {dep_finish}",
                    task.id
                );
            }
        }
    }

    #[test]
    fn reports_are_bitwise_identical_across_submission_orders(tasks in dag_tasks()) {
        let cluster = ClusterConfig { nodes: 1, cpu_slots_per_node: 4, gpu_slots_per_node: 0 };
        let executor = WorkflowExecutor::new(ExecutorConfig::default());
        let forward = executor.run(&tasks, &cluster, &LustreModel::default());
        // Reverse and interleave the submission order; ids are unique, so
        // the (time, id) ready-queue tie-break must erase the difference.
        let mut reversed: Vec<Task> = tasks.iter().rev().cloned().collect();
        let shuffled: Vec<Task> = {
            let mid = tasks.len() / 2;
            let (front, back) = tasks.split_at(mid);
            back.iter().chain(front.iter()).cloned().collect()
        };
        let backward = executor.run(&reversed, &cluster, &LustreModel::default());
        let rotated = executor.run(&shuffled, &cluster, &LustreModel::default());
        prop_assert_eq!(&forward, &backward);
        prop_assert_eq!(&forward, &rotated);
        // Per-task schedules agree too, not just the aggregates.
        let (_, a) = schedule_by_id(&tasks, &cluster);
        reversed.reverse();
        let (_, b) = schedule_by_id(&reversed, &cluster);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn with_enough_slots_makespan_is_the_critical_path_at_any_slot_count(tasks in dag_tasks()) {
        // Slots ≥ tasks: no task ever waits for a slot, so the makespan is
        // exactly the longest dependency chain — bitwise identical no matter
        // how many spare slots the cluster has.
        let executor = WorkflowExecutor::new(ExecutorConfig::default());
        let mut reference = None;
        for extra in [0usize, 5, 19] {
            let cluster = ClusterConfig {
                nodes: 1,
                cpu_slots_per_node: tasks.len() + extra,
                gpu_slots_per_node: 0,
            };
            let report = executor.run(&tasks, &cluster, &LustreModel::default());
            prop_assert_eq!(report.tasks_completed, tasks.len());
            prop_assert_eq!(
                report.makespan_seconds.to_bits(),
                report.critical_path_seconds.to_bits(),
                "unqueued makespan must equal the critical path"
            );
            prop_assert_eq!(report.queue_wait_seconds, 0.0);
            match reference {
                None => reference = Some(report.makespan_seconds),
                Some(expected) => prop_assert_eq!(
                    expected.to_bits(),
                    report.makespan_seconds.to_bits(),
                    "makespan must not depend on the spare-slot count"
                ),
            }
        }
    }

    #[test]
    fn chains_serialize_to_the_sum_of_busy_times(durations in prop::collection::vec(1u32..50, 2..20)) {
        // A pure chain: makespan = Σ busy regardless of slot count.
        let tasks: Vec<Task> = durations
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                let task = Task::new(i as u64, SlotKind::Cpu, d as f64 * 0.1);
                if i > 0 {
                    task.with_dependency(i as u64 - 1)
                } else {
                    task
                }
            })
            .collect();
        let executor = WorkflowExecutor::new(ExecutorConfig::default());
        let mut makespans = Vec::new();
        for slots in [1usize, 2, 8] {
            let cluster = ClusterConfig { nodes: 1, cpu_slots_per_node: slots, gpu_slots_per_node: 0 };
            let report = executor.run(&tasks, &cluster, &LustreModel::default());
            prop_assert_eq!(report.tasks_completed, tasks.len());
            makespans.push(report.makespan_seconds.to_bits());
        }
        prop_assert_eq!(makespans[0], makespans[1]);
        prop_assert_eq!(makespans[0], makespans[2]);
    }

    #[test]
    fn diamonds_join_after_the_slower_branch(branches in (1u32..60, 1u32..60)) {
        let (left, right) = branches;
        let tasks = vec![
            Task::new(0, SlotKind::Cpu, 1.0),
            Task::new(1, SlotKind::Cpu, left as f64 * 0.1).with_dependency(0),
            Task::new(2, SlotKind::Cpu, right as f64 * 0.1).with_dependency(0),
            Task::new(3, SlotKind::Cpu, 1.0).with_depends_on(vec![1, 2]),
        ];
        let cluster = ClusterConfig { nodes: 1, cpu_slots_per_node: 4, gpu_slots_per_node: 0 };
        let (report, times) = schedule_by_id(&tasks, &cluster);
        prop_assert_eq!(report.tasks_completed, 4);
        let join_start = times[&3].0;
        prop_assert!(join_start >= times[&1].1.max(times[&2].1));
        prop_assert_eq!(report.makespan_seconds.to_bits(), report.critical_path_seconds.to_bits());
    }
}
