//! Property tests for the shared model-load bandwidth resource
//! ([`LustreModel::model_load_channels`]).
//!
//! * **Conservation**: the report's `herd_queue_seconds` equals the sum of
//!   per-task [`ScheduledTask::herd_wait_seconds`] — bitwise, folded in
//!   schedule order;
//! * **No early compute**: a task's slot occupancy always covers its herd
//!   wait, its paid model load, and its compute — weights must finish
//!   streaming before compute begins;
//! * **Channel cap**: at most k paid loads are ever in flight at once, and
//!   the report's `concurrent_cold_starts_peak` is exactly the sweep peak
//!   of the schedule's load intervals;
//! * **Monotonicity**: on a symmetric herd (identical tasks, one node),
//!   makespan is monotone non-increasing in the channel count k, and once
//!   k reaches the unlimited-channel peak the schedule is bitwise the
//!   unlimited one;
//! * **Legacy default**: zero channels (the default) pays no herd wait.

use hpcsim::{
    CampaignReport, ClusterConfig, ExecutorConfig, LustreModel, ScheduledTask, SlotKind, Task,
    WorkflowExecutor,
};
use proptest::prelude::*;

const MAX_TASKS: usize = 24;

/// Random GPU-heavy workloads with positive cold starts — the herd regime.
fn herd_workload() -> impl Strategy<Value = Vec<Task>> {
    (
        3usize..MAX_TASKS,
        prop::collection::vec(1u32..30, MAX_TASKS..MAX_TASKS + 1),
        prop::collection::vec(0u8..12, MAX_TASKS..MAX_TASKS + 1),
    )
        .prop_map(|(n, durations, shape)| {
            (0..n)
                .map(|i| {
                    let gpu = shape[i] % 4 != 0;
                    let kind = if gpu { SlotKind::Gpu } else { SlotKind::Cpu };
                    let mut task = Task::new(i as u64, kind, durations[i] as f64 * 0.2)
                        .with_input_mb(shape[i] as f64 * 2.0);
                    if gpu {
                        task = task
                            .with_label(match shape[i] % 3 {
                                0 => "Nougat",
                                1 => "Marker",
                                _ => "GOT",
                            })
                            .with_cold_start(5.0 + (shape[i] % 4) as f64 * 3.0);
                    }
                    task
                })
                .collect()
        })
}

fn run(
    tasks: &[Task],
    channels: usize,
    warm_start: bool,
    cluster: &ClusterConfig,
) -> (CampaignReport, Vec<ScheduledTask>) {
    let fs = LustreModel { model_load_channels: channels, ..Default::default() };
    let executor = WorkflowExecutor::new(ExecutorConfig { warm_start, ..Default::default() });
    let mut session = executor.session(cluster);
    let report = session.submit(tasks, &fs);
    (report, session.schedule().to_vec())
}

fn cluster() -> ClusterConfig {
    ClusterConfig { nodes: 2, cpu_slots_per_node: 2, gpu_slots_per_node: 3 }
}

/// Exact sweep peak over the schedule's paid-load intervals
/// `[start + herd_wait, start + herd_wait + cold)`.
fn sweep_peak(schedule: &[ScheduledTask]) -> usize {
    let intervals: Vec<(f64, f64)> = schedule
        .iter()
        .filter(|row| row.cold_start_paid_seconds > 0.0)
        .map(|row| {
            let load_start = row.start_seconds + row.herd_wait_seconds;
            (load_start, load_start + row.cold_start_paid_seconds)
        })
        .collect();
    let mut starts: Vec<f64> = intervals.iter().map(|&(s, _)| s).collect();
    let mut ends: Vec<f64> = intervals.iter().map(|&(_, e)| e).collect();
    starts.sort_by(f64::total_cmp);
    ends.sort_by(f64::total_cmp);
    let (mut peak, mut open, mut closed) = (0usize, 0usize, 0usize);
    for &s in &starts {
        while closed < ends.len() && ends[closed] <= s {
            closed += 1;
        }
        open += 1;
        peak = peak.max(open - closed);
    }
    peak
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn herd_waits_are_conserved_bitwise(
        tasks in herd_workload(),
        channels in 1usize..5,
        warm_flag in 0u8..2,
    ) {
        let warm = warm_flag == 1;
        let (report, schedule) = run(&tasks, channels, warm, &cluster());
        let mut folded = 0.0f64;
        for row in &schedule {
            folded += row.herd_wait_seconds;
        }
        prop_assert_eq!(
            folded.to_bits(),
            report.herd_queue_seconds.to_bits(),
            "sum of per-task herd waits ({}) must equal the report's total queue time ({}) bitwise",
            folded,
            report.herd_queue_seconds
        );
    }

    #[test]
    fn compute_never_starts_before_the_model_finishes_loading(
        tasks in herd_workload(),
        channels in 1usize..5,
        warm_flag in 0u8..2,
    ) {
        let warm = warm_flag == 1;
        let (_, schedule) = run(&tasks, channels, warm, &cluster());
        for row in &schedule {
            let compute = tasks[row.id as usize].compute_seconds;
            let occupancy = row.finish_seconds - row.start_seconds;
            let floor = row.herd_wait_seconds + row.cold_start_paid_seconds + compute;
            prop_assert!(
                occupancy >= floor - 1e-9,
                "task {}: occupancy {} cannot cover wait {} + load {} + compute {}",
                row.id,
                occupancy,
                row.herd_wait_seconds,
                row.cold_start_paid_seconds,
                compute
            );
        }
    }

    #[test]
    fn at_most_k_loads_are_ever_in_flight(
        tasks in herd_workload(),
        channels in 1usize..5,
        warm_flag in 0u8..2,
    ) {
        let warm = warm_flag == 1;
        let (report, schedule) = run(&tasks, channels, warm, &cluster());
        let peak = sweep_peak(&schedule);
        prop_assert!(
            peak <= channels,
            "{} concurrent loads exceed the {} configured channels",
            peak,
            channels
        );
        prop_assert_eq!(
            report.concurrent_cold_starts_peak, peak,
            "the report's peak must be exactly the sweep peak of the schedule's load intervals"
        );
        if report.cold_starts > 0 {
            prop_assert!(report.concurrent_cold_starts_peak >= 1);
        }
    }

    #[test]
    fn unlimited_channels_pay_no_herd_wait(tasks in herd_workload(), warm_flag in 0u8..2) {
        let warm = warm_flag == 1;
        let (report, schedule) = run(&tasks, 0, warm, &cluster());
        prop_assert_eq!(report.herd_queue_seconds.to_bits(), 0.0f64.to_bits());
        for row in &schedule {
            prop_assert_eq!(row.herd_wait_seconds.to_bits(), 0.0f64.to_bits());
        }
    }

    #[test]
    fn enough_channels_reproduce_the_unlimited_schedule_bitwise(
        tasks in herd_workload(),
        warm_flag in 0u8..2,
    ) {
        let warm = warm_flag == 1;
        // With k at least the unlimited run's concurrency peak no load ever
        // queues, so herd waits are identically zero and every float op
        // reduces to the legacy arithmetic.
        let unlimited = run(&tasks, 0, warm, &cluster());
        let k = unlimited.0.concurrent_cold_starts_peak.max(1);
        let capped = run(&tasks, k, warm, &cluster());
        prop_assert_eq!(unlimited, capped);
    }

    #[test]
    fn symmetric_herd_makespan_is_monotone_non_increasing_in_channels(
        gpu_slots in 2usize..7,
        herd_size in 4usize..20,
        cold_deciseconds in 10u32..200,
        compute_deciseconds in 1u32..100,
    ) {
        // The symmetric family: one node, identical dependency-free GPU
        // tasks all ready at t = 0, warm starts off so every task pays its
        // load. Each task's herd wait is then determined by load-channel
        // availability alone, and adding a channel can only relax every
        // wait — the regime where greedy list scheduling has no Graham
        // anomaly. (Monotonicity in k is *not* claimed for arbitrary
        // DAG-shaped workloads.)
        let cold = cold_deciseconds as f64 * 0.1;
        let compute = compute_deciseconds as f64 * 0.1;
        let tasks: Vec<Task> = (0..herd_size as u64)
            .map(|i| Task::new(i, SlotKind::Gpu, compute).with_label("Nougat").with_cold_start(cold))
            .collect();
        let cluster = ClusterConfig { nodes: 1, cpu_slots_per_node: 0, gpu_slots_per_node: gpu_slots };
        let mut previous = f64::INFINITY;
        // k = 0 is unlimited: the loosest schedule, checked last.
        for k in [1usize, 2, 3, 4, 6, 8, 0] {
            let (report, _) = run(&tasks, k, false, &cluster);
            prop_assert!(
                report.makespan_seconds <= previous + 1e-9,
                "k = {} lengthened the symmetric herd: {} after {}",
                k,
                report.makespan_seconds,
                previous
            );
            previous = report.makespan_seconds;
        }
    }
}
