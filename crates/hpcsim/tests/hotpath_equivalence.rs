//! Property tests pinning the hot-path index structures *bitwise* against
//! the linear scans they replaced.
//!
//! The executor used to pick slots by scanning every slot of a kind and to
//! count in-flight work by scanning the whole schedule. [`SlotIndex`] and
//! [`FinishIndex`] replace those scans with sub-linear structures, and these
//! properties re-run the original scan side by side on random workloads:
//!
//! * `SlotIndex::best_slot` returns exactly the slot the ascending-order,
//!   keep-first-on-tie linear scan picks, across random ready times,
//!   penalties, and believed nodes — including the oblivious
//!   (`believed = None`, zero-penalty) regime the old per-kind heap fast
//!   path handled;
//! * `FinishIndex::count_after` equals the naive strict-greater count over
//!   the inserted finish times, under non-monotone query times (the
//!   retro-fill observation pattern).

use hpcsim::{FinishIndex, SlotIndex, SlotKind};
use proptest::prelude::*;

/// The executor's original earliest-effective-slot policy: scan all slots
/// of the kind in ascending index order and keep the first minimum of
/// `(effective start, off-node flag, free-at)`.
fn linear_best(
    free_at: &[f64],
    node_of: &[usize],
    ready: f64,
    penalty: f64,
    believed: Option<usize>,
) -> usize {
    let key_for = |slot: usize| {
        let local = believed.is_none_or(|node| node_of[slot] == node);
        let start = free_at[slot].max(ready);
        (start + if local { 0.0 } else { penalty }, !local, free_at[slot])
    };
    let mut best = 0usize;
    let mut best_key = key_for(0);
    for slot in 1..free_at.len() {
        let key = key_for(slot);
        if key < best_key {
            best_key = key;
            best = slot;
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn slot_index_matches_linear_scan(
        nodes in 1usize..5,
        slots_per_node in 1usize..5,
        ops in prop::collection::vec(((0.0f64..50.0, 0.0f64..5.0), (0.0f64..3.0, 0u8..12)), 1..60),
    ) {
        let total = nodes * slots_per_node;
        let node_of: Vec<usize> = (0..total).map(|slot| slot / slots_per_node).collect();
        let mut free_at = vec![0.0f64; total];
        let mut index = SlotIndex::new(nodes);
        for (slot, &node) in node_of.iter().enumerate() {
            index.insert(SlotKind::Cpu, node, 0.0, slot);
        }
        for ((ready, busy), (penalty, choice)) in ops {
            // `choice` cycles through every node plus the oblivious None.
            let believed = {
                let c = (choice as usize) % (nodes + 1);
                if c == nodes { None } else { Some(c) }
            };
            let expected = linear_best(&free_at, &node_of, ready, penalty, believed);
            let got = index
                .best_slot(SlotKind::Cpu, ready, penalty, believed, nodes)
                .expect("slots of this kind exist");
            prop_assert_eq!(got, expected, "ready={} penalty={} believed={:?}", ready, penalty, believed);
            // Dispatch onto the winner, exactly as the executor would.
            let end = free_at[got].max(ready) + busy;
            index.update(SlotKind::Cpu, node_of[got], free_at[got], end, got);
            free_at[got] = end;
        }
    }

    #[test]
    fn finish_index_matches_schedule_scan(
        ops in prop::collection::vec((0.0f64..100.0, 0.0f64..120.0), 1..200),
    ) {
        let mut index = FinishIndex::new();
        let mut finishes: Vec<f64> = Vec::new();
        for (finish, query) in ops {
            index.insert(finish);
            finishes.push(finish);
            // Queries interleave with inserts and are not monotone — the
            // retro-fill observation pattern the index must support.
            let expected = finishes.iter().filter(|&&f| f > query).count();
            prop_assert_eq!(index.count_after(query), expected, "query={}", query);
        }
        prop_assert_eq!(index.len(), finishes.len());
    }
}
